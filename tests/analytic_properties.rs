//! Property-style integration tests for the analytic layer: the tradeoff
//! LPs, the rule generator, and the PMTD machinery, cross-checked against
//! each other and against the executable framework.

use cqap_suite::common::{Rat, VarSet};
use cqap_suite::decomp::enumerate::{all_pmtds_of, induced_pmtds, prune};
use cqap_suite::decomp::families as pmtd_families;
use cqap_suite::entropy::tradeoff::{
    combined_curve, time_exponent_at, verify_tradeoff, Stats, SymbolicTradeoff,
};
use cqap_suite::panda::rules::minimal_rules;
use cqap_suite::prelude::*;
use cqap_suite::query::families as query_families;

/// The per-rule time exponent is non-increasing in the space budget for
/// every Table 1 rule.
#[test]
fn time_exponent_monotone_in_budget() {
    let (cqap, pmtds) = pmtd_families::pmtds_3reach_all().unwrap();
    let stats = Stats::uniform_for_cqap(&cqap);
    for rule in minimal_rules(&pmtds) {
        let mut last = Rat::int(100);
        for i in 0..=8 {
            let sigma = Rat::new(i, 4);
            let tau = time_exponent_at(&rule.shape, &stats, sigma, Rat::ZERO)
                .expect("bounded online time");
            assert!(
                tau <= last,
                "rule {} not monotone at σ = {sigma}: {tau} > {last}",
                rule.label()
            );
            last = tau;
        }
        // At σ = 2 everything is materializable for 3-reachability.
        assert_eq!(last, Rat::ZERO, "rule {}", rule.label());
    }
}

/// Consistency between the two analytic interfaces: if a symbolic tradeoff
/// `S^w·T ≾ |D|^c` is verified for a rule, then the OBJ(σ) sweep never
/// exceeds `c − w·σ`.
#[test]
fn verified_tradeoffs_bound_the_obj_sweep() {
    let (cqap, pmtds) = pmtd_families::pmtds_3reach_all().unwrap();
    let stats = Stats::uniform_for_cqap(&cqap);
    let rules = minimal_rules(&pmtds);
    let claims = [
        SymbolicTradeoff::new(1, 2, 2, 2),
        SymbolicTradeoff::new(2, 3, 4, 3),
        SymbolicTradeoff::new(1, 1, 2, 1),
        SymbolicTradeoff::new(4, 1, 6, 1),
        SymbolicTradeoff::new(0, 1, 1, 1),
    ];
    for rule in &rules {
        for claim in &claims {
            if !verify_tradeoff(&rule.shape, &stats, claim) {
                continue;
            }
            if claim.t_exp.is_zero() {
                continue;
            }
            for i in 0..=8 {
                let sigma = Rat::new(i, 4);
                let tau = time_exponent_at(&rule.shape, &stats, sigma, Rat::ZERO).unwrap();
                // τ ≤ (c − w·σ)/v  (with |Q| = 1 the q exponent drops out).
                let bound = (claim.d_exp - claim.s_exp * sigma) / claim.t_exp;
                assert!(
                    tau <= bound.max(Rat::ZERO) || bound.is_negative(),
                    "rule {} violates verified claim {claim:?} at σ = {sigma}: τ = {tau}",
                    rule.label()
                );
            }
        }
    }
}

/// The combined 4-reachability curve (Figure 4b) never falls above the
/// 3-reachability curve shifted by the extra hop, and both are monotone.
#[test]
fn figure4_curves_are_monotone_and_ordered_at_extremes() {
    let sigmas: Vec<Rat> = (0..=4).map(|i| Rat::new(i, 2)).collect();
    let a = cqap_suite::panda::figure4a_curve(&sigmas).unwrap();
    let b = cqap_suite::panda::figure4b_curve(&sigmas).unwrap();
    assert!(a.is_monotone());
    assert!(b.is_monotone());
    assert_eq!(a.time_at(Rat::int(2)), Some(Rat::ZERO));
    assert_eq!(b.time_at(Rat::int(2)), Some(Rat::ZERO));
    // Harder query: the 4-path curve is never below the 3-path curve.
    for (pa, pb) in a.points.iter().zip(&b.points) {
        assert!(pb.time >= pa.time, "at σ = {}", pa.space);
    }
}

/// Every PMTD produced by the induced-set construction of §6.3 on the
/// Example 6.3 decomposition is valid, and pruning it yields a set that
/// answers requests correctly through the framework driver.
#[test]
fn induced_pmtd_sets_are_usable_end_to_end() {
    let cqap = query_families::k_path_distinct(4);
    let td = TreeDecomposition::path(vec![
        VarSet::from_iter([0, 1, 3, 4]),
        VarSet::from_iter([1, 2, 3]),
    ])
    .unwrap();
    let pmtds = prune(induced_pmtds(&td, &cqap).unwrap());
    assert!(!pmtds.is_empty());

    let graph = Graph::random(40, 160, 77);
    let db = graph.as_path_database(4);
    let index = CqapIndex::build(&cqap, &db, &pmtds).unwrap();
    for (u, v) in cqap_suite::query::workload::graph_pair_requests(&graph, 20, 5) {
        let req = AccessRequest::single(cqap.access(), &[u, v]).unwrap();
        assert_eq!(
            index.answer(&req).unwrap(),
            index.answer_from_scratch(&req).unwrap(),
            "({u},{v})"
        );
    }
}

/// Exhaustive PMTD enumeration over a fixed decomposition only ever yields
/// PMTDs whose rules the LP can bound, and the combined curve over those
/// rules is no worse than the curve of the hand-picked paper set.
#[test]
fn enumerated_pmtds_are_no_worse_than_paper_set() {
    let (cqap, paper) = pmtd_families::pmtds_3reach_fig1().unwrap();
    let chain = TreeDecomposition::path(vec![
        VarSet::from_iter([0, 2, 3]),
        VarSet::from_iter([0, 1, 2]),
    ])
    .unwrap();
    let enumerated = prune(all_pmtds_of(&chain, &cqap).unwrap());
    let stats = Stats::uniform_for_cqap(&cqap);
    let sigmas: Vec<Rat> = (0..=4).map(|i| Rat::new(i, 2)).collect();

    let curve_of = |pmtds: &[Pmtd]| {
        let shapes: Vec<_> = minimal_rules(pmtds)
            .into_iter()
            .map(|r| r.shape)
            .collect();
        combined_curve(&shapes, &stats, &sigmas, Rat::ZERO)
    };
    let paper_curve = curve_of(&paper);
    let enum_curve = curve_of(&enumerated);
    // The paper's Figure 1 set strictly contains the single-decomposition
    // enumeration's materialization options, so it can only be better or
    // equal at every budget.
    for (p, e) in paper_curve.points.iter().zip(&enum_curve.points) {
        assert!(p.time <= e.time, "at σ = {}", p.space);
    }
}
