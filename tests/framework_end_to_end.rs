//! Cross-crate integration tests: the full pipeline from CQAP definition
//! through PMTD selection, preprocessing, and online answering, checked
//! against the naive evaluator, plus the analytic reproduction entry points.

use cqap_suite::decomp::families as pmtd_families;
use cqap_suite::panda::analysis::{
    default_sigma_grid, example_e8_4reach, figure4a_curve, goldstein_baseline, table1_3reach,
};
use cqap_suite::panda::rules::minimal_rules;
use cqap_suite::prelude::*;
use cqap_suite::query::workload::graph_pair_requests;
use proptest::prelude::*;

#[test]
fn three_reach_pipeline_matches_naive_on_skewed_graph() {
    let (cqap, pmtds) = pmtd_families::pmtds_3reach_all().unwrap();
    let graph = Graph::skewed(120, 600, 4, 80, 99);
    let db = graph.as_path_database(3);
    let index = CqapIndex::build(&cqap, &db, &pmtds).unwrap();
    for (u, v) in graph_pair_requests(&graph, 40, 17) {
        let request = AccessRequest::single(cqap.access(), &[u, v]).unwrap();
        assert_eq!(
            index.answer(&request).unwrap(),
            index.answer_from_scratch(&request).unwrap(),
            "request ({u},{v})"
        );
    }
}

#[test]
fn specialized_two_reach_index_agrees_with_framework_driver() {
    let (cqap, pmtds) = pmtd_families::pmtds_2reach().unwrap();
    let graph = Graph::skewed(150, 800, 5, 90, 3);
    let db = graph.as_path_database(2);
    let driver = CqapIndex::build(&cqap, &db, &pmtds).unwrap();
    let specialized = TwoReachIndex::build(&graph, 1 << 12);
    for (u, v) in graph_pair_requests(&graph, 60, 23) {
        let request = AccessRequest::single(cqap.access(), &[u, v]).unwrap();
        let framework_answer = !driver.answer(&request).unwrap().is_empty();
        assert_eq!(
            specialized.query(u, v),
            framework_answer,
            "2-reachability mismatch on ({u},{v})"
        );
    }
}

#[test]
fn specialized_square_index_agrees_with_framework_driver() {
    let (cqap, pmtds) = pmtd_families::pmtds_square().unwrap();
    let graph = Graph::random(40, 250, 31);
    let mut db = Database::new();
    for i in 1..=4 {
        db.add_relation(Relation::binary(
            format!("R{i}"),
            0,
            1,
            graph.edges.iter().copied(),
        ))
        .unwrap();
    }
    let driver = CqapIndex::build(&cqap, &db, &pmtds).unwrap();
    let specialized = SquareIndex::build(&graph, 1 << 10);
    for (a, c) in graph_pair_requests(&graph, 40, 37) {
        let request = AccessRequest::single(cqap.access(), &[a, c]).unwrap();
        let framework_answer = !driver.answer(&request).unwrap().is_empty();
        assert_eq!(
            specialized.query(a, c),
            framework_answer,
            "square mismatch on ({a},{c})"
        );
    }
}

#[test]
fn table1_reproduces_and_figure4a_beats_baseline() {
    let (_, reports) = table1_3reach().unwrap();
    assert_eq!(reports.len(), 4);
    for report in &reports {
        assert!(report.all_verified(), "unverified claims for {}", report.label);
    }

    let curve = figure4a_curve(&default_sigma_grid()).unwrap();
    assert!(curve.is_monotone());
    let mut strictly_better = 0;
    for p in &curve.points {
        let baseline = goldstein_baseline(3, p.space);
        assert!(p.time <= baseline, "worse than baseline at σ = {}", p.space);
        if p.time < baseline {
            strictly_better += 1;
        }
    }
    assert!(
        strictly_better >= 3,
        "expected a strict improvement over a significant part of the spectrum"
    );
}

#[test]
fn example_e8_claims_verify() {
    let (_, reports) = example_e8_4reach().unwrap();
    for report in &reports {
        assert!(report.all_verified(), "unverified claims for {}", report.label);
    }
}

#[test]
fn paper_pmtd_inventories_match() {
    let (_, fig1) = pmtd_families::pmtds_3reach_fig1().unwrap();
    assert_eq!(
        fig1.iter().map(|p| p.summary()).collect::<Vec<_>>(),
        vec!["(T134, T123)", "(T134, S13)", "(S14)"]
    );
    let (_, fig3) = pmtd_families::pmtds_3reach_all().unwrap();
    assert_eq!(fig3.len(), 5);
    let (_, e8) = pmtd_families::pmtds_4reach().unwrap();
    assert_eq!(e8.len(), 11);
    let (_, fig2) = pmtd_families::pmtds_square().unwrap();
    assert_eq!(fig2.len(), 2);

    // Rule generation on the Figure 3 set yields exactly the four Table 1
    // rules after pruning.
    assert_eq!(minimal_rules(&fig3).len(), 4);
}

#[test]
fn boolean_k_set_disjointness_end_to_end() {
    // The Boolean 2-set disjointness CQAP answered through the framework
    // driver (trivial PMTDs of Theorem 6.1) versus the specialized
    // heavy/light structure of the introduction.
    let family = SetFamily::zipf(30, 1_000, 150, 1.0, 3);
    let cqap = cqap_suite::query::families::k_set_disjointness(2);
    let pmtds = cqap_suite::decomp::enumerate::trivial_pmtds(&cqap).unwrap();
    let mut db = Database::new();
    // R(y, x): element y (variable x3) belongs to set x (variables x1/x2
    // via self-join).
    db.add_relation(family.as_relation("R", 2, 0)).unwrap();
    let driver = CqapIndex::build(&cqap, &db, &pmtds).unwrap();
    let specialized = SetDisjointnessIndex::build(&family, 256);
    for a in 0..10u64 {
        for b in [a, a + 3, a + 11] {
            let b = b % family.num_sets as u64;
            let request = AccessRequest::single(cqap.access(), &[a, b]).unwrap();
            let framework_answer = !driver.answer(&request).unwrap().is_empty();
            assert_eq!(
                specialized.intersects(a, b),
                framework_answer,
                "set pair ({a},{b})"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Property: for random graphs and random budgets, the budgeted
    /// 2-reachability index always agrees with the naive evaluator.
    #[test]
    fn prop_two_reach_index_is_correct(seed in 0u64..500, budget_exp in 0usize..18) {
        let graph = Graph::skewed(80, 400, 3, 50, seed);
        let idx = TwoReachIndex::build(&graph, 1usize << budget_exp);
        let adj = cqap_suite::indexes::kreach::Adjacency::new(&graph);
        for (u, v) in graph_pair_requests(&graph, 25, seed.wrapping_add(1)) {
            let expected = cqap_suite::indexes::kreach::k_reachable_naive(&adj, 2, u, v);
            prop_assert_eq!(idx.query(u, v), expected);
        }
    }

    /// Property: the set-disjointness index is correct for every budget.
    #[test]
    fn prop_set_disjointness_correct(seed in 0u64..500, budget in 1usize..5_000) {
        let family = SetFamily::zipf(25, 600, 120, 0.8, seed);
        let idx = SetDisjointnessIndex::build(&family, budget);
        for a in 0..25u64 {
            for b in (a..25u64).step_by(5) {
                prop_assert_eq!(idx.intersects(a, b), idx.intersects_naive(a, b));
            }
        }
    }
}
