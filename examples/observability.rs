//! End-to-end observability: one metrics sink across the whole serving
//! stack, exported as Prometheus text exposition.
//!
//! ```sh
//! cargo run --release --example observability
//! ```
//!
//! One `MetricsSink` (a shared lock-free recorder from `cqap-obs`) is
//! attached to every layer of a tiered deployment:
//!
//! 1. a `TieredShardedIndex` is built with half its shards spilled to
//!    disk, and the sink is attached to both tiers — cold-shard probes
//!    count segment reads and bytes, delta maintenance records apply
//!    latency, net-op sizes and plan recompiles;
//! 2. a delta batch (a fresh 3-path chain) flows through `ApplyDelta`,
//!    leaving pending overlay tuples whose probes are counted until
//!    compaction folds them away;
//! 3. a zipf-skewed request stream is served through a `ServeRuntime`
//!    built with the same sink: every request's lifecycle — queue wait,
//!    cache lookup, coalesce, backend probe, ticket delivery — lands in
//!    one log-bucketed latency histogram per stage;
//! 4. the merged snapshot is dumped in Prometheus text exposition format
//!    (per-stage p50/p99/p999 plus the store and delta counters), and the
//!    example asserts every expected stage actually recorded.
//!
//! Everything here is allocation-free on the warm path and compiles away
//! entirely when the sink is disabled — the same binary serves with and
//! without metrics.

use std::sync::Arc;

use cqap_suite::decomp::families::pmtds_3reach_fig1;
use cqap_suite::obs::{CounterId, StageId};
use cqap_suite::prelude::*;
use cqap_suite::query::workload::zipf_pair_requests;

const SHARDS: usize = 4;
const REQUESTS: usize = 600;

fn main() {
    let (cqap, pmtds) = pmtds_3reach_fig1().expect("paper PMTDs are valid");
    let graph = Graph::skewed(600, 3_600, 8, 220, 7);
    let db = graph.as_path_database(3);

    // A tiered deployment with half the S-budget in memory: the placement
    // policy spills the colder shards to disk-resident sorted runs.
    let spec = ShardSpec::new(&cqap, SHARDS).expect("spec");
    let sample: Vec<AccessRequest> = zipf_pair_requests(&graph, 200, 1.05, 3)
        .into_iter()
        .map(|(u, v)| AccessRequest::single(cqap.access(), &[u, v]).expect("valid request"))
        .collect();
    let weights = PlacementPolicy::observe(&spec, &sample);
    let reference = CqapIndex::build(&cqap, &db, &pmtds).expect("reference build");
    let budget_bytes = reference.space_used() * std::mem::size_of::<Val>() / 2;
    let policy = PlacementPolicy::hot_budget(budget_bytes).with_weights(weights);
    let mut tiered = TieredShardedIndex::build_in_temp(&cqap, &db, &pmtds, SHARDS, &policy)
        .expect("tiered build");
    println!("placement: {:?}", tiered.placements());

    // One live sink for everything. Attaching to the index needs exclusive
    // ownership (like `apply_delta`), so it happens before serving starts.
    let sink = MetricsSink::recording();
    tiered
        .set_metrics_sink(sink.clone())
        .expect("index not yet shared");

    // A delta batch: a fresh 3-path chain, one new join row, starting at
    // a vertex that hash-routes to a *cold* shard — so the ΔS-views land
    // as pending overlay tuples over a disk-resident run. The apply
    // latency, net-op counters and recompile count land in the sink.
    let placements = tiered.placements();
    assert!(
        placements.contains(&ShardTier::Cold),
        "a half-S budget must spill at least one shard"
    );
    let base = (10_000..)
        .step_by(10)
        .find(|&b| {
            placements[spec.shard_of_binding(&Tuple::pair(b, b + 3))] == ShardTier::Cold
        })
        .expect("some base routes cold");
    let mut batch = DeltaBatch::new();
    for (i, rel) in db.relations().iter().enumerate() {
        let from = base + i as u64;
        batch = batch.insert(rel.name().to_string(), vec![Tuple::pair(from, from + 1)]);
    }
    // Bracket the apply with snapshots: `MetricsSnapshot::delta` isolates
    // exactly what this phase recorded, the way a long-running process
    // reports per-window rates instead of ever-growing totals.
    let before_apply = sink.snapshot().expect("sink is recording");
    tiered.apply_delta(&batch).expect("delta applies");

    // The delta window: only what the apply phase itself did. The window
    // histogram carries the apply latency, the window counters the net
    // ops — and nothing from the build or the serving that follows.
    let window = sink
        .snapshot()
        .expect("sink is recording")
        .delta(&before_apply);
    println!(
        "delta-apply window: {} apply in {} ns (p50), {} net inserts, {} recompiles",
        window.stage(StageId::DeltaApply).count,
        window.stage(StageId::DeltaApply).p50(),
        window.counter(CounterId::DeltaNetInserts),
        window.counter(CounterId::PlanRecompiles),
    );
    assert_eq!(
        window.stage(StageId::DeltaApply).count,
        SHARDS as u64,
        "the window isolates exactly this batch's per-shard applies"
    );
    assert!(
        window.counter(CounterId::DeltaNetInserts) >= db.relations().len() as u64,
        "the chain's net inserts land inside the window"
    );
    assert_eq!(
        window.stage(StageId::BackendProbe).count,
        0,
        "no serving activity leaks into the delta window"
    );

    // Probe the fresh chain: the request routes to the cold shard whose
    // overlay is still pending, which is counted by the sink.
    let chain = AccessRequest::single(cqap.access(), &[base, base + 3]).expect("valid request");
    assert!(
        !tiered.answer(&chain).expect("chain answer").is_empty(),
        "the inserted chain must be visible"
    );

    // Serve a zipf stream through a stock runtime built over the same
    // sink: stage timings and pool gauges aggregate into one recorder.
    let requests: Vec<AccessRequest> = zipf_pair_requests(&graph, REQUESTS, 1.05, 11)
        .into_iter()
        .map(|(u, v)| AccessRequest::single(cqap.access(), &[u, v]).expect("valid request"))
        .collect();
    let runtime = ServeRuntime::with_metrics(
        Arc::new(tiered),
        ServeConfig {
            threads: cqap_suite::serve::default_threads(),
            cache_capacity: 1_024,
            ..ServeConfig::default()
        },
        sink.clone(),
    );
    runtime.serve_batch(&requests).expect("cold pass");
    runtime.serve_batch(&requests).expect("warm pass");
    println!("stats: {}", runtime.stats());
    // Join the pool so every in-flight worker lap has landed in the sink.
    drop(runtime);

    // The merged snapshot, as Prometheus would scrape it.
    let snapshot = sink.snapshot().expect("sink is recording");
    let exposition = snapshot.to_prometheus();
    println!("\n{exposition}");

    // Every lifecycle stage must have recorded: this is the example's
    // regression check that the seam stays wired through all layers.
    for stage in [
        StageId::QueueWait,
        StageId::CacheLookup,
        StageId::Coalesce,
        StageId::BackendProbe,
        StageId::TicketDelivery,
        StageId::DeltaApply,
    ] {
        let hist = snapshot.stage(stage);
        assert!(hist.count > 0, "stage {} never recorded", stage.name());
        println!(
            "{:<16} count {:>6}  p50 {:>9} ns  p99 {:>9} ns  p999 {:>9} ns",
            stage.name(),
            hist.count,
            hist.p50(),
            hist.p99(),
            hist.p999(),
        );
    }
    assert!(
        snapshot.counter(CounterId::SegmentReads) > 0,
        "cold-tier probes must read segments"
    );
    assert!(
        snapshot.counter(CounterId::SegmentBytesRead)
            >= snapshot.counter(CounterId::SegmentReads),
        "segment reads are at least one byte each"
    );
    assert!(
        snapshot.counter(CounterId::OverlayPendingProbes) > 0,
        "probes over the un-compacted delta overlay are counted"
    );
    // Relations that do not mention the routing variable replicate across
    // shards, so the chain lands as at least one net insert per relation
    // (and more with replication).
    assert!(
        snapshot.counter(CounterId::DeltaNetInserts) >= db.relations().len() as u64,
        "the chain's net inserts are counted"
    );
    assert!(snapshot.counter(CounterId::PlanRecompiles) > 0);
    assert!(
        exposition.contains("# TYPE cqap_stage_duration_nanoseconds histogram")
            && exposition.contains("cqap_store_segment_reads_total"),
        "exposition carries the stage histograms and store counters"
    );
    println!("\nAll expected stages and counters recorded — the sink seam is wired through.");
}
