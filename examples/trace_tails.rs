//! Flight-recorder tracing under open-loop load: where the tail comes from.
//!
//! ```sh
//! cargo run --release --example trace_tails
//! ```
//!
//! A closed-loop driver (next request waits for the previous answer) can
//! never see real queueing: offered load self-throttles to service
//! capacity. This example drives an **open-loop** Poisson arrival stream —
//! requests are submitted at their scheduled times whether or not earlier
//! answers came back — against a deliberately under-provisioned deployment,
//! and uses the `cqap-obs` flight recorder to explain the resulting tail:
//!
//! 1. a `TieredShardedIndex` is built with **every shard cold** (zero hot
//!    budget), so each backend probe pays disk fence reads, and a delta
//!    batch leaves **pending overlay tuples** on the cold runs — every
//!    probe merges the uncompacted overlay until compaction folds it away;
//! 2. a `FlightRecorder` rides the metrics sink: each sampled request's
//!    queue wait, backend probe, ticket delivery, segment reads and
//!    overlay probes are written into a lock-free ring as timestamped
//!    events sharing the request's trace id;
//! 3. an open-loop stream (`poisson_arrivals_ns` × drifting-zipf keys,
//!    offered well above the 2-thread service capacity) is replayed with
//!    real sleeps, so queueing delay genuinely compounds;
//! 4. the drained ring is exported as Chrome trace-event JSON
//!    (`target/trace_tails.json` — load it in `about:tracing` or Perfetto)
//!    and summarized by `tail_attribution`: the slowest fraction of
//!    requests, grouped by dominant stage and co-occurring store-side
//!    markers.
//!
//! The example asserts the two causes the setup engineers: at least one
//! tail bucket dominated by queue wait (the open-loop overload), and at
//! least one tail bucket carrying the `overlay_pending` marker (probes
//! that had to merge the uncompacted delta overlay on a cold shard).

use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use std::time::{Duration, Instant};

use cqap_suite::decomp::families::pmtds_3reach_fig1;
use cqap_suite::obs::{
    tail_attribution, to_chrome_trace, FlightRecorder, SamplingPolicy, TraceStage,
};
use cqap_suite::prelude::*;
use cqap_suite::query::workload::open_loop_pair_stream;

const SHARDS: usize = 2;
const THREADS: usize = 2;
const REQUESTS: usize = 500;
/// Offered arrival rate, requests/second. Cold-shard probes take tens of
/// microseconds to milliseconds each, so 50k/s over 2 workers is far past
/// saturation — exactly the regime where open-loop queues grow.
const RATE_PER_SEC: f64 = 50_000.0;
/// The slowest fraction of committed traces the report analyzes.
const TAIL_FRACTION: f64 = 0.2;

fn main() {
    let (cqap, pmtds) = pmtds_3reach_fig1().expect("paper PMTDs are valid");
    let graph = Graph::skewed(500, 3_000, 8, 200, 7);
    let db = graph.as_path_database(3);

    // Zero hot budget: every shard spills, every probe is a disk probe.
    let policy = PlacementPolicy::hot_budget(0);
    let mut tiered = TieredShardedIndex::build_in_temp(&cqap, &db, &pmtds, SHARDS, &policy)
        .expect("tiered build");
    assert!(
        tiered.placements().iter().all(|t| *t == ShardTier::Cold),
        "zero budget spills everything"
    );

    // The flight recorder rides the sink. `Always` samples every request:
    // this run exists to be analyzed, so no sampling economy is taken.
    let tracer = Arc::new(FlightRecorder::new(1 << 16, SamplingPolicy::Always));
    let sink = MetricsSink::recording().with_tracer(Arc::clone(&tracer));
    tiered
        .set_metrics_sink(sink.clone())
        .expect("index not yet shared");

    // A delta batch: fresh 3-path chains whose ΔS-views land as pending
    // overlay tuples on the cold runs. The batch is small enough that no
    // shard auto-compacts, so the overlay stays pending for the entire
    // serving phase and every probe into it carries the
    // `overlay_pending` marker.
    let mut batch = DeltaBatch::new();
    for (i, rel) in db.relations().iter().enumerate() {
        let tuples: Vec<Tuple> = (0..4)
            .map(|c| {
                let from = 10_000 + 10 * c + i as u64;
                Tuple::pair(from, from + 1)
            })
            .collect();
        batch = batch.insert(rel.name().to_string(), tuples);
    }
    tiered.apply_delta(&batch).expect("delta applies");

    // An under-provisioned runtime over the cold tiers. The tiny cache
    // plus the drifting-zipf key rotation keeps most probes cold.
    let runtime = ServeRuntime::with_metrics(
        Arc::new(tiered),
        ServeConfig {
            threads: THREADS,
            cache_capacity: 64,
            ..ServeConfig::default()
        },
        sink.clone(),
    );

    // Open-loop replay: sleep until each request's scheduled arrival and
    // submit without waiting for earlier answers. When service falls
    // behind the schedule, later requests are submitted immediately —
    // that is the open loop: offered load does not self-throttle, and
    // the backlog shows up as queue-wait time in the traces.
    let stream = open_loop_pair_stream(&graph, REQUESTS, RATE_PER_SEC, 0.9, 1.3, 100, 29);
    let started = Instant::now();
    let mut tickets = Vec::with_capacity(stream.len());
    for (at_ns, (u, v)) in stream {
        if let Some(ahead) = Duration::from_nanos(at_ns).checked_sub(started.elapsed()) {
            std::thread::sleep(ahead);
        }
        let request =
            AccessRequest::single(cqap.access(), &[u, v]).expect("valid request");
        tickets.push(runtime.submit(request));
    }
    for ticket in tickets {
        ticket.wait().expect("request answers");
    }
    println!("stats: {}", runtime.stats());
    // Join the pool so every in-flight span has landed in the ring.
    drop(runtime);

    let events = tracer.drain();
    println!(
        "drained {} trace events ({} dropped under contention)",
        events.len(),
        tracer.contended_drops()
    );
    assert!(!events.is_empty(), "the recorder captured the run");

    // Chrome trace-event export: load target/trace_tails.json in
    // about:tracing or https://ui.perfetto.dev to see the lanes.
    let chrome = to_chrome_trace(&events);
    std::fs::create_dir_all("target").expect("target dir");
    std::fs::write("target/trace_tails.json", &chrome).expect("write export");
    println!("wrote target/trace_tails.json ({} bytes)", chrome.len());

    // Validate the export without a JSON dependency: the criterion shim's
    // string parser walks the (name, tid) pairs, and at least one trace
    // must be complete across layers — a request root plus its queue
    // wait, backend probe, and a store-side leg, all on one tid lane.
    let complete = complete_cross_layer_traces(&chrome);
    println!("complete cross-layer traces in the export: {complete}");
    assert!(
        complete >= 1,
        "the Chrome export must carry at least one complete cross-layer trace"
    );

    // The attribution report: slowest TAIL_FRACTION of committed traces,
    // grouped by dominant stage + store-side markers.
    let report = tail_attribution(&events, TAIL_FRACTION);
    println!("\n{report}");
    assert!(report.traces > 0, "committed traces reached the report");

    // The two engineered causes must both be visible in the tail:
    // open-loop overload shows up as queue-wait-dominated buckets...
    assert!(
        report.has_dominant(TraceStage::QueueWait),
        "open-loop overload must produce a queue-wait-dominated tail bucket"
    );
    // ...and the uncompacted delta overlay shows up as a store-side
    // cause: tail probes that had to merge pending overlay tuples.
    assert!(
        report.has_marker("overlay_pending"),
        "cold probes over the pending overlay must mark a tail bucket"
    );
    println!(
        "tail causes confirmed: queue-wait domination (open-loop overload) \
         and overlay-pending store probes (uncompacted delta)."
    );
}

/// Counts tid lanes in the Chrome export that carry a complete
/// cross-layer trace: the `request` root plus `queue_wait`,
/// `backend_probe`, and at least one store-side leg (`segment_read` or
/// `overlay_probe`). Parsing reuses [`criterion::parse_json_string`] —
/// the same tiny parser the bench baselines use — so the example needs
/// no JSON dependency.
fn complete_cross_layer_traces(chrome: &str) -> usize {
    let mut lanes: HashMap<u64, HashSet<String>> = HashMap::new();
    let mut rest = chrome;
    while let Some(at) = rest.find("\"name\":") {
        rest = &rest[at + "\"name\":".len()..];
        let Some((name, after)) = criterion::parse_json_string(rest) else {
            continue;
        };
        // `to_chrome_trace` writes `"tid"` right after the fixed fields
        // of the same record, before the nested `"args"` object.
        if let Some(tid_at) = after.find("\"tid\":") {
            let digits = after[tid_at + "\"tid\":".len()..].trim_start();
            let end = digits
                .find(|c: char| !c.is_ascii_digit())
                .unwrap_or(digits.len());
            if let Ok(tid) = digits[..end].parse::<u64>() {
                lanes.entry(tid).or_default().insert(name);
            }
        }
        rest = after;
    }
    lanes
        .values()
        .filter(|stages| {
            stages.contains("request")
                && stages.contains("queue_wait")
                && stages.contains("backend_probe")
                && (stages.contains("segment_read") || stages.contains("overlay_probe"))
        })
        .count()
}
