//! Serving over hot/cold tiered shards: the space budget made physical.
//!
//! ```sh
//! cargo run --release --example tiered_serving
//! ```
//!
//! The tiered deployment of `cqap-store`, end to end:
//!
//! 1. the database is hash-partitioned into `k = 4` shards under the
//!    unchanged `ShardSpec` contract and a `CqapIndex` is built per shard;
//! 2. a `PlacementPolicy` — a hot-tier byte budget of about half the
//!    total S plus observed per-shard traffic — keeps the hottest shards
//!    in memory and spills the rest to disk-resident sorted runs in a
//!    temp directory (cleaned up before the example exits);
//! 3. the `TieredShardedIndex` implements `BatchAnswer`, so a stock
//!    `ServeRuntime` serves a zipf-skewed stream over it unchanged —
//!    including the runtime's request coalescing (queued single-tuple
//!    requests sharing the access pattern merge into one bulk probe);
//! 4. every answer is checked bit-for-bit identical to the unsharded
//!    in-memory `CqapIndex` reference, and the per-tier space breakdown
//!    plus the `ServeStats` counters are printed.

use std::sync::Arc;
use std::time::Instant;

use cqap_suite::decomp::families::pmtds_3reach_fig1;
use cqap_suite::prelude::*;
use cqap_suite::query::workload::zipf_pair_requests;

const SHARDS: usize = 4;
const REQUESTS: usize = 800;

fn main() {
    let (cqap, pmtds) = pmtds_3reach_fig1().expect("paper PMTDs are valid");
    let graph = Graph::skewed(700, 4_200, 8, 240, 7);
    let db = graph.as_path_database(3);

    // Unsharded in-memory reference.
    let reference = CqapIndex::build(&cqap, &db, &pmtds).expect("reference build");

    // The zipf traffic sample that drives placement, and the stream that
    // is actually served (same skew, different seed — the policy sees
    // representative, not oracle, traffic).
    let sample: Vec<AccessRequest> = zipf_pair_requests(&graph, 200, 1.05, 3)
        .into_iter()
        .map(|(u, v)| AccessRequest::single(cqap.access(), &[u, v]).expect("valid request"))
        .collect();
    let requests: Vec<AccessRequest> = zipf_pair_requests(&graph, REQUESTS, 1.05, 11)
        .into_iter()
        .map(|(u, v)| AccessRequest::single(cqap.access(), &[u, v]).expect("valid request"))
        .collect();

    // Budget roughly half the total S in memory; spill the rest, coldest
    // shards (by the sampled traffic) first. Runs live in a temp dir the
    // index removes again when dropped.
    let spec = ShardSpec::new(&cqap, SHARDS).expect("spec");
    let weights = PlacementPolicy::observe(&spec, &sample);
    let budget_bytes = reference.space_used() * std::mem::size_of::<Val>() / 2;
    let policy = PlacementPolicy::hot_budget(budget_bytes).with_weights(weights);

    let start = Instant::now();
    let tiered = TieredShardedIndex::build_in_temp(&cqap, &db, &pmtds, SHARDS, &policy)
        .expect("tiered build");
    let build_time = start.elapsed();

    let space = tiered.space_used();
    println!(
        "build: {SHARDS} shards in {:.1} ms under a {budget_bytes}-byte hot budget",
        build_time.as_secs_f64() * 1e3
    );
    println!("placement: {:?}", tiered.placements());
    println!("space: {space}");
    println!(
        "       -> resident {} of {} total values ({:.0}%)",
        space.resident_values(),
        space.total_values(),
        100.0 * space.resident_values() as f64 / space.total_values().max(1) as f64,
    );
    if space.cold_values > 0 {
        // Cold runs are v2 delta+varint compressed: the on-disk footprint
        // undercuts even the raw 8-byte encoding of the spilled values.
        let logical = (space.cold_values * 8) as u64;
        println!(
            "       -> cold tier compressed: {} B on disk vs {} B logical ({:.2}x)",
            space.cold_disk_bytes,
            logical,
            logical as f64 / space.cold_disk_bytes.max(1) as f64,
        );
        assert!(
            space.cold_disk_bytes < logical,
            "compressed cold tier must beat the plain encoding"
        );
    }

    // Serve through a stock runtime; the tiered index is just another
    // BatchAnswer.
    let runtime = ServeRuntime::with_config(
        Arc::new(tiered),
        ServeConfig {
            threads: cqap_suite::serve::default_threads(),
            cache_capacity: 1_024,
            ..ServeConfig::default()
        },
    );
    let start = Instant::now();
    let cold_pass = runtime.serve_batch(&requests).expect("tiered serving");
    let cold_time = start.elapsed();
    let start = Instant::now();
    let warm_pass = runtime.serve_batch(&requests).expect("tiered serving");
    let warm_time = start.elapsed();

    // Exactness: every answer equals the unsharded in-memory reference.
    for (request, answer) in requests.iter().zip(&cold_pass) {
        assert_eq!(
            answer.as_ref(),
            &reference.answer(request).expect("reference answer"),
            "tiered serving must be exact"
        );
    }
    assert_eq!(cold_pass, warm_pass, "cached answers identical");

    let stats = runtime.stats();
    println!(
        "serve {} zipf requests: cold {:.1} ms | warm {:.1} ms",
        requests.len(),
        cold_time.as_secs_f64() * 1e3,
        warm_time.as_secs_f64() * 1e3,
    );
    // `cache_misses` counts requests needing probe work; coalesced misses
    // share bulk probes, so the dispatched-probe count is far lower.
    println!("stats: {stats}");
    println!(
        "per-shard load (bindings): {:?}",
        runtime.index().observed_loads()
    );
    println!(
        "All {} tiered answers identical to the unsharded CqapIndex.",
        requests.len()
    );
    // Dropping the runtime drops the tiered index, which deletes its
    // spilled runs and scratch directory.
}
