//! Serving a request stream over hash-partitioned index shards.
//!
//! ```sh
//! cargo run --release --example sharded_serving
//! ```
//!
//! The sharded deployment of `cqap-shard`, end to end:
//!
//! 1. the database is hash-partitioned by the routing variable (the
//!    minimum access variable) into `k = 4` shards, and a `CqapIndex` is
//!    built per shard, concurrently;
//! 2. a `ShardRouter` puts one `ServeRuntime` (pool + `Arc`-valued LRU
//!    cache) in front of every shard;
//! 3. the router itself implements `BatchAnswer`, so a *top-level*
//!    `ServeRuntime` wraps it unchanged — zipf-skewed single-binding
//!    requests route to exactly one shard, multi-binding requests
//!    scatter-gather and union;
//! 4. every answer is checked bit-for-bit identical to the unsharded
//!    `CqapIndex` reference.

use std::sync::Arc;
use std::time::Instant;

use cqap_suite::decomp::families::pmtds_3reach_fig1;
use cqap_suite::prelude::*;
use cqap_suite::query::workload::{zipf_multi_requests, zipf_pair_requests};

const SHARDS: usize = 4;
const SINGLES: usize = 1_200;
const MULTIS: usize = 200;

fn main() {
    let (cqap, pmtds) = pmtds_3reach_fig1().expect("paper PMTDs are valid");
    let graph = Graph::skewed(800, 5_000, 8, 250, 7);
    let db = graph.as_path_database(3);

    // Unsharded reference.
    let start = Instant::now();
    let reference = CqapIndex::build(&cqap, &db, &pmtds).expect("reference build");
    let unsharded_build = start.elapsed();

    // Sharded build: k hash partitions, built concurrently.
    let start = Instant::now();
    let sharded = ShardedIndex::build(&cqap, &db, &pmtds, SHARDS).expect("sharded build");
    let sharded_build = start.elapsed();
    println!(
        "build: unsharded {:.1} ms ({} stored values) | {} shards {:.1} ms ({} stored values)",
        unsharded_build.as_secs_f64() * 1e3,
        reference.space_used(),
        sharded.num_shards(),
        sharded_build.as_secs_f64() * 1e3,
        sharded.space_used(),
    );

    // The serving stack over shards: per-shard runtimes behind the
    // router, behind a top-level runtime with its own front cache.
    let router = ShardRouter::new(sharded);
    let runtime = ServeRuntime::with_config(
        Arc::new(router),
        ServeConfig {
            threads: cqap_suite::serve::default_threads(),
            cache_capacity: 1_024,
            ..ServeConfig::default()
        },
    );

    // Zipf-skewed single-binding stream plus multi-binding requests that
    // split across shards.
    let mut requests: Vec<AccessRequest> = zipf_pair_requests(&graph, SINGLES, 1.05, 11)
        .into_iter()
        .map(|(u, v)| AccessRequest::single(cqap.access(), &[u, v]).expect("valid request"))
        .collect();
    requests.extend(
        zipf_multi_requests(&graph, MULTIS, 5, 1.05, 13)
            .into_iter()
            .map(|tuples| {
                let tuples: Vec<Tuple> =
                    tuples.into_iter().map(|(u, v)| Tuple::pair(u, v)).collect();
                AccessRequest::new(cqap.access(), tuples).expect("valid request")
            }),
    );

    let start = Instant::now();
    let sequential: Vec<Relation> = requests
        .iter()
        .map(|r| reference.answer(r).expect("reference answer"))
        .collect();
    let sequential_time = start.elapsed();

    let start = Instant::now();
    let cold = runtime.serve_batch(&requests).expect("sharded serving");
    let cold_time = start.elapsed();
    let start = Instant::now();
    let warm = runtime.serve_batch(&requests).expect("sharded serving");
    let warm_time = start.elapsed();

    assert_eq!(cold.len(), sequential.len(), "one answer per request");
    assert_eq!(warm.len(), sequential.len(), "one answer per request");
    assert!(
        cold.iter().zip(&sequential).all(|(a, s)| ***a == *s),
        "sharded answers must equal the unsharded reference"
    );
    assert!(
        warm.iter().zip(&sequential).all(|(a, s)| ***a == *s),
        "cached sharded answers must equal the unsharded reference"
    );

    println!(
        "serve {} requests: sequential {:.1} ms | sharded cold {:.1} ms | sharded warm {:.1} ms",
        requests.len(),
        sequential_time.as_secs_f64() * 1e3,
        cold_time.as_secs_f64() * 1e3,
        warm_time.as_secs_f64() * 1e3,
    );

    // Per-shard view: zipf skew shows up as uneven load; the fleet view
    // is the field-wise sum.
    let router = runtime.index();
    for (shard, stats) in router.shard_stats().into_iter().enumerate() {
        println!("shard {shard}: {stats}");
    }
    let fleet = router.stats();
    let front = runtime.stats();
    println!(
        "fleet: {} served across shards; front cache absorbed {} of {} top-level requests",
        fleet.served,
        front.cache_hits + front.dedup_hits,
        front.served,
    );
    println!(
        "All {} sharded answers identical to the unsharded CqapIndex.",
        requests.len()
    );
}
