//! Serving a heavy stream of access requests against a shared index.
//!
//! ```sh
//! cargo run --release --example serving
//! ```
//!
//! The paper's model is *build once, probe heavily*: preprocessing
//! materializes views within a space budget, then a stream of access
//! requests arrives. This example builds the 3-reachability CQAP index of
//! Figure 1 once, generates a zipf-skewed stream of 2 000 requests, and
//! answers it four ways:
//!
//! 1. one at a time with `CqapIndex::answer` (the baseline loop);
//! 2. in parallel on scoped threads (`answer_batch_parallel`);
//! 3. through the full `ServeRuntime` (work-stealing pool + LRU cache);
//! 4. through the runtime again, now with a warm cache.
//!
//! Every strategy is checked to produce bit-for-bit identical answers.

use std::sync::Arc;
use std::time::Instant;

use cqap_suite::decomp::families::pmtds_3reach_fig1;
use cqap_suite::prelude::*;
use cqap_suite::query::workload::zipf_pair_requests;
use cqap_suite::serve::{answer_batch_parallel, default_threads};

const REQUESTS: usize = 2_000;

fn main() {
    // Preprocessing phase: build the index once.
    let (cqap, pmtds) = pmtds_3reach_fig1().expect("paper PMTDs are valid");
    let graph = Graph::skewed(800, 5_000, 8, 250, 7);
    let db = graph.as_path_database(3);
    let index = Arc::new(CqapIndex::build(&cqap, &db, &pmtds).expect("preprocessing succeeds"));
    println!(
        "Index built: {} PMTDs, intrinsic space = {} stored values",
        index.num_pmtds(),
        index.space_used()
    );

    // A zipf-skewed stream: a few hot endpoint pairs dominate, as in real
    // serving traffic. skew = 1.05 ≈ web-like.
    let requests: Vec<AccessRequest> = zipf_pair_requests(&graph, REQUESTS, 1.05, 11)
        .into_iter()
        .map(|(u, v)| AccessRequest::single(cqap.access(), &[u, v]).expect("valid request"))
        .collect();
    let threads = default_threads();
    println!("Serving {REQUESTS} requests on {threads} threads\n");

    // 1. Sequential baseline.
    let start = Instant::now();
    let sequential: Vec<Relation> = requests
        .iter()
        .map(|r| index.answer(r).expect("online phase succeeds"))
        .collect();
    let sequential_time = start.elapsed();
    report("sequential loop", sequential_time, sequential_time);

    // 2. Scoped parallel batch (no cache): pure concurrency speedup.
    let start = Instant::now();
    let parallel =
        answer_batch_parallel(index.as_ref(), &requests, threads).expect("batch succeeds");
    report("parallel batch (no cache)", start.elapsed(), sequential_time);
    assert_eq!(parallel, sequential, "parallel answers must match");

    // 3. The full runtime: pool + LRU answer cache, cold.
    let runtime = ServeRuntime::with_config(
        Arc::clone(&index),
        ServeConfig {
            threads,
            cache_capacity: 1_024,
            ..ServeConfig::default()
        },
    );
    let start = Instant::now();
    let served = runtime.serve_batch(&requests).expect("serving succeeds");
    report("serve runtime (cold cache)", start.elapsed(), sequential_time);
    // Runtime answers arrive as `Arc<Relation>` (shared with the cache).
    assert_eq!(served.len(), sequential.len(), "one answer per request");
    assert!(
        served.iter().zip(&sequential).all(|(a, s)| a.as_ref() == s),
        "runtime answers must match"
    );

    // 4. Same stream again: the zipf head is now cached.
    let start = Instant::now();
    let warm = runtime.serve_batch(&requests).expect("serving succeeds");
    report("serve runtime (warm cache)", start.elapsed(), sequential_time);
    assert_eq!(warm.len(), sequential.len(), "one answer per request");
    assert!(
        warm.iter().zip(&sequential).all(|(a, s)| a.as_ref() == s),
        "cached answers must match"
    );

    let stats = runtime.stats();
    // `cache_misses` counts requests that needed probe work, not probe
    // dispatches: coalesced misses (same access pattern) share one bulk
    // index probe, which is where the cold-batch speedup comes from.
    println!(
        "\nRuntime stats: {stats} ({:.1}% cache/dedup-served)",
        100.0 * (stats.cache_hits + stats.dedup_hits) as f64 / stats.served as f64
    );
    println!("All {REQUESTS} concurrent answers identical to the sequential loop.");
}

fn report(label: &str, elapsed: std::time::Duration, baseline: std::time::Duration) {
    println!(
        "{label:<28} {:>10.1} ms   {:>7.2}x vs sequential",
        elapsed.as_secs_f64() * 1e3,
        baseline.as_secs_f64() / elapsed.as_secs_f64()
    );
}
