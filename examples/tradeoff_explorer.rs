//! Explore the analytic space-time tradeoff curves of Figures 4a and 4b.
//!
//! ```sh
//! cargo run --release --example tradeoff_explorer -- [3|4]
//! ```
//!
//! For the chosen path length k, the example regenerates the combined
//! tradeoff curve the framework derives for k-reachability (the dotted
//! curve of Figure 4a/4b), prints it next to the prior state-of-the-art
//! baseline `S·T^{2/(k−1)} = |D|²`, and renders a small ASCII plot in
//! `(log_{|D|} T, log_{|D|} S)` space.

use cqap_suite::common::Rat;
use cqap_suite::panda::{figure4a_curve, figure4b_curve, goldstein_baseline};

fn main() {
    let k: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(3);
    assert!(k == 3 || k == 4, "supported path lengths: 3 or 4");

    let sigmas: Vec<Rat> = (0..=16).map(|i| Rat::new(i, 8)).collect();
    let curve = if k == 3 {
        figure4a_curve(&sigmas).expect("LP sweep succeeds")
    } else {
        figure4b_curve(&sigmas).expect("LP sweep succeeds")
    };

    println!("{k}-reachability: combined tradeoff vs. prior state of the art\n");
    println!(
        "{:>10} {:>14} {:>14} {:>12}",
        "log S", "log T (ours)", "log T (SOTA)", "improved?"
    );
    for p in &curve.points {
        let baseline = goldstein_baseline(k, p.space);
        println!(
            "{:>10} {:>14} {:>14} {:>12}",
            p.space.to_string(),
            p.time.to_string(),
            baseline.to_string(),
            if p.time < baseline { "yes" } else { "" }
        );
    }

    // ASCII plot: x-axis log T in [0, k-1], y-axis log S in [0, 2].
    println!("\n  log S");
    let width = 48usize;
    let height = 16usize;
    let max_t = (k - 1) as f64;
    for row in (0..=height).rev() {
        let sigma = 2.0 * row as f64 / height as f64;
        let mut line: Vec<char> = vec![' '; width + 1];
        let mark = |line: &mut Vec<char>, t: f64, c: char| {
            if t >= 0.0 && t <= max_t {
                let col = ((t / max_t) * width as f64).round() as usize;
                if line[col] == ' ' || c == '*' {
                    line[col] = c;
                }
            }
        };
        // Baseline: τ = (2 − σ)(k−1)/2.
        mark(&mut line, (2.0 - sigma) * (k as f64 - 1.0) / 2.0, 'o');
        // Ours: nearest sampled point.
        if let Some(p) = curve
            .points
            .iter()
            .min_by(|a, b| {
                (a.space.to_f64() - sigma)
                    .abs()
                    .partial_cmp(&(b.space.to_f64() - sigma).abs())
                    .unwrap()
            })
        {
            mark(&mut line, p.time.to_f64(), '*');
        }
        println!("{sigma:>5.2} |{}", line.into_iter().collect::<String>());
    }
    println!("      +{}", "-".repeat(width + 1));
    println!("       0{:>width$}  log T", max_t, width = width - 1);
    println!("\n  * = this framework (dotted curve in the paper), o = prior state of the art");
}
