//! A k-reachability oracle under a memory budget.
//!
//! ```sh
//! cargo run --release --example reachability_oracle -- [k] [edges]
//! ```
//!
//! Scenario: a service wants to answer "is there a path of exactly k hops
//! from u to v" (e.g. multi-hop connection queries in a social graph) but
//! can only afford a fraction of the quadratic space full materialization
//! would need. The example sweeps the space budget and reports, for each
//! budget, the measured space and the average online work of
//!
//! * the BFS-from-scratch baseline (zero space),
//! * the Goldstein-et-al. recursive structure (the prior state of the art
//!   the paper compares against), and
//! * full materialization (maximum space, constant time).

use cqap_suite::prelude::*;
use cqap_suite::query::workload::graph_pair_requests;

fn main() {
    let mut args = std::env::args().skip(1);
    let k: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(3);
    let edges: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(50_000);

    let graph = Graph::skewed(edges / 5, edges, 25, 800, 11);
    let requests = graph_pair_requests(&graph, 2_000, 3);
    println!(
        "k = {k}, |E| = {}, {} requests per configuration\n",
        graph.len(),
        requests.len()
    );

    let run = |name: &str, space: usize, total_work: u64, positives: usize| {
        println!(
            "{name:<28} space = {space:>10} values   avg online work = {:>10.1}   positive answers = {positives}",
            total_work as f64 / requests.len() as f64
        );
    };

    // Zero-space baseline.
    let bfs = BfsBaseline::build(&graph, k);
    let mut positives = 0;
    for &(u, v) in &requests {
        if bfs.query(u, v) {
            positives += 1;
        }
    }
    run("BFS from scratch", bfs.space_used(), bfs.counter.total(), positives);

    // Budgeted structures.
    for exponent in [1.0f64, 1.25, 1.5, 1.75] {
        let budget = (graph.len() as f64).powf(exponent) as usize;
        let idx = KReachGoldstein::build(&graph, k, budget);
        let mut positives = 0;
        for &(u, v) in &requests {
            if idx.query(u, v) {
                positives += 1;
            }
        }
        run(
            &format!("Goldstein S = |E|^{exponent}"),
            idx.space_used(),
            idx.counter.total(),
            positives,
        );
    }

    // Full materialization.
    let full = FullReachMaterialization::build(&graph, k);
    let mut positives = 0;
    for &(u, v) in &requests {
        if full.query(u, v) {
            positives += 1;
        }
    }
    run(
        "full materialization",
        full.space_used(),
        full.counter.total(),
        positives,
    );

    println!(
        "\nExpectation from the paper: online work shrinks as the budget grows, \
         following S·T^{{2/(k-1)}} ≈ |E|² for the Goldstein structure."
    );
}
