//! Overload control: bounded admission tames an open-loop flash crowd.
//!
//! ```sh
//! cargo run --release --example overload_control
//! ```
//!
//! An **unbounded** serving runtime under open-loop overload has no good
//! failure mode: every arrival is queued, the backlog (and with it the
//! queue-wait tail) grows without limit, and *every* request — including
//! the ones a well-provisioned system would have answered instantly —
//! pays for the burst. Bounded admission trades completeness for
//! predictability: requests beyond the gate's `max_pending` are shed with
//! a typed [`ServeError::Overloaded`] the client can retry, and the
//! requests that *are* admitted see a queue of at most `max_pending`.
//!
//! This example measures that trade directly:
//!
//! 1. the 3-reachability driver index is built once, and its closed-loop
//!    **service capacity** is estimated by timing a warm-up batch;
//! 2. a **flash-crowd arrival schedule** (`flash_crowd_arrivals_ns`) is
//!    generated: a baseline Poisson stream at 2× the estimated capacity
//!    with a mid-run burst window at 10× — offered load the 2-thread
//!    pool cannot possibly absorb;
//! 3. the same schedule is replayed open-loop twice, against two fresh
//!    runtimes with separate metrics sinks: **unbounded** (the legacy
//!    configuration) and **bounded** (`AdmissionConfig::shed`);
//! 4. the per-run `queue_wait` histograms are compared. The example
//!    asserts the bounded run shed work (the gate engaged), **conserved**
//!    every request (`answered + shed == submitted`, and the runtime's
//!    own counters agree), answered bit-for-bit correctly, and kept its
//!    p99 queue wait strictly below the unbounded run's. Both runs also
//!    print the PR-8 tail-attribution report (a flight recorder rides
//!    each sink), so the before/after shows up in the same format
//!    `trace_tails` established: queue-wait domination before, gone (or
//!    greatly diminished) after.

use std::sync::Arc;
use std::time::{Duration, Instant};

use cqap_suite::decomp::families::pmtds_3reach_fig1;
use cqap_suite::obs::{tail_attribution, FlightRecorder, SamplingPolicy, StageId};
use cqap_suite::prelude::*;
use cqap_suite::query::workload::{flash_crowd_arrivals_ns, zipf_pair_requests};

const THREADS: usize = 2;
const REQUESTS: usize = 600;
/// Admitted-work bound for the shed run: enough to keep both workers busy
/// through arrival jitter, small enough that an admitted request never
/// waits behind more than a few probes.
const MAX_PENDING: usize = 2 * THREADS;

fn main() {
    let (cqap, pmtds) = pmtds_3reach_fig1().expect("paper PMTDs are valid");
    let graph = Graph::skewed(500, 3_000, 8, 200, 7);
    let db = graph.as_path_database(3);
    let index = Arc::new(CqapIndex::build(&cqap, &db, &pmtds).expect("preprocessing"));

    let requests: Vec<AccessRequest> = zipf_pair_requests(&graph, REQUESTS, 1.1, 23)
        .into_iter()
        .map(|(u, v)| AccessRequest::single(cqap.access(), &[u, v]).expect("valid request"))
        .collect();
    let reference: Vec<Relation> = requests
        .iter()
        .map(|request| index.answer(request).expect("reference answer"))
        .collect();

    // Closed-loop capacity estimate: time a batch through a throwaway
    // runtime (cold cache, same thread count), then take requests/second.
    // A closed loop self-throttles to service capacity, so this is the
    // rate the pool can actually sustain.
    let capacity_per_sec = {
        let warmup = ServeRuntime::with_config(
            Arc::clone(&index),
            ServeConfig {
                threads: THREADS,
                cache_capacity: 0,
                ..ServeConfig::default()
            },
        );
        let started = Instant::now();
        warmup.serve_batch(&requests).expect("warm-up batch");
        REQUESTS as f64 / started.elapsed().as_secs_f64()
    };
    println!("estimated closed-loop capacity: {capacity_per_sec:.0} req/s over {THREADS} threads");

    // The overload schedule: 2× capacity baseline, with a 10× flash crowd
    // occupying the middle of the run. At 2× the baseline alone already
    // outruns the pool; the burst turns the backlog into a cliff.
    let run_secs = REQUESTS as f64 / (2.0 * capacity_per_sec);
    let arrivals = flash_crowd_arrivals_ns(
        REQUESTS,
        2.0 * capacity_per_sec,
        10.0 * capacity_per_sec,
        run_secs * 0.3,
        run_secs * 0.3,
        41,
    );

    // Replay 1: unbounded (the legacy configuration). Every arrival is
    // queued; nothing is ever refused. A flight recorder rides each
    // sink so the PR-8 tail-attribution report shows the before/after.
    let unbounded_tracer = Arc::new(FlightRecorder::new(1 << 14, SamplingPolicy::Always));
    let unbounded_sink =
        MetricsSink::recording().with_tracer(Arc::clone(&unbounded_tracer));
    let unbounded = ServeRuntime::with_metrics(
        Arc::clone(&index),
        ServeConfig {
            threads: THREADS,
            cache_capacity: 64,
            ..ServeConfig::default()
        },
        unbounded_sink.clone(),
    );
    let (answered, shed) = replay(&unbounded, &requests, &arrivals, &reference);
    assert_eq!(answered, REQUESTS as u64, "unbounded answers everything");
    assert_eq!(shed, 0, "unbounded has nothing to shed");
    drop(unbounded);

    // Replay 2: bounded admission, shed policy. The gate refuses work
    // beyond MAX_PENDING admitted requests; refusals resolve immediately
    // with a typed `Overloaded` error.
    let bounded_tracer = Arc::new(FlightRecorder::new(1 << 14, SamplingPolicy::Always));
    let bounded_sink = MetricsSink::recording().with_tracer(Arc::clone(&bounded_tracer));
    let bounded = ServeRuntime::with_metrics(
        Arc::clone(&index),
        ServeConfig {
            threads: THREADS,
            cache_capacity: 64,
            admission: Some(AdmissionConfig::shed(MAX_PENDING)),
            ..ServeConfig::default()
        },
        bounded_sink.clone(),
    );
    let (answered, shed) = replay(&bounded, &requests, &arrivals, &reference);
    let stats = bounded.stats();
    drop(bounded);

    // Conservation: the client's ledger covers every submission exactly
    // once, and the runtime's counters agree with it.
    assert_eq!(answered + shed, REQUESTS as u64, "every request resolves exactly once");
    assert_eq!(stats.served, REQUESTS as u64);
    assert_eq!(stats.shed, shed, "runtime's shed counter matches the client ledger");
    assert!(shed > 0, "a 2x-capacity flash crowd must engage the gate");
    println!(
        "bounded run: {answered} answered + {shed} shed = {REQUESTS} submitted (conserved)"
    );

    // The payoff: what an *admitted* request experiences. The unbounded
    // run's queue wait compounds with the backlog; the bounded run's is
    // capped by the gate.
    let unbounded_p99 = queue_wait_p99_ns(&unbounded_sink);
    let bounded_p99 = queue_wait_p99_ns(&bounded_sink);
    println!("queue-wait p99: unbounded {unbounded_p99} ns, bounded {bounded_p99} ns");

    // The before/after in the PR-8 tail-attribution format: the same
    // report `trace_tails` uses, over the slowest 20% of each run.
    println!("\n--- tail attribution, unbounded ---");
    println!("{}", tail_attribution(&unbounded_tracer.drain(), 0.2));
    println!("--- tail attribution, bounded (shed {MAX_PENDING}) ---");
    println!("{}", tail_attribution(&bounded_tracer.drain(), 0.2));
    assert!(
        bounded_p99 < unbounded_p99,
        "bounded admission must beat the unbounded queue-wait tail \
         ({bounded_p99} ns vs {unbounded_p99} ns)"
    );
    println!(
        "overload control confirmed: shedding {shed} of {REQUESTS} requests kept the \
         admitted p99 queue wait {:.1}x below unbounded.",
        unbounded_p99 as f64 / bounded_p99.max(1) as f64
    );
}

/// Replays the arrival schedule open-loop against `runtime`: sleep until
/// each request's scheduled arrival, submit without waiting, then wait
/// all tickets and classify. Answered requests are verified bit-for-bit
/// against the sequential reference; returns `(answered, shed)`.
fn replay(
    runtime: &ServeRuntime<CqapIndex>,
    requests: &[AccessRequest],
    arrivals: &[u64],
    reference: &[Relation],
) -> (u64, u64) {
    let started = Instant::now();
    let mut tickets = Vec::with_capacity(requests.len());
    for (request, &at_ns) in requests.iter().zip(arrivals) {
        if let Some(ahead) = Duration::from_nanos(at_ns).checked_sub(started.elapsed()) {
            std::thread::sleep(ahead);
        }
        tickets.push(runtime.submit(request.clone()));
    }
    let (mut answered, mut shed) = (0u64, 0u64);
    for (position, ticket) in tickets.into_iter().enumerate() {
        match ticket.wait() {
            Ok(answer) => {
                assert_eq!(
                    answer.as_ref(),
                    &reference[position],
                    "throttled answer diverged at position {position}"
                );
                answered += 1;
            }
            Err(error) if error.is_overloaded() => shed += 1,
            Err(error) => panic!("unexpected serving error: {error}"),
        }
    }
    (answered, shed)
}

/// The p99 of the `queue_wait` stage recorded in `sink`, in nanoseconds.
fn queue_wait_p99_ns(sink: &MetricsSink) -> u64 {
    let snapshot = sink.snapshot().expect("sink is recording");
    let hist = snapshot.stage(StageId::QueueWait);
    assert!(hist.count > 0, "the run recorded queue waits");
    hist.p99()
}
