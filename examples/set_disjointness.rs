//! Posting-list intersection with a space budget (k-set disjointness).
//!
//! ```sh
//! cargo run --release --example set_disjointness
//! ```
//!
//! Scenario: a search index stores one posting list (set of document ids)
//! per term and must answer "do these terms co-occur in some document"
//! (Boolean 2-set disjointness) and "which documents contain all k terms"
//! (k-set intersection). The example builds the heavy/light structure of
//! Section 6.1 at several space budgets and reports the measured
//! space/online-work tradeoff, which should follow `S · T² ≈ N²`.

use cqap_suite::prelude::*;
use cqap_suite::query::workload::set_tuple_requests;

fn main() {
    // A Zipf-ish family: a few huge posting lists, many small ones.
    let family = SetFamily::zipf(2_000, 200_000, 20_000, 1.0, 13);
    let n = family.len();
    println!("posting lists: {} sets, N = {n} membership pairs\n", family.num_sets);

    let pair_queries: Vec<(Val, Val)> = set_tuple_requests(&family, 2, 4_000, 5)
        .into_iter()
        .map(|t| (t.get(0), t.get(1)))
        .collect();

    println!("Boolean 2-set disjointness:");
    println!("{:>14} {:>14} {:>14} {:>16}", "budget", "space", "avg work", "S·T² / N²");
    for exponent in [0.5f64, 0.75, 1.0, 1.25, 1.5] {
        let budget = (n as f64).powf(exponent) as usize;
        let idx = SetDisjointnessIndex::build(&family, budget);
        let mut intersecting = 0usize;
        for &(a, b) in &pair_queries {
            if idx.intersects(a, b) {
                intersecting += 1;
            }
        }
        let avg_work = idx.counter.total() as f64 / pair_queries.len() as f64;
        let product = (idx.space_used().max(1) as f64) * avg_work * avg_work;
        println!(
            "{:>14} {:>14} {:>14.1} {:>16.3}",
            budget,
            idx.space_used(),
            avg_work,
            product / (n as f64 * n as f64)
        );
        let _ = intersecting;
    }

    println!("\n3-term intersection (enumeration):");
    let idx = SetDisjointnessIndex::build(&family, n);
    let triples = set_tuple_requests(&family, 3, 5, 9);
    for t in &triples {
        let sets = [t.get(0), t.get(1), t.get(2)];
        let common = idx.intersection(&sets);
        println!(
            "  terms {:?} share {} documents{}",
            sets,
            common.len(),
            if common.is_empty() { "" } else { " (non-disjoint)" }
        );
    }
}
