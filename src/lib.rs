//! # cqap-suite
//!
//! Umbrella crate for the reproduction of *"Space-Time Tradeoffs for
//! Conjunctive Queries with Access Patterns"* (Zhao, Deep, Koutris — PODS
//! 2023). It re-exports the whole workspace under one roof so the examples,
//! the integration tests and downstream users can depend on a single crate:
//!
//! * [`common`] — values, tuples, variable sets, exact rationals, hashing.
//! * [`relation`] — relations, schemas, degree constraints, operators,
//!   heavy/light splits.
//! * [`query`] — hypergraphs, CQAPs, fractional edge covers, query families,
//!   workload generators.
//! * [`decomp`] — tree decompositions and PMTDs.
//! * [`entropy`] — polymatroids, (joint) Shannon-flow inequalities, the
//!   exact-rational LP, and tradeoff computation/verification.
//! * [`yannakakis`] — the naive evaluator and Online Yannakakis.
//! * [`delta`] — delta batches, net-effect computation, and the
//!   [`ApplyDelta`](delta::ApplyDelta) maintenance seam.
//! * [`obs`] — std-only observability: lock-free counters/gauges and
//!   log-bucketed latency histograms behind a
//!   [`MetricsSink`](obs::MetricsSink), with Prometheus-text and
//!   bench-JSON export.
//! * [`panda`] — 2-phase disjunctive rules, the framework driver, and the
//!   Table 1 / Figure 4 analysis entry points.
//! * [`indexes`] — the concrete budget-parameterized index structures and
//!   baselines used by the empirical experiments.
//! * [`serve`] — the batched, concurrent request-serving runtime: the
//!   [`BatchAnswer`](serve::BatchAnswer) trait every index family
//!   implements, a work-stealing thread pool, an `Arc`-valued LRU answer
//!   cache with in-flight probe sharing, and
//!   [`ServeRuntime`](serve::ServeRuntime) — overload-safe via bounded
//!   admission, request deadlines, load shedding and degrade mode.
//! * [`shard`] — hash-sharded serving: [`ShardedIndex`](shard::ShardedIndex)
//!   partitions the database by routing-variable hash into independently
//!   built `CqapIndex` shards, and [`ShardRouter`](shard::ShardRouter)
//!   scatter-gathers requests across per-shard runtimes.
//! * [`store`] — the tiered storage backend:
//!   [`StoredIndex`](store::StoredIndex) answers from disk-resident
//!   S-views (sorted runs with sparse fence indexes), and
//!   [`TieredShardedIndex`](store::TieredShardedIndex) places each hash
//!   shard hot (in memory) or cold (on disk) under a budget- and
//!   traffic-driven [`PlacementPolicy`](store::PlacementPolicy).
//!
//! ## Quick start
//!
//! ```
//! use cqap_suite::prelude::*;
//!
//! // The 3-reachability CQAP and the PMTDs of Figure 1.
//! let (cqap, pmtds) = cqap_suite::decomp::families::pmtds_3reach_fig1().unwrap();
//!
//! // A small synthetic graph, loaded as the three path relations.
//! let graph = Graph::random(50, 200, 42);
//! let db = graph.as_path_database(3);
//!
//! // Preprocessing: materialize the S-views of every PMTD.
//! let index = CqapIndex::build(&cqap, &db, &pmtds).unwrap();
//!
//! // Online: ask whether vertex 0 reaches vertex 1 by a path of length 3.
//! let request = AccessRequest::single(cqap.access(), &[0, 1]).unwrap();
//! let answer = index.answer(&request).unwrap();
//! assert_eq!(answer, index.answer_from_scratch(&request).unwrap());
//! ```

pub use cqap_common as common;
pub use cqap_decomp as decomp;
pub use cqap_delta as delta;
pub use cqap_entropy as entropy;
pub use cqap_indexes as indexes;
pub use cqap_obs as obs;
pub use cqap_panda as panda;
pub use cqap_query as query;
pub use cqap_relation as relation;
pub use cqap_serve as serve;
pub use cqap_shard as shard;
pub use cqap_store as store;
pub use cqap_yannakakis as yannakakis;

/// The most commonly used items, for glob import in examples and tests.
pub mod prelude {
    pub use cqap_common::{Rat, Tuple, Val, Var, VarSet};
    pub use cqap_decomp::{Pmtd, TreeDecomposition, ViewKind};
    pub use cqap_entropy::tradeoff::{Stats, SymbolicTradeoff};
    pub use cqap_entropy::RuleShape;
    pub use cqap_indexes::{
        BfsBaseline, FullReachMaterialization, HierarchicalIndex, KReachGoldstein,
        SetDisjointnessIndex, SquareIndex, TriangleIndex, TwoReachIndex,
    };
    pub use cqap_delta::{ApplyDelta, DeltaBatch};
    pub use cqap_obs::{MetricsSink, MetricsSnapshot};
    pub use cqap_panda::{CqapIndex, TwoPhaseRule};
    pub use cqap_query::workload::{Graph, SetFamily};
    pub use cqap_query::{AccessRequest, ConjunctiveQuery, Cqap, Hypergraph};
    pub use cqap_relation::{Database, Relation, Schema};
    pub use cqap_serve::{
        AdmissionConfig, AdmissionPolicy, BatchAnswer, RetryPolicy, ServeConfig, ServeError,
        ServeRuntime,
    };
    pub use cqap_shard::{ShardRouter, ShardRouterConfig, ShardSpec, ShardedIndex};
    pub use cqap_store::{PlacementPolicy, ShardTier, StoredIndex, TieredShardedIndex};
    pub use cqap_yannakakis::{naive_answer, OnlineYannakakis};
}
