//! Test suite for `cqap-obs`:
//!
//! * a property test checking the histogram's quantile estimates
//!   against the exact quantiles of the recorded sample — the estimate
//!   must land in the same bucket, i.e. within one bucket width;
//! * a concurrent multi-thread recording test plus a per-worker
//!   merge test;
//! * a golden test pinning the Prometheus text exposition byte-for-byte
//!   (regenerate with `BLESS_GOLDEN=1 cargo test -p cqap-obs`), plus a
//!   structural validity check of the exposition grammar.

use std::sync::Arc;
use std::thread;

use cqap_obs::{
    to_chrome_trace, CounterId, FlightRecorder, GaugeId, HistogramSnapshot, LatencyHistogram,
    MetricsSink, Recorder, SamplingPolicy, StageId, TraceEvent, TraceId, TraceStage,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Exact `q`-quantile of a sample by the nearest-rank definition used
/// by `HistogramSnapshot::quantile_bounds`.
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let n = sorted.len() as u64;
    let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
    sorted[(rank - 1) as usize]
}

/// Draws a latency sample from one of three shapes: uniform,
/// heavy-tailed (uniform-of-exponents), or a bimodal fast-path /
/// slow-outlier mixture reaching past the histogram's overflow bucket.
fn draw_sample(rng: &mut StdRng, dist: u8) -> u64 {
    match dist % 3 {
        0 => rng.random_range(0u64..10_000_000),
        1 => {
            let exp = rng.random_range(0u32..36);
            rng.random_range(1u64..2 + (1u64 << exp))
        }
        _ => {
            if rng.random_range(0u32..100) < 95 {
                rng.random_range(200u64..2_000)
            } else {
                rng.random_range(1_000_000_000u64..2_000_000_000_000)
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// For every distribution shape and every headline quantile, the
    /// bucketed estimate lies in the bucket guaranteed to contain the
    /// exact sample quantile, so its absolute error is at most one
    /// bucket width.
    #[test]
    fn quantile_estimate_within_one_bucket_width(
        seed in 0u64..1_000_000,
        len in 1usize..500,
        dist in 0u8..3,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let hist = LatencyHistogram::new();
        let mut samples = Vec::with_capacity(len);
        for _ in 0..len {
            let v = draw_sample(&mut rng, dist);
            samples.push(v);
            hist.record_ns(v);
        }
        samples.sort_unstable();
        let snap = hist.snapshot();
        prop_assert_eq!(snap.count, len as u64);
        prop_assert_eq!(snap.min, samples[0]);
        prop_assert_eq!(snap.max, *samples.last().unwrap());

        for q in [0.0, 0.5, 0.95, 0.99, 0.999, 1.0] {
            let exact = exact_quantile(&samples, q);
            let (lo, hi) = snap.quantile_bounds(q);
            prop_assert!(
                lo <= exact && exact < hi,
                "exact q={} quantile {} outside bucket bounds [{}, {})",
                q, exact, lo, hi
            );
            let est = snap.quantile(q);
            prop_assert!(lo <= est && est < hi);
            prop_assert!(
                est.abs_diff(exact) <= hi - lo,
                "q={}: estimate {} vs exact {} differs by more than bucket width {}",
                q, est, exact, hi - lo
            );
        }
    }
}

/// Many threads hammering one shared recorder through cloned sinks:
/// nothing is lost, and the queue-depth gauge returns to zero.
#[test]
fn concurrent_recording_loses_nothing() {
    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 10_000;
    let sink = MetricsSink::recording();
    thread::scope(|scope| {
        for t in 0..THREADS {
            let sink = sink.clone();
            scope.spawn(move || {
                for i in 0..PER_THREAD {
                    sink.gauge_add(GaugeId::QueueDepth, 1);
                    sink.observe_ns(StageId::BackendProbe, (t + 1) * 1_000 + i % 7);
                    sink.add(CounterId::SegmentBytesRead, 64);
                    sink.incr(CounterId::SegmentReads);
                    sink.shard_served(t as usize % 4);
                    sink.gauge_add(GaugeId::QueueDepth, -1);
                }
            });
        }
    });
    let snap = sink.snapshot().unwrap();
    let total = THREADS * PER_THREAD;
    assert_eq!(snap.stage(StageId::BackendProbe).count, total);
    assert_eq!(
        snap.stage(StageId::BackendProbe).buckets.iter().sum::<u64>(),
        total
    );
    assert_eq!(snap.counter(CounterId::SegmentReads), total);
    assert_eq!(snap.counter(CounterId::SegmentBytesRead), total * 64);
    assert_eq!(snap.gauge(GaugeId::QueueDepth), 0);
    assert_eq!(snap.shard_served.iter().sum::<u64>(), total);
    assert_eq!(snap.shard_served.len(), 4);
    assert_eq!(snap.stage(StageId::BackendProbe).min, 1_000);
    assert_eq!(snap.stage(StageId::BackendProbe).max, THREADS * 1_000 + 6);
}

/// Per-worker histograms merged into a global one are indistinguishable
/// from recording everything into the global directly — both at the
/// atomic level (`merge_from`) and the snapshot level (`merge`).
#[test]
fn per_worker_merge_equals_direct_recording() {
    const WORKERS: u64 = 4;
    let locals: Vec<Arc<LatencyHistogram>> =
        (0..WORKERS).map(|_| Arc::new(LatencyHistogram::new())).collect();
    let reference = LatencyHistogram::new();
    let mut rng = StdRng::seed_from_u64(42);
    let mut per_worker_values: Vec<Vec<u64>> = vec![Vec::new(); WORKERS as usize];
    for i in 0..20_000u64 {
        let v = draw_sample(&mut rng, (i % 3) as u8);
        per_worker_values[(i % WORKERS) as usize].push(v);
        reference.record_ns(v);
    }
    thread::scope(|scope| {
        for (hist, values) in locals.iter().zip(&per_worker_values) {
            let hist = Arc::clone(hist);
            scope.spawn(move || {
                for &v in values {
                    hist.record_ns(v);
                }
            });
        }
    });

    // Atomic-level merge into a fresh global histogram.
    let global = LatencyHistogram::new();
    for local in &locals {
        global.merge_from(&local.snapshot());
    }
    assert_eq!(global.snapshot(), reference.snapshot());

    // Snapshot-level merge.
    let mut merged = HistogramSnapshot::empty();
    for local in &locals {
        merged.merge(&local.snapshot());
    }
    assert_eq!(merged, reference.snapshot());
}

/// Builds the deterministic snapshot the golden exposition is pinned
/// to: two stages with known observations, every counter touched, a
/// live queue depth, and skewed two-shard traffic.
fn golden_recorder() -> Arc<Recorder> {
    let recorder = Arc::new(Recorder::new());
    let sink = MetricsSink::attached(Arc::clone(&recorder));
    sink.observe_ns(StageId::CacheLookup, 120);
    sink.observe_ns(StageId::CacheLookup, 150);
    sink.observe_ns(StageId::CacheLookup, 151);
    sink.observe_ns(StageId::BackendProbe, 5_000);
    sink.observe_ns(StageId::BackendProbe, 250_000_000_000); // overflow bucket
    for (i, counter) in CounterId::ALL.into_iter().enumerate() {
        sink.add(counter, (i as u64 + 1) * 10);
    }
    sink.gauge_add(GaugeId::QueueDepth, 3);
    sink.gauge_set(GaugeId::HotResidentBytes, 262_144);
    sink.gauge_set(GaugeId::ColdResidentBytes, 16_384);
    sink.gauge_set(GaugeId::ColdDiskBytes, 65_536);
    sink.shard_served(0);
    sink.shard_served(0);
    sink.shard_served(0);
    sink.shard_served(1);
    recorder
}

/// The exposition output is pinned byte-for-byte against
/// `golden_prometheus.txt`. Run with `BLESS_GOLDEN=1` to regenerate
/// the file after an intentional format change.
#[test]
fn prometheus_exposition_matches_golden() {
    let rendered = golden_recorder().snapshot().to_prometheus();
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden_prometheus.txt");
    if std::env::var_os("BLESS_GOLDEN").is_some() {
        std::fs::write(path, &rendered).expect("write golden file");
        return;
    }
    let expected = std::fs::read_to_string(path).expect(
        "golden file missing; regenerate with BLESS_GOLDEN=1 cargo test -p cqap-obs",
    );
    assert_eq!(
        rendered, expected,
        "Prometheus exposition drifted from golden_prometheus.txt; \
         if intentional, regenerate with BLESS_GOLDEN=1"
    );
}

/// Structural validity of the exposition: every sample line parses as
/// `name{{labels}} value`, histogram buckets are cumulative and end at
/// `+Inf == count`, and every TYPE declaration precedes its samples.
#[test]
fn prometheus_exposition_is_well_formed() {
    let text = golden_recorder().snapshot().to_prometheus();
    let mut last_bucket: Option<(String, u64)> = None;
    let mut counts = std::collections::HashMap::new();
    let mut infs = std::collections::HashMap::new();
    for line in text.lines() {
        if line.starts_with('#') {
            assert!(
                line.starts_with("# HELP ") || line.starts_with("# TYPE "),
                "bad comment line: {line}"
            );
            continue;
        }
        let (metric, value) = line.rsplit_once(' ').expect("sample line has a value");
        value.parse::<f64>().unwrap_or_else(|_| panic!("bad value in: {line}"));
        let name = metric.split('{').next().unwrap();
        assert!(
            !name.is_empty()
                && name
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
            "bad metric name in: {line}"
        );
        if let Some(labels) = metric.strip_prefix(name).and_then(|r| r.strip_prefix('{')) {
            let labels = labels.strip_suffix('}').expect("label block closes");
            for pair in labels.split(',') {
                let (k, v) = pair.split_once('=').expect("label is key=value");
                assert!(!k.is_empty() && v.starts_with('"') && v.ends_with('"'));
            }
        }
        if name == "cqap_stage_duration_nanoseconds_bucket" {
            let stage = metric
                .split("stage=\"")
                .nth(1)
                .and_then(|r| r.split('"').next())
                .expect("bucket line has a stage label")
                .to_string();
            let cum: u64 = value.parse().unwrap();
            if let Some((prev_stage, prev)) = &last_bucket {
                if *prev_stage == stage {
                    assert!(cum >= *prev, "buckets must be cumulative: {line}");
                }
            }
            if metric.contains("le=\"+Inf\"") {
                infs.insert(stage.clone(), cum);
            }
            last_bucket = Some((stage, cum));
        } else if name == "cqap_stage_duration_nanoseconds_count" {
            let stage = metric
                .split("stage=\"")
                .nth(1)
                .and_then(|r| r.split('"').next())
                .unwrap()
                .to_string();
            counts.insert(stage, value.parse::<u64>().unwrap());
        }
    }
    assert!(!counts.is_empty(), "exposition contains stage histograms");
    for (stage, count) in &counts {
        assert_eq!(
            infs.get(stage),
            Some(count),
            "+Inf bucket must equal _count for stage {stage}"
        );
    }
}

/// The bench-JSON export round-trips through the criterion shim's own
/// baseline parser shape: label + numeric fields per record.
#[test]
fn bench_json_contains_stage_records() {
    let snap = golden_recorder().snapshot();
    let json = snap.to_bench_json();
    assert!(json.starts_with('[') && json.trim_end().ends_with(']'));
    assert!(json.contains("\"label\": \"stage/cache_lookup\""));
    assert!(json.contains("\"label\": \"stage/backend_probe\""));
    assert!(json.contains("\"samples\": 3"));
    assert!(json.contains("\"p99_ns\""));
    assert!(json.contains("\"p999_ns\""));
    // No empty stages leak into the dump.
    assert!(!json.contains("stage/coalesce"));
}

/// `MetricsSnapshot::delta` recovers exactly the activity between two
/// cumulative snapshots: counters/buckets subtract, gauges carry the
/// signed change, and the delta histogram matches one that recorded
/// only the window's observations (bucket-for-bucket).
#[test]
fn snapshot_delta_isolates_the_window() {
    let sink = MetricsSink::recording();
    sink.observe_ns(StageId::BackendProbe, 4_000);
    sink.observe_ns(StageId::BackendProbe, 900);
    sink.add(CounterId::SegmentReads, 7);
    sink.gauge_add(GaugeId::QueueDepth, 5);
    sink.shard_served(0);
    let earlier = sink.snapshot().unwrap();

    sink.observe_ns(StageId::BackendProbe, 64_000);
    sink.observe_ns(StageId::BackendProbe, 120_000);
    sink.observe_ns(StageId::DeltaApply, 1_000_000);
    sink.add(CounterId::SegmentReads, 3);
    sink.gauge_add(GaugeId::QueueDepth, -2);
    sink.shard_served(0);
    sink.shard_served(1);
    let later = sink.snapshot().unwrap();

    let delta = later.delta(&earlier);
    assert_eq!(delta.counter(CounterId::SegmentReads), 3);
    assert_eq!(delta.gauge(GaugeId::QueueDepth), -2);
    assert_eq!(delta.shard_served, vec![1, 1]);
    assert_eq!(delta.stage(StageId::BackendProbe).count, 2);
    assert_eq!(delta.stage(StageId::DeltaApply).count, 1);
    assert_eq!(delta.stage(StageId::CacheLookup).count, 0);

    // The window's histogram matches a histogram fed only the window.
    let window_only = LatencyHistogram::new();
    window_only.record_ns(64_000);
    window_only.record_ns(120_000);
    let expected = window_only.snapshot();
    let got = delta.stage(StageId::BackendProbe);
    assert_eq!(got.buckets, expected.buckets);
    assert_eq!(got.sum, expected.sum);
    // min/max are bucket-resolution reconstructions, bounded by the
    // window's containing buckets.
    let (lo, _) = cqap_obs::bucket_range(cqap_obs::bucket_of(64_000));
    let (_, hi) = cqap_obs::bucket_range(cqap_obs::bucket_of(120_000));
    assert!(got.min >= lo && got.min <= 64_000);
    assert!(got.max >= 120_000 && got.max < hi);
    // An empty window is empty.
    let none = later.delta(&later);
    assert!(none.stage(StageId::BackendProbe).is_empty());
    assert_eq!(none.counter(CounterId::SegmentReads), 0);
}

/// Deterministic event set for the Chrome-trace golden file.
fn golden_trace_events() -> Vec<TraceEvent> {
    let mk = |trace_id, stage, shard, t0, t1, payload| TraceEvent {
        trace_id,
        stage,
        shard,
        t_start_ns: t0,
        t_end_ns: t1,
        payload,
    };
    vec![
        mk(1, TraceStage::QueueWait, 0, 1_000, 4_500, 0),
        mk(1, TraceStage::BackendProbe, 2, 4_500, 61_000, 0),
        mk(1, TraceStage::SegmentRead, 2, 9_000, 21_500, 4_096),
        mk(1, TraceStage::OverlayProbe, 2, 22_000, 30_000, 12),
        mk(0, TraceStage::Compaction, 2, 10_000, 55_000, 0),
        mk(1, TraceStage::TicketDelivery, 0, 61_000, 62_000, 0),
        mk(1, TraceStage::Request, 0, 1_000, 62_000, 61_000),
    ]
}

/// The Chrome trace-event export is pinned byte-for-byte against
/// `golden_chrome_trace.json` (regenerate with `BLESS_GOLDEN=1`).
#[test]
fn chrome_trace_matches_golden() {
    let rendered = to_chrome_trace(&golden_trace_events());
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden_chrome_trace.json");
    if std::env::var_os("BLESS_GOLDEN").is_some() {
        std::fs::write(path, &rendered).expect("write golden file");
        return;
    }
    let expected = std::fs::read_to_string(path).expect(
        "golden file missing; regenerate with BLESS_GOLDEN=1 cargo test -p cqap-obs",
    );
    assert_eq!(
        rendered, expected,
        "Chrome trace export drifted from golden_chrome_trace.json; \
         if intentional, regenerate with BLESS_GOLDEN=1"
    );
}

/// A full request lifecycle recorded through the sink seam round-trips
/// into a drained trace: span laps, leaf events under a `TraceScope`,
/// and the committed root, all sharing one trace id.
#[test]
fn sink_lifecycle_round_trips_through_the_ring() {
    let tracer = Arc::new(FlightRecorder::new(64, SamplingPolicy::Always));
    let sink = MetricsSink::recording().with_tracer(Arc::clone(&tracer));
    let shard_sink = sink.with_shard_label(3);

    let id = sink.trace_begin();
    assert!(id.is_sampled());
    let started = std::time::Instant::now();
    let mut span = cqap_obs::RequestSpan::begin_traced(&shard_sink, id);
    {
        let _scope = cqap_obs::trace::TraceScope::enter(id);
        let mark = shard_sink.trace_mark();
        assert!(mark.is_some(), "sampled trace arms the leaf clock");
        shard_sink.trace_leaf(mark, TraceStage::SegmentRead, 512);
    }
    span.lap(StageId::BackendProbe);
    span.lap(StageId::TicketDelivery);
    sink.trace_finish(
        id,
        u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX),
    );

    let events = tracer.drain();
    let of_id: Vec<&TraceEvent> = events.iter().filter(|e| e.trace_id == id.get()).collect();
    let stages: Vec<TraceStage> = of_id.iter().map(|e| e.stage).collect();
    assert!(stages.contains(&TraceStage::SegmentRead));
    assert!(stages.contains(&TraceStage::BackendProbe));
    assert!(stages.contains(&TraceStage::TicketDelivery));
    assert!(stages.contains(&TraceStage::Request));
    // The shard label sticks to events from the labelled clone.
    assert!(of_id
        .iter()
        .filter(|e| e.stage == TraceStage::BackendProbe)
        .all(|e| e.shard == 3));
    // The histograms recorded the same laps.
    let snap = sink.snapshot().unwrap();
    assert_eq!(snap.stage(StageId::BackendProbe).count, 1);
    assert_eq!(snap.stage(StageId::TicketDelivery).count, 1);
    // Outside the scope, unsampled leaf marks stay disarmed.
    assert!(shard_sink.trace_mark().is_none());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Ring-buffer wraparound under concurrent writers: N threads race
    /// M events each into a ring smaller than the total. The drained
    /// set must be a consistent subset of what was written — every
    /// event's fields match exactly one written event (no torn mixes
    /// of two writes) — and on sequential overflow the newest events
    /// win (checked in the single-writer branch below).
    #[test]
    fn ring_wraparound_under_concurrent_writers(
        threads in 1usize..5,
        per_thread in 1u64..300,
        capacity in 1usize..48,
    ) {
        let fr = Arc::new(FlightRecorder::new(capacity, SamplingPolicy::Always));
        std::thread::scope(|scope| {
            for t in 0..threads {
                let fr = Arc::clone(&fr);
                scope.spawn(move || {
                    let id = TraceId::from_raw(t as u64 + 1);
                    for i in 0..per_thread {
                        // Fields are a function of (thread, i), so a
                        // torn slot (fields from two writes) cannot
                        // satisfy the consistency check below.
                        let t0 = (t as u64 + 1) * 1_000_000 + i * 10;
                        fr.record(id, TraceStage::SegmentRead, t as u16, t0, t0 + 5, t0 ^ 0xABCD);
                    }
                });
            }
        });
        let events = fr.drain();
        prop_assert!(events.len() <= capacity);
        let total_written = threads as u64 * per_thread;
        let min_survivors = std::cmp::min(capacity as u64, total_written)
            .saturating_sub(fr.contended_drops());
        prop_assert!(
            events.len() as u64 >= min_survivors,
            "{} events drained, expected at least {} (cap {}, written {}, contended {})",
            events.len(), min_survivors, capacity, total_written, fr.contended_drops()
        );
        for ev in &events {
            // Reconstruct the (thread, i) this event claims to be and
            // verify every field agrees — a torn event fails here.
            prop_assert_eq!(ev.stage, TraceStage::SegmentRead);
            let t = ev.trace_id.checked_sub(1).expect("trace id >= 1");
            prop_assert!(t < threads as u64);
            let t0 = ev.t_start_ns;
            let i = t0.checked_sub((t + 1) * 1_000_000).expect("start offset") / 10;
            prop_assert!(i < per_thread);
            prop_assert_eq!(t0 % 10, 0);
            prop_assert_eq!(ev.shard as u64, t);
            prop_assert_eq!(ev.t_end_ns, t0 + 5);
            prop_assert_eq!(ev.payload, t0 ^ 0xABCD);
        }
        // No event is drained twice (each written event is unique).
        let mut seen: Vec<(u64, u64)> = events.iter().map(|e| (e.trace_id, e.t_start_ns)).collect();
        seen.sort_unstable();
        seen.dedup();
        prop_assert_eq!(seen.len(), events.len(), "drained events are distinct");

        // Single-writer overflow is deterministic: newest wins.
        if threads == 1 && per_thread > capacity as u64 {
            let newest_start = 1_000_000 + (per_thread - 1) * 10;
            prop_assert!(
                events.iter().any(|e| e.t_start_ns == newest_start),
                "the newest event must survive overflow"
            );
        }
    }
}
