//! The flight recorder: lock-free per-request tracing.
//!
//! A [`FlightRecorder`] is a fixed-capacity ring buffer of compact
//! trace events written with relaxed atomics — the warm serving path
//! pays a handful of atomic stores per sampled event and never
//! allocates (every event is a fixed-size slot of six `AtomicU64`s;
//! unsampled requests pay one relaxed counter increment at most).
//! One request's events share a `trace_id` allocated at submission,
//! so a drained trace crosses the whole stack: router → shard runtime
//! → pool worker → cold store.
//!
//! Each slot is a seqlock: a writer claims the slot by CAS-ing its
//! sequence word to an odd *ticket* value, fills the payload words
//! with relaxed stores, and releases the even successor. A reader
//! ([`drain`](FlightRecorder::drain)) validates the sequence word
//! around its payload reads, so a torn (concurrently overwritten)
//! slot is detected and skipped — the drained set is always a
//! consistent subset of the events actually written, and on overflow
//! newer events overwrite older ones (newest wins).
//!
//! Sampling is a [`SamplingPolicy`]: record every request, one in N,
//! or — threshold mode — record everything into the ring but *commit*
//! a trace (write its root [`TraceStage::Request`] event) only when
//! the request's total latency exceeds a live quantile estimate from
//! the recorder's own log-bucketed total-latency histogram (the same
//! [`LatencyHistogram`] machinery the metrics exposition uses).
//! Uncommitted events simply age out of the ring.
//!
//! Drained events export as Chrome trace-event JSON
//! ([`to_chrome_trace`]) loadable in `chrome://tracing` / Perfetto,
//! and [`tail_attribution`] groups the slowest fraction of committed
//! traces by dominant stage and co-occurring store-side markers
//! ("compaction overlapped this request", "probe paid a pending
//! overlay").

use std::cell::Cell;
use std::fmt;
use std::fmt::Write as _;
use std::sync::atomic::{fence, AtomicU64, Ordering};
use std::time::Instant;

use crate::hist::LatencyHistogram;
use crate::sink::StageId;

/// The identity of one request's trace, allocated by
/// [`FlightRecorder::begin`].
///
/// Id `0` is the "not sampled" sentinel ([`TraceId::NONE`]): events
/// recorded against it are dropped unless their stage is a background
/// stage (see [`TraceStage::is_background`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceId(u64);

impl TraceId {
    /// The unsampled sentinel: laps against it record nothing.
    pub const NONE: TraceId = TraceId(0);

    /// Whether this id belongs to a sampled request.
    #[inline]
    pub fn is_sampled(self) -> bool {
        self.0 != 0
    }

    /// The raw id value (0 for [`NONE`](Self::NONE)).
    #[inline]
    pub fn get(self) -> u64 {
        self.0
    }

    /// Rebuilds a trace id from its raw value (0 becomes
    /// [`NONE`](Self::NONE)).
    #[inline]
    pub fn from_raw(raw: u64) -> Self {
        TraceId(raw)
    }
}

/// What a trace event measures.
///
/// The first nine variants mirror [`StageId`] one-to-one (a
/// [`RequestSpan`](crate::RequestSpan) lap writes both the stage
/// histogram and, when traced, a ring event). The remainder are
/// trace-only: the per-request root span and the store-side events
/// that attribute a slow probe to its physical cause.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(u8)]
pub enum TraceStage {
    /// Time queued in the work-stealing pool (mirrors
    /// [`StageId::QueueWait`]).
    QueueWait,
    /// Answer-cache / in-flight lookup (mirrors
    /// [`StageId::CacheLookup`]).
    CacheLookup,
    /// Batch coalescing (mirrors [`StageId::Coalesce`]).
    Coalesce,
    /// The backend index probe (mirrors [`StageId::BackendProbe`]).
    BackendProbe,
    /// Per-shard answer union (mirrors [`StageId::AnswerUnion`]).
    AnswerUnion,
    /// Ticket publication / waiter fan-out (mirrors
    /// [`StageId::TicketDelivery`]).
    TicketDelivery,
    /// Delta-batch application (mirrors [`StageId::DeltaApply`]).
    DeltaApply,
    /// Stored-view compaction (mirrors [`StageId::Compaction`]).
    Compaction,
    /// Time blocked at the admission gate before acceptance (mirrors
    /// [`StageId::AdmissionWait`]).
    AdmissionWait,
    /// The whole-request root span, written at
    /// [`FlightRecorder::finish`] when the sampling policy commits
    /// the trace. A trace without a root is incomplete (or rejected
    /// by threshold sampling) and is ignored by the reports.
    Request,
    /// One contiguous cold-store segment read; the payload is the
    /// byte count.
    SegmentRead,
    /// A stored-view probe that had to merge a pending (uncompacted)
    /// overlay; the payload is the overlay entry count.
    OverlayProbe,
}

impl TraceStage {
    /// Number of trace stages.
    pub const COUNT: usize = 12;

    /// Every trace stage, in `repr` order.
    pub const ALL: [TraceStage; Self::COUNT] = [
        TraceStage::QueueWait,
        TraceStage::CacheLookup,
        TraceStage::Coalesce,
        TraceStage::BackendProbe,
        TraceStage::AnswerUnion,
        TraceStage::TicketDelivery,
        TraceStage::DeltaApply,
        TraceStage::Compaction,
        TraceStage::AdmissionWait,
        TraceStage::Request,
        TraceStage::SegmentRead,
        TraceStage::OverlayProbe,
    ];

    /// Stable snake_case name (matches [`StageId::name`] for the
    /// mirrored stages).
    pub fn name(self) -> &'static str {
        match self {
            TraceStage::QueueWait => "queue_wait",
            TraceStage::CacheLookup => "cache_lookup",
            TraceStage::Coalesce => "coalesce",
            TraceStage::BackendProbe => "backend_probe",
            TraceStage::AnswerUnion => "answer_union",
            TraceStage::TicketDelivery => "ticket_delivery",
            TraceStage::DeltaApply => "delta_apply",
            TraceStage::Compaction => "compaction",
            TraceStage::AdmissionWait => "admission_wait",
            TraceStage::Request => "request",
            TraceStage::SegmentRead => "segment_read",
            TraceStage::OverlayProbe => "overlay_probe",
        }
    }

    /// Background stages record against [`TraceId::NONE`] too:
    /// maintenance work (delta application, compaction) is not tied
    /// to one request but still lands in the ring, so the tail report
    /// can detect wall-clock overlap with slow requests.
    #[inline]
    pub fn is_background(self) -> bool {
        matches!(self, TraceStage::DeltaApply | TraceStage::Compaction)
    }

    fn from_u8(raw: u8) -> Option<TraceStage> {
        Self::ALL.get(raw as usize).copied()
    }
}

impl From<StageId> for TraceStage {
    /// The mirrored stages share `repr` indexes with [`StageId::ALL`].
    fn from(stage: StageId) -> Self {
        TraceStage::ALL[stage as usize]
    }
}

/// When the flight recorder assigns a trace id to a request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SamplingPolicy {
    /// Every request is traced.
    Always,
    /// One request in `n` is traced (relaxed round-robin across all
    /// submitting threads; `n = 0` behaves like `n = 1`).
    OneInN(u64),
    /// Every request writes events, but a trace is *committed* (its
    /// root event written, making it visible to the reports) only
    /// when its total latency reaches the live `quantile` estimate of
    /// the recorder's own total-latency histogram. Until enough
    /// requests have finished for the estimate to warm up, everything
    /// commits.
    Threshold {
        /// The quantile of the running total-latency distribution a
        /// request must reach to be kept, e.g. `0.99`.
        quantile: f64,
    },
}

/// One drained trace event.
///
/// Timestamps are nanoseconds since the owning recorder's epoch (its
/// construction instant), so events from every layer share one clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// The owning request's trace id; 0 for background events.
    pub trace_id: u64,
    /// What the event measures.
    pub stage: TraceStage,
    /// The shard label of the sink that recorded the event.
    pub shard: u16,
    /// Event start, nanoseconds since the recorder epoch.
    pub t_start_ns: u64,
    /// Event end, nanoseconds since the recorder epoch.
    pub t_end_ns: u64,
    /// Stage-specific size: bytes for segment reads, overlay entries
    /// for overlay probes, total-latency ns for the root event, 0
    /// otherwise.
    pub payload: u64,
}

impl TraceEvent {
    /// Event duration in nanoseconds.
    #[inline]
    pub fn duration_ns(&self) -> u64 {
        self.t_end_ns.saturating_sub(self.t_start_ns)
    }

    /// Whether this event's `[t_start, t_end)` window overlaps
    /// another's.
    #[inline]
    pub fn overlaps(&self, other: &TraceEvent) -> bool {
        self.t_start_ns < other.t_end_ns && other.t_start_ns < self.t_end_ns
    }
}

/// One seqlock slot: `seq` is `2·ticket + 1` while a writer owns the
/// slot and `2·ticket + 2` once the payload words are stable (0 =
/// never written). Tickets increase monotonically, so a newer write
/// always carries a larger sequence and the CAS claim loses at most
/// one event per slot collision.
struct Slot {
    seq: AtomicU64,
    trace_id: AtomicU64,
    meta: AtomicU64, // stage in the low 8 bits, shard in the next 16
    t_start: AtomicU64,
    t_end: AtomicU64,
    payload: AtomicU64,
}

impl Slot {
    const fn empty() -> Self {
        Slot {
            seq: AtomicU64::new(0),
            trace_id: AtomicU64::new(0),
            meta: AtomicU64::new(0),
            t_start: AtomicU64::new(0),
            t_end: AtomicU64::new(0),
            payload: AtomicU64::new(0),
        }
    }
}

/// How many threshold-mode finishes share one cached quantile
/// estimate before it is refreshed from the totals histogram.
const THRESHOLD_REFRESH: u64 = 64;

/// The lock-free flight recorder: a ring of seqlock slots plus the
/// sampling state.
///
/// All methods take `&self`; writers from any thread race only on
/// relaxed/acq-rel atomics. See the [module docs](self) for the
/// protocol.
pub struct FlightRecorder {
    epoch: Instant,
    policy: SamplingPolicy,
    slots: Box<[Slot]>,
    head: AtomicU64,
    next_id: AtomicU64,
    sample_counter: AtomicU64,
    /// Writes dropped because a concurrent writer owned the slot.
    contended_drops: AtomicU64,
    /// Total request latencies, fed by [`finish`](Self::finish);
    /// threshold sampling reads its live quantile from here.
    totals: LatencyHistogram,
    finishes: AtomicU64,
    cached_threshold_ns: AtomicU64,
}

impl fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FlightRecorder")
            .field("capacity", &self.slots.len())
            .field("policy", &self.policy)
            .field("events_written", &self.head.load(Ordering::Relaxed))
            .finish()
    }
}

impl FlightRecorder {
    /// Creates a recorder holding at most `capacity` events (rounded
    /// up to 1).
    pub fn new(capacity: usize, policy: SamplingPolicy) -> Self {
        let capacity = capacity.max(1);
        let mut slots = Vec::with_capacity(capacity);
        slots.resize_with(capacity, Slot::empty);
        FlightRecorder {
            epoch: Instant::now(),
            policy,
            slots: slots.into_boxed_slice(),
            head: AtomicU64::new(0),
            next_id: AtomicU64::new(0),
            sample_counter: AtomicU64::new(0),
            contended_drops: AtomicU64::new(0),
            totals: LatencyHistogram::new(),
            finishes: AtomicU64::new(0),
            cached_threshold_ns: AtomicU64::new(0),
        }
    }

    /// Ring capacity in events.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// The sampling policy this recorder was created with.
    pub fn policy(&self) -> SamplingPolicy {
        self.policy
    }

    /// Events dropped because a concurrent writer owned the target
    /// slot (distinct from overflow, where newer events silently
    /// overwrite older ones).
    pub fn contended_drops(&self) -> u64 {
        self.contended_drops.load(Ordering::Relaxed)
    }

    /// Nanoseconds since the recorder epoch — the clock every event
    /// timestamp is expressed in.
    #[inline]
    pub fn now_ns(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Converts an [`Instant`] into epoch-relative nanoseconds
    /// (instants before the epoch clamp to 0).
    #[inline]
    pub fn instant_ns(&self, at: Instant) -> u64 {
        u64::try_from(at.saturating_duration_since(self.epoch).as_nanos()).unwrap_or(u64::MAX)
    }

    /// Allocates a trace id for a new request per the sampling
    /// policy; returns [`TraceId::NONE`] when the request is not
    /// sampled (one relaxed counter increment, nothing else).
    #[inline]
    pub fn begin(&self) -> TraceId {
        match self.policy {
            SamplingPolicy::Always | SamplingPolicy::Threshold { .. } => self.fresh_id(),
            SamplingPolicy::OneInN(n) => {
                let tick = self.sample_counter.fetch_add(1, Ordering::Relaxed);
                if tick % n.max(1) == 0 {
                    self.fresh_id()
                } else {
                    TraceId::NONE
                }
            }
        }
    }

    fn fresh_id(&self) -> TraceId {
        TraceId(self.next_id.fetch_add(1, Ordering::Relaxed) + 1)
    }

    /// Completes a trace: feeds the total-latency histogram and, when
    /// the policy commits the trace, writes its root
    /// [`TraceStage::Request`] event (ending now, spanning
    /// `total_ns`). A [`TraceId::NONE`] finish is a no-op.
    pub fn finish(&self, id: TraceId, total_ns: u64) {
        if !id.is_sampled() {
            return;
        }
        self.totals.record_ns(total_ns);
        let committed = match self.policy {
            SamplingPolicy::Always | SamplingPolicy::OneInN(_) => true,
            SamplingPolicy::Threshold { quantile } => {
                let n = self.finishes.fetch_add(1, Ordering::Relaxed);
                if n % THRESHOLD_REFRESH == 0 {
                    let estimate = self.totals.snapshot().quantile(quantile);
                    self.cached_threshold_ns.store(estimate, Ordering::Relaxed);
                }
                total_ns >= self.cached_threshold_ns.load(Ordering::Relaxed)
            }
        };
        if committed {
            let end = self.now_ns();
            self.record(
                id,
                TraceStage::Request,
                0,
                end.saturating_sub(total_ns),
                end,
                total_ns,
            );
        }
    }

    /// Records one event against epoch-relative timestamps.
    ///
    /// Events against [`TraceId::NONE`] are kept only for background
    /// stages; everything else requires a sampled id. Allocation-free:
    /// the event is six relaxed/release atomic stores into a
    /// fixed-size slot.
    pub fn record(
        &self,
        id: TraceId,
        stage: TraceStage,
        shard: u16,
        t_start_ns: u64,
        t_end_ns: u64,
        payload: u64,
    ) {
        if !id.is_sampled() && !stage.is_background() {
            return;
        }
        let ticket = self.head.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(ticket % self.slots.len() as u64) as usize];
        let busy = ticket * 2 + 1;
        let cur = slot.seq.load(Ordering::Relaxed);
        // A sequence at or above our busy mark means a newer writer
        // already owns (or finished) this slot — newest wins, we drop.
        // An odd sequence means an older writer is still mid-write;
        // stealing the slot would let its trailing release store mark
        // our half-written fields stable, so we drop instead of tear.
        if cur >= busy
            || cur % 2 == 1
            || slot
                .seq
                .compare_exchange(cur, busy, Ordering::Acquire, Ordering::Relaxed)
                .is_err()
        {
            self.contended_drops.fetch_add(1, Ordering::Relaxed);
            return;
        }
        slot.trace_id.store(id.0, Ordering::Relaxed);
        slot.meta
            .store(stage as u64 | (shard as u64) << 8, Ordering::Relaxed);
        slot.t_start.store(t_start_ns, Ordering::Relaxed);
        slot.t_end.store(t_end_ns, Ordering::Relaxed);
        slot.payload.store(payload, Ordering::Relaxed);
        slot.seq.store(busy + 1, Ordering::Release);
    }

    /// Records one event from a pair of [`Instant`]s (converted to
    /// the recorder epoch).
    #[inline]
    pub fn record_span(
        &self,
        id: TraceId,
        stage: TraceStage,
        shard: u16,
        start: Instant,
        end: Instant,
        payload: u64,
    ) {
        if !id.is_sampled() && !stage.is_background() {
            return;
        }
        self.record(
            id,
            stage,
            shard,
            self.instant_ns(start),
            self.instant_ns(end),
            payload,
        );
    }

    /// Copies every stable event out of the ring, sorted by start
    /// time (ring write order breaks ties).
    ///
    /// The ring itself is left untouched — it keeps rolling, and a
    /// later drain sees whatever the window holds then. Slots being
    /// overwritten while read are detected via their sequence word
    /// and skipped, so the result is always a consistent subset of
    /// the events actually written (never a torn mix of two).
    pub fn drain(&self) -> Vec<TraceEvent> {
        let mut out: Vec<(u64, TraceEvent)> = Vec::with_capacity(self.slots.len());
        for slot in self.slots.iter() {
            let seq = slot.seq.load(Ordering::Acquire);
            if seq == 0 || seq % 2 == 1 {
                continue; // never written, or a writer is mid-flight
            }
            let trace_id = slot.trace_id.load(Ordering::Relaxed);
            let meta = slot.meta.load(Ordering::Relaxed);
            let t_start_ns = slot.t_start.load(Ordering::Relaxed);
            let t_end_ns = slot.t_end.load(Ordering::Relaxed);
            let payload = slot.payload.load(Ordering::Relaxed);
            // Seqlock validation (Boehm's recipe): the acquire fence
            // keeps the payload loads above from being satisfied after
            // the re-check below; a changed sequence means a writer
            // touched the slot while we read — skip the torn copy.
            fence(Ordering::Acquire);
            if slot.seq.load(Ordering::Relaxed) != seq {
                continue;
            }
            let Some(stage) = TraceStage::from_u8((meta & 0xff) as u8) else {
                continue;
            };
            out.push((
                seq,
                TraceEvent {
                    trace_id,
                    stage,
                    shard: (meta >> 8) as u16,
                    t_start_ns,
                    t_end_ns,
                    payload,
                },
            ));
        }
        out.sort_by_key(|(seq, ev)| (ev.t_start_ns, *seq));
        out.into_iter().map(|(_, ev)| ev).collect()
    }
}

// ---------------------------------------------------------------------
// The ambient trace id: store/maintenance layers are reached through
// compiled plans whose signatures know nothing about tracing, so the
// serving worker pins the current request's id in a thread-local and
// the leaf layers read it back.

thread_local! {
    static CURRENT_TRACE: Cell<u64> = const { Cell::new(0) };
}

/// The trace id the current thread is serving, set by
/// [`TraceScope::enter`]; [`TraceId::NONE`] outside any scope.
#[inline]
pub fn current() -> TraceId {
    CURRENT_TRACE.with(|c| TraceId(c.get()))
}

/// An RAII guard pinning a request's trace id on the current thread
/// for the duration of a backend probe, so leaf layers (segment
/// reads, overlay probes) can attribute their events without
/// threading the id through every signature. Restores the previous id
/// on drop, so nested scopes compose.
#[derive(Debug)]
pub struct TraceScope {
    prev: u64,
}

impl TraceScope {
    /// Pins `id` as the current thread's trace until the guard drops.
    pub fn enter(id: TraceId) -> TraceScope {
        TraceScope {
            prev: CURRENT_TRACE.with(|c| c.replace(id.0)),
        }
    }
}

impl Drop for TraceScope {
    fn drop(&mut self) {
        CURRENT_TRACE.with(|c| c.set(self.prev));
    }
}

// ---------------------------------------------------------------------
// Chrome trace-event export.

/// Renders drained events as Chrome trace-event JSON, loadable in
/// `chrome://tracing` or Perfetto.
///
/// Every event becomes a complete (`"ph": "X"`) event: timestamps in
/// microseconds with nanosecond precision, one `tid` row per trace id
/// (background events share row 0), the stage name as the event name,
/// and shard/trace/payload detail under `args`. The output is
/// deterministic for a given event slice (golden-file tested).
pub fn to_chrome_trace(events: &[TraceEvent]) -> String {
    let mut out = String::from("{\"displayTimeUnit\": \"ns\", \"traceEvents\": [");
    for (i, ev) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        // Complete events with dur 0 are dropped by some viewers;
        // clamp to 1ns so every recorded event stays visible.
        let dur = ev.duration_ns().max(1);
        write!(
            out,
            "\n  {{\"name\": \"{}\", \"cat\": \"cqap\", \"ph\": \"X\", \"pid\": 1, \
             \"tid\": {}, \"ts\": {}, \"dur\": {}, \
             \"args\": {{\"trace_id\": {}, \"shard\": {}, \"payload\": {}}}}}",
            ev.stage.name(),
            ev.trace_id,
            micros(ev.t_start_ns),
            micros(dur),
            ev.trace_id,
            ev.shard,
            ev.payload,
        )
        .expect("write to String");
    }
    out.push_str("\n]}\n");
    out
}

/// Nanoseconds rendered as decimal microseconds without going through
/// floating point (deterministic output).
fn micros(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

// ---------------------------------------------------------------------
// Tail attribution.

/// One cluster of slow requests sharing a cause, produced by
/// [`tail_attribution`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TailBucket {
    /// The stage that consumed the most time across the bucket's
    /// member traces.
    pub dominant: TraceStage,
    /// Store-side markers shared by the bucket: `"overlay_pending"`
    /// (a probe merged an uncompacted overlay), `"segment_read"`
    /// (cold-store reads on the critical path), and
    /// `"<stage>_overlap"` for background maintenance events whose
    /// wall-clock window overlapped the request.
    pub markers: Vec<&'static str>,
    /// Member traces in this bucket.
    pub count: usize,
    /// The slowest member's total latency, nanoseconds.
    pub worst_ns: u64,
    /// The slowest member's trace id (for cross-referencing the
    /// Chrome export).
    pub example_trace: u64,
}

impl TailBucket {
    /// Whether the bucket carries a given store-side marker.
    pub fn has_marker(&self, marker: &str) -> bool {
        self.markers.iter().any(|m| *m == marker)
    }
}

/// The slowest-requests report from [`tail_attribution`].
#[derive(Debug, Clone, Default)]
pub struct TailReport {
    /// Committed (root-carrying) traces seen in the drained events.
    pub traces: usize,
    /// How many of those fell in the analyzed tail.
    pub tail_count: usize,
    /// Cause clusters, slowest first.
    pub buckets: Vec<TailBucket>,
}

impl TailReport {
    /// Whether any tail bucket is dominated by `stage`.
    pub fn has_dominant(&self, stage: TraceStage) -> bool {
        self.buckets.iter().any(|b| b.dominant == stage)
    }

    /// Whether any tail bucket carries `marker`.
    pub fn has_marker(&self, marker: &str) -> bool {
        self.buckets.iter().any(|b| b.has_marker(marker))
    }
}

impl fmt::Display for TailReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "tail attribution: {} of {} traces in the analyzed tail",
            self.tail_count, self.traces
        )?;
        for b in &self.buckets {
            write!(
                f,
                "  {:>4} × dominant={:<16} worst {:>10.3} ms (trace {})",
                b.count,
                b.dominant.name(),
                b.worst_ns as f64 / 1e6,
                b.example_trace
            )?;
            if !b.markers.is_empty() {
                write!(f, "  [{}]", b.markers.join(", "))?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// Groups the slowest `fraction` of committed traces (at least one)
/// by dominant stage and co-occurring store-side/background markers.
///
/// A *committed* trace is one with a [`TraceStage::Request`] root
/// event — its duration is the request's total latency. The dominant
/// stage is the non-root stage with the largest summed duration
/// inside the trace; markers record overlay-pending probes, segment
/// reads, and background maintenance events (recorded against trace
/// id 0) whose windows overlap the request's. Buckets come back
/// slowest-first.
pub fn tail_attribution(events: &[TraceEvent], fraction: f64) -> TailReport {
    // Committed traces, keyed by id: (root event, member events).
    let mut roots: Vec<TraceEvent> = Vec::new();
    for ev in events {
        if ev.stage == TraceStage::Request && ev.trace_id != 0 {
            roots.push(*ev);
        }
    }
    let background: Vec<&TraceEvent> =
        events.iter().filter(|ev| ev.trace_id == 0).collect();
    let traces = roots.len();
    if traces == 0 {
        return TailReport::default();
    }
    roots.sort_by_key(|r| std::cmp::Reverse(r.duration_ns()));
    let tail_count = ((fraction * traces as f64).ceil() as usize).clamp(1, traces);

    let mut buckets: Vec<TailBucket> = Vec::new();
    for root in &roots[..tail_count] {
        let mut per_stage = [0u64; TraceStage::COUNT];
        let mut markers: Vec<&'static str> = Vec::new();
        for ev in events.iter().filter(|ev| ev.trace_id == root.trace_id) {
            if ev.stage != TraceStage::Request {
                per_stage[ev.stage as usize] += ev.duration_ns();
            }
            match ev.stage {
                TraceStage::OverlayProbe => push_marker(&mut markers, "overlay_pending"),
                TraceStage::SegmentRead => push_marker(&mut markers, "segment_read"),
                _ => {}
            }
        }
        for bg in &background {
            if bg.overlaps(root) {
                let marker = match bg.stage {
                    TraceStage::Compaction => "compaction_overlap",
                    TraceStage::DeltaApply => "delta_apply_overlap",
                    _ => continue,
                };
                push_marker(&mut markers, marker);
            }
        }
        markers.sort_unstable();
        let dominant = per_stage
            .iter()
            .enumerate()
            .max_by_key(|(_, &ns)| ns)
            .map(|(i, _)| TraceStage::ALL[i])
            .unwrap_or(TraceStage::Request);
        match buckets
            .iter_mut()
            .find(|b| b.dominant == dominant && b.markers == markers)
        {
            Some(b) => {
                b.count += 1;
                if root.duration_ns() > b.worst_ns {
                    b.worst_ns = root.duration_ns();
                    b.example_trace = root.trace_id;
                }
            }
            None => buckets.push(TailBucket {
                dominant,
                markers,
                count: 1,
                worst_ns: root.duration_ns(),
                example_trace: root.trace_id,
            }),
        }
    }
    buckets.sort_by_key(|b| std::cmp::Reverse(b.worst_ns));
    TailReport {
        traces,
        tail_count,
        buckets,
    }
}

fn push_marker(markers: &mut Vec<&'static str>, marker: &'static str) {
    if !markers.iter().any(|m| *m == marker) {
        markers.push(marker);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(trace_id: u64, stage: TraceStage, t0: u64, t1: u64, payload: u64) -> TraceEvent {
        TraceEvent {
            trace_id,
            stage,
            shard: 0,
            t_start_ns: t0,
            t_end_ns: t1,
            payload,
        }
    }

    #[test]
    fn stage_roundtrips_through_repr() {
        for stage in TraceStage::ALL {
            assert_eq!(TraceStage::from_u8(stage as u8), Some(stage));
        }
        assert_eq!(TraceStage::from_u8(TraceStage::COUNT as u8), None);
        for stage in StageId::ALL {
            assert_eq!(TraceStage::from(stage).name(), stage.name());
        }
    }

    #[test]
    fn always_policy_records_and_drains_in_order() {
        let fr = FlightRecorder::new(16, SamplingPolicy::Always);
        let a = fr.begin();
        let b = fr.begin();
        assert!(a.is_sampled() && b.is_sampled() && a != b);
        fr.record(a, TraceStage::BackendProbe, 3, 100, 200, 0);
        fr.record(b, TraceStage::QueueWait, 0, 50, 90, 0);
        fr.finish(a, 150);
        let events = fr.drain();
        assert_eq!(events.len(), 3);
        // Sorted by start time: b's queue wait first.
        assert_eq!(events[0].stage, TraceStage::QueueWait);
        assert_eq!(events[0].trace_id, b.get());
        assert_eq!(events[1].stage, TraceStage::BackendProbe);
        assert_eq!(events[1].shard, 3);
        assert!(events.iter().any(|e| e.stage == TraceStage::Request
            && e.trace_id == a.get()
            && e.payload == 150));
    }

    #[test]
    fn one_in_n_samples_every_nth() {
        let fr = FlightRecorder::new(8, SamplingPolicy::OneInN(4));
        let sampled: Vec<bool> = (0..12).map(|_| fr.begin().is_sampled()).collect();
        assert_eq!(sampled.iter().filter(|&&s| s).count(), 3);
        assert!(sampled[0] && sampled[4] && sampled[8]);
        // Unsampled ids record nothing (non-background stage).
        fr.record(TraceId::NONE, TraceStage::BackendProbe, 0, 0, 10, 0);
        assert!(fr.drain().is_empty());
        // Background stages are kept even without a trace.
        fr.record(TraceId::NONE, TraceStage::Compaction, 0, 0, 10, 0);
        assert_eq!(fr.drain().len(), 1);
    }

    #[test]
    fn overflow_keeps_the_newest_events() {
        let fr = FlightRecorder::new(4, SamplingPolicy::Always);
        let id = fr.begin();
        for i in 0..10u64 {
            fr.record(id, TraceStage::SegmentRead, 0, i, i + 1, i);
        }
        let events = fr.drain();
        assert_eq!(events.len(), 4);
        let payloads: Vec<u64> = events.iter().map(|e| e.payload).collect();
        assert_eq!(payloads, vec![6, 7, 8, 9], "newest 4 of 10 survive");
        assert_eq!(fr.contended_drops(), 0, "sequential writes never drop");
    }

    #[test]
    fn threshold_commits_only_slow_traces_once_warm() {
        let fr = FlightRecorder::new(4096, SamplingPolicy::Threshold { quantile: 0.9 });
        // Warm the estimator past the first refresh with fast requests.
        for _ in 0..=THRESHOLD_REFRESH {
            let id = fr.begin();
            fr.finish(id, 1_000);
        }
        let fast = fr.begin();
        fr.finish(fast, 500);
        let slow = fr.begin();
        fr.finish(slow, 1_000_000);
        let events = fr.drain();
        let committed: Vec<u64> = events
            .iter()
            .filter(|e| e.stage == TraceStage::Request)
            .map(|e| e.trace_id)
            .collect();
        assert!(committed.contains(&slow.get()), "slow trace commits");
        assert!(!committed.contains(&fast.get()), "fast trace is rejected");
    }

    #[test]
    fn trace_scope_nests_and_restores() {
        assert_eq!(current(), TraceId::NONE);
        {
            let _outer = TraceScope::enter(TraceId::from_raw(7));
            assert_eq!(current().get(), 7);
            {
                let _inner = TraceScope::enter(TraceId::from_raw(9));
                assert_eq!(current().get(), 9);
            }
            assert_eq!(current().get(), 7);
        }
        assert_eq!(current(), TraceId::NONE);
    }

    #[test]
    fn chrome_trace_renders_complete_events() {
        let events = vec![
            ev(1, TraceStage::QueueWait, 1_500, 4_000, 0),
            ev(0, TraceStage::Compaction, 2_000, 9_000, 3),
        ];
        let json = to_chrome_trace(&events);
        assert!(json.contains("\"ph\": \"X\""));
        assert!(json.contains("\"name\": \"queue_wait\""));
        assert!(json.contains("\"ts\": 1.500"));
        assert!(json.contains("\"dur\": 2.500"));
        assert!(json.contains("\"tid\": 0"));
        assert!(json.ends_with("]}\n"));
    }

    #[test]
    fn tail_attribution_clusters_by_cause() {
        let events = vec![
            // Trace 1: queue-dominated, slowest.
            ev(1, TraceStage::QueueWait, 0, 9_000, 0),
            ev(1, TraceStage::BackendProbe, 9_000, 10_000, 0),
            ev(1, TraceStage::Request, 0, 10_000, 10_000),
            // Trace 2: probe-dominated with a pending overlay, and a
            // compaction overlapping its window.
            ev(2, TraceStage::BackendProbe, 11_000, 19_000, 0),
            ev(2, TraceStage::OverlayProbe, 12_000, 13_000, 5),
            ev(2, TraceStage::Request, 11_000, 20_000, 9_000),
            ev(0, TraceStage::Compaction, 12_000, 15_000, 0),
            // Trace 3: fast, outside the tail.
            ev(3, TraceStage::BackendProbe, 30_000, 30_500, 0),
            ev(3, TraceStage::Request, 30_000, 30_600, 600),
        ];
        let report = tail_attribution(&events, 0.67);
        assert_eq!(report.traces, 3);
        assert_eq!(report.tail_count, 3); // ceil(0.67 * 3) = 3... clamped
        let report = tail_attribution(&events, 0.5);
        assert_eq!(report.tail_count, 2);
        assert!(report.has_dominant(TraceStage::QueueWait));
        assert!(report.has_dominant(TraceStage::BackendProbe));
        assert!(report.has_marker("overlay_pending"));
        assert!(report.has_marker("compaction_overlap"));
        let display = report.to_string();
        assert!(display.contains("queue_wait"));
        assert!(display.contains("overlay_pending"));
    }

    #[test]
    fn empty_events_make_an_empty_report() {
        let report = tail_attribution(&[], 0.001);
        assert_eq!(report.traces, 0);
        assert!(report.buckets.is_empty());
    }
}
