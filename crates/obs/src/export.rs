//! Snapshot and export: Prometheus text exposition and the criterion
//! shim's `BENCH_*.json` schema.

use std::fmt::Write as _;

use crate::hist::{HistogramSnapshot, BOUNDS};
use crate::sink::{CounterId, GaugeId, StageId};

/// An owned point-in-time copy of every metric in a
/// [`Recorder`](crate::Recorder).
///
/// Snapshots from different recorders (e.g. one per worker process)
/// merge element-wise via [`merge`](Self::merge) because every
/// recorder shares the same fixed metric layout.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// Per-stage latency histograms, indexed like [`StageId::ALL`].
    pub stages: [HistogramSnapshot; StageId::COUNT],
    /// Counter values, indexed like [`CounterId::ALL`].
    pub counters: [u64; CounterId::COUNT],
    /// Gauge values, indexed like [`GaugeId::ALL`].
    pub gauges: [i64; GaugeId::COUNT],
    /// Requests served per shard (trailing all-zero shards trimmed;
    /// empty when the stack is unsharded).
    pub shard_served: Vec<u64>,
}

impl MetricsSnapshot {
    /// The histogram snapshot for one stage.
    pub fn stage(&self, stage: StageId) -> &HistogramSnapshot {
        &self.stages[stage as usize]
    }

    /// The value of one counter.
    pub fn counter(&self, counter: CounterId) -> u64 {
        self.counters[counter as usize]
    }

    /// The value of one gauge.
    pub fn gauge(&self, gauge: GaugeId) -> i64 {
        self.gauges[gauge as usize]
    }

    /// Ratio of the busiest shard's served count to the mean served
    /// count, or `None` when no shard counters were recorded.
    ///
    /// 1.0 means perfectly balanced traffic; 2.0 means the hottest
    /// shard saw twice its fair share.
    pub fn shard_balance_skew(&self) -> Option<f64> {
        let total: u64 = self.shard_served.iter().sum();
        if self.shard_served.is_empty() || total == 0 {
            return None;
        }
        let mean = total as f64 / self.shard_served.len() as f64;
        let max = *self.shard_served.iter().max().expect("non-empty") as f64;
        Some(max / mean)
    }

    /// The activity recorded between `earlier` and `self` — an
    /// interval window from two cumulative snapshots of the same
    /// recorder, so long-running processes can report per-window
    /// rates instead of running totals.
    ///
    /// Counters and per-shard served counts subtract (saturating);
    /// stage histograms subtract bucket-wise
    /// ([`HistogramSnapshot::delta`]); gauges are instantaneous, so
    /// the delta carries their signed change over the window.
    pub fn delta(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        let mut shard_served: Vec<u64> = self.shard_served.clone();
        for (mine, &past) in shard_served.iter_mut().zip(&earlier.shard_served) {
            *mine = mine.saturating_sub(past);
        }
        MetricsSnapshot {
            stages: std::array::from_fn(|i| self.stages[i].delta(&earlier.stages[i])),
            counters: std::array::from_fn(|i| {
                self.counters[i].saturating_sub(earlier.counters[i])
            }),
            gauges: std::array::from_fn(|i| self.gauges[i] - earlier.gauges[i]),
            shard_served,
        }
    }

    /// Merges another snapshot into this one (element-wise addition;
    /// histogram min/max combine, gauges add).
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (mine, theirs) in self.stages.iter_mut().zip(&other.stages) {
            mine.merge(theirs);
        }
        for (mine, theirs) in self.counters.iter_mut().zip(&other.counters) {
            *mine += theirs;
        }
        for (mine, theirs) in self.gauges.iter_mut().zip(&other.gauges) {
            *mine += theirs;
        }
        if self.shard_served.len() < other.shard_served.len() {
            self.shard_served.resize(other.shard_served.len(), 0);
        }
        for (mine, theirs) in self.shard_served.iter_mut().zip(&other.shard_served) {
            *mine += theirs;
        }
    }

    /// Renders the snapshot in Prometheus text exposition format
    /// (version 0.0.4).
    ///
    /// Emits one histogram family (`stage` label, cumulative `le`
    /// buckets in nanoseconds), a quantile gauge family with the
    /// estimated p50/p95/p99/p999 per stage, every counter and gauge,
    /// and — when sharded — per-shard served counters plus the balance
    /// skew gauge. Stages with zero observations are omitted to keep
    /// the output readable; counters and gauges are always present.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();

        let live: Vec<StageId> = StageId::ALL
            .into_iter()
            .filter(|&s| !self.stage(s).is_empty())
            .collect();

        if !live.is_empty() {
            out.push_str(
                "# HELP cqap_stage_duration_nanoseconds \
                 Request lifecycle stage latency, by stage.\n",
            );
            out.push_str("# TYPE cqap_stage_duration_nanoseconds histogram\n");
            for &stage in &live {
                let hist = self.stage(stage);
                let mut cumulative = 0u64;
                for (idx, &n) in hist.buckets.iter().enumerate() {
                    cumulative += n;
                    // Skip leading all-zero buckets but keep every
                    // boundary after the first observation so the
                    // cumulative counts stay self-describing.
                    if cumulative == 0 {
                        continue;
                    }
                    let le = if idx < BOUNDS.len() {
                        BOUNDS[idx].to_string()
                    } else {
                        "+Inf".to_string()
                    };
                    writeln!(
                        out,
                        "cqap_stage_duration_nanoseconds_bucket{{stage=\"{}\",le=\"{}\"}} {}",
                        stage.name(),
                        le,
                        cumulative
                    )
                    .expect("write to String");
                }
                writeln!(
                    out,
                    "cqap_stage_duration_nanoseconds_sum{{stage=\"{}\"}} {}",
                    stage.name(),
                    hist.sum
                )
                .expect("write to String");
                writeln!(
                    out,
                    "cqap_stage_duration_nanoseconds_count{{stage=\"{}\"}} {}",
                    stage.name(),
                    hist.count
                )
                .expect("write to String");
            }

            out.push_str(
                "# HELP cqap_stage_quantile_nanoseconds \
                 Estimated stage latency quantiles (bucket-midpoint estimate).\n",
            );
            out.push_str("# TYPE cqap_stage_quantile_nanoseconds gauge\n");
            for &stage in &live {
                let hist = self.stage(stage);
                for (label, q) in [("0.5", 0.5), ("0.95", 0.95), ("0.99", 0.99), ("0.999", 0.999)]
                {
                    writeln!(
                        out,
                        "cqap_stage_quantile_nanoseconds{{stage=\"{}\",quantile=\"{}\"}} {}",
                        stage.name(),
                        label,
                        hist.quantile(q)
                    )
                    .expect("write to String");
                }
            }
        }

        for counter in CounterId::ALL {
            writeln!(out, "# HELP {} {}", counter.name(), counter.help())
                .expect("write to String");
            writeln!(out, "# TYPE {} counter", counter.name()).expect("write to String");
            writeln!(out, "{} {}", counter.name(), self.counter(counter))
                .expect("write to String");
        }

        for gauge in GaugeId::ALL {
            writeln!(out, "# HELP {} {}", gauge.name(), gauge.help()).expect("write to String");
            writeln!(out, "# TYPE {} gauge", gauge.name()).expect("write to String");
            writeln!(out, "{} {}", gauge.name(), self.gauge(gauge)).expect("write to String");
        }

        if !self.shard_served.is_empty() {
            out.push_str("# HELP cqap_shard_served_total Requests answered per shard.\n");
            out.push_str("# TYPE cqap_shard_served_total counter\n");
            for (shard, &n) in self.shard_served.iter().enumerate() {
                writeln!(out, "cqap_shard_served_total{{shard=\"{shard}\"}} {n}")
                    .expect("write to String");
            }
            if let Some(skew) = self.shard_balance_skew() {
                out.push_str(
                    "# HELP cqap_shard_balance_skew \
                     Busiest shard's served count over the mean (1.0 = balanced).\n",
                );
                out.push_str("# TYPE cqap_shard_balance_skew gauge\n");
                writeln!(out, "cqap_shard_balance_skew {skew:.3}").expect("write to String");
            }
        }

        out
    }

    /// Renders the per-stage latency distributions in the criterion
    /// shim's `BENCH_*.json` record schema (a JSON array; one record
    /// per non-empty stage, labelled `stage/<name>`).
    ///
    /// `median_ns`/`p99_ns`/`p999_ns` are bucket-midpoint quantile
    /// estimates; `mad_ns` is not recoverable from buckets and is
    /// reported as 0.
    pub fn to_bench_json(&self) -> String {
        let mut out = String::from("[");
        let mut first = true;
        for stage in StageId::ALL {
            let hist = self.stage(stage);
            if hist.is_empty() {
                continue;
            }
            if !first {
                out.push(',');
            }
            first = false;
            write!(
                out,
                "\n  {{\"label\": \"stage/{}\", \"samples\": {}, \"median_ns\": {}, \
                 \"mad_ns\": 0, \"mean_ns\": {}, \"min_ns\": {}, \"max_ns\": {}, \
                 \"p99_ns\": {}, \"p999_ns\": {}}}",
                stage.name(),
                hist.count,
                hist.p50(),
                hist.mean(),
                hist.min,
                hist.max,
                hist.p99(),
                hist.p999()
            )
            .expect("write to String");
        }
        out.push_str("\n]\n");
        out
    }
}
