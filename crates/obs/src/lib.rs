//! Lock-free metrics and request-lifecycle tracing for the CQAP
//! serving stack.
//!
//! The serving layers built in earlier PRs (runtime, work-stealing
//! pool, shard router, cold store, delta maintenance) expose only
//! end-of-run counters; this crate adds the latency distributions and
//! live gauges needed to reason about tail behaviour. Everything is
//! std-only and lock-free:
//!
//! - [`LatencyHistogram`] — fixed log-bucketed `AtomicU64` histograms,
//!   two buckets per octave from 100ns to ~100s, mergeable across
//!   workers, with quantile estimates (p50/p95/p99/p999) whose error
//!   is bounded by one bucket width.
//! - [`Recorder`] / [`MetricsSink`] — the instrumentation seam. A
//!   `Recorder` is a fixed registry of stage histograms
//!   ([`StageId`]), event counters ([`CounterId`]), gauges
//!   ([`GaugeId`]) and per-shard served counts. A `MetricsSink` is a
//!   cheap-clone, possibly-disabled handle to one; a disabled sink
//!   reduces every recording call to a null check, so instrumented
//!   warm paths stay allocation-free and effectively free when
//!   metrics are off.
//! - [`RequestSpan`] / [`StageTimer`] — per-worker lifecycle timing
//!   helpers that skip the clock read entirely when the sink is
//!   disabled.
//! - [`MetricsSnapshot`] — an owned copy of a recorder, exportable as
//!   Prometheus text exposition
//!   ([`to_prometheus`](MetricsSnapshot::to_prometheus)) or the
//!   criterion shim's `BENCH_*.json` schema
//!   ([`to_bench_json`](MetricsSnapshot::to_bench_json)); two
//!   snapshots subtract into an interval window
//!   ([`delta`](MetricsSnapshot::delta)).
//! - [`trace`] — the flight recorder: a fixed-capacity seqlock ring
//!   of compact per-request trace events ([`FlightRecorder`]),
//!   sampled by [`SamplingPolicy`], exported as Chrome trace-event
//!   JSON ([`to_chrome_trace`]) with a slowest-requests cause report
//!   ([`tail_attribution`]).
//!
//! # Example
//!
//! ```
//! use cqap_obs::{MetricsSink, StageId, CounterId};
//!
//! let sink = MetricsSink::recording();
//! let timer = sink.start();
//! // ... do the work being timed ...
//! sink.stop(timer, StageId::BackendProbe);
//! sink.incr(CounterId::SegmentReads);
//!
//! let snap = sink.snapshot().unwrap();
//! assert_eq!(snap.stage(StageId::BackendProbe).count, 1);
//! assert_eq!(snap.counter(CounterId::SegmentReads), 1);
//! println!("{}", snap.to_prometheus());
//! ```

#![deny(missing_docs)]

mod export;
mod hist;
mod sink;
pub mod trace;

pub use export::MetricsSnapshot;
pub use hist::{
    bucket_of, bucket_range, HistogramSnapshot, LatencyHistogram, BOUNDS, NUM_BOUNDS, NUM_BUCKETS,
};
pub use sink::{
    CounterId, GaugeId, MetricsSink, Recorder, RequestSpan, StageId, StageTimer, MAX_SHARDS,
};
pub use trace::{
    tail_attribution, to_chrome_trace, FlightRecorder, SamplingPolicy, TailBucket, TailReport,
    TraceEvent, TraceId, TraceScope, TraceStage,
};
