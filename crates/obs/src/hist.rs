//! Lock-free log-bucketed latency histograms.
//!
//! A [`LatencyHistogram`] is a fixed array of `AtomicU64` buckets whose
//! boundaries grow geometrically — two buckets per octave (ratio ≈ √2 ≈
//! 1.41) — from 100ns up to ~100s, with one catch-all overflow bucket
//! above that. Recording is a single relaxed `fetch_add` plus two
//! saturating min/max updates, so many worker threads can record into
//! the same histogram without locks or allocation. Because the bucket
//! layout is identical for every histogram, snapshots merge by plain
//! element-wise addition.
//!
//! Quantile estimates come from the bucketed distribution: the reported
//! value always lies inside the bucket that contains the exact sample
//! quantile, so the absolute error is bounded by one bucket width
//! (relative error ≈ √2 − 1 ≈ 41% of the value in the worst case, and
//! half that on average). That guarantee is what the proptest suite
//! checks.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of finite bucket boundaries.
///
/// Boundary `2k` is `100 << k` and boundary `2k+1` is `141 << k`
/// nanoseconds (141 ≈ 100·√2), so consecutive boundaries are a factor
/// of ≈1.41 apart. The last boundary is `100 << 30` ≈ 107.4s, which
/// caps the resolvable range at roughly 100 seconds as advertised.
pub const NUM_BOUNDS: usize = 61;

/// Total bucket count: one per finite boundary plus the overflow bucket.
pub const NUM_BUCKETS: usize = NUM_BOUNDS + 1;

/// Upper bucket boundaries in nanoseconds, strictly increasing.
///
/// Bucket `0` covers `[0, BOUNDS[0])`, bucket `i` covers
/// `[BOUNDS[i-1], BOUNDS[i])`, and bucket `NUM_BOUNDS` is the overflow
/// bucket `[BOUNDS[NUM_BOUNDS-1], ∞)`.
pub const BOUNDS: [u64; NUM_BOUNDS] = build_bounds();

const fn build_bounds() -> [u64; NUM_BOUNDS] {
    let mut bounds = [0u64; NUM_BOUNDS];
    let mut i = 0;
    while i < NUM_BOUNDS {
        let octave = i / 2;
        bounds[i] = if i % 2 == 0 {
            100u64 << octave
        } else {
            141u64 << octave
        };
        i += 1;
    }
    bounds
}

/// Index of the bucket a `ns`-nanosecond observation falls into.
#[inline]
pub fn bucket_of(ns: u64) -> usize {
    // Boundaries are sorted, so the first boundary strictly above `ns`
    // names the bucket; if every boundary is <= ns this returns
    // NUM_BOUNDS, the overflow bucket.
    BOUNDS.partition_point(|&b| b <= ns)
}

/// Half-open value range `[lo, hi)` covered by bucket `idx`.
///
/// The overflow bucket reports `hi == u64::MAX`.
#[inline]
pub fn bucket_range(idx: usize) -> (u64, u64) {
    let lo = if idx == 0 { 0 } else { BOUNDS[idx - 1] };
    let hi = if idx < NUM_BOUNDS {
        BOUNDS[idx]
    } else {
        u64::MAX
    };
    (lo, hi)
}

/// A lock-free latency histogram with log-spaced buckets.
///
/// All methods take `&self`; concurrent recording from many threads is
/// the intended use. Buckets are log-spaced (two per octave over
/// 100 ns..100 s), so quantile estimates are off by at most one bucket
/// width — under 50% relative error, typically far less.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; NUM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: [const { AtomicU64::new(0) }; NUM_BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Records one observation of `ns` nanoseconds.
    ///
    /// Lock-free and allocation-free: one `fetch_add` per counter plus
    /// atomic min/max updates, all relaxed.
    #[inline]
    pub fn record_ns(&self, ns: u64) {
        self.buckets[bucket_of(ns)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(ns, Ordering::Relaxed);
        self.min.fetch_min(ns, Ordering::Relaxed);
        self.max.fetch_max(ns, Ordering::Relaxed);
    }

    /// Records one observation of a [`Duration`], saturating at
    /// `u64::MAX` nanoseconds (~584 years).
    #[inline]
    pub fn record(&self, elapsed: Duration) {
        self.record_ns(u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Takes a point-in-time copy of the histogram state.
    ///
    /// Individual loads are relaxed, so a snapshot taken while writers
    /// are active may be off by in-flight observations; totals are
    /// exact once writers quiesce.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; NUM_BUCKETS];
        for (slot, bucket) in buckets.iter_mut().zip(&self.buckets) {
            *slot = bucket.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            buckets,
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            min: self.min.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }

    /// Adds every observation recorded in `other` into `self`.
    ///
    /// Both histograms share the fixed bucket layout, so merging is
    /// element-wise atomic addition — the merge-across-workers path.
    pub fn merge_from(&self, other: &HistogramSnapshot) {
        for (bucket, &n) in self.buckets.iter().zip(&other.buckets) {
            if n > 0 {
                bucket.fetch_add(n, Ordering::Relaxed);
            }
        }
        self.count.fetch_add(other.count, Ordering::Relaxed);
        self.sum.fetch_add(other.sum, Ordering::Relaxed);
        self.min.fetch_min(other.min, Ordering::Relaxed);
        self.max.fetch_max(other.max, Ordering::Relaxed);
    }
}

/// An owned point-in-time copy of a [`LatencyHistogram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts (not cumulative).
    pub buckets: [u64; NUM_BUCKETS],
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values, in nanoseconds.
    pub sum: u64,
    /// Smallest observed value (`u64::MAX` when empty).
    pub min: u64,
    /// Largest observed value (`0` when empty).
    pub max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self::empty()
    }
}

impl HistogramSnapshot {
    /// An empty snapshot (zero observations).
    pub fn empty() -> Self {
        Self {
            buckets: [0; NUM_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Whether no observations have been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Mean observed value in nanoseconds (0 when empty).
    pub fn mean(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.sum / self.count
        }
    }

    /// The observations recorded between `earlier` and `self`
    /// (bucket-wise saturating subtraction), for interval-rate
    /// reporting from two cumulative snapshots of one histogram.
    ///
    /// Bucket counts, `count` and `sum` subtract exactly. `min`/`max`
    /// are cumulative extremes and cannot be subtracted, so the delta
    /// reconstructs them from its own non-empty buckets (tightened by
    /// the cumulative extremes): they are correct to bucket
    /// resolution, like the quantile estimates.
    pub fn delta(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        let mut buckets = [0u64; NUM_BUCKETS];
        for (slot, (&later, &past)) in buckets
            .iter_mut()
            .zip(self.buckets.iter().zip(&earlier.buckets))
        {
            *slot = later.saturating_sub(past);
        }
        let count = self.count.saturating_sub(earlier.count);
        let (min, max) = if count == 0 {
            (u64::MAX, 0)
        } else if earlier.count == 0 {
            // Nothing predates the window: the exact extremes hold.
            (self.min, self.max)
        } else {
            let first = buckets.iter().position(|&n| n > 0).unwrap_or(0);
            let last = buckets.iter().rposition(|&n| n > 0).unwrap_or(0);
            (
                bucket_range(first).0.max(self.min),
                bucket_range(last).1.saturating_sub(1).min(self.max),
            )
        };
        HistogramSnapshot {
            buckets,
            count,
            sum: self.sum.saturating_sub(earlier.sum),
            min,
            max,
        }
    }

    /// Merges another snapshot into this one (element-wise addition).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (slot, &n) in self.buckets.iter_mut().zip(&other.buckets) {
            *slot += n;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// The `[lo, hi]` nanosecond range guaranteed to contain the exact
    /// `q`-quantile of the recorded sample, `0.0 <= q <= 1.0`.
    ///
    /// `lo`/`hi` are the containing bucket's boundaries tightened by
    /// the exact observed min/max; the overflow bucket's upper bound is
    /// the observed max. Returns `(0, 0)` when empty.
    pub fn quantile_bounds(&self, q: f64) -> (u64, u64) {
        if self.count == 0 {
            return (0, 0);
        }
        // Rank of the quantile sample, 1-based: the standard
        // ceil(q * n) nearest-rank definition, clamped to [1, n].
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (idx, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                let (lo, hi) = bucket_range(idx);
                return (lo.max(self.min), hi.min(self.max.saturating_add(1)));
            }
        }
        // Unreachable while count == sum of buckets, but keep a sane
        // fallback for racy snapshots.
        (self.min, self.max)
    }

    /// Estimates the `q`-quantile in nanoseconds.
    ///
    /// The estimate is the midpoint of [`quantile_bounds`], so it lies
    /// in the same bucket as the exact sample quantile and is at most
    /// one bucket width away from it.
    ///
    /// [`quantile_bounds`]: Self::quantile_bounds
    pub fn quantile(&self, q: f64) -> u64 {
        let (lo, hi) = self.quantile_bounds(q);
        lo + (hi - lo) / 2
    }

    /// Median estimate (p50), in nanoseconds.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 95th percentile estimate, in nanoseconds.
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// 99th percentile estimate, in nanoseconds.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// 99.9th percentile estimate, in nanoseconds.
    pub fn p999(&self) -> u64 {
        self.quantile(0.999)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounds_are_strictly_increasing_and_span_100ns_to_100s() {
        for pair in BOUNDS.windows(2) {
            assert!(pair[0] < pair[1], "bounds must increase: {pair:?}");
        }
        assert_eq!(BOUNDS[0], 100);
        assert!(BOUNDS[NUM_BOUNDS - 1] >= 100_000_000_000);
    }

    #[test]
    fn bucket_of_matches_bucket_range() {
        for ns in [0, 1, 99, 100, 140, 141, 199, 1_000, 1_000_000, u64::MAX] {
            let idx = bucket_of(ns);
            let (lo, hi) = bucket_range(idx);
            assert!(lo <= ns && ns < hi || (idx == NUM_BOUNDS && ns >= lo));
        }
    }

    #[test]
    fn quantiles_of_a_point_mass_hit_the_point_bucket() {
        let h = LatencyHistogram::new();
        for _ in 0..1000 {
            h.record_ns(5_000);
        }
        let s = h.snapshot();
        for q in [0.0, 0.5, 0.99, 0.999, 1.0] {
            assert_eq!(s.quantile(q), 5_000, "q={q}");
        }
        assert_eq!(s.mean(), 5_000);
        assert_eq!((s.min, s.max), (5_000, 5_000));
    }
}
