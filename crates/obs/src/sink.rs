//! The `MetricsSink` seam: a nullable handle the serving stack records
//! through.
//!
//! Every instrumented layer (`ServeRuntime`, the work-stealing pool,
//! `ShardRouter`, `cqap-store`, `DeltaMaintenance`) holds a
//! [`MetricsSink`] by value. A sink is either *disabled* (the default —
//! a `None`, so every recording call is a branch on a null check and
//! compiles down to nothing) or *attached* to a shared [`Recorder`]
//! holding the actual atomics. Cloning a sink is a reference-count
//! bump; recording through one never allocates, so it is safe on the
//! warm request path.

use std::fmt;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use crate::export::MetricsSnapshot;
use crate::hist::LatencyHistogram;
use crate::trace::{self, FlightRecorder, TraceId, TraceStage};

/// Request-lifecycle stages timed by the serving stack, one latency
/// histogram each.
///
/// The first six stages decompose a request's path through
/// `ServeRuntime`; the last two time maintenance work (delta batches
/// and cold-store compaction).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StageId {
    /// Time a job spent queued in the work-stealing pool before a
    /// worker picked it up.
    QueueWait,
    /// Answer-cache / in-flight map lookup under the runtime state
    /// lock.
    CacheLookup,
    /// Classifying and merging a batch's requests into coalesced
    /// probe groups.
    Coalesce,
    /// The backend index probe itself (the Yannakakis answer call).
    BackendProbe,
    /// Unioning per-shard partial answers into one result.
    AnswerUnion,
    /// Publishing an answer to the ticket and fanning it out to
    /// duplicate waiters.
    TicketDelivery,
    /// Applying one delta batch through incremental maintenance.
    DeltaApply,
    /// Rewriting a stored view's sorted run to fold its overlay in.
    Compaction,
    /// Time a submitter spent blocked at the admission gate before its
    /// request was accepted (only the `Block` and `SemaphoreGate`
    /// policies can wait; shed requests record nothing here).
    AdmissionWait,
}

impl StageId {
    /// Number of stages.
    pub const COUNT: usize = 9;

    /// Every stage, in canonical export order.
    pub const ALL: [StageId; Self::COUNT] = [
        StageId::QueueWait,
        StageId::CacheLookup,
        StageId::Coalesce,
        StageId::BackendProbe,
        StageId::AnswerUnion,
        StageId::TicketDelivery,
        StageId::DeltaApply,
        StageId::Compaction,
        StageId::AdmissionWait,
    ];

    /// Stable snake_case name used as the `stage` label in exports.
    pub fn name(self) -> &'static str {
        match self {
            StageId::QueueWait => "queue_wait",
            StageId::CacheLookup => "cache_lookup",
            StageId::Coalesce => "coalesce",
            StageId::BackendProbe => "backend_probe",
            StageId::AnswerUnion => "answer_union",
            StageId::TicketDelivery => "ticket_delivery",
            StageId::DeltaApply => "delta_apply",
            StageId::Compaction => "compaction",
            StageId::AdmissionWait => "admission_wait",
        }
    }

    #[inline]
    pub(crate) fn index(self) -> usize {
        self as usize
    }
}

/// Monotonic event counters recorded by the serving stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CounterId {
    /// Successful steals in the work-stealing pool.
    PoolSteals,
    /// Times a pool worker parked after finding no work.
    PoolParks,
    /// Contiguous segment reads issued against stored views.
    SegmentReads,
    /// Bytes fetched by those segment reads (on-disk, compressed).
    SegmentBytesRead,
    /// Logical little-endian-`u64` bytes those reads decoded to (the
    /// v1-equivalent size of the walked records); together with
    /// [`CounterId::SegmentBytesRead`] this yields the cold tier's
    /// effective compression ratio.
    SegmentBytesDecoded,
    /// Probes served while a stored view had un-compacted overlay
    /// entries pending.
    OverlayPendingProbes,
    /// Stored-view compactions performed.
    Compactions,
    /// Net tuple insertions applied by delta maintenance.
    DeltaNetInserts,
    /// Net tuple deletions applied by delta maintenance.
    DeltaNetDeletes,
    /// Probe-plan recompilations triggered by delta maintenance.
    PlanRecompiles,
    /// Requests rejected at the admission gate (shed, or timed out
    /// waiting for admission), counted per resolved ticket.
    RequestsShed,
    /// Requests dropped because their deadline passed before the
    /// backend probe, counted per resolved ticket.
    DeadlinesExpired,
    /// Requests answered in degrade mode (cheapest plan only, past
    /// the queue-depth watermark).
    DegradedAnswers,
}

impl CounterId {
    /// Number of counters.
    pub const COUNT: usize = 13;

    /// Every counter, in canonical export order.
    pub const ALL: [CounterId; Self::COUNT] = [
        CounterId::PoolSteals,
        CounterId::PoolParks,
        CounterId::SegmentReads,
        CounterId::SegmentBytesRead,
        CounterId::SegmentBytesDecoded,
        CounterId::OverlayPendingProbes,
        CounterId::Compactions,
        CounterId::DeltaNetInserts,
        CounterId::DeltaNetDeletes,
        CounterId::PlanRecompiles,
        CounterId::RequestsShed,
        CounterId::DeadlinesExpired,
        CounterId::DegradedAnswers,
    ];

    /// Prometheus metric name (already `_total`-suffixed).
    pub fn name(self) -> &'static str {
        match self {
            CounterId::PoolSteals => "cqap_pool_steals_total",
            CounterId::PoolParks => "cqap_pool_parks_total",
            CounterId::SegmentReads => "cqap_store_segment_reads_total",
            CounterId::SegmentBytesRead => "cqap_store_segment_bytes_read_total",
            CounterId::SegmentBytesDecoded => "cqap_store_segment_bytes_decoded_total",
            CounterId::OverlayPendingProbes => "cqap_store_overlay_pending_probes_total",
            CounterId::Compactions => "cqap_store_compactions_total",
            CounterId::DeltaNetInserts => "cqap_delta_net_inserts_total",
            CounterId::DeltaNetDeletes => "cqap_delta_net_deletes_total",
            CounterId::PlanRecompiles => "cqap_delta_plan_recompiles_total",
            CounterId::RequestsShed => "cqap_serve_shed_total",
            CounterId::DeadlinesExpired => "cqap_serve_deadline_expired_total",
            CounterId::DegradedAnswers => "cqap_serve_degraded_answers_total",
        }
    }

    /// One-line help string for the Prometheus exposition.
    pub fn help(self) -> &'static str {
        match self {
            CounterId::PoolSteals => "Successful steals in the work-stealing pool.",
            CounterId::PoolParks => "Times a pool worker parked after finding no work.",
            CounterId::SegmentReads => "Contiguous segment reads issued against stored views.",
            CounterId::SegmentBytesRead => {
                "On-disk (compressed) bytes fetched by stored-view segment reads."
            }
            CounterId::SegmentBytesDecoded => {
                "Logical (decoded) bytes represented by the records those segment reads walked."
            }
            CounterId::OverlayPendingProbes => {
                "Probes served while a stored view had overlay entries pending compaction."
            }
            CounterId::Compactions => "Stored-view compactions performed.",
            CounterId::DeltaNetInserts => "Net tuple insertions applied by delta maintenance.",
            CounterId::DeltaNetDeletes => "Net tuple deletions applied by delta maintenance.",
            CounterId::PlanRecompiles => {
                "Probe-plan recompilations triggered by delta maintenance."
            }
            CounterId::RequestsShed => {
                "Requests rejected at the admission gate (shed or admission timeout)."
            }
            CounterId::DeadlinesExpired => {
                "Requests dropped because their deadline passed before the backend probe."
            }
            CounterId::DegradedAnswers => {
                "Requests answered in degrade mode (cheapest plan only) past the watermark."
            }
        }
    }

    #[inline]
    pub(crate) fn index(self) -> usize {
        self as usize
    }
}

/// Instantaneous gauges (values can go up and down).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GaugeId {
    /// Jobs currently queued or executing in the serving pool.
    QueueDepth,
    /// Bytes resident in RAM for hot-tier shards of a tiered index.
    HotResidentBytes,
    /// Bytes resident in RAM for cold-tier shards (fence indexes and
    /// pending overlays; the runs themselves live on disk).
    ColdResidentBytes,
    /// Compressed on-disk bytes of the cold-tier runs (the v2 delta+
    /// varint format), as reported by the backing files' sizes.
    ColdDiskBytes,
    /// Requests currently holding an admission permit (admitted but
    /// not yet resolved); bounded by the configured admission limit.
    AdmittedPending,
}

impl GaugeId {
    /// Number of gauges.
    pub const COUNT: usize = 5;

    /// Every gauge, in canonical export order.
    pub const ALL: [GaugeId; Self::COUNT] = [
        GaugeId::QueueDepth,
        GaugeId::HotResidentBytes,
        GaugeId::ColdResidentBytes,
        GaugeId::ColdDiskBytes,
        GaugeId::AdmittedPending,
    ];

    /// Prometheus metric name.
    pub fn name(self) -> &'static str {
        match self {
            GaugeId::QueueDepth => "cqap_serve_queue_depth",
            GaugeId::HotResidentBytes => "cqap_store_hot_resident_bytes",
            GaugeId::ColdResidentBytes => "cqap_store_cold_resident_bytes",
            GaugeId::ColdDiskBytes => "cqap_store_cold_disk_bytes",
            GaugeId::AdmittedPending => "cqap_serve_admitted_pending",
        }
    }

    /// One-line help string for the Prometheus exposition.
    pub fn help(self) -> &'static str {
        match self {
            GaugeId::QueueDepth => "Jobs currently queued or executing in the serving pool.",
            GaugeId::HotResidentBytes => {
                "Bytes resident in RAM for hot-tier shards of a tiered index."
            }
            GaugeId::ColdResidentBytes => {
                "Bytes resident in RAM for cold-tier shards (fences and pending overlays)."
            }
            GaugeId::ColdDiskBytes => {
                "Compressed on-disk bytes of cold-tier stored runs (v2 delta+varint format)."
            }
            GaugeId::AdmittedPending => {
                "Requests currently holding an admission permit (admitted, not yet resolved)."
            }
        }
    }

    #[inline]
    pub(crate) fn index(self) -> usize {
        self as usize
    }
}

/// Largest shard index tracked individually by the per-shard served
/// counters; higher shard indexes fold into the last slot.
pub const MAX_SHARDS: usize = 64;

/// The shared registry of atomics a [`MetricsSink`] records into.
///
/// One recorder aggregates a whole serving stack: all workers, shards
/// and tiers record into the same fixed-layout atomics, so there is
/// nothing to merge at snapshot time unless multiple recorders are in
/// play (see [`MetricsSnapshot::merge`]).
#[derive(Debug)]
pub struct Recorder {
    stages: [LatencyHistogram; StageId::COUNT],
    counters: [AtomicU64; CounterId::COUNT],
    gauges: [AtomicI64; GaugeId::COUNT],
    shard_served: [AtomicU64; MAX_SHARDS],
}

impl Default for Recorder {
    fn default() -> Self {
        Self::new()
    }
}

impl Recorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self {
            stages: std::array::from_fn(|_| LatencyHistogram::new()),
            counters: [const { AtomicU64::new(0) }; CounterId::COUNT],
            gauges: [const { AtomicI64::new(0) }; GaugeId::COUNT],
            shard_served: [const { AtomicU64::new(0) }; MAX_SHARDS],
        }
    }

    /// The live histogram for one stage.
    pub fn stage(&self, stage: StageId) -> &LatencyHistogram {
        &self.stages[stage.index()]
    }

    /// Current value of a counter.
    pub fn counter(&self, counter: CounterId) -> u64 {
        self.counters[counter.index()].load(Ordering::Relaxed)
    }

    /// Current value of a gauge.
    pub fn gauge(&self, gauge: GaugeId) -> i64 {
        self.gauges[gauge.index()].load(Ordering::Relaxed)
    }

    /// Takes a point-in-time copy of every metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            stages: std::array::from_fn(|i| self.stages[i].snapshot()),
            counters: std::array::from_fn(|i| self.counters[i].load(Ordering::Relaxed)),
            gauges: std::array::from_fn(|i| self.gauges[i].load(Ordering::Relaxed)),
            shard_served: {
                let last = self
                    .shard_served
                    .iter()
                    .rposition(|c| c.load(Ordering::Relaxed) > 0)
                    .map_or(0, |i| i + 1);
                self.shard_served[..last]
                    .iter()
                    .map(|c| c.load(Ordering::Relaxed))
                    .collect()
            },
        }
    }
}

/// A cheap-to-clone, possibly-disabled handle to a [`Recorder`].
///
/// This is the seam the serving stack is instrumented through: layers
/// hold a sink by value and call its recording methods unconditionally.
/// A disabled sink short-circuits on a null check; an attached sink
/// performs relaxed atomic updates. Neither path allocates.
///
/// A sink may additionally carry a [`FlightRecorder`]
/// ([`with_tracer`](Self::with_tracer)): request-lifecycle laps then
/// also write compact ring events for sampled requests, and a
/// per-clone shard label ([`with_shard_label`](Self::with_shard_label))
/// stamps those events with the shard that produced them.
#[derive(Clone, Default)]
pub struct MetricsSink {
    recorder: Option<Arc<Recorder>>,
    tracer: Option<Arc<FlightRecorder>>,
    shard: u16,
}

impl fmt::Debug for MetricsSink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MetricsSink")
            .field("enabled", &self.is_enabled())
            .field("traced", &self.tracer.is_some())
            .field("shard", &self.shard)
            .finish()
    }
}

impl MetricsSink {
    /// A sink that records nothing (the default).
    pub fn disabled() -> Self {
        Self::default()
    }

    /// A sink attached to a fresh recorder.
    pub fn recording() -> Self {
        Self::attached(Arc::new(Recorder::new()))
    }

    /// A sink attached to an existing shared recorder.
    pub fn attached(recorder: Arc<Recorder>) -> Self {
        Self {
            recorder: Some(recorder),
            tracer: None,
            shard: 0,
        }
    }

    /// This sink with a flight recorder attached: sampled requests'
    /// lifecycle laps also write ring trace events.
    pub fn with_tracer(mut self, tracer: Arc<FlightRecorder>) -> Self {
        self.tracer = Some(tracer);
        self
    }

    /// A clone of this sink whose trace events are stamped with
    /// `shard` — the router hands one to each shard runtime so
    /// scatter-gather legs stay distinguishable in a drained trace.
    pub fn with_shard_label(&self, shard: u16) -> Self {
        let mut sink = self.clone();
        sink.shard = shard;
        sink
    }

    /// Whether this sink is attached to a recorder.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.recorder.is_some()
    }

    /// The recorder behind this sink, if attached.
    pub fn recorder(&self) -> Option<&Arc<Recorder>> {
        self.recorder.as_ref()
    }

    /// The flight recorder behind this sink, if attached.
    pub fn tracer(&self) -> Option<&Arc<FlightRecorder>> {
        self.tracer.as_ref()
    }

    /// Allocates a trace id for a new request per the tracer's
    /// sampling policy; [`TraceId::NONE`] when no tracer is attached
    /// or the request is not sampled.
    #[inline]
    pub fn trace_begin(&self) -> TraceId {
        match &self.tracer {
            Some(t) => t.begin(),
            None => TraceId::NONE,
        }
    }

    /// Completes a trace (writes its root event when the sampling
    /// policy commits it). No-op without a tracer or for an unsampled
    /// id.
    #[inline]
    pub fn trace_finish(&self, id: TraceId, total_ns: u64) {
        if let Some(t) = &self.tracer {
            t.finish(id, total_ns);
        }
    }

    /// Records one trace event spanning `start..end` against `id`,
    /// stamped with this sink's shard label.
    #[inline]
    pub fn trace_span(
        &self,
        id: TraceId,
        stage: TraceStage,
        start: Instant,
        end: Instant,
        payload: u64,
    ) {
        if let Some(t) = &self.tracer {
            t.record_span(id, stage, self.shard, start, end, payload);
        }
    }

    /// Starts a leaf-event clock iff the *current thread's* trace
    /// (see [`trace::current`]) is sampled and a tracer is attached —
    /// unsampled requests skip even the clock read. Pair with
    /// [`trace_leaf`](Self::trace_leaf).
    #[inline]
    pub fn trace_mark(&self) -> Option<Instant> {
        if self.tracer.is_some() && trace::current().is_sampled() {
            Some(Instant::now())
        } else {
            None
        }
    }

    /// Starts a clock for a background (request-independent) event
    /// whenever a tracer is attached. Pair with
    /// [`trace_leaf`](Self::trace_leaf).
    #[inline]
    pub fn trace_mark_background(&self) -> Option<Instant> {
        self.tracer.as_ref().map(|_| Instant::now())
    }

    /// Completes a leaf event started by [`trace_mark`](Self::trace_mark)
    /// or [`trace_mark_background`](Self::trace_mark_background),
    /// attributing it to the current thread's trace.
    #[inline]
    pub fn trace_leaf(&self, start: Option<Instant>, stage: TraceStage, payload: u64) {
        if let (Some(t), Some(start)) = (&self.tracer, start) {
            t.record_span(trace::current(), stage, self.shard, start, Instant::now(), payload);
        }
    }

    /// Snapshots the attached recorder, or `None` when disabled.
    pub fn snapshot(&self) -> Option<MetricsSnapshot> {
        self.recorder.as_deref().map(Recorder::snapshot)
    }

    /// Adds `n` to a counter.
    #[inline]
    pub fn add(&self, counter: CounterId, n: u64) {
        if let Some(r) = &self.recorder {
            r.counters[counter.index()].fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Increments a counter by one.
    #[inline]
    pub fn incr(&self, counter: CounterId) {
        self.add(counter, 1);
    }

    /// Moves a gauge by `delta` (may be negative).
    #[inline]
    pub fn gauge_add(&self, gauge: GaugeId, delta: i64) {
        if let Some(r) = &self.recorder {
            r.gauges[gauge.index()].fetch_add(delta, Ordering::Relaxed);
        }
    }

    /// Sets a gauge to an absolute value — for level-style gauges
    /// (resident bytes) republished from a source of truth rather
    /// than maintained by increments.
    #[inline]
    pub fn gauge_set(&self, gauge: GaugeId, value: i64) {
        if let Some(r) = &self.recorder {
            r.gauges[gauge.index()].store(value, Ordering::Relaxed);
        }
    }

    /// Records a stage latency of `ns` nanoseconds.
    #[inline]
    pub fn observe_ns(&self, stage: StageId, ns: u64) {
        if let Some(r) = &self.recorder {
            r.stages[stage.index()].record_ns(ns);
        }
    }

    /// Counts one request served by shard `shard`; indexes past
    /// [`MAX_SHARDS`] fold into the last slot.
    #[inline]
    pub fn shard_served(&self, shard: usize) {
        if let Some(r) = &self.recorder {
            r.shard_served[shard.min(MAX_SHARDS - 1)].fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Starts a stage timer.
    ///
    /// On a disabled sink this skips the clock read entirely and the
    /// eventual [`stop`](Self::stop) is a no-op.
    #[inline]
    pub fn start(&self) -> StageTimer {
        StageTimer(self.recorder.as_ref().map(|_| Instant::now()))
    }

    /// Stops a timer and records the elapsed time against `stage`.
    #[inline]
    pub fn stop(&self, timer: StageTimer, stage: StageId) {
        if let (Some(r), Some(started)) = (&self.recorder, timer.0) {
            r.stages[stage.index()]
                .record_ns(u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX));
        }
    }
}

/// A pending stage measurement from [`MetricsSink::start`].
///
/// Holds `None` when the sink was disabled, so no clock was read.
#[derive(Debug)]
#[must_use = "pass the timer back to MetricsSink::stop to record it"]
pub struct StageTimer(Option<Instant>);

impl StageTimer {
    /// A timer that records nothing when stopped.
    pub fn disarmed() -> Self {
        StageTimer(None)
    }

    /// Nanoseconds since the timer started, or `None` for a disarmed
    /// timer — for callers that accumulate several timed segments into
    /// a single observation before recording it.
    pub fn elapsed_ns(&self) -> Option<u64> {
        self.0
            .map(|started| u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX))
    }
}

/// A per-worker span recorder that splits one request's lifecycle into
/// consecutive stage laps.
///
/// Each [`lap`](Self::lap) records the time since the previous lap (or
/// since construction) against the given stage and restarts the clock,
/// so a worker times `probe → delivery` with a single span and two lap
/// calls — one clock read per boundary instead of two per stage.
///
/// A span built with [`begin_traced`](Self::begin_traced) additionally
/// writes each lap as a flight-recorder event when its request is
/// sampled, so one request's stage breakdown is reconstructible from
/// a drained trace.
#[derive(Debug)]
pub struct RequestSpan<'a> {
    sink: &'a MetricsSink,
    last: Option<Instant>,
    trace: TraceId,
}

impl<'a> RequestSpan<'a> {
    /// Starts a span; reads the clock only if the sink is enabled.
    #[inline]
    pub fn begin(sink: &'a MetricsSink) -> Self {
        Self::begin_traced(sink, TraceId::NONE)
    }

    /// Starts a span whose laps also record trace events against
    /// `trace` (when sampled and a tracer is attached).
    #[inline]
    pub fn begin_traced(sink: &'a MetricsSink, trace: TraceId) -> Self {
        Self {
            last: (sink.recorder.is_some() || trace.is_sampled())
                .then(Instant::now),
            sink,
            trace,
        }
    }

    /// The trace id this span records against.
    #[inline]
    pub fn trace(&self) -> TraceId {
        self.trace
    }

    /// Records the time since the last lap against `stage` and
    /// restarts the clock.
    #[inline]
    pub fn lap(&mut self, stage: StageId) {
        if let Some(last) = self.last {
            let now = Instant::now();
            self.sink.observe_ns(
                stage,
                u64::try_from(now.duration_since(last).as_nanos()).unwrap_or(u64::MAX),
            );
            if self.trace.is_sampled() {
                self.sink.trace_span(self.trace, stage.into(), last, now, 0);
            }
            self.last = Some(now);
        }
    }

    /// Restarts the clock without recording (skips uninteresting gaps).
    #[inline]
    pub fn skip(&mut self) {
        if self.last.is_some() {
            self.last = Some(Instant::now());
        }
    }
}
