//! Property test: overload control **conserves requests**.
//!
//! Under every admission policy, request mix, and deadline mix, each
//! submitted request resolves to exactly one of {answered, shed,
//! deadline-expired} — nothing is double-counted, nothing vanishes, and
//! no ticket is left unresolved at shutdown. The runtime's own counters
//! must agree exactly with the client-side classification, and every
//! answered request must equal the unthrottled reference answer: load
//! shedding may drop work, but it must never corrupt it.

use std::sync::Arc;
use std::time::{Duration, Instant};

use cqap_indexes::TwoReachIndex;
use cqap_query::workload::{zipf_pair_requests, Graph};
use cqap_serve::{AdmissionConfig, ServeConfig, ServeRuntime};
use proptest::prelude::*;

/// The three gate policies under test, by case index. `Block` gets a
/// generous timeout so a pathologically slow CI machine degrades into
/// shedding rather than wedging the test.
fn admission(policy: usize, max_pending: usize) -> AdmissionConfig {
    match policy {
        0 => AdmissionConfig::shed(max_pending),
        1 => AdmissionConfig::block(max_pending, Some(Duration::from_secs(10))),
        _ => AdmissionConfig::semaphore(max_pending),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Conservation: `submitted == answered + shed + deadline_expired`,
    /// exactly, on both the client's ledger and the runtime's counters —
    /// across policies, tiny gate limits, and a mixed deadline stream.
    #[test]
    fn every_request_is_answered_shed_or_expired(
        seed in 0u64..10_000,
        n in 100usize..300,
        max_pending in 1usize..6,
        policy in 0usize..3,
    ) {
        let graph = Graph::random(50, 220, seed);
        let index = Arc::new(TwoReachIndex::build(&graph, 20_000));
        let requests = zipf_pair_requests(&graph, n, 1.1, seed ^ 0xbeef);
        let reference: Vec<bool> =
            requests.iter().map(|&(u, v)| index.query(u, v)).collect();

        let runtime = ServeRuntime::with_config(
            Arc::clone(&index),
            ServeConfig {
                threads: 2,
                cache_capacity: 32,
                admission: Some(admission(policy, max_pending)),
                ..ServeConfig::default()
            },
        );

        // Mixed deadline stream: most requests are deadline-free, every
        // 5th carries a comfortable deadline, every 10th an immediate one
        // (already or nearly expired at the gate). Whether a given ticket
        // lands in `answered` or `expired` is timing-dependent; the
        // conservation identity must hold either way.
        let tickets: Vec<_> = requests
            .iter()
            .enumerate()
            .map(|(i, &request)| {
                if i % 10 == 9 {
                    runtime.submit_with_deadline(request, Instant::now())
                } else if i % 5 == 4 {
                    runtime.submit_with_deadline(
                        request,
                        Instant::now() + Duration::from_secs(30),
                    )
                } else {
                    runtime.submit(request)
                }
            })
            .collect();

        // Every ticket resolves — `wait` returning at all is the "no
        // request vanishes" half of the property.
        let (mut answered, mut shed, mut expired) = (0u64, 0u64, 0u64);
        for (position, ticket) in tickets.into_iter().enumerate() {
            match ticket.wait() {
                Ok(answer) => {
                    answered += 1;
                    prop_assert_eq!(
                        *answer, reference[position],
                        "throttled answer diverged at position {}", position
                    );
                }
                Err(error) if error.is_overloaded() => shed += 1,
                Err(error) if error.is_deadline_expired() => expired += 1,
                Err(error) => prop_assert!(false, "unexpected error: {}", error),
            }
        }

        // Client ledger conserves by construction; the runtime's counters
        // must agree with it exactly (shed and expired tickets are counted
        // per resolved ticket, answered is the remainder).
        prop_assert_eq!(answered + shed + expired, n as u64);
        let stats = runtime.stats();
        prop_assert_eq!(stats.served, n as u64);
        prop_assert_eq!(stats.shed, shed);
        prop_assert_eq!(stats.deadline_expired, expired);
        prop_assert_eq!(stats.errors, 0);
        // Answered requests were really served by the backend stack.
        // Every request that passed both the gate and the door-side
        // deadline check shows up as exactly one cache hit, miss, or
        // in-flight join — so the backend totals cover the answered
        // count, overshooting only by tickets that expired *after*
        // lookup (queued past their deadline).
        let backend = stats.cache_hits + stats.cache_misses + stats.inflight_hits;
        prop_assert!(backend >= answered, "backend {} < answered {}", backend, answered);
        prop_assert!(
            backend <= answered + expired,
            "backend {} > answered {} + expired {}", backend, answered, expired
        );
    }

    /// Shutdown flushes, never strands: tickets still unresolved when the
    /// runtime drops are answered (or typed-failed) by the drain — a
    /// `wait` after drop returns rather than hanging.
    #[test]
    fn no_ticket_is_left_unresolved_at_shutdown(
        seed in 0u64..10_000,
        policy in 0usize..3,
    ) {
        let graph = Graph::random(40, 160, seed);
        let index = Arc::new(TwoReachIndex::build(&graph, 20_000));
        let requests = zipf_pair_requests(&graph, 64, 1.1, seed ^ 0x50de);
        let reference: Vec<bool> =
            requests.iter().map(|&(u, v)| index.query(u, v)).collect();

        let runtime = ServeRuntime::with_config(
            Arc::clone(&index),
            ServeConfig {
                threads: 2,
                cache_capacity: 16,
                admission: Some(admission(policy, 4)),
                ..ServeConfig::default()
            },
        );
        let tickets: Vec<_> = requests
            .iter()
            .map(|&request| runtime.submit(request))
            .collect();
        // Drop with every ticket still in hand: the pool drains its queue
        // before the workers join, so in-flight probes complete.
        drop(runtime);
        for (position, ticket) in tickets.into_iter().enumerate() {
            match ticket.wait() {
                Ok(answer) => prop_assert_eq!(*answer, reference[position]),
                Err(error) => prop_assert!(
                    error.is_overloaded(),
                    "post-shutdown ticket resolved with unexpected error: {}",
                    error
                ),
            }
        }
    }
}
