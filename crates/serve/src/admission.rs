//! Admission control: the bounded front door of the serving runtime.
//!
//! An unbounded runtime accepts every submission, so an open-loop
//! overload (arrivals faster than service) grows the pool queue — and
//! every request's queue wait — without limit. An [`AdmissionGate`]
//! caps how many requests may be in flight at once and applies one of
//! three [`AdmissionPolicy`]s to the excess:
//!
//! * [`Block`](AdmissionPolicy::Block) — backpressure: the submitter
//!   waits (optionally up to a timeout) until a permit frees up.
//! * [`Shed`](AdmissionPolicy::Shed) — load shedding: the newest
//!   request is rejected immediately with a typed
//!   [`ServeError::Overloaded`], keeping the wait of *admitted*
//!   requests bounded.
//! * [`SemaphoreGate`](AdmissionPolicy::SemaphoreGate) — closed-loop
//!   fairness: submitters wait like `Block`, but are admitted in
//!   strict FIFO ticket order, so no submitter can starve behind a
//!   barger.
//!
//! Admission is enforced at `submit`/`submit_traced`/`serve_batch` in
//! the runtime, so everything layered on top (`ShardRouter`, tiered
//! backends) inherits the bound unchanged. A granted permit is RAII
//! ([`AdmissionPermit`]): it rides into the worker closure and is
//! released when the request resolves — including on a panicking
//! backend, because the pool catches unwinds and drops the closure.
//!
//! [`RetryPolicy`] is the client-side complement for the `Shed`
//! policy: budget-capped, full-jitter exponential backoff on
//! [`Overloaded`](ServeError::Overloaded) rejections.

use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use cqap_obs::{GaugeId, MetricsSink, StageId, TraceId, TraceStage};

/// Typed serving errors, re-exported from the workspace error type so
/// callers can match `ServeError::Overloaded` / `ServeError::DeadlineExpired`.
pub use cqap_common::CqapError as ServeError;

/// What happens to a submission that arrives while the admission gate
/// is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionPolicy {
    /// Backpressure: the submitting thread waits until a permit frees
    /// up, or until `timeout` elapses (then the request is rejected
    /// with [`ServeError::Overloaded`] and counted as shed). `None`
    /// waits indefinitely.
    Block {
        /// Longest a submitter may wait for admission.
        timeout: Option<Duration>,
    },
    /// Load shedding: reject the newest request immediately with
    /// [`ServeError::Overloaded`]. The open-loop-safe choice — the
    /// submitter never blocks and admitted requests keep a bounded
    /// queue wait.
    Shed,
    /// Closed-loop fairness: like `Block` without a timeout, but
    /// waiting submitters are admitted in strict FIFO ticket order.
    SemaphoreGate,
}

/// Bounded-admission configuration for a serving runtime.
///
/// `Copy`, like the rest of `ServeConfig`: sinks and other handles
/// enter the runtime separately, never through configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionConfig {
    /// Maximum requests holding an admission permit at once (clamped
    /// to at least 1).
    pub max_pending: usize,
    /// What happens to submissions past the bound.
    pub policy: AdmissionPolicy,
}

impl AdmissionConfig {
    /// Shed (immediately reject) everything past `max_pending`.
    pub fn shed(max_pending: usize) -> Self {
        AdmissionConfig {
            max_pending,
            policy: AdmissionPolicy::Shed,
        }
    }

    /// Block submitters past `max_pending`, up to `timeout` (`None`
    /// waits indefinitely).
    pub fn block(max_pending: usize, timeout: Option<Duration>) -> Self {
        AdmissionConfig {
            max_pending,
            policy: AdmissionPolicy::Block { timeout },
        }
    }

    /// FIFO-fair blocking admission at `max_pending` permits.
    pub fn semaphore(max_pending: usize) -> Self {
        AdmissionConfig {
            max_pending,
            policy: AdmissionPolicy::SemaphoreGate,
        }
    }
}

/// Gate bookkeeping under one mutex: the permit count plus the FIFO
/// ticket pair used by [`AdmissionPolicy::SemaphoreGate`].
#[derive(Debug)]
struct GateState {
    /// Permits currently held.
    admitted: usize,
    /// Next ticket to hand to a FIFO waiter.
    next_ticket: u64,
    /// Ticket currently allowed to take a permit.
    now_serving: u64,
}

/// The runtime's admission gate: a counting semaphore with a policy
/// for the full case. See the [module docs](self).
#[derive(Debug)]
pub(crate) struct AdmissionGate {
    limit: usize,
    policy: AdmissionPolicy,
    state: Mutex<GateState>,
    freed: Condvar,
    sink: MetricsSink,
}

impl AdmissionGate {
    pub(crate) fn new(config: AdmissionConfig, sink: MetricsSink) -> Arc<Self> {
        Arc::new(AdmissionGate {
            limit: config.max_pending.max(1),
            policy: config.policy,
            state: Mutex::new(GateState {
                admitted: 0,
                next_ticket: 0,
                now_serving: 0,
            }),
            freed: Condvar::new(),
            sink,
        })
    }

    /// Tries to take a permit for one request, applying the gate's
    /// policy when full. Waiting time is observed against
    /// [`StageId::AdmissionWait`] (and as a trace span when `trace`
    /// is sampled); a rejection returns [`ServeError::Overloaded`]
    /// and the caller counts the shed.
    pub(crate) fn admit(
        self: &Arc<Self>,
        trace: TraceId,
    ) -> Result<AdmissionPermit, ServeError> {
        let timed = (self.sink.is_enabled() || trace.is_sampled())
            && !matches!(self.policy, AdmissionPolicy::Shed);
        let started = timed.then(Instant::now);
        let mut state = self.state.lock().expect("admission gate poisoned");
        match self.policy {
            AdmissionPolicy::Shed => {
                if state.admitted >= self.limit {
                    return Err(ServeError::Overloaded {
                        pending: state.admitted,
                        limit: self.limit,
                    });
                }
                state.admitted += 1;
            }
            AdmissionPolicy::Block { timeout } => {
                let deadline = timeout.map(|t| Instant::now() + t);
                while state.admitted >= self.limit {
                    state = match deadline {
                        None => self.freed.wait(state).expect("admission gate poisoned"),
                        Some(deadline) => {
                            let left = deadline.saturating_duration_since(Instant::now());
                            if left.is_zero() {
                                self.finish_wait(started, trace);
                                return Err(ServeError::Overloaded {
                                    pending: state.admitted,
                                    limit: self.limit,
                                });
                            }
                            self.freed
                                .wait_timeout(state, left)
                                .expect("admission gate poisoned")
                                .0
                        }
                    };
                }
                state.admitted += 1;
            }
            AdmissionPolicy::SemaphoreGate => {
                let ticket = state.next_ticket;
                state.next_ticket += 1;
                while state.now_serving < ticket || state.admitted >= self.limit {
                    state = self.freed.wait(state).expect("admission gate poisoned");
                }
                state.now_serving += 1;
                state.admitted += 1;
                // Wake the next ticket holder: admission order is the
                // ticket order, but wakeups are not.
                self.freed.notify_all();
            }
        }
        drop(state);
        self.sink.gauge_add(GaugeId::AdmittedPending, 1);
        self.finish_wait(started, trace);
        Ok(AdmissionPermit {
            gate: Arc::clone(self),
        })
    }

    /// Records the admission wait that ended now.
    fn finish_wait(&self, started: Option<Instant>, trace: TraceId) {
        if let Some(started) = started {
            let now = Instant::now();
            let ns = u64::try_from(now.duration_since(started).as_nanos()).unwrap_or(u64::MAX);
            self.sink.observe_ns(StageId::AdmissionWait, ns);
            if trace.is_sampled() {
                self.sink
                    .trace_span(trace, TraceStage::AdmissionWait, started, now, 0);
            }
        }
    }

    fn release(&self) {
        let mut state = self.state.lock().expect("admission gate poisoned");
        debug_assert!(state.admitted > 0, "permit released twice");
        state.admitted = state.admitted.saturating_sub(1);
        drop(state);
        self.sink.gauge_add(GaugeId::AdmittedPending, -1);
        self.freed.notify_all();
    }
}

/// An RAII admission permit: one admitted request's slot at the gate,
/// released on drop.
///
/// The runtime moves the permit into the worker closure serving the
/// request, so the slot frees exactly when the request resolves —
/// even when the backend panics, because the pool catches the unwind
/// and drops the closure's captures.
#[derive(Debug)]
pub(crate) struct AdmissionPermit {
    gate: Arc<AdmissionGate>,
}

impl Drop for AdmissionPermit {
    fn drop(&mut self) {
        self.gate.release();
    }
}

/// Budget-capped, full-jitter exponential backoff for retrying
/// [`ServeError::Overloaded`] rejections from a shedding runtime.
///
/// Attempt `k` (0-based) sleeps a uniform-random duration in
/// `[0, min(max_delay, base_delay · 2^k)]` — "full jitter", which
/// decorrelates retrying clients instead of re-synchronising them
/// into the next overload spike. The jitter PRNG is seeded, so a
/// given policy produces a deterministic delay sequence (tests stay
/// reproducible).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries after the initial attempt (the total budget is
    /// `1 + max_retries` attempts).
    pub max_retries: u32,
    /// Backoff scale for the first retry.
    pub base_delay: Duration,
    /// Upper bound on any single backoff sleep.
    pub max_delay: Duration,
    /// Seed for the jitter PRNG.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 3,
            base_delay: Duration::from_millis(1),
            max_delay: Duration::from_millis(50),
            jitter_seed: 0x9E37_79B9_7F4A_7C15,
        }
    }
}

impl RetryPolicy {
    /// The jittered sleep before retry number `attempt` (0-based).
    pub fn backoff(&self, attempt: u32) -> Duration {
        let ceiling = self
            .base_delay
            .saturating_mul(1u32.checked_shl(attempt).unwrap_or(u32::MAX))
            .min(self.max_delay);
        // splitmix64 of (seed, attempt): cheap, deterministic, and
        // well-distributed — no rand dependency on the serve crate.
        let mut z = self
            .jitter_seed
            .wrapping_add(u64::from(attempt).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        let fraction = (z >> 11) as f64 / (1u64 << 53) as f64;
        ceiling.mul_f64(fraction)
    }
}

/// Runs `attempt` under `policy`, sleeping a jittered backoff and
/// retrying while it returns [`ServeError::Overloaded`] and the retry
/// budget lasts. Any other outcome (success, other errors, budget
/// exhausted) is returned as-is.
pub fn retry_overloaded<A>(
    policy: RetryPolicy,
    mut attempt: impl FnMut() -> Result<A, ServeError>,
) -> Result<A, ServeError> {
    let mut tries = 0;
    loop {
        match attempt() {
            Err(e) if e.is_overloaded() && tries < policy.max_retries => {
                std::thread::sleep(policy.backoff(tries));
                tries += 1;
            }
            other => return other,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn shed_rejects_past_the_limit_and_frees_on_drop() {
        let gate = AdmissionGate::new(AdmissionConfig::shed(2), MetricsSink::disabled());
        let a = gate.admit(TraceId::NONE).expect("first");
        let _b = gate.admit(TraceId::NONE).expect("second");
        let err = gate.admit(TraceId::NONE).expect_err("third is shed");
        assert_eq!(err, ServeError::Overloaded { pending: 2, limit: 2 });
        drop(a);
        gate.admit(TraceId::NONE).expect("slot freed by drop");
    }

    #[test]
    fn block_timeout_rejects_after_waiting() {
        let gate = AdmissionGate::new(
            AdmissionConfig::block(1, Some(Duration::from_millis(5))),
            MetricsSink::recording(),
        );
        let _held = gate.admit(TraceId::NONE).expect("first");
        let started = Instant::now();
        let err = gate.admit(TraceId::NONE).expect_err("times out");
        assert!(err.is_overloaded());
        assert!(started.elapsed() >= Duration::from_millis(5));
        // The wait landed in the AdmissionWait histogram.
        let snap = gate.sink.snapshot().expect("recording");
        assert!(snap.stage(StageId::AdmissionWait).count >= 1);
    }

    #[test]
    fn block_wakes_when_a_permit_frees() {
        let gate = AdmissionGate::new(AdmissionConfig::block(1, None), MetricsSink::disabled());
        let held = gate.admit(TraceId::NONE).expect("first");
        let gate2 = Arc::clone(&gate);
        let waiter = std::thread::spawn(move || {
            gate2.admit(TraceId::NONE).expect("eventually admitted")
        });
        std::thread::sleep(Duration::from_millis(10));
        drop(held);
        let _permit = waiter.join().expect("no panic");
    }

    #[test]
    fn semaphore_gate_admits_waiters_in_fifo_order() {
        let gate = AdmissionGate::new(AdmissionConfig::semaphore(1), MetricsSink::disabled());
        let held = gate.admit(TraceId::NONE).expect("first");
        let order = Arc::new(Mutex::new(Vec::new()));
        let mut waiters = Vec::new();
        for i in 0..4usize {
            let gate2 = Arc::clone(&gate);
            let order = Arc::clone(&order);
            waiters.push(std::thread::spawn(move || {
                let permit = gate2.admit(TraceId::NONE).expect("admitted");
                // The single permit serialises these pushes in
                // admission order.
                order.lock().unwrap().push(i);
                drop(permit);
            }));
            // Wait until this waiter has taken its FIFO ticket before
            // spawning the next, so arrival order is the spawn order
            // (`held` took ticket 0).
            while gate.state.lock().unwrap().next_ticket != (i + 2) as u64 {
                std::thread::yield_now();
            }
        }
        drop(held);
        for w in waiters {
            w.join().expect("no panic");
        }
        assert_eq!(*order.lock().unwrap(), vec![0, 1, 2, 3], "FIFO admission");
    }

    #[test]
    fn retry_policy_backoff_is_deterministic_capped_jitter() {
        let policy = RetryPolicy::default();
        for attempt in 0..8 {
            let d = policy.backoff(attempt);
            assert_eq!(d, policy.backoff(attempt), "deterministic per attempt");
            let ceiling = policy
                .base_delay
                .saturating_mul(1u32.checked_shl(attempt).unwrap_or(u32::MAX))
                .min(policy.max_delay);
            assert!(d <= ceiling, "jitter stays under the exponential ceiling");
        }
        // Different seeds decorrelate.
        let other = RetryPolicy {
            jitter_seed: 7,
            ..policy
        };
        assert!((0..8).any(|a| policy.backoff(a) != other.backoff(a)));
    }

    #[test]
    fn retry_overloaded_retries_within_budget_only() {
        let policy = RetryPolicy {
            max_retries: 3,
            base_delay: Duration::from_micros(10),
            max_delay: Duration::from_micros(50),
            ..RetryPolicy::default()
        };
        let calls = AtomicUsize::new(0);
        let overloaded = || ServeError::Overloaded { pending: 1, limit: 1 };
        // Succeeds on the third attempt.
        let out = retry_overloaded(policy, || {
            if calls.fetch_add(1, Ordering::SeqCst) < 2 {
                Err(overloaded())
            } else {
                Ok(42)
            }
        });
        assert_eq!(out, Ok(42));
        assert_eq!(calls.load(Ordering::SeqCst), 3);
        // Budget exhausted: 1 + max_retries attempts, then the error.
        calls.store(0, Ordering::SeqCst);
        let out: Result<u32, _> = retry_overloaded(policy, || {
            calls.fetch_add(1, Ordering::SeqCst);
            Err(overloaded())
        });
        assert!(out.expect_err("budget spent").is_overloaded());
        assert_eq!(calls.load(Ordering::SeqCst), 4);
        // Non-overload errors are not retried.
        calls.store(0, Ordering::SeqCst);
        let out: Result<u32, _> =
            retry_overloaded(policy, || {
                calls.fetch_add(1, Ordering::SeqCst);
                Err(ServeError::Other("backend".into()))
            });
        assert!(out.is_err());
        assert_eq!(calls.load(Ordering::SeqCst), 1);
    }
}
