//! A std-only work-stealing thread pool.
//!
//! The build environment has no registry access, so instead of rayon this
//! module implements the same scheduling idea directly on `std::thread`:
//! every worker owns a deque of jobs, new work is pushed round-robin across
//! the worker deques, a worker pops from the front of its own deque, and a
//! worker that runs dry *steals half* of a random victim's deque from the
//! back. Round-robin keeps the common (uniform) case contention-free;
//! stealing rebalances skewed batches where a few requests are much more
//! expensive than the rest — exactly the regime the heavy/light analyses of
//! the paper produce.
//!
//! Idle workers park on a condvar behind a sleeper count, with a
//! Dekker-style SeqCst pairing between `execute` (bump `pending`, then
//! read `sleepers`) and the parking worker (bump `sleepers`, then re-check
//! `pending` under the sleep lock): in the single total order one side
//! always observes the other, so wakeups cannot be lost and an idle pool
//! burns no CPU. A long timeout on the wait is kept purely as defense in
//! depth.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use cqap_obs::{CounterId, GaugeId, MetricsSink, StageId, TraceId, TraceStage};

type Job = Box<dyn FnOnce() + Send + 'static>;

struct Shared {
    /// One deque per worker; workers pop the front of their own deque and
    /// steal from the back of others.
    queues: Vec<Mutex<VecDeque<Job>>>,
    /// Jobs pushed but not yet popped, used by sleepers to decide whether to
    /// park.
    pending: AtomicUsize,
    /// Workers currently parked (or about to park) on `wakeup`; `execute`
    /// only pays for a notify when this is non-zero.
    sleepers: AtomicUsize,
    shutdown: AtomicBool,
    sleep_lock: Mutex<()>,
    wakeup: Condvar,
    /// Observability seam: steal/park counters and the queue-depth
    /// gauge. Disabled by default, in which case every recording call
    /// is a null check.
    sink: MetricsSink,
}

/// A fixed-size work-stealing thread pool.
///
/// Jobs are `FnOnce() + Send` closures. Dropping the pool waits for every
/// queued job to finish, then joins the workers.
pub struct WorkStealingPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    next_queue: AtomicUsize,
}

impl WorkStealingPool {
    /// Creates a pool with `threads` workers (at least one).
    pub fn new(threads: usize) -> Self {
        WorkStealingPool::with_sink(threads, MetricsSink::disabled())
    }

    /// Creates a pool with `threads` workers recording into `sink`:
    /// per-job queue-wait latency, steal and park counts, and the live
    /// queue-depth gauge (jobs queued or executing).
    pub fn with_sink(threads: usize, sink: MetricsSink) -> Self {
        let threads = threads.max(1);
        let shared = Arc::new(Shared {
            queues: (0..threads).map(|_| Mutex::new(VecDeque::new())).collect(),
            pending: AtomicUsize::new(0),
            sleepers: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
            sleep_lock: Mutex::new(()),
            wakeup: Condvar::new(),
            sink,
        });
        let workers = (0..threads)
            .map(|id| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("cqap-serve-{id}"))
                    .spawn(move || worker_loop(id, &shared))
                    .expect("spawning a serve worker")
            })
            .collect();
        WorkStealingPool {
            shared,
            workers,
            next_queue: AtomicUsize::new(0),
        }
    }

    /// A pool sized to the machine (`std::thread::available_parallelism`).
    pub fn with_default_size() -> Self {
        WorkStealingPool::new(default_threads())
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Schedules a job. Jobs are distributed round-robin over the worker
    /// deques; an idle worker steals if the assigned worker is busy.
    pub fn execute(&self, job: impl FnOnce() + Send + 'static) {
        self.execute_traced(TraceId::NONE, job);
    }

    /// Schedules a job on behalf of a traced request: in addition to the
    /// queue-wait histogram, a sampled `trace` gets a
    /// [`TraceStage::QueueWait`] flight-recorder event spanning the time
    /// the job sat queued before a worker picked it up.
    pub fn execute_traced(&self, trace: TraceId, job: impl FnOnce() + Send + 'static) {
        // With a live sink the job is wrapped to record how long it sat
        // queued before a worker picked it up. Exactly one Box is
        // allocated either way (the Job itself), so instrumentation
        // adds no allocation to the submit path.
        let job: Job = if self.shared.sink.is_enabled() || trace.is_sampled() {
            let sink = self.shared.sink.clone();
            let queued = Instant::now();
            Box::new(move || {
                let picked = Instant::now();
                sink.observe_ns(
                    StageId::QueueWait,
                    u64::try_from(picked.duration_since(queued).as_nanos()).unwrap_or(u64::MAX),
                );
                if trace.is_sampled() {
                    sink.trace_span(trace, TraceStage::QueueWait, queued, picked, 0);
                }
                job();
            })
        } else {
            Box::new(job)
        };
        self.shared.sink.gauge_add(GaugeId::QueueDepth, 1);
        let slot = self.next_queue.fetch_add(1, Ordering::Relaxed) % self.shared.queues.len();
        // `pending` goes up before the job is visible, so a worker that
        // pops it early can never drive the counter below zero.
        self.shared.pending.fetch_add(1, Ordering::SeqCst);
        self.shared.queues[slot]
            .lock()
            .expect("queue lock")
            .push_back(job);
        // Dekker-style pairing with the sleeper (see worker_loop): SeqCst
        // puts this `pending` bump and the `sleepers` read in one total
        // order with the sleeper's `sleepers` bump and `pending` re-check,
        // so either this thread observes the sleeper (and notifies under
        // the lock, after the sleeper parked) or the sleeper observes the
        // bumped `pending` and does not park. No wakeup can be lost.
        if self.shared.sleepers.load(Ordering::SeqCst) > 0 {
            let _guard = self.shared.sleep_lock.lock().expect("sleep lock");
            self.shared.wakeup.notify_one();
        }
    }

    /// Number of jobs pushed but not yet started.
    pub fn pending(&self) -> usize {
        self.shared.pending.load(Ordering::Acquire)
    }
}

impl Drop for WorkStealingPool {
    fn drop(&mut self) {
        // Let queued jobs drain (parked on the condvar, with the same
        // bounded timeout the workers use), then stop the workers.
        let mut guard = self.shared.sleep_lock.lock().expect("sleep lock");
        while self.shared.pending.load(Ordering::Acquire) > 0 {
            guard = self
                .shared
                .wakeup
                .wait_timeout(guard, Duration::from_millis(1))
                .expect("sleep lock")
                .0;
        }
        drop(guard);
        // Setting shutdown under the sleep lock serializes with the
        // workers' own pre-park shutdown check, so no worker can park
        // after missing this notify.
        {
            let _guard = self.shared.sleep_lock.lock().expect("sleep lock");
            self.shared.shutdown.store(true, Ordering::Release);
            self.shared.wakeup.notify_all();
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

/// The pool size used when the caller does not specify one.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

fn worker_loop(id: usize, shared: &Shared) {
    loop {
        if let Some(job) = find_job(id, shared) {
            shared.pending.fetch_sub(1, Ordering::AcqRel);
            // Isolate job panics: a panicking request must not take the
            // worker down with it (queued jobs would never run and the
            // pool's drop would wait forever). The job's result channel is
            // dropped during the unwind, which surfaces to the caller as a
            // disconnected ticket.
            let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
            shared.sink.gauge_add(GaugeId::QueueDepth, -1);
            if shared.pending.load(Ordering::Acquire) == 0 {
                // Wake anyone waiting for the queue to drain (drop).
                shared.wakeup.notify_all();
            }
            continue;
        }
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        let guard = shared.sleep_lock.lock().expect("sleep lock");
        // Register as a sleeper BEFORE re-checking `pending` (the other
        // half of the Dekker pairing in `execute`): in the SeqCst total
        // order either the executor sees our registration and notifies, or
        // we see its `pending` bump here and skip parking.
        shared.sleepers.fetch_add(1, Ordering::SeqCst);
        if shared.pending.load(Ordering::SeqCst) == 0 && !shared.shutdown.load(Ordering::SeqCst) {
            shared.sink.incr(CounterId::PoolParks);
            // The sleeper protocol makes wakeups lossless; the generous
            // timeout is pure defense in depth.
            let _ = shared
                .wakeup
                .wait_timeout(guard, Duration::from_millis(100))
                .expect("sleep lock");
        }
        shared.sleepers.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Pops local work, or steals half of a victim's deque.
fn find_job(id: usize, shared: &Shared) -> Option<Job> {
    if let Some(job) = shared.queues[id].lock().expect("queue lock").pop_front() {
        return Some(job);
    }
    let n = shared.queues.len();
    for offset in 1..n {
        let victim = (id + offset) % n;
        let stolen: Vec<Job> = {
            let mut queue = match shared.queues[victim].try_lock() {
                Ok(queue) => queue,
                Err(_) => continue,
            };
            let take = queue.len().div_ceil(2);
            if take == 0 {
                continue;
            }
            let keep = queue.len() - take;
            queue.split_off(keep).into_iter().collect()
        };
        if stolen.is_empty() {
            continue;
        }
        shared.sink.incr(CounterId::PoolSteals);
        let mut own = shared.queues[id].lock().expect("queue lock");
        own.extend(stolen);
        return own.pop_front();
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::sync::mpsc;

    #[test]
    fn runs_every_job_exactly_once() {
        let pool = WorkStealingPool::new(4);
        let counter = Arc::new(AtomicU64::new(0));
        for _ in 0..1_000 {
            let counter = Arc::clone(&counter);
            pool.execute(move || {
                counter.fetch_add(1, Ordering::Relaxed);
            });
        }
        drop(pool); // drains before joining
        assert_eq!(counter.load(Ordering::Relaxed), 1_000);
    }

    #[test]
    fn results_flow_through_channels() {
        let pool = WorkStealingPool::new(3);
        let (tx, rx) = mpsc::channel();
        for i in 0..100u64 {
            let tx = tx.clone();
            pool.execute(move || tx.send(i * i).expect("receiver alive"));
        }
        drop(tx);
        let mut results: Vec<u64> = rx.iter().collect();
        results.sort_unstable();
        assert_eq!(results.len(), 100);
        assert_eq!(results[99], 99 * 99);
    }

    #[test]
    fn imbalanced_jobs_are_stolen() {
        // One slow job pinned to some queue must not serialize the 63 fast
        // ones behind it: with stealing, total wall-clock stays far below
        // the sequential sum.
        let pool = WorkStealingPool::new(4);
        let (tx, rx) = mpsc::channel();
        for i in 0..64u64 {
            let tx = tx.clone();
            pool.execute(move || {
                if i == 0 {
                    std::thread::sleep(Duration::from_millis(50));
                }
                tx.send(i).expect("receiver alive");
            });
        }
        drop(tx);
        let start = std::time::Instant::now();
        let received: Vec<u64> = rx.iter().collect();
        assert_eq!(received.len(), 64);
        assert!(
            start.elapsed() < Duration::from_millis(500),
            "stealing keeps fast jobs off the slow worker's queue"
        );
    }

    #[test]
    fn panicking_job_does_not_kill_the_worker() {
        let pool = WorkStealingPool::new(1);
        let (tx, rx) = mpsc::channel();
        pool.execute(|| panic!("request blew up"));
        // The single worker must survive to run the next job, and the
        // pool's drop must not hang on the panicked job's accounting.
        let tx2 = tx.clone();
        pool.execute(move || tx2.send(42u64).expect("receiver alive"));
        drop(tx);
        assert_eq!(rx.recv().expect("second job ran"), 42);
        drop(pool);
    }

    #[test]
    fn metrics_sink_records_pool_activity() {
        let sink = MetricsSink::recording();
        let pool = WorkStealingPool::with_sink(4, sink.clone());
        let (tx, rx) = mpsc::channel();
        for i in 0..64u64 {
            let tx = tx.clone();
            pool.execute(move || {
                if i == 0 {
                    std::thread::sleep(Duration::from_millis(10));
                }
                tx.send(i).expect("receiver alive");
            });
        }
        drop(tx);
        assert_eq!(rx.iter().count(), 64);
        // Give the workers a moment to run dry and park before the
        // shutdown notify, so the park counter is observably non-zero.
        std::thread::sleep(Duration::from_millis(20));
        drop(pool);
        let snap = sink.snapshot().expect("sink is recording");
        assert_eq!(snap.stage(StageId::QueueWait).count, 64);
        assert_eq!(
            snap.gauge(GaugeId::QueueDepth),
            0,
            "every queued job was matched by a completion decrement"
        );
        assert!(snap.counter(CounterId::PoolParks) > 0);
    }

    #[test]
    fn single_thread_pool_still_completes() {
        let pool = WorkStealingPool::new(1);
        let (tx, rx) = mpsc::channel();
        for i in 0..10 {
            let tx = tx.clone();
            pool.execute(move || tx.send(i).expect("receiver alive"));
        }
        drop(tx);
        assert_eq!(rx.iter().count(), 10);
    }
}
