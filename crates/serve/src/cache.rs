//! A small, dependency-free LRU answer cache.
//!
//! The serving runtime keys this cache by the request value — for the
//! framework driver that is the `(access, tuples)` pair of the
//! [`AccessRequest`](cqap_query::AccessRequest) — so repeated probes of hot
//! keys (zipfian workloads) skip the online phase entirely.
//!
//! The implementation is a classic O(1) LRU: a hash map from key to slot
//! plus an intrusive doubly-linked recency list over a slab of slots. It is
//! deliberately not thread-safe on its own; the runtime wraps it in a
//! `Mutex`, which is sufficient because the critical section is a handful
//! of pointer swaps. The runtime instantiates the value type as
//! `Arc<Answer>`, so the per-hit value clone is a refcount bump.

use cqap_common::FxHashMap;
use std::hash::Hash;

const NIL: usize = usize::MAX;

struct Slot<K, V> {
    key: K,
    value: V,
    prev: usize,
    next: usize,
}

/// A fixed-capacity least-recently-used cache.
///
/// `get` refreshes recency; `insert` evicts the least recently used entry
/// once `capacity` is exceeded. A capacity of zero disables the cache (every
/// `insert` is a no-op and every `get` misses).
pub struct LruCache<K, V> {
    capacity: usize,
    map: FxHashMap<K, usize>,
    slots: Vec<Slot<K, V>>,
    /// Most recently used slot, `NIL` when empty.
    head: usize,
    /// Least recently used slot, `NIL` when empty.
    tail: usize,
    /// Slab slots freed by eviction, reusable by the next insert.
    free: Vec<usize>,
}

impl<K: Eq + Hash + Clone, V: Clone> LruCache<K, V> {
    /// Creates a cache holding at most `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        let mut map = FxHashMap::default();
        map.reserve(capacity.min(1 << 20));
        LruCache {
            capacity,
            map,
            slots: Vec::new(),
            head: NIL,
            tail: NIL,
            free: Vec::new(),
        }
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Looks up `key`, refreshing its recency on a hit.
    pub fn get(&mut self, key: &K) -> Option<V> {
        let &slot = self.map.get(key)?;
        self.detach(slot);
        self.attach_front(slot);
        Some(self.slots[slot].value.clone())
    }

    /// Inserts or refreshes `key → value`, evicting the least recently used
    /// entry if the cache is full.
    pub fn insert(&mut self, key: K, value: V) {
        if self.capacity == 0 {
            return;
        }
        if let Some(&slot) = self.map.get(&key) {
            self.slots[slot].value = value;
            self.detach(slot);
            self.attach_front(slot);
            return;
        }
        if self.map.len() >= self.capacity {
            let lru = self.tail;
            debug_assert_ne!(lru, NIL);
            self.detach(lru);
            self.map.remove(&self.slots[lru].key);
            self.free.push(lru);
        }
        let slot = match self.free.pop() {
            Some(slot) => {
                self.slots[slot] = Slot {
                    key: key.clone(),
                    value,
                    prev: NIL,
                    next: NIL,
                };
                slot
            }
            None => {
                self.slots.push(Slot {
                    key: key.clone(),
                    value,
                    prev: NIL,
                    next: NIL,
                });
                self.slots.len() - 1
            }
        };
        self.map.insert(key, slot);
        self.attach_front(slot);
    }

    /// Removes all entries.
    pub fn clear(&mut self) {
        self.map.clear();
        self.slots.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
    }

    fn detach(&mut self, slot: usize) {
        let (prev, next) = (self.slots[slot].prev, self.slots[slot].next);
        if prev != NIL {
            self.slots[prev].next = next;
        } else if self.head == slot {
            self.head = next;
        }
        if next != NIL {
            self.slots[next].prev = prev;
        } else if self.tail == slot {
            self.tail = prev;
        }
        self.slots[slot].prev = NIL;
        self.slots[slot].next = NIL;
    }

    fn attach_front(&mut self, slot: usize) {
        self.slots[slot].prev = NIL;
        self.slots[slot].next = self.head;
        if self.head != NIL {
            self.slots[self.head].prev = slot;
        }
        self.head = slot;
        if self.tail == NIL {
            self.tail = slot;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_miss_and_eviction_order() {
        let mut cache = LruCache::new(2);
        cache.insert("a", 1);
        cache.insert("b", 2);
        assert_eq!(cache.get(&"a"), Some(1)); // refreshes "a"
        cache.insert("c", 3); // evicts "b", the LRU
        assert_eq!(cache.get(&"b"), None);
        assert_eq!(cache.get(&"a"), Some(1));
        assert_eq!(cache.get(&"c"), Some(3));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn reinsert_refreshes_value_and_recency() {
        let mut cache = LruCache::new(2);
        cache.insert(1, "one");
        cache.insert(2, "two");
        cache.insert(1, "uno"); // refresh: now 2 is the LRU
        cache.insert(3, "three");
        assert_eq!(cache.get(&2), None);
        assert_eq!(cache.get(&1), Some("uno"));
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut cache = LruCache::new(0);
        cache.insert(1, 1);
        assert_eq!(cache.get(&1), None);
        assert!(cache.is_empty());
    }

    #[test]
    fn slab_reuse_under_churn() {
        let mut cache = LruCache::new(3);
        for i in 0..100 {
            cache.insert(i, i * 10);
        }
        assert_eq!(cache.len(), 3);
        // Only the last three survive, most recent first.
        assert_eq!(cache.get(&99), Some(990));
        assert_eq!(cache.get(&97), Some(970));
        assert_eq!(cache.get(&0), None);
        // The slab did not grow past capacity + pending free slots.
        assert!(cache.slots.len() <= 4);
    }

    #[test]
    fn clear_resets() {
        let mut cache = LruCache::new(4);
        cache.insert(1, 1);
        cache.clear();
        assert!(cache.is_empty());
        cache.insert(2, 2);
        assert_eq!(cache.get(&2), Some(2));
    }
}
