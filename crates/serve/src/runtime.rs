//! The serving runtime: a shared immutable index behind a work-stealing
//! pool, per-request result channels, and an LRU answer cache.
//!
//! [`ServeRuntime`] owns the three pieces and exposes two front doors:
//!
//! * [`ServeRuntime::serve_batch`] — answer a slice of requests
//!   concurrently, preserving order, deduplicating identical requests
//!   within the batch and consulting the cache before touching the index;
//! * [`ServeRuntime::submit`] — enqueue one request and get a [`Ticket`]
//!   (a one-shot result channel) back, for callers that interleave
//!   submission with other work.
//!
//! Answers are handed out as `Arc<Answer>`: the cache stores the same
//! `Arc`, so a hit inside the global cache mutex is a refcount bump rather
//! than a deep `Relation` clone, and fanning one answer out to many
//! duplicate requests shares a single allocation.
//!
//! Concurrent [`ServeRuntime::submit`]s of the same key are collapsed by an
//! in-flight pending map: the first caller probes the index, later callers
//! register as waiters on the same probe (counted as
//! [`ServeStats::inflight_hits`]), so a hot key never causes a thundering
//! herd of identical index probes.
//!
//! The index is `Arc`-shared and never mutated after construction, which is
//! exactly the paper's regime: the preprocessing phase fixes the
//! materialized views within the space budget, and the online phase is
//! read-only.
//!
//! ## Overload safety
//!
//! By default the front door is unbounded: an open-loop arrival stream
//! faster than the service rate grows the pool queue (and every
//! request's queue wait) without limit. Configuring
//! [`ServeConfig::admission`] bounds it: every submission (and every
//! dispatched batch probe) must take a permit from an admission gate
//! first, and the configured [`AdmissionPolicy`](crate::AdmissionPolicy)
//! decides what happens past the bound — block (with optional timeout),
//! shed with a typed [`ServeError::Overloaded`](crate::ServeError),
//! or FIFO-fair semaphore waiting. Rejections are counted in
//! [`ServeStats::shed`]. Deadlines compose with it:
//! [`ServeRuntime::submit_with_deadline`] threads an absolute deadline
//! through the job and workers drop already-expired requests *before*
//! the backend probe, resolving their tickets with
//! [`CqapError::DeadlineExpired`] (counted in
//! [`ServeStats::deadline_expired`] — a ticket never hangs).
//! [`ServeRuntime::serve_batch_with_deadlines`] additionally dispatches
//! probe groups earliest-deadline-first. Past an optional queue-depth
//! watermark ([`ServeConfig::degrade_watermark`]) probes may answer
//! from the index's cheapest plan ([`BatchAnswer::answer_degraded`]),
//! flagged in the answer and kept out of the cache.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

use cqap_common::{CqapError, FxHashMap, Result};
use cqap_obs::{
    CounterId, MetricsSink, RequestSpan, StageId, StageTimer, TraceId, TraceScope, TraceStage,
};

use crate::admission::{retry_overloaded, AdmissionConfig, AdmissionGate, AdmissionPermit, RetryPolicy};
use crate::batch::BatchAnswer;
use crate::cache::LruCache;
use crate::pool::{default_threads, WorkStealingPool};

/// Configuration for a [`ServeRuntime`].
#[derive(Clone, Copy, Debug)]
pub struct ServeConfig {
    /// Worker threads in the pool. Defaults to the machine's available
    /// parallelism.
    pub threads: usize,
    /// Capacity of the LRU answer cache, in entries. Zero disables caching.
    pub cache_capacity: usize,
    /// Bounded admission at the front door; `None` (the default) keeps
    /// the legacy unbounded behavior. See [`AdmissionConfig`].
    pub admission: Option<AdmissionConfig>,
    /// Queue-depth watermark for graceful degradation: when set and the
    /// pool's pending-job count exceeds it at dispatch time, a probe may
    /// answer via [`BatchAnswer::answer_degraded`] (for multi-PMTD
    /// driver indexes: the cheapest plan only, flagged in the answer and
    /// never cached). `None` (the default) disables degrade mode.
    pub degrade_watermark: Option<usize>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            threads: default_threads(),
            cache_capacity: 4_096,
            admission: None,
            degrade_watermark: None,
        }
    }
}

/// Counters describing what a runtime has done so far.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Requests answered (including cache hits).
    pub served: u64,
    /// Requests answered from the LRU cache.
    pub cache_hits: u64,
    /// Requests answered by sharing another identical request's computation
    /// within the same batch (intra-batch deduplication). Kept separate
    /// from [`ServeStats::cache_hits`] so cache-policy effectiveness and
    /// dedup savings stay independently measurable.
    pub dedup_hits: u64,
    /// Requests answered by joining an index probe that was already in
    /// flight for the same key (cross-caller deduplication), instead of
    /// re-probing the index.
    pub inflight_hits: u64,
    /// Requests merged with other same-class requests of their batch into
    /// a single bulk probe (the §6.4 batching remark: for the framework
    /// driver, queued single-tuple requests sharing an access pattern
    /// become one multi-tuple probe before dispatch). Counts every member
    /// of a merged group; groups of one dispatch normally and count zero.
    pub coalesced: u64,
    /// Requests that had to probe the index.
    pub cache_misses: u64,
    /// Index probes that returned an error (counted once per probe; every
    /// waiter joined to the probe receives a clone of the error).
    pub errors: u64,
    /// Delta batches applied through [`ServeRuntime::apply_delta`]
    /// (including net no-ops, which leave the cache warm).
    pub deltas_applied: u64,
    /// Requests rejected at the admission gate (shed policy, or a
    /// `Block` admission timeout), counted per resolved ticket — a shed
    /// batch probe group counts every position it would have answered,
    /// and waiters fanned an `Overloaded` error count too.
    pub shed: u64,
    /// Requests dropped because their deadline had passed before the
    /// backend probe ran, counted per resolved ticket (waiters joined
    /// to an expired probe count too).
    pub deadline_expired: u64,
    /// Requests answered in degrade mode (cheapest-plan answers past
    /// the queue-depth watermark).
    pub degraded: u64,
}

impl ServeStats {
    /// Field-wise sum of two stats snapshots — the aggregation a router
    /// over several per-shard runtimes uses to report fleet-wide counters.
    #[must_use]
    pub fn merge(self, other: ServeStats) -> ServeStats {
        ServeStats {
            served: self.served + other.served,
            cache_hits: self.cache_hits + other.cache_hits,
            dedup_hits: self.dedup_hits + other.dedup_hits,
            inflight_hits: self.inflight_hits + other.inflight_hits,
            coalesced: self.coalesced + other.coalesced,
            cache_misses: self.cache_misses + other.cache_misses,
            errors: self.errors + other.errors,
            deltas_applied: self.deltas_applied + other.deltas_applied,
            shed: self.shed + other.shed,
            deadline_expired: self.deadline_expired + other.deadline_expired,
            degraded: self.degraded + other.degraded,
        }
    }
}

impl fmt::Display for ServeStats {
    /// One-line human-readable summary, e.g.
    /// `served 512 | cache 100 | dedup 12 | in-flight 3 | coalesced 200 | misses 397 | errors 0 | deltas 1 | shed 4 | expired 2 | degraded 0`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "served {} | cache {} | dedup {} | in-flight {} | coalesced {} | misses {} | errors {} | deltas {} | shed {} | expired {} | degraded {}",
            self.served,
            self.cache_hits,
            self.dedup_hits,
            self.inflight_hits,
            self.coalesced,
            self.cache_misses,
            self.errors,
            self.deltas_applied,
            self.shed,
            self.deadline_expired,
            self.degraded,
        )
    }
}

#[derive(Default)]
struct StatsCells {
    served: AtomicU64,
    cache_hits: AtomicU64,
    dedup_hits: AtomicU64,
    inflight_hits: AtomicU64,
    coalesced: AtomicU64,
    cache_misses: AtomicU64,
    errors: AtomicU64,
    deltas_applied: AtomicU64,
    shed: AtomicU64,
    deadline_expired: AtomicU64,
    degraded: AtomicU64,
}

impl StatsCells {
    fn snapshot(&self) -> ServeStats {
        ServeStats {
            served: self.served.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            dedup_hits: self.dedup_hits.load(Ordering::Relaxed),
            inflight_hits: self.inflight_hits.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            deltas_applied: self.deltas_applied.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            deadline_expired: self.deadline_expired.load(Ordering::Relaxed),
            degraded: self.degraded.load(Ordering::Relaxed),
        }
    }
}

/// Why a [`Ticket::wait_timeout`] returned without an answer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WaitTimeout {
    /// The timeout elapsed with the answer still pending. The ticket is
    /// unchanged: wait again, poll later, or drop it — dropping never
    /// leaks runtime state, because the pending-map entry belongs to the
    /// in-flight probe (its worker removes the entry when it resolves;
    /// the fan-out send to a dropped ticket is simply discarded).
    Elapsed,
    /// The request resolved, but to an error (admission rejection,
    /// missed deadline, probe failure, or a torn-down runtime).
    Failed(CqapError),
}

impl fmt::Display for WaitTimeout {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WaitTimeout::Elapsed => write!(f, "timed out waiting for the answer"),
            WaitTimeout::Failed(error) => write!(f, "request failed: {error}"),
        }
    }
}

impl std::error::Error for WaitTimeout {}

/// A one-shot handle to the answer of a single submitted request.
pub struct Ticket<A> {
    rx: mpsc::Receiver<Result<A>>,
}

impl<A> Ticket<A> {
    /// Blocks until the answer is ready.
    ///
    /// # Errors
    /// Returns the answering error, or an internal error if the runtime was
    /// torn down before the request ran.
    pub fn wait(self) -> Result<A> {
        self.rx
            .recv()
            .unwrap_or_else(|_| Err(CqapError::Other("serve runtime dropped".into())))
    }

    /// Blocks until the answer is ready or `timeout` elapses, bounding
    /// the caller's wait even without request deadlines.
    ///
    /// On [`WaitTimeout::Elapsed`] the ticket remains usable — call
    /// again, [`try_wait`](Self::try_wait), or drop it (dropping a
    /// timed-out ticket never leaks the runtime's pending-map entry;
    /// see [`WaitTimeout::Elapsed`]). A request that resolved to an
    /// error yields [`WaitTimeout::Failed`].
    pub fn wait_timeout(&self, timeout: Duration) -> Result<A, WaitTimeout> {
        match self.rx.recv_timeout(timeout) {
            Ok(Ok(answer)) => Ok(answer),
            Ok(Err(error)) => Err(WaitTimeout::Failed(error)),
            Err(mpsc::RecvTimeoutError::Timeout) => Err(WaitTimeout::Elapsed),
            Err(mpsc::RecvTimeoutError::Disconnected) => Err(WaitTimeout::Failed(
                CqapError::Other("serve runtime dropped".into()),
            )),
        }
    }

    /// Non-blocking poll; `None` while the answer is still being computed.
    /// A torn-down runtime (or a request that panicked mid-answer) yields
    /// `Some(Err(..))`, never a stuck `None`.
    pub fn try_wait(&self) -> Option<Result<A>> {
        match self.rx.try_recv() {
            Ok(result) => Some(result),
            Err(mpsc::TryRecvError::Empty) => None,
            Err(mpsc::TryRecvError::Disconnected) => {
                Some(Err(CqapError::Other("serve runtime dropped".into())))
            }
        }
    }
}

fn panic_message(panic: Box<dyn std::any::Any + Send>) -> String {
    panic
        .downcast_ref::<&str>()
        .map(|s| (*s).to_string())
        .or_else(|| panic.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string panic payload".into())
}

/// Answers one request, converting a panic in the index into a regular
/// [`CqapError`] so workers stay alive, the error counter stays truthful,
/// and callers see "request panicked" rather than a torn-down-runtime
/// message.
fn answer_guarded<I: BatchAnswer>(index: &I, request: &I::Request) -> Result<I::Answer> {
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| index.answer_one(request)))
        .unwrap_or_else(|panic| {
            Err(CqapError::Other(format!(
                "request panicked: {}",
                panic_message(panic)
            )))
        })
}

/// [`BatchAnswer::answer_degraded`] with the same panic-to-error
/// conversion as [`answer_guarded`]; `None` means the index offers no
/// cheaper plan and the caller falls back to the full probe.
fn degraded_guarded<I: BatchAnswer>(
    index: &I,
    request: &I::Request,
) -> Option<Result<I::Answer>> {
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| index.answer_degraded(request)))
        .unwrap_or_else(|panic| {
            Some(Err(CqapError::Other(format!(
                "degraded answer panicked: {}",
                panic_message(panic)
            ))))
        })
}

/// [`BatchAnswer::extract`] with the same panic-to-error conversion as
/// [`answer_guarded`], so one bad member of a coalesced group cannot strand
/// the rest of the group.
fn extract_guarded<I: BatchAnswer>(
    index: &I,
    bulk: &I::Answer,
    request: &I::Request,
) -> Result<I::Answer> {
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| index.extract(bulk, request)))
        .unwrap_or_else(|panic| {
            Err(CqapError::Other(format!(
                "extract panicked: {}",
                panic_message(panic)
            )))
        })
}

/// Clones a probe result for fan-out to waiters: `Ok` is a refcount bump,
/// `Err` clones the (small) error value.
fn clone_result<A>(result: &Result<Arc<A>>) -> Result<Arc<A>> {
    match result {
        Ok(answer) => Ok(Arc::clone(answer)),
        Err(error) => Err(error.clone()),
    }
}

/// The mutable online state, behind one mutex: the LRU answer cache plus
/// the in-flight pending map. Holding both under a single lock makes the
/// "check cache, then join or register a probe" sequence atomic, so two
/// concurrent submits of one key can never both miss the pending map.
///
/// The cache stores `Arc<Answer>`: hits and inserts inside the critical
/// section are refcount bumps, never deep answer clones.
struct OnlineState<I: BatchAnswer> {
    cache: LruCache<I::Request, Arc<I::Answer>>,
    /// Keys currently being probed by a pool worker, each with the result
    /// channels of callers that arrived while the probe was in flight.
    pending: FxHashMap<I::Request, Vec<mpsc::Sender<Result<Arc<I::Answer>>>>>,
}

/// What the state lookup decided for one distinct request key.
enum Lookup<I: BatchAnswer> {
    /// The answer was cached.
    Hit(Arc<I::Answer>),
    /// A probe for this key is already in flight; the caller's channel was
    /// registered as a waiter.
    Joined,
    /// The caller must probe the index (a pending entry was registered).
    Probe,
}

/// One dispatchable unit formed by `serve_batch`'s coalescing stage: a
/// lone fresh probe, or a coalesced group probed in bulk. Either way the
/// unit is one backend probe, and admission charges it one slot.
enum BatchJob<I: BatchAnswer> {
    /// A single fresh probe and its result channel.
    Single(I::Request, mpsc::Sender<Result<Arc<I::Answer>>>),
    /// A coalesced bulk request plus per-member `(request, channel,
    /// deadline)` resolution parts.
    Coalesced(
        I::Request,
        Vec<(
            I::Request,
            mpsc::Sender<Result<Arc<I::Answer>>>,
            Option<Instant>,
        )>,
    ),
}

/// A concurrent, caching request-serving runtime over a shared immutable
/// index.
pub struct ServeRuntime<I: BatchAnswer + 'static> {
    index: Arc<I>,
    pool: WorkStealingPool,
    state: Arc<Mutex<OnlineState<I>>>,
    stats: Arc<StatsCells>,
    sink: MetricsSink,
    gate: Option<Arc<AdmissionGate>>,
    degrade_watermark: Option<usize>,
}

impl<I: BatchAnswer + 'static> ServeRuntime<I> {
    /// Creates a runtime with the default configuration.
    pub fn new(index: Arc<I>) -> Self {
        ServeRuntime::with_config(index, ServeConfig::default())
    }

    /// Creates a runtime with an explicit thread count and cache capacity.
    pub fn with_config(index: Arc<I>, config: ServeConfig) -> Self {
        ServeRuntime::with_metrics(index, config, MetricsSink::disabled())
    }

    /// Creates a runtime recording request-lifecycle metrics into `sink`:
    /// per-stage latency histograms (queue wait, cache lookup, coalesce,
    /// backend probe, ticket delivery) plus the pool's queue-depth gauge
    /// and steal/park counters. Recording is allocation-free on the warm
    /// path; a [`MetricsSink::disabled`] sink makes this identical to
    /// [`with_config`](Self::with_config).
    pub fn with_metrics(index: Arc<I>, config: ServeConfig, sink: MetricsSink) -> Self {
        ServeRuntime {
            index,
            pool: WorkStealingPool::with_sink(config.threads, sink.clone()),
            state: Arc::new(Mutex::new(OnlineState {
                cache: LruCache::new(config.cache_capacity),
                pending: FxHashMap::default(),
            })),
            stats: Arc::new(StatsCells::default()),
            gate: config
                .admission
                .map(|admission| AdmissionGate::new(admission, sink.clone())),
            degrade_watermark: config.degrade_watermark,
            sink,
        }
    }

    /// The shared index being served.
    pub fn index(&self) -> &Arc<I> {
        &self.index
    }

    /// The metrics sink this runtime records into (disabled unless the
    /// runtime was built with [`with_metrics`](Self::with_metrics)).
    pub fn metrics(&self) -> &MetricsSink {
        &self.sink
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.pool.threads()
    }

    /// Counters since construction.
    pub fn stats(&self) -> ServeStats {
        self.stats.snapshot()
    }

    /// Applies one delta batch to the served index in place, through the
    /// index's own [`ApplyDelta`](cqap_delta::ApplyDelta) implementation.
    ///
    /// The cache-invalidation rule: cached answers are dropped exactly
    /// when the batch had a **net effect** — a no-op batch (empty, or
    /// fully cancelling) leaves the LRU warm, because the index contents
    /// it reflects did not change. In-flight probes are unaffected either
    /// way: requiring exclusive access to the index (below) means none can
    /// be running during an apply.
    ///
    /// # Errors
    /// Fails if the index `Arc` is shared outside this runtime or a probe
    /// is still in flight (exclusive access is required to mutate), and
    /// propagates the index's own apply errors.
    pub fn apply_delta(
        &mut self,
        batch: &cqap_delta::DeltaBatch,
    ) -> Result<cqap_delta::DeltaStats>
    where
        I: cqap_delta::ApplyDelta,
    {
        let index = Arc::get_mut(&mut self.index).ok_or_else(|| {
            CqapError::Other(
                "cannot apply a delta: the served index is shared (another \
                 handle or an in-flight probe holds it)"
                    .into(),
            )
        })?;
        let stats = index.apply_delta(batch)?;
        self.stats.deltas_applied.fetch_add(1, Ordering::Relaxed);
        if !stats.is_noop() {
            self.state.lock().expect("state lock").cache.clear();
        }
        Ok(stats)
    }

    /// Atomically consults the cache and the pending map for `request`,
    /// registering `tx` as a waiter (on an in-flight probe) or a new
    /// pending entry (when the caller must probe) as appropriate.
    fn lookup(
        &self,
        request: &I::Request,
        tx: &mpsc::Sender<Result<Arc<I::Answer>>>,
    ) -> Lookup<I> {
        let timer = self.sink.start();
        let mut state = self.state.lock().expect("state lock");
        let decision = if let Some(answer) = state.cache.get(request) {
            self.stats.cache_hits.fetch_add(1, Ordering::Relaxed);
            Lookup::Hit(answer)
        } else if let Some(waiters) = state.pending.get_mut(request) {
            self.stats.inflight_hits.fetch_add(1, Ordering::Relaxed);
            waiters.push(tx.clone());
            Lookup::Joined
        } else {
            self.stats.cache_misses.fetch_add(1, Ordering::Relaxed);
            state.pending.insert(request.clone(), Vec::new());
            Lookup::Probe
        };
        drop(state);
        self.sink.stop(timer, StageId::CacheLookup);
        decision
    }

    /// Runs one index probe on the pool: computes the answer, publishes it
    /// to the cache, drains the waiters registered while the probe was in
    /// flight, and finally resolves `tx`.
    ///
    /// A sampled `trace` is pinned on the worker thread for the probe (so
    /// store-layer leaf events attribute to it) and its laps become ring
    /// events. When `submitted` is set this probe owns the request's root:
    /// the trace is finished — before the resolving send, like the laps —
    /// with the total latency since submission.
    ///
    /// `deadline` is checked on the worker *before* the backend probe:
    /// an expired request is dropped and its ticket (plus any joined
    /// waiters) resolves with [`CqapError::DeadlineExpired`]. `permit`
    /// is the request's admission slot; it rides in the closure and is
    /// released when the job finishes — including on a panicking
    /// backend, because the pool catches unwinds and drops the
    /// closure's captures.
    fn dispatch_probe(
        &self,
        request: I::Request,
        tx: mpsc::Sender<Result<Arc<I::Answer>>>,
        trace: TraceId,
        submitted: Option<Instant>,
        deadline: Option<Instant>,
        permit: Option<AdmissionPermit>,
    ) {
        let index = Arc::clone(&self.index);
        let state = Arc::clone(&self.state);
        let stats = Arc::clone(&self.stats);
        let sink = self.sink.clone();
        // Degrade decision at dispatch time: the submitter sees the queue
        // depth this job is about to join, which is exactly the watermark
        // signal (a worker-side check would see one job fewer).
        let degrade = self
            .degrade_watermark
            .is_some_and(|watermark| self.pool.pending() > watermark);
        self.pool.execute_traced(trace, move || {
            let _permit = permit;
            // Per-worker span over this probe's lifecycle: the probe
            // itself, then publishing + fan-out as ticket delivery.
            let mut span = RequestSpan::begin_traced(&sink, trace);
            // Deadline gate before the probe: serving an answer nobody
            // is waiting for anymore only steals capacity from requests
            // that can still make theirs.
            if let Some(deadline) = deadline {
                let now = Instant::now();
                if now >= deadline {
                    let late_ns =
                        u64::try_from((now - deadline).as_nanos()).unwrap_or(u64::MAX);
                    let result: Result<Arc<I::Answer>> =
                        Err(CqapError::DeadlineExpired { late_ns });
                    let waiters = {
                        let mut state = state.lock().expect("state lock");
                        state.pending.remove(&request).unwrap_or_default()
                    };
                    let dropped = 1 + waiters.len() as u64;
                    stats.deadline_expired.fetch_add(dropped, Ordering::Relaxed);
                    sink.add(CounterId::DeadlinesExpired, dropped);
                    for waiter in waiters {
                        let _ = waiter.send(clone_result(&result));
                    }
                    span.lap(StageId::TicketDelivery);
                    if let Some(submitted) = submitted {
                        sink.trace_finish(
                            trace,
                            u64::try_from(submitted.elapsed().as_nanos()).unwrap_or(u64::MAX),
                        );
                    }
                    let _ = tx.send(result);
                    return;
                }
            }
            let (result, degraded) = {
                let _scope = TraceScope::enter(trace);
                match degrade
                    .then(|| degraded_guarded(index.as_ref(), &request))
                    .flatten()
                {
                    Some(cheap) => (cheap.map(Arc::new), true),
                    None => (
                        answer_guarded(index.as_ref(), &request).map(Arc::new),
                        false,
                    ),
                }
            };
            span.lap(StageId::BackendProbe);
            if degraded {
                stats.degraded.fetch_add(1, Ordering::Relaxed);
                sink.incr(CounterId::DegradedAnswers);
            }
            if result.is_err() {
                stats.errors.fetch_add(1, Ordering::Relaxed);
            }
            let waiters = {
                let mut state = state.lock().expect("state lock");
                // Degraded answers are never cached: a warm hit must not
                // keep serving the cheap answer after the overload ends.
                if !degraded {
                    if let Ok(answer) = &result {
                        state.cache.insert(request.clone(), Arc::clone(answer));
                    }
                }
                state.pending.remove(&request).unwrap_or_default()
            };
            for waiter in waiters {
                let _ = waiter.send(clone_result(&result));
            }
            // Record the delivery lap before the final send: the send
            // is what unblocks the caller, and recording first keeps
            // "a resolved ticket implies a recorded delivery" true for
            // anyone snapshotting right after a wait().
            span.lap(StageId::TicketDelivery);
            if let Some(submitted) = submitted {
                sink.trace_finish(
                    trace,
                    u64::try_from(submitted.elapsed().as_nanos()).unwrap_or(u64::MAX),
                );
            }
            let _ = tx.send(result);
        });
    }

    /// Runs one bulk probe for a coalesced group on the pool: computes the
    /// bulk answer once, then per member extracts its answer, publishes it
    /// to the cache under the member's own key, drains that key's pending
    /// waiters, and resolves the member's channel. A bulk failure fans the
    /// error out to every member (counted as one probe error).
    ///
    /// Each part carries its own optional deadline: the bulk probe is
    /// skipped only when every member has expired, and an individually
    /// late member resolves with [`CqapError::DeadlineExpired`] instead
    /// of its extracted answer. The group holds one admission `permit`
    /// (it is one backend probe), released when the job finishes.
    fn dispatch_coalesced(
        &self,
        bulk: I::Request,
        parts: Vec<(
            I::Request,
            mpsc::Sender<Result<Arc<I::Answer>>>,
            Option<Instant>,
        )>,
        trace: TraceId,
        permit: Option<AdmissionPermit>,
    ) {
        let index = Arc::clone(&self.index);
        let state = Arc::clone(&self.state);
        let stats = Arc::clone(&self.stats);
        let sink = self.sink.clone();
        self.pool.execute_traced(trace, move || {
            let _permit = permit;
            let mut span = RequestSpan::begin_traced(&sink, trace);
            // The bulk probe runs unless *every* member's deadline has
            // already passed: as long as one member can still use the
            // answer, the group's work is not wasted.
            let now = Instant::now();
            let all_expired = !parts.is_empty()
                && parts
                    .iter()
                    .all(|(_, _, deadline)| deadline.is_some_and(|d| now >= d));
            let bulk_answer = if all_expired {
                Err(CqapError::Other("coalesced group fully expired".into()))
            } else {
                let _scope = TraceScope::enter(trace);
                answer_guarded(index.as_ref(), &bulk)
            };
            span.lap(StageId::BackendProbe);
            if bulk_answer.is_err() && !all_expired {
                stats.errors.fetch_add(1, Ordering::Relaxed);
            }
            let mut resolved = Vec::with_capacity(parts.len());
            for (request, tx, deadline) in parts {
                // Per-member expiry before extraction: a member that is
                // already late gets the typed deadline error even when
                // the group's bulk answer exists.
                let expired_ns = deadline.and_then(|deadline| {
                    let now = Instant::now();
                    (now >= deadline)
                        .then(|| u64::try_from((now - deadline).as_nanos()).unwrap_or(u64::MAX))
                });
                let (result, expired) = match (expired_ns, &bulk_answer) {
                    (Some(late_ns), _) => (Err(CqapError::DeadlineExpired { late_ns }), true),
                    (None, Ok(answer)) => {
                        let extracted =
                            extract_guarded(index.as_ref(), answer, &request).map(Arc::new);
                        if extracted.is_err() {
                            stats.errors.fetch_add(1, Ordering::Relaxed);
                        }
                        (extracted, false)
                    }
                    (None, Err(error)) => (Err(error.clone()), false),
                };
                let waiters = {
                    let mut state = state.lock().expect("state lock");
                    if let Ok(answer) = &result {
                        state.cache.insert(request.clone(), Arc::clone(answer));
                    }
                    state.pending.remove(&request).unwrap_or_default()
                };
                if expired {
                    let dropped = 1 + waiters.len() as u64;
                    stats.deadline_expired.fetch_add(dropped, Ordering::Relaxed);
                    sink.add(CounterId::DeadlinesExpired, dropped);
                }
                for waiter in waiters {
                    let _ = waiter.send(clone_result(&result));
                }
                resolved.push((tx, result));
            }
            // Extraction, publication and waiter fan-out for the whole
            // group count as one delivery observation, recorded before
            // the member sends so a caller that saw its answer also
            // sees the recording.
            span.lap(StageId::TicketDelivery);
            for (tx, result) in resolved {
                let _ = tx.send(result);
            }
        });
    }

    /// Submits one request; the returned [`Ticket`] resolves to its answer.
    /// Cache hits resolve immediately without entering the pool, and
    /// concurrent submits of one key share a single index probe.
    ///
    /// With admission configured ([`ServeConfig::admission`]) the submit
    /// passes the gate first: under the shed policy an over-limit
    /// request's ticket resolves immediately with
    /// [`CqapError::Overloaded`] (see [`ServeStats::shed`]); under the
    /// blocking policies this call waits for a slot before returning.
    ///
    /// When the sink carries a flight recorder, a trace id is allocated
    /// per the sampling policy and the request's whole lifecycle (queue
    /// wait, probe, delivery, store-side leaf events) records against it.
    pub fn submit(&self, request: I::Request) -> Ticket<Arc<I::Answer>> {
        let trace = self.sink.trace_begin();
        let submitted = trace.is_sampled().then(Instant::now);
        self.submit_inner(request, trace, submitted, None)
    }

    /// [`submit`](Self::submit) against a caller-allocated trace id, so a
    /// router can fan one request out to several shard runtimes with every
    /// scatter-gather leg sharing the parent request's trace.
    ///
    /// The trace's root is never committed here: the caller allocated the
    /// id, so the caller finishes the trace once the whole request (all
    /// legs) resolves. This call only attributes the leg's events to it.
    pub fn submit_traced(&self, request: I::Request, trace: TraceId) -> Ticket<Arc<I::Answer>> {
        self.submit_inner(request, trace, None, None)
    }

    /// [`submit`](Self::submit) with an absolute deadline.
    ///
    /// If the request is still queued when `deadline` passes, the worker
    /// drops it *before* the backend probe and the ticket resolves with
    /// [`CqapError::DeadlineExpired`] — a late request never hangs its
    /// ticket and never costs a probe the caller no longer wants. A
    /// request that arrives already expired is rejected at submission,
    /// before the admission gate. Cache hits and joins of in-flight
    /// probes ignore the deadline: the answer is already paid for.
    pub fn submit_with_deadline(
        &self,
        request: I::Request,
        deadline: Instant,
    ) -> Ticket<Arc<I::Answer>> {
        let trace = self.sink.trace_begin();
        let submitted = trace.is_sampled().then(Instant::now);
        self.submit_inner(request, trace, submitted, Some(deadline))
    }

    /// Submits `request` and waits for its answer, retrying shed
    /// submissions ([`CqapError::Overloaded`]) under `policy`'s jittered
    /// exponential backoff. Any other error — including deadline expiry —
    /// propagates immediately without a retry.
    ///
    /// # Errors
    /// The last `Overloaded` once the retry budget is exhausted, or the
    /// first non-overload error.
    pub fn submit_with_retry(
        &self,
        request: I::Request,
        policy: RetryPolicy,
    ) -> Result<Arc<I::Answer>> {
        retry_overloaded(policy, || self.submit(request.clone()).wait())
    }

    /// Commits the root total for a submit that owns its trace (see
    /// [`submit`](Self::submit)); a no-op for caller-allocated traces.
    fn finish_root(&self, trace: TraceId, submitted: Option<Instant>) {
        if let Some(submitted) = submitted {
            self.sink.trace_finish(
                trace,
                u64::try_from(submitted.elapsed().as_nanos()).unwrap_or(u64::MAX),
            );
        }
    }

    fn submit_inner(
        &self,
        request: I::Request,
        trace: TraceId,
        submitted: Option<Instant>,
        deadline: Option<Instant>,
    ) -> Ticket<Arc<I::Answer>> {
        let (tx, rx) = mpsc::channel();
        self.stats.served.fetch_add(1, Ordering::Relaxed);
        // A request that arrives already expired is dropped before the
        // admission gate — no point holding a slot for it.
        if let Some(deadline) = deadline {
            let now = Instant::now();
            if now >= deadline {
                let late_ns = u64::try_from((now - deadline).as_nanos()).unwrap_or(u64::MAX);
                self.stats.deadline_expired.fetch_add(1, Ordering::Relaxed);
                self.sink.incr(CounterId::DeadlinesExpired);
                self.finish_root(trace, submitted);
                let _ = tx.send(Err(CqapError::DeadlineExpired { late_ns }));
                return Ticket { rx };
            }
        }
        // Admission before lookup: one slot per submitted request, held
        // from the gate to resolution. Hits and joins release theirs
        // right away below; probes carry theirs into the worker.
        let permit = match &self.gate {
            Some(gate) => match gate.admit(trace) {
                Ok(permit) => Some(permit),
                Err(error) => {
                    self.stats.shed.fetch_add(1, Ordering::Relaxed);
                    self.sink.incr(CounterId::RequestsShed);
                    self.finish_root(trace, submitted);
                    let _ = tx.send(Err(error));
                    return Ticket { rx };
                }
            },
            None => None,
        };
        match self.lookup(&request, &tx) {
            Lookup::Hit(answer) => {
                drop(permit);
                // A root-owning submit commits the hit's (tiny) total, so
                // cache hits still show up as committed traces.
                self.finish_root(trace, submitted);
                let _ = tx.send(Ok(answer));
            }
            Lookup::Joined => drop(permit),
            Lookup::Probe => {
                self.dispatch_probe(request, tx, trace, submitted, deadline, permit);
            }
        }
        Ticket { rx }
    }

    /// Answers a batch of requests concurrently, preserving input order.
    ///
    /// Identical requests inside the batch are answered once and fanned out
    /// (sharing one `Arc`); previously served requests are answered from
    /// the LRU cache; requests whose probe is already in flight (from a
    /// concurrent `submit` or batch) join that probe instead of re-running
    /// it. Remaining fresh probes that share a coalescing class (see
    /// [`BatchAnswer::coalesce_class`]) are merged into one bulk probe
    /// before dispatch and counted in [`ServeStats::coalesced`].
    ///
    /// # Errors
    /// Fails if any request fails (the first error in input order wins).
    pub fn serve_batch(&self, requests: &[I::Request]) -> Result<Vec<Arc<I::Answer>>> {
        // Collecting short-circuits on the first `Err` in iteration
        // order, which is input order — the documented contract.
        self.serve_batch_inner(requests, None).into_iter().collect()
    }

    /// [`serve_batch`](Self::serve_batch) with one absolute deadline per
    /// request, returning per-position results instead of failing the
    /// whole batch on the first error.
    ///
    /// Deadlines shape the batch in two ways. Dispatch is
    /// earliest-deadline-first: probe jobs (coalesced groups and
    /// singles) enter the pool ordered by their earliest member
    /// deadline, so the most urgent work queues first. And expiry is
    /// checked on the worker before each probe: a request whose deadline
    /// passed while queued resolves as [`CqapError::DeadlineExpired`]
    /// without costing a backend probe (for a deduplicated group, only
    /// once every duplicate position has expired). Positions that join a
    /// probe already in flight take that probe's outcome; their own
    /// deadline does not cancel work another caller still wants.
    ///
    /// # Panics
    /// Panics if `deadlines.len() != requests.len()`.
    pub fn serve_batch_with_deadlines(
        &self,
        requests: &[I::Request],
        deadlines: &[Instant],
    ) -> Vec<Result<Arc<I::Answer>>> {
        assert_eq!(
            requests.len(),
            deadlines.len(),
            "one deadline per request"
        );
        self.serve_batch_inner(requests, Some(deadlines))
    }

    fn serve_batch_inner(
        &self,
        requests: &[I::Request],
        deadlines: Option<&[Instant]>,
    ) -> Vec<Result<Arc<I::Answer>>> {
        // One trace id covers the whole batch: its lookup/coalesce laps
        // and every probe it dispatches share the id, and the root spans
        // submission to the last gathered answer.
        let trace = self.sink.trace_begin();
        let submitted = trace.is_sampled().then(Instant::now);
        let mut answers: Vec<Option<Result<Arc<I::Answer>>>> = vec![None; requests.len()];
        self.stats
            .served
            .fetch_add(requests.len() as u64, Ordering::Relaxed);

        // Deduplicate: positions sharing a request share one computation.
        let mut groups: FxHashMap<&I::Request, Vec<usize>> = FxHashMap::default();
        groups.reserve(requests.len());
        for (position, request) in requests.iter().enumerate() {
            groups.entry(request).or_default().push(position);
        }

        // One state-lock pass to split hits / in-flight joins / fresh
        // probes — the lock covers only O(1) lookups and refcount bumps;
        // fan-out and dispatch happen after release, because workers
        // publish their answers into the same state and must not queue
        // behind the dispatcher.
        let mut hits: Vec<(Arc<I::Answer>, Vec<usize>)> = Vec::new();
        let mut probes: Vec<(I::Request, Vec<usize>)> = Vec::new();
        // Probes already in flight elsewhere that this batch joined:
        // `(receiver, positions)`, resolved by the owning caller's worker.
        let mut joined: Vec<(mpsc::Receiver<Result<Arc<I::Answer>>>, Vec<usize>)> = Vec::new();
        let lookup_timer = self.sink.start();
        let lookup_started = submitted.map(|_| Instant::now());
        {
            let mut state = self.state.lock().expect("state lock");
            for (request, positions) in groups {
                let duplicates = positions.len() as u64 - 1;
                self.stats.dedup_hits.fetch_add(duplicates, Ordering::Relaxed);
                if let Some(answer) = state.cache.get(request) {
                    self.stats.cache_hits.fetch_add(1, Ordering::Relaxed);
                    hits.push((answer, positions));
                } else if let Some(waiters) = state.pending.get_mut(request) {
                    self.stats.inflight_hits.fetch_add(1, Ordering::Relaxed);
                    let (wtx, wrx) = mpsc::channel();
                    waiters.push(wtx);
                    joined.push((wrx, positions));
                } else {
                    self.stats.cache_misses.fetch_add(1, Ordering::Relaxed);
                    state.pending.insert(request.clone(), Vec::new());
                    probes.push((request.clone(), positions));
                }
            }
        }
        self.sink.stop(lookup_timer, StageId::CacheLookup);
        if let Some(started) = lookup_started {
            self.sink
                .trace_span(trace, TraceStage::CacheLookup, started, Instant::now(), 0);
        }
        for (answer, positions) in hits {
            for position in positions {
                answers[position] = Some(Ok(Arc::clone(&answer)));
            }
        }

        let record = |result: Result<Arc<I::Answer>>,
                      positions: Vec<usize>,
                      answers: &mut Vec<Option<Result<Arc<I::Answer>>>>| {
            for position in positions {
                answers[position] = Some(clone_result(&result));
            }
        };

        // The dedup group's deadline window: earliest member for EDF
        // ordering, latest member for the worker-side drop check (the
        // probe still runs while anyone in the group can use it).
        let group_deadline = |positions: &[usize], earliest: bool| -> Option<Instant> {
            deadlines.map(|ds| {
                let per_position = positions.iter().map(|&p| ds[p]);
                if earliest {
                    per_position.min().expect("non-empty group")
                } else {
                    per_position.max().expect("non-empty group")
                }
            })
        };

        // Coalesce (§6.4): distinct fresh probes sharing a coalescing
        // class — for the framework drivers, single-tuple requests over
        // one access pattern — merge into a single bulk probe. The bulk
        // answer is split back per member and published under the
        // individual keys (cache inserts and pending waiters included),
        // so coalescing is invisible to everything downstream of the
        // dispatch.
        //
        // The coalesce stage is timed per batch that had fresh probes:
        // classification, merging and dispatch, up to handing the last
        // probe to the pool.
        let had_probes = !probes.is_empty();
        let coalesce_timer = if had_probes {
            self.sink.start()
        } else {
            StageTimer::disarmed()
        };
        let coalesce_started = if had_probes { lookup_started.map(|_| Instant::now()) } else { None };
        let mut own: Vec<(mpsc::Receiver<Result<Arc<I::Answer>>>, Vec<usize>)> =
            Vec::with_capacity(probes.len());
        // Probe jobs awaiting dispatch as `(EDF key, worker-side drop
        // deadline, job)`; built first so dispatch can order by urgency.
        let mut jobs: Vec<(Option<Instant>, Option<Instant>, BatchJob<I>)> =
            Vec::with_capacity(probes.len());
        let mut singles: Vec<(I::Request, Vec<usize>)> = Vec::new();
        let mut classes: FxHashMap<u64, Vec<(I::Request, Vec<usize>)>> = FxHashMap::default();
        for (request, positions) in probes {
            // Guarded like the probe paths: a panicking classifier must
            // not unwind serve_batch with this batch's keys stranded in
            // the pending map (later callers would wait on them forever).
            let class = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                I::coalesce_class(&request)
            }))
            .unwrap_or(None);
            match class {
                Some(class) => classes.entry(class).or_default().push((request, positions)),
                None => singles.push((request, positions)),
            }
        }
        for (_, group) in classes {
            if group.len() < 2 {
                singles.extend(group);
                continue;
            }
            let members: Vec<I::Request> = group.iter().map(|(r, _)| r.clone()).collect();
            let merged = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                I::coalesce(&members)
            }))
            .unwrap_or_else(|panic| {
                Err(CqapError::Other(format!(
                    "coalesce panicked: {}",
                    panic_message(panic)
                )))
            });
            match merged {
                Ok(bulk) => {
                    self.stats
                        .coalesced
                        .fetch_add(group.len() as u64, Ordering::Relaxed);
                    let mut parts = Vec::with_capacity(group.len());
                    let mut edf: Option<Instant> = None;
                    for (request, positions) in group {
                        let member_deadline = group_deadline(&positions, false);
                        edf = match (edf, group_deadline(&positions, true)) {
                            (Some(a), Some(b)) => Some(a.min(b)),
                            (a, None) => a,
                            (None, b) => b,
                        };
                        let (ptx, prx) = mpsc::channel();
                        parts.push((request, ptx, member_deadline));
                        own.push((prx, positions));
                    }
                    jobs.push((edf, None, BatchJob::Coalesced(bulk, parts)));
                }
                // The index refused the merge: dispatch the group one
                // probe per request, as if it never coalesced.
                Err(_) => singles.extend(group),
            }
        }
        for (request, positions) in singles {
            let edf = group_deadline(&positions, true);
            let drop_deadline = group_deadline(&positions, false);
            let (ptx, prx) = mpsc::channel();
            own.push((prx, positions));
            jobs.push((edf, drop_deadline, BatchJob::Single(request, ptx)));
        }
        // Earliest-deadline-first dispatch: the most urgent job enters
        // the pool's queue first. Jobs without a deadline go last; the
        // no-deadline batch path keeps its original dispatch order.
        if deadlines.is_some() {
            jobs.sort_by(|(a, _, _), (b, _, _)| match (a, b) {
                (Some(a), Some(b)) => a.cmp(b),
                (Some(_), None) => std::cmp::Ordering::Less,
                (None, Some(_)) => std::cmp::Ordering::Greater,
                (None, None) => std::cmp::Ordering::Equal,
            });
        }
        // Dispatch in EDF order, charging admission one slot per probe
        // job (a coalesced group is one backend probe). A shed job
        // resolves all its members with the gate's error instead of
        // dispatching; results still come back through each group's
        // side channel, keeping the gather loop uniform.
        for (_, drop_deadline, job) in jobs {
            let permit = match &self.gate {
                Some(gate) => match gate.admit(trace) {
                    Ok(permit) => Some(permit),
                    Err(error) => {
                        self.shed_batch_job(job, &error);
                        continue;
                    }
                },
                None => None,
            };
            match job {
                BatchJob::Single(request, ptx) => {
                    self.dispatch_probe(request, ptx, trace, None, drop_deadline, permit);
                }
                BatchJob::Coalesced(bulk, parts) => {
                    self.dispatch_coalesced(bulk, parts, trace, permit);
                }
            }
        }
        self.sink.stop(coalesce_timer, StageId::Coalesce);
        if let Some(started) = coalesce_started {
            self.sink
                .trace_span(trace, TraceStage::Coalesce, started, Instant::now(), 0);
        }

        for (prx, positions) in own.into_iter().chain(joined) {
            let result = prx
                .recv()
                .unwrap_or_else(|_| Err(CqapError::Other("serve worker disappeared".into())));
            record(result, positions, &mut answers);
        }
        // The batch owns its trace root: finish once every leg gathered,
        // spanning submission to the slowest answer.
        if let Some(submitted) = submitted {
            self.sink.trace_finish(
                trace,
                u64::try_from(submitted.elapsed().as_nanos()).unwrap_or(u64::MAX),
            );
        }
        answers
            .into_iter()
            .map(|a| a.expect("every position answered or errored"))
            .collect()
    }

    /// Resolves every member of a batch job that failed admission: the
    /// members' pending entries are removed, waiters that joined since
    /// the batch's lookup pass fan the same error, and each resolved
    /// ticket (member channel or waiter) counts as shed.
    fn shed_batch_job(&self, job: BatchJob<I>, error: &CqapError) {
        let members: Vec<(I::Request, mpsc::Sender<Result<Arc<I::Answer>>>)> = match job {
            BatchJob::Single(request, tx) => vec![(request, tx)],
            BatchJob::Coalesced(_, parts) => {
                parts.into_iter().map(|(r, tx, _)| (r, tx)).collect()
            }
        };
        for (request, tx) in members {
            let waiters = {
                let mut state = self.state.lock().expect("state lock");
                state.pending.remove(&request).unwrap_or_default()
            };
            let dropped = 1 + waiters.len() as u64;
            self.stats.shed.fetch_add(dropped, Ordering::Relaxed);
            self.sink.add(CounterId::RequestsShed, dropped);
            let result: Result<Arc<I::Answer>> = Err(error.clone());
            for waiter in waiters {
                let _ = waiter.send(clone_result(&result));
            }
            let _ = tx.send(result);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqap_decomp::families as pf;
    use cqap_panda::CqapIndex;
    use cqap_query::workload::{graph_pair_requests, Graph};
    use cqap_query::AccessRequest;

    fn small_index() -> (Arc<CqapIndex>, Vec<AccessRequest>) {
        let (cqap, pmtds) = pf::pmtds_3reach_fig1().unwrap();
        let g = Graph::random(30, 130, 17);
        let db = g.as_path_database(3);
        let index = Arc::new(CqapIndex::build(&cqap, &db, &pmtds).unwrap());
        let requests: Vec<AccessRequest> = graph_pair_requests(&g, 60, 19)
            .into_iter()
            .map(|(u, v)| AccessRequest::single(cqap.access(), &[u, v]).unwrap())
            .collect();
        (index, requests)
    }

    #[test]
    fn batch_matches_sequential_in_order() {
        let (index, requests) = small_index();
        let runtime = ServeRuntime::with_config(
            Arc::clone(&index),
            ServeConfig {
                threads: 4,
                cache_capacity: 16,
                ..ServeConfig::default()
            },
        );
        let parallel = runtime.serve_batch(&requests).unwrap();
        for (request, answer) in requests.iter().zip(&parallel) {
            assert_eq!(answer.as_ref(), &index.answer(request).unwrap());
        }
    }

    #[test]
    fn cache_serves_repeats() {
        let (index, requests) = small_index();
        let runtime = ServeRuntime::new(index);
        let first = runtime.serve_batch(&requests[..10]).unwrap();
        let second = runtime.serve_batch(&requests[..10]).unwrap();
        assert_eq!(first, second);
        let stats = runtime.stats();
        assert_eq!(stats.served, 20);
        assert!(
            stats.cache_hits + stats.dedup_hits >= 10,
            "second pass should be answered without index probes: {stats:?}"
        );
    }

    #[test]
    fn duplicates_within_a_batch_are_computed_once() {
        let (index, requests) = small_index();
        let runtime = ServeRuntime::with_config(
            index,
            ServeConfig {
                threads: 2,
                cache_capacity: 64,
                ..ServeConfig::default()
            },
        );
        let repeated: Vec<AccessRequest> = std::iter::repeat(requests[0].clone()).take(50).collect();
        let answers = runtime.serve_batch(&repeated).unwrap();
        assert!(answers.windows(2).all(|w| w[0] == w[1]));
        let stats = runtime.stats();
        assert_eq!(stats.cache_misses, 1, "one probe for 50 duplicates");
        assert_eq!(stats.dedup_hits, 49, "duplicates are dedup, not LRU, hits");
        assert_eq!(stats.cache_hits, 0, "nothing was in the LRU yet");
    }

    #[test]
    fn submit_tickets_resolve() {
        let (index, requests) = small_index();
        let runtime = ServeRuntime::new(Arc::clone(&index));
        let tickets: Vec<_> = requests
            .iter()
            .take(20)
            .map(|r| runtime.submit(r.clone()))
            .collect();
        for (request, ticket) in requests.iter().zip(tickets) {
            assert_eq!(*ticket.wait().unwrap(), index.answer(request).unwrap());
        }
    }

    #[test]
    fn submit_cache_hit_resolves_without_pool() {
        let (index, requests) = small_index();
        let runtime = ServeRuntime::new(index);
        runtime.submit(requests[0].clone()).wait().unwrap();
        let ticket = runtime.submit(requests[0].clone());
        // A cache hit is sent synchronously, so the answer is already there.
        assert!(ticket.try_wait().is_some());
        assert_eq!(runtime.stats().cache_hits, 1);
    }

    /// A deliberately faulty index: one poison key panics mid-answer.
    struct PanicIndex;

    impl crate::BatchAnswer for PanicIndex {
        type Request = u64;
        type Answer = u64;

        fn answer_one(&self, request: &u64) -> cqap_common::Result<u64> {
            assert!(*request != 13, "poison key");
            Ok(request * 2)
        }
    }

    #[test]
    fn panicking_request_becomes_an_error_not_a_dead_runtime() {
        let runtime = ServeRuntime::with_config(
            Arc::new(PanicIndex),
            ServeConfig {
                threads: 2,
                cache_capacity: 8,
                ..ServeConfig::default()
            },
        );
        let error = runtime.submit(13).wait().expect_err("poison key fails");
        assert!(
            error.to_string().contains("request panicked"),
            "got: {error}"
        );
        assert_eq!(runtime.stats().errors, 1);
        // The runtime is still alive and serving.
        assert_eq!(*runtime.submit(7).wait().unwrap(), 14);
        // In a batch, the panic fails the batch without hanging it.
        assert!(runtime.serve_batch(&[1, 13, 2]).is_err());
        let ok: Vec<u64> = runtime
            .serve_batch(&[1, 2, 3])
            .unwrap()
            .into_iter()
            .map(|a| *a)
            .collect();
        assert_eq!(ok, vec![2, 4, 6]);
    }

    /// An index whose probes block until the test releases them, with a
    /// probe counter — the tool for deterministic thundering-herd tests.
    struct GatedIndex {
        gate: Mutex<mpsc::Receiver<()>>,
        probes: AtomicU64,
    }

    impl GatedIndex {
        fn new() -> (Arc<Self>, mpsc::Sender<()>) {
            let (tx, rx) = mpsc::channel();
            (
                Arc::new(GatedIndex {
                    gate: Mutex::new(rx),
                    probes: AtomicU64::new(0),
                }),
                tx,
            )
        }
    }

    impl crate::BatchAnswer for GatedIndex {
        type Request = u64;
        type Answer = u64;

        fn answer_one(&self, request: &u64) -> cqap_common::Result<u64> {
            self.probes.fetch_add(1, Ordering::Relaxed);
            self.gate
                .lock()
                .expect("gate lock")
                .recv()
                .expect("gate open");
            if *request == 13 {
                return Err(cqap_common::CqapError::Other("poison key".into()));
            }
            Ok(request * 10)
        }
    }

    #[test]
    fn concurrent_submits_of_one_key_share_a_single_probe() {
        let (index, gate) = GatedIndex::new();
        let runtime = ServeRuntime::with_config(
            Arc::clone(&index),
            ServeConfig {
                threads: 4,
                cache_capacity: 8,
                ..ServeConfig::default()
            },
        );
        // Ten submits of the hot key while the first probe is blocked on
        // the gate: nine must join the in-flight probe.
        let tickets: Vec<_> = (0..10).map(|_| runtime.submit(5)).collect();
        // Nothing has resolved yet (the probe is gated).
        assert!(tickets[0].try_wait().is_none());
        gate.send(()).expect("worker waiting");
        for ticket in tickets {
            assert_eq!(*ticket.wait().unwrap(), 50);
        }
        assert_eq!(index.probes.load(Ordering::Relaxed), 1, "one probe total");
        let stats = runtime.stats();
        assert_eq!(stats.cache_misses, 1);
        assert_eq!(stats.inflight_hits, 9);
        assert_eq!(stats.served, 10);
        // The answer is now cached: an eleventh submit is a cache hit.
        assert_eq!(*runtime.submit(5).wait().unwrap(), 50);
        assert_eq!(runtime.stats().cache_hits, 1);
    }

    #[test]
    fn serve_batch_joins_probes_already_in_flight() {
        let (index, gate) = GatedIndex::new();
        let runtime = Arc::new(ServeRuntime::with_config(
            Arc::clone(&index),
            ServeConfig {
                threads: 4,
                cache_capacity: 8,
                ..ServeConfig::default()
            },
        ));
        // A submit starts a gated probe of key 7...
        let ticket = runtime.submit(7);
        // ...then a batch containing 7 (twice) and a fresh key 8 arrives on
        // another thread. It must join the in-flight probe of 7, not rerun
        // it.
        let batch_runtime = Arc::clone(&runtime);
        let batch = std::thread::spawn(move || batch_runtime.serve_batch(&[7, 8, 7]).unwrap());
        // Wait until the batch has registered (it joins 7's probe in the
        // same locked pass that dispatches 8's), then release both gated
        // probes. 7's probe cannot complete before the batch registers,
        // because no gate token has been sent yet.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while runtime.stats().inflight_hits == 0 {
            assert!(std::time::Instant::now() < deadline, "batch never joined");
            std::thread::yield_now();
        }
        gate.send(()).expect("worker waiting");
        gate.send(()).expect("worker waiting");
        let answers: Vec<u64> = batch.join().unwrap().into_iter().map(|a| *a).collect();
        assert_eq!(answers, vec![70, 80, 70]);
        assert_eq!(*ticket.wait().unwrap(), 70);
        assert_eq!(
            index.probes.load(Ordering::Relaxed),
            2,
            "keys 7 and 8 probed once each"
        );
        let stats = runtime.stats();
        assert_eq!(stats.inflight_hits, 1, "the batch joined 7's probe");
        assert_eq!(stats.dedup_hits, 1, "7 appeared twice in the batch");
        assert_eq!(stats.cache_misses, 2);
    }

    #[test]
    fn waiters_receive_errors_from_a_shared_probe() {
        let (index, gate) = GatedIndex::new();
        let runtime = ServeRuntime::with_config(
            Arc::clone(&index),
            ServeConfig {
                threads: 2,
                cache_capacity: 8,
                ..ServeConfig::default()
            },
        );
        // Both submits of the poison key are registered while the single
        // probe is still gated, so the second joins it as a waiter.
        let first = runtime.submit(13);
        let second = runtime.submit(13);
        gate.send(()).expect("worker waiting");
        assert!(first.wait().is_err());
        assert!(second.wait().is_err());
        assert_eq!(index.probes.load(Ordering::Relaxed), 1, "one shared probe");
        let stats = runtime.stats();
        assert_eq!(stats.errors, 1, "errors count probes, not waiters");
        assert_eq!(stats.inflight_hits, 1);
        // Errors are not cached: the key stays probe-able.
        let retry = runtime.submit(13);
        gate.send(()).expect("worker waiting");
        assert!(retry.wait().is_err());
        assert_eq!(index.probes.load(Ordering::Relaxed), 2);
    }

    /// A coalescable index: a request is a list of keys, the answer their
    /// doubles; single-key requests merge into one bulk probe.
    struct BulkIndex {
        probes: AtomicU64,
    }

    impl crate::BatchAnswer for BulkIndex {
        type Request = Vec<u64>;
        type Answer = Vec<u64>;

        fn answer_one(&self, request: &Vec<u64>) -> cqap_common::Result<Vec<u64>> {
            self.probes.fetch_add(1, Ordering::Relaxed);
            Ok(request.iter().map(|k| k * 2).collect())
        }

        fn coalesce_class(request: &Vec<u64>) -> Option<u64> {
            (request.len() == 1).then_some(0)
        }

        fn coalesce(requests: &[Vec<u64>]) -> cqap_common::Result<Vec<u64>> {
            Ok(requests.concat())
        }

        fn extract(&self, bulk: &Vec<u64>, request: &Vec<u64>) -> cqap_common::Result<Vec<u64>> {
            Ok(request
                .iter()
                .map(|k| k * 2)
                .filter(|v| bulk.contains(v))
                .collect())
        }
    }

    #[test]
    fn same_class_probes_coalesce_into_one_bulk_probe() {
        let index = Arc::new(BulkIndex {
            probes: AtomicU64::new(0),
        });
        let runtime = ServeRuntime::with_config(
            Arc::clone(&index),
            ServeConfig {
                threads: 2,
                cache_capacity: 16,
                ..ServeConfig::default()
            },
        );
        let batch: Vec<Vec<u64>> = vec![vec![1], vec![2], vec![3], vec![4, 5]];
        let answers: Vec<Vec<u64>> = runtime
            .serve_batch(&batch)
            .unwrap()
            .iter()
            .map(|a| (**a).clone())
            .collect();
        assert_eq!(answers, vec![vec![2], vec![4], vec![6], vec![8, 10]]);
        // The three singles merged into one bulk probe; the multi-key
        // request (class None) probed alone.
        assert_eq!(index.probes.load(Ordering::Relaxed), 2, "two probes total");
        let stats = runtime.stats();
        assert_eq!(stats.coalesced, 3, "three members of the merged group");
        assert_eq!(stats.cache_misses, 4);
        // Merged members were cached under their own keys.
        let again = runtime.serve_batch(&batch).unwrap();
        assert_eq!(again.len(), 4);
        assert_eq!(runtime.stats().cache_hits, 4);
        assert_eq!(index.probes.load(Ordering::Relaxed), 2, "warm pass probes nothing");
    }

    #[test]
    fn coalesced_driver_answers_match_sequential() {
        // Distinct single-tuple driver requests share one access pattern,
        // so a cold batch coalesces into one multi-tuple probe — and the
        // extracted per-request answers are exactly the sequential ones.
        let (index, requests) = small_index();
        let runtime = ServeRuntime::with_config(
            Arc::clone(&index),
            ServeConfig {
                threads: 4,
                cache_capacity: 256,
                ..ServeConfig::default()
            },
        );
        let answers = runtime.serve_batch(&requests).unwrap();
        for (request, answer) in requests.iter().zip(&answers) {
            assert_eq!(answer.as_ref(), &index.answer(request).unwrap());
        }
        let stats = runtime.stats();
        assert!(stats.coalesced > 0, "cold distinct singles coalesce: {stats:?}");
    }

    #[test]
    fn metrics_sink_records_request_lifecycle() {
        let (index, requests) = small_index();
        let sink = MetricsSink::recording();
        let runtime = ServeRuntime::with_metrics(
            index,
            ServeConfig {
                threads: 4,
                cache_capacity: 256,
                ..ServeConfig::default()
            },
            sink.clone(),
        );
        runtime.serve_batch(&requests).unwrap();
        runtime.serve_batch(&requests).unwrap(); // warm pass
        // Join the pool workers before snapshotting: the queue-depth
        // decrement runs after a job's result send, so it is only
        // guaranteed visible once the pool has drained.
        drop(runtime);
        let snap = sink.snapshot().expect("sink is recording");
        assert!(snap.stage(StageId::CacheLookup).count >= 2, "one per batch");
        assert!(snap.stage(StageId::BackendProbe).count > 0);
        assert!(snap.stage(StageId::TicketDelivery).count > 0);
        assert!(snap.stage(StageId::QueueWait).count > 0);
        assert!(
            snap.stage(StageId::Coalesce).count > 0,
            "the cold batch had fresh probes to classify"
        );
        assert_eq!(
            snap.gauge(cqap_obs::GaugeId::QueueDepth),
            0,
            "all pool jobs completed"
        );
        // The warm pass dispatched nothing: probe count equals the cold
        // pass's pool activity.
        assert_eq!(
            snap.stage(StageId::BackendProbe).count,
            snap.stage(StageId::QueueWait).count,
            "every pool job was a probe"
        );
    }

    /// Satellite regression: attaching a live metrics sink must not
    /// re-introduce allocation on the warm single-request path. The
    /// cache-hit lookup (and its `CacheLookup` stage recording) runs on
    /// the calling thread, where the thread-local instrument counters
    /// can observe it.
    #[test]
    fn warm_submit_with_live_sink_stays_allocation_free() {
        let (index, requests) = small_index();
        let sink = MetricsSink::recording();
        let runtime = ServeRuntime::with_metrics(
            Arc::clone(&index),
            ServeConfig {
                threads: 2,
                cache_capacity: 64,
                ..ServeConfig::default()
            },
            sink.clone(),
        );
        let cold = runtime.submit(requests[0].clone()).wait().unwrap();
        let dedup_before = cqap_relation::instrument::dedup_inserts();
        let boxes_before = cqap_common::tuple::instrument::heap_boxings();
        let warm = runtime.submit(requests[0].clone()).wait().unwrap();
        assert_eq!(
            cqap_relation::instrument::dedup_inserts(),
            dedup_before,
            "warm cache hit with live sink performs no relation dedup inserts"
        );
        assert_eq!(
            cqap_common::tuple::instrument::heap_boxings(),
            boxes_before,
            "warm cache hit with live sink boxes no tuples"
        );
        assert_eq!(warm, cold);
        let snap = sink.snapshot().expect("sink is recording");
        assert!(
            snap.stage(StageId::CacheLookup).count >= 2,
            "the warm lookup itself was recorded"
        );
        assert_eq!(runtime.stats().cache_hits, 1);
    }

    /// Tentpole acceptance: a 1-in-N–sampled flight recorder attached to
    /// the live sink preserves the warm-path guarantee. Unsampled warm
    /// requests perform zero relation dedup inserts and zero tuple heap
    /// boxings (the trace seam must not even read the clock for them),
    /// while the sampled request's events still land in the ring.
    #[test]
    fn warm_submit_with_one_in_n_tracer_stays_allocation_free() {
        use cqap_obs::{FlightRecorder, SamplingPolicy, TraceStage};

        let (index, requests) = small_index();
        let tracer = Arc::new(FlightRecorder::new(64, SamplingPolicy::OneInN(8)));
        let sink = MetricsSink::recording().with_tracer(Arc::clone(&tracer));
        let runtime = ServeRuntime::with_metrics(
            Arc::clone(&index),
            ServeConfig {
                threads: 2,
                cache_capacity: 64,
                ..ServeConfig::default()
            },
            sink.clone(),
        );
        // Tick 0 of OneInN(8) is sampled: the cold request exercises the
        // full span path (QueueWait and probe legs write to the ring).
        let cold = runtime.submit(requests[0].clone()).wait().unwrap();
        // Ticks 1.. are unsampled: the warm hits are the acceptance
        // criterion.
        let dedup_before = cqap_relation::instrument::dedup_inserts();
        let boxes_before = cqap_common::tuple::instrument::heap_boxings();
        for _ in 0..3 {
            let warm = runtime.submit(requests[0].clone()).wait().unwrap();
            assert_eq!(warm, cold);
        }
        assert_eq!(
            cqap_relation::instrument::dedup_inserts(),
            dedup_before,
            "unsampled warm hits with a live tracer perform no relation dedup inserts"
        );
        assert_eq!(
            cqap_common::tuple::instrument::heap_boxings(),
            boxes_before,
            "unsampled warm hits with a live tracer box no tuples"
        );
        assert_eq!(runtime.stats().cache_hits, 3);
        // The sampled cold request committed a complete trace: a Request
        // root plus its QueueWait and BackendProbe legs share one id.
        drop(runtime); // join the pool so every leg is in the ring
        let events = tracer.drain();
        let root = events
            .iter()
            .find(|e| e.stage == TraceStage::Request)
            .expect("sampled request committed a root");
        for stage in [TraceStage::QueueWait, TraceStage::BackendProbe] {
            assert!(
                events
                    .iter()
                    .any(|e| e.stage == stage && e.trace_id == root.trace_id),
                "sampled trace carries a {stage:?} leg"
            );
        }
    }

    #[test]
    fn invalid_request_surfaces_as_error() {
        let (index, requests) = small_index();
        let runtime = ServeRuntime::new(index);
        // Wrong arity for the access pattern: the driver rejects it.
        let bad = AccessRequest::new(requests[0].access(), vec![cqap_common::Tuple::unary(1)]);
        assert!(bad.is_err(), "arity is validated at construction");
        // Errors from the index surface through serve_batch: a request over
        // the wrong access variables reaches the driver and fails there.
        let wrong_vars =
            AccessRequest::single(cqap_common::VarSet::from_iter([0, 1]), &[0, 1]).unwrap();
        let mut batch = requests[..3].to_vec();
        batch.push(wrong_vars);
        assert!(runtime.serve_batch(&batch).is_err());
    }

    // ----- Overload safety: admission, deadlines, degrade (PR 10) -----

    #[test]
    fn shed_admission_rejects_and_recovers() {
        let (index, gate) = GatedIndex::new();
        let runtime = ServeRuntime::with_config(
            Arc::clone(&index),
            ServeConfig {
                threads: 2,
                cache_capacity: 8,
                admission: Some(AdmissionConfig::shed(2)),
                ..ServeConfig::default()
            },
        );
        // Admission happens on the submitting thread, so after these two
        // return, both slots are held by gated probes...
        let first = runtime.submit(1);
        let second = runtime.submit(2);
        // ...and the third submit sheds with the typed error.
        let error = runtime.submit(3).wait().expect_err("over the limit");
        assert!(error.is_overloaded(), "got: {error}");
        assert_eq!(runtime.stats().shed, 1);
        // Draining the gated probes frees the slots: the runtime recovers.
        gate.send(()).expect("worker waiting");
        gate.send(()).expect("worker waiting");
        assert_eq!(*first.wait().unwrap(), 10);
        assert_eq!(*second.wait().unwrap(), 20);
        let retry = runtime.submit(3);
        gate.send(()).expect("worker waiting");
        assert_eq!(*retry.wait().unwrap(), 30);
        assert_eq!(runtime.stats().shed, 1, "the retry was admitted");
        // Three probes total — keys 1, 2, and the retried 3. The shed
        // submit never reached the backend.
        assert_eq!(index.probes.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn block_admission_backpressures_until_a_slot_frees() {
        let (index, gate) = GatedIndex::new();
        let runtime = Arc::new(ServeRuntime::with_config(
            Arc::clone(&index),
            ServeConfig {
                threads: 2,
                cache_capacity: 8,
                admission: Some(AdmissionConfig::block(1, None)),
                ..ServeConfig::default()
            },
        ));
        let first = runtime.submit(1); // holds the only slot at the gate
        let blocked_runtime = Arc::clone(&runtime);
        let blocked = std::thread::spawn(move || blocked_runtime.submit(2).wait());
        // The blocked submitter admits only after key 1's probe finishes,
        // so until the first gate token is sent, exactly one probe runs.
        let patience = Instant::now() + Duration::from_secs(10);
        while index.probes.load(Ordering::Relaxed) == 0 {
            assert!(Instant::now() < patience, "first probe never started");
            std::thread::yield_now();
        }
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(index.probes.load(Ordering::Relaxed), 1, "key 2 still gated out");
        gate.send(()).expect("worker waiting");
        gate.send(()).expect("worker waiting");
        assert_eq!(*first.wait().unwrap(), 10);
        assert_eq!(*blocked.join().unwrap().unwrap(), 20);
        assert_eq!(runtime.stats().shed, 0, "blocking admission sheds nothing");
    }

    #[test]
    fn queued_request_past_its_deadline_is_dropped_before_the_probe() {
        let (index, gate) = GatedIndex::new();
        let runtime = ServeRuntime::with_config(
            Arc::clone(&index),
            ServeConfig {
                threads: 1,
                cache_capacity: 8,
                ..ServeConfig::default()
            },
        );
        // Key 1 holds the single worker at the gate, so key 2's short
        // deadline passes while it sits queued.
        let first = runtime.submit(1);
        let second =
            runtime.submit_with_deadline(2, Instant::now() + Duration::from_millis(20));
        std::thread::sleep(Duration::from_millis(40));
        gate.send(()).expect("worker waiting");
        assert_eq!(*first.wait().unwrap(), 10);
        let error = second.wait().expect_err("deadline passed in the queue");
        assert!(error.is_deadline_expired(), "got: {error}");
        // One probe total: the expired request was dropped before the
        // backend (no second gate token was ever needed).
        assert_eq!(index.probes.load(Ordering::Relaxed), 1);
        let stats = runtime.stats();
        assert_eq!(stats.deadline_expired, 1);
        assert_eq!(stats.errors, 0, "expiry is not a probe error");
    }

    #[test]
    fn already_expired_submit_is_rejected_at_the_door() {
        let (index, requests) = small_index();
        let runtime = ServeRuntime::new(index);
        let ticket = runtime.submit_with_deadline(
            requests[0].clone(),
            Instant::now() - Duration::from_millis(5),
        );
        let error = ticket.wait().expect_err("expired on arrival");
        assert!(error.is_deadline_expired(), "got: {error}");
        let stats = runtime.stats();
        assert_eq!(stats.deadline_expired, 1);
        assert_eq!(stats.cache_misses, 0, "the lookup was never consulted");
    }

    #[test]
    fn wait_timeout_bounds_the_wait_and_keeps_the_ticket_usable() {
        let (index, gate) = GatedIndex::new();
        let runtime = ServeRuntime::with_config(
            Arc::clone(&index),
            ServeConfig {
                threads: 1,
                cache_capacity: 8,
                ..ServeConfig::default()
            },
        );
        let ticket = runtime.submit(4);
        assert!(matches!(
            ticket.wait_timeout(Duration::from_millis(10)),
            Err(WaitTimeout::Elapsed)
        ));
        gate.send(()).expect("worker waiting");
        // The timed-out ticket is still live: the answer arrives on the
        // same channel once the probe completes, and dropping it instead
        // would not leak the pending-map entry (the worker removed it
        // when publishing).
        assert_eq!(*ticket.wait_timeout(Duration::from_secs(10)).unwrap(), 40);
    }

    #[test]
    fn submit_with_retry_rides_out_a_transient_overload() {
        let (index, gate) = GatedIndex::new();
        let runtime = ServeRuntime::with_config(
            Arc::clone(&index),
            ServeConfig {
                threads: 1,
                cache_capacity: 8,
                admission: Some(AdmissionConfig::shed(1)),
                ..ServeConfig::default()
            },
        );
        let first = runtime.submit(1); // holds the only slot at the gate
        // A plain submit sheds deterministically while the slot is held.
        let error = runtime.submit(2).wait().expect_err("slot held");
        assert!(error.is_overloaded());
        // Free the slot mid-backoff; the second token pre-buffers for the
        // retry's own probe.
        let release = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(15));
            gate.send(()).expect("worker waiting");
            gate.send(()).expect("second token buffers for the retry");
        });
        let policy = RetryPolicy {
            max_retries: 200,
            base_delay: Duration::from_millis(2),
            max_delay: Duration::from_millis(10),
            jitter_seed: 42,
        };
        let answer = runtime.submit_with_retry(2, policy).unwrap();
        assert_eq!(*answer, 20);
        assert!(runtime.stats().shed >= 1);
        assert_eq!(*first.wait().unwrap(), 10);
        release.join().unwrap();
    }

    /// An index that records the order keys are probed in, gated so the
    /// queue builds up behind the first probe.
    struct OrderIndex {
        gate: Mutex<mpsc::Receiver<()>>,
        order: Mutex<Vec<u64>>,
    }

    impl crate::BatchAnswer for OrderIndex {
        type Request = u64;
        type Answer = u64;

        fn answer_one(&self, request: &u64) -> cqap_common::Result<u64> {
            self.gate
                .lock()
                .expect("gate lock")
                .recv()
                .expect("gate open");
            self.order.lock().expect("order lock").push(*request);
            Ok(request * 10)
        }
    }

    #[test]
    fn batch_dispatch_is_earliest_deadline_first() {
        let (tx, rx) = mpsc::channel();
        let index = Arc::new(OrderIndex {
            gate: Mutex::new(rx),
            order: Mutex::new(Vec::new()),
        });
        // One worker drains its queue in FIFO order, so the recorded
        // probe order is exactly the dispatch order.
        let runtime = Arc::new(ServeRuntime::with_config(
            Arc::clone(&index),
            ServeConfig {
                threads: 1,
                cache_capacity: 8,
                ..ServeConfig::default()
            },
        ));
        let now = Instant::now();
        let requests = vec![1u64, 2, 3];
        let deadlines = vec![
            now + Duration::from_secs(60),
            now + Duration::from_secs(30),
            now + Duration::from_secs(10),
        ];
        let batch_runtime = Arc::clone(&runtime);
        let batch = std::thread::spawn(move || {
            batch_runtime.serve_batch_with_deadlines(&requests, &deadlines)
        });
        for _ in 0..3 {
            tx.send(()).expect("worker waiting");
        }
        let results = batch.join().unwrap();
        for (position, result) in results.iter().enumerate() {
            assert_eq!(**result.as_ref().unwrap(), (position as u64 + 1) * 10);
        }
        assert_eq!(
            *index.order.lock().unwrap(),
            vec![3, 2, 1],
            "the earliest deadline probes first"
        );
    }

    #[test]
    fn batch_admission_sheds_per_position_without_failing_the_batch() {
        let (index, gate) = GatedIndex::new();
        let runtime = Arc::new(ServeRuntime::with_config(
            Arc::clone(&index),
            ServeConfig {
                threads: 2,
                cache_capacity: 8,
                admission: Some(AdmissionConfig::shed(1)),
                ..ServeConfig::default()
            },
        ));
        let far = Instant::now() + Duration::from_secs(60);
        let batch_runtime = Arc::clone(&runtime);
        let batch = std::thread::spawn(move || {
            batch_runtime.serve_batch_with_deadlines(&[1, 2], &[far, far])
        });
        // One slot: the first job dispatches and gates, the second sheds.
        let patience = Instant::now() + Duration::from_secs(10);
        while runtime.stats().shed == 0 {
            assert!(Instant::now() < patience, "second job never shed");
            std::thread::yield_now();
        }
        gate.send(()).expect("worker waiting");
        let results = batch.join().unwrap();
        assert_eq!(**results[0].as_ref().unwrap(), 10);
        assert!(results[1].as_ref().is_err_and(|e| e.is_overloaded()));
        assert_eq!(runtime.stats().shed, 1);
        assert_eq!(index.probes.load(Ordering::Relaxed), 1, "shed members never probe");
    }

    /// A gated index with a cheap ungated degraded path, flagged by `+1`.
    struct DegradableIndex {
        gate: Mutex<mpsc::Receiver<()>>,
        probes: AtomicU64,
        degraded_probes: AtomicU64,
    }

    impl crate::BatchAnswer for DegradableIndex {
        type Request = u64;
        type Answer = u64;

        fn answer_one(&self, request: &u64) -> cqap_common::Result<u64> {
            self.probes.fetch_add(1, Ordering::Relaxed);
            self.gate
                .lock()
                .expect("gate lock")
                .recv()
                .expect("gate open");
            Ok(request * 10)
        }

        fn answer_degraded(&self, request: &u64) -> Option<cqap_common::Result<u64>> {
            self.degraded_probes.fetch_add(1, Ordering::Relaxed);
            Some(Ok(request * 10 + 1))
        }
    }

    #[test]
    fn degrade_mode_past_the_watermark_answers_cheaply_and_skips_the_cache() {
        let (tx, rx) = mpsc::channel();
        let index = Arc::new(DegradableIndex {
            gate: Mutex::new(rx),
            probes: AtomicU64::new(0),
            degraded_probes: AtomicU64::new(0),
        });
        let runtime = ServeRuntime::with_config(
            Arc::clone(&index),
            ServeConfig {
                threads: 1,
                cache_capacity: 8,
                degrade_watermark: Some(0),
                ..ServeConfig::default()
            },
        );
        // Key 1 occupies the single worker (the queue was empty at its
        // dispatch, so it is served in full)...
        let first = runtime.submit(1);
        let patience = Instant::now() + Duration::from_secs(10);
        while index.probes.load(Ordering::Relaxed) == 0 {
            assert!(Instant::now() < patience, "first probe never started");
            std::thread::yield_now();
        }
        // ...key 2 queues behind it (queue still empty at dispatch time:
        // key 1 was already picked up)...
        let second = runtime.submit(2);
        // ...and key 3 dispatches with key 2 sitting queued — past the
        // watermark, so it degrades to the cheap plan.
        let third = runtime.submit(3);
        tx.send(()).expect("worker waiting");
        tx.send(()).expect("worker waiting");
        assert_eq!(*first.wait().unwrap(), 10);
        assert_eq!(*second.wait().unwrap(), 20);
        assert_eq!(*third.wait().unwrap(), 31, "degraded answer is flagged");
        let stats = runtime.stats();
        assert_eq!(stats.degraded, 1);
        assert_eq!(index.degraded_probes.load(Ordering::Relaxed), 1);
        // Degraded answers are never cached: a calm re-submit of key 3
        // runs the full probe and returns the full answer.
        let retry = runtime.submit(3);
        tx.send(()).expect("worker waiting");
        assert_eq!(*retry.wait().unwrap(), 30);
        assert_eq!(runtime.stats().degraded, 1);
    }

    /// PR-10 acceptance: enabling admission must not re-introduce
    /// allocation on the warm single-request path (counter-enforced, as
    /// in the sink/tracer variants above).
    #[test]
    fn warm_submit_with_admission_stays_allocation_free() {
        let (index, requests) = small_index();
        let runtime = ServeRuntime::with_config(
            Arc::clone(&index),
            ServeConfig {
                threads: 2,
                cache_capacity: 64,
                admission: Some(AdmissionConfig::shed(32)),
                ..ServeConfig::default()
            },
        );
        let cold = runtime.submit(requests[0].clone()).wait().unwrap();
        let dedup_before = cqap_relation::instrument::dedup_inserts();
        let boxes_before = cqap_common::tuple::instrument::heap_boxings();
        let warm = runtime.submit(requests[0].clone()).wait().unwrap();
        assert_eq!(
            cqap_relation::instrument::dedup_inserts(),
            dedup_before,
            "warm cache hit through the admission gate performs no dedup inserts"
        );
        assert_eq!(
            cqap_common::tuple::instrument::heap_boxings(),
            boxes_before,
            "warm cache hit through the admission gate boxes no tuples"
        );
        assert_eq!(warm, cold);
        assert_eq!(runtime.stats().cache_hits, 1);
        assert_eq!(runtime.stats().shed, 0);
    }

    #[test]
    fn driver_degraded_answer_is_flagged_and_contained() {
        let (index, requests) = small_index();
        for request in requests.iter().take(10) {
            let full = index.answer(request).unwrap();
            let degraded = index.answer_degraded(request).unwrap();
            assert_eq!(degraded.name(), cqap_panda::DEGRADED_ANSWER_NAME);
            for tuple in degraded.iter() {
                assert!(
                    full.contains(&tuple),
                    "degraded answers only ever under-report"
                );
            }
        }
    }
}
