//! The serving runtime: a shared immutable index behind a work-stealing
//! pool, per-request result channels, and an LRU answer cache.
//!
//! [`ServeRuntime`] owns the three pieces and exposes two front doors:
//!
//! * [`ServeRuntime::serve_batch`] — answer a slice of requests
//!   concurrently, preserving order, deduplicating identical requests
//!   within the batch and consulting the cache before touching the index;
//! * [`ServeRuntime::submit`] — enqueue one request and get a [`Ticket`]
//!   (a one-shot result channel) back, for callers that interleave
//!   submission with other work.
//!
//! The index is `Arc`-shared and never mutated after construction, which is
//! exactly the paper's regime: the preprocessing phase fixes the
//! materialized views within the space budget, and the online phase is
//! read-only.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};

use cqap_common::{CqapError, Result};

use crate::batch::BatchAnswer;
use crate::cache::LruCache;
use crate::pool::{default_threads, WorkStealingPool};

/// Configuration for a [`ServeRuntime`].
#[derive(Clone, Copy, Debug)]
pub struct ServeConfig {
    /// Worker threads in the pool. Defaults to the machine's available
    /// parallelism.
    pub threads: usize,
    /// Capacity of the LRU answer cache, in entries. Zero disables caching.
    pub cache_capacity: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            threads: default_threads(),
            cache_capacity: 4_096,
        }
    }
}

/// Counters describing what a runtime has done so far.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Requests answered (including cache hits).
    pub served: u64,
    /// Requests answered from the LRU cache.
    pub cache_hits: u64,
    /// Requests answered by sharing another identical request's computation
    /// within the same batch (intra-batch deduplication). Kept separate
    /// from [`ServeStats::cache_hits`] so cache-policy effectiveness and
    /// dedup savings stay independently measurable.
    pub dedup_hits: u64,
    /// Requests that had to probe the index.
    pub cache_misses: u64,
    /// Requests whose answering returned an error.
    pub errors: u64,
}

#[derive(Default)]
struct StatsCells {
    served: AtomicU64,
    cache_hits: AtomicU64,
    dedup_hits: AtomicU64,
    cache_misses: AtomicU64,
    errors: AtomicU64,
}

impl StatsCells {
    fn snapshot(&self) -> ServeStats {
        ServeStats {
            served: self.served.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            dedup_hits: self.dedup_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
        }
    }
}

/// A one-shot handle to the answer of a single submitted request.
pub struct Ticket<A> {
    rx: mpsc::Receiver<Result<A>>,
}

impl<A> Ticket<A> {
    /// Blocks until the answer is ready.
    ///
    /// # Errors
    /// Returns the answering error, or an internal error if the runtime was
    /// torn down before the request ran.
    pub fn wait(self) -> Result<A> {
        self.rx
            .recv()
            .unwrap_or_else(|_| Err(CqapError::Other("serve runtime dropped".into())))
    }

    /// Non-blocking poll; `None` while the answer is still being computed.
    /// A torn-down runtime (or a request that panicked mid-answer) yields
    /// `Some(Err(..))`, never a stuck `None`.
    pub fn try_wait(&self) -> Option<Result<A>> {
        match self.rx.try_recv() {
            Ok(result) => Some(result),
            Err(mpsc::TryRecvError::Empty) => None,
            Err(mpsc::TryRecvError::Disconnected) => {
                Some(Err(CqapError::Other("serve runtime dropped".into())))
            }
        }
    }
}

/// Answers one request, converting a panic in the index into a regular
/// [`CqapError`] so workers stay alive, the error counter stays truthful,
/// and callers see "request panicked" rather than a torn-down-runtime
/// message.
fn answer_guarded<I: BatchAnswer>(index: &I, request: &I::Request) -> Result<I::Answer> {
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| index.answer_one(request)))
        .unwrap_or_else(|panic| {
            let message = panic
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| panic.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".into());
            Err(CqapError::Other(format!("request panicked: {message}")))
        })
}

/// A concurrent, caching request-serving runtime over a shared immutable
/// index.
pub struct ServeRuntime<I: BatchAnswer + 'static> {
    index: Arc<I>,
    pool: WorkStealingPool,
    cache: Arc<Mutex<LruCache<I::Request, I::Answer>>>,
    stats: Arc<StatsCells>,
}

impl<I: BatchAnswer + 'static> ServeRuntime<I> {
    /// Creates a runtime with the default configuration.
    pub fn new(index: Arc<I>) -> Self {
        ServeRuntime::with_config(index, ServeConfig::default())
    }

    /// Creates a runtime with an explicit thread count and cache capacity.
    pub fn with_config(index: Arc<I>, config: ServeConfig) -> Self {
        ServeRuntime {
            index,
            pool: WorkStealingPool::new(config.threads),
            cache: Arc::new(Mutex::new(LruCache::new(config.cache_capacity))),
            stats: Arc::new(StatsCells::default()),
        }
    }

    /// The shared index being served.
    pub fn index(&self) -> &Arc<I> {
        &self.index
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.pool.threads()
    }

    /// Counters since construction.
    pub fn stats(&self) -> ServeStats {
        self.stats.snapshot()
    }

    /// Submits one request; the returned [`Ticket`] resolves to its answer.
    /// Cache hits resolve immediately without entering the pool.
    pub fn submit(&self, request: I::Request) -> Ticket<I::Answer> {
        let (tx, rx) = mpsc::channel();
        self.stats.served.fetch_add(1, Ordering::Relaxed);
        if let Some(answer) = self.cache.lock().expect("cache lock").get(&request) {
            self.stats.cache_hits.fetch_add(1, Ordering::Relaxed);
            let _ = tx.send(Ok(answer));
            return Ticket { rx };
        }
        self.stats.cache_misses.fetch_add(1, Ordering::Relaxed);
        let index = Arc::clone(&self.index);
        let cache = Arc::clone(&self.cache);
        let stats = Arc::clone(&self.stats);
        self.pool.execute(move || {
            let result = answer_guarded(index.as_ref(), &request);
            match &result {
                Ok(answer) => cache.lock().expect("cache lock").insert(request, answer.clone()),
                Err(_) => {
                    stats.errors.fetch_add(1, Ordering::Relaxed);
                }
            }
            let _ = tx.send(result);
        });
        Ticket { rx }
    }

    /// Answers a batch of requests concurrently, preserving input order.
    ///
    /// Identical requests inside the batch are answered once and fanned out;
    /// previously served requests are answered from the LRU cache.
    ///
    /// # Errors
    /// Fails if any request fails (the first error in input order wins).
    pub fn serve_batch(&self, requests: &[I::Request]) -> Result<Vec<I::Answer>> {
        let mut answers: Vec<Option<I::Answer>> = vec![None; requests.len()];
        self.stats
            .served
            .fetch_add(requests.len() as u64, Ordering::Relaxed);

        // Deduplicate: positions sharing a request share one computation.
        let mut groups: cqap_common::FxHashMap<&I::Request, Vec<usize>> =
            cqap_common::FxHashMap::default();
        groups.reserve(requests.len());
        for (position, request) in requests.iter().enumerate() {
            groups.entry(request).or_default().push(position);
        }

        // One pass under the cache lock to split hits from misses — the
        // lock covers only the O(1) lookups (one clone per *distinct* hit);
        // per-position fan-out cloning and dispatch happen after release,
        // because workers insert their answers into the same cache and
        // must not queue behind the dispatcher.
        let mut hits: Vec<(I::Answer, Vec<usize>)> = Vec::new();
        let mut misses: Vec<(I::Request, Vec<usize>)> = Vec::new();
        {
            let mut cache = self.cache.lock().expect("cache lock");
            for (request, positions) in groups {
                let duplicates = positions.len() as u64 - 1;
                self.stats.dedup_hits.fetch_add(duplicates, Ordering::Relaxed);
                if let Some(answer) = cache.get(request) {
                    self.stats.cache_hits.fetch_add(1, Ordering::Relaxed);
                    hits.push((answer, positions));
                    continue;
                }
                self.stats.cache_misses.fetch_add(1, Ordering::Relaxed);
                misses.push((request.clone(), positions));
            }
        }
        for (answer, positions) in hits {
            for position in positions {
                answers[position] = Some(answer.clone());
            }
        }

        let (tx, rx) = mpsc::channel::<(Vec<usize>, Result<I::Answer>)>();
        let dispatched = misses.len();
        for (request, positions) in misses {
            let tx = tx.clone();
            let index = Arc::clone(&self.index);
            let cache = Arc::clone(&self.cache);
            let stats = Arc::clone(&self.stats);
            self.pool.execute(move || {
                let result = answer_guarded(index.as_ref(), &request);
                match &result {
                    Ok(answer) => cache
                        .lock()
                        .expect("cache lock")
                        .insert(request, answer.clone()),
                    Err(_) => {
                        stats.errors.fetch_add(1, Ordering::Relaxed);
                    }
                }
                let _ = tx.send((positions, result));
            });
        }
        drop(tx);

        let mut first_error: Option<(usize, CqapError)> = None;
        for _ in 0..dispatched {
            let (positions, result) = rx
                .recv()
                .map_err(|_| CqapError::Other("serve worker disappeared".into()))?;
            match result {
                Ok(answer) => {
                    for position in positions {
                        answers[position] = Some(answer.clone());
                    }
                }
                Err(error) => {
                    let position = positions[0];
                    if first_error.as_ref().is_none_or(|(p, _)| position < *p) {
                        first_error = Some((position, error));
                    }
                }
            }
        }
        if let Some((_, error)) = first_error {
            return Err(error);
        }
        Ok(answers
            .into_iter()
            .map(|a| a.expect("every position answered or errored"))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqap_decomp::families as pf;
    use cqap_panda::CqapIndex;
    use cqap_query::workload::{graph_pair_requests, Graph};
    use cqap_query::AccessRequest;

    fn small_index() -> (Arc<CqapIndex>, Vec<AccessRequest>) {
        let (cqap, pmtds) = pf::pmtds_3reach_fig1().unwrap();
        let g = Graph::random(30, 130, 17);
        let db = g.as_path_database(3);
        let index = Arc::new(CqapIndex::build(&cqap, &db, &pmtds).unwrap());
        let requests: Vec<AccessRequest> = graph_pair_requests(&g, 60, 19)
            .into_iter()
            .map(|(u, v)| AccessRequest::single(cqap.access(), &[u, v]).unwrap())
            .collect();
        (index, requests)
    }

    #[test]
    fn batch_matches_sequential_in_order() {
        let (index, requests) = small_index();
        let runtime = ServeRuntime::with_config(
            Arc::clone(&index),
            ServeConfig {
                threads: 4,
                cache_capacity: 16,
            },
        );
        let parallel = runtime.serve_batch(&requests).unwrap();
        for (request, answer) in requests.iter().zip(&parallel) {
            assert_eq!(answer, &index.answer(request).unwrap());
        }
    }

    #[test]
    fn cache_serves_repeats() {
        let (index, requests) = small_index();
        let runtime = ServeRuntime::new(index);
        let first = runtime.serve_batch(&requests[..10]).unwrap();
        let second = runtime.serve_batch(&requests[..10]).unwrap();
        assert_eq!(first, second);
        let stats = runtime.stats();
        assert_eq!(stats.served, 20);
        assert!(
            stats.cache_hits + stats.dedup_hits >= 10,
            "second pass should be answered without index probes: {stats:?}"
        );
    }

    #[test]
    fn duplicates_within_a_batch_are_computed_once() {
        let (index, requests) = small_index();
        let runtime = ServeRuntime::with_config(
            index,
            ServeConfig {
                threads: 2,
                cache_capacity: 64,
            },
        );
        let repeated: Vec<AccessRequest> = std::iter::repeat(requests[0].clone()).take(50).collect();
        let answers = runtime.serve_batch(&repeated).unwrap();
        assert!(answers.windows(2).all(|w| w[0] == w[1]));
        let stats = runtime.stats();
        assert_eq!(stats.cache_misses, 1, "one probe for 50 duplicates");
        assert_eq!(stats.dedup_hits, 49, "duplicates are dedup, not LRU, hits");
        assert_eq!(stats.cache_hits, 0, "nothing was in the LRU yet");
    }

    #[test]
    fn submit_tickets_resolve() {
        let (index, requests) = small_index();
        let runtime = ServeRuntime::new(Arc::clone(&index));
        let tickets: Vec<_> = requests
            .iter()
            .take(20)
            .map(|r| runtime.submit(r.clone()))
            .collect();
        for (request, ticket) in requests.iter().zip(tickets) {
            assert_eq!(ticket.wait().unwrap(), index.answer(request).unwrap());
        }
    }

    #[test]
    fn submit_cache_hit_resolves_without_pool() {
        let (index, requests) = small_index();
        let runtime = ServeRuntime::new(index);
        runtime.submit(requests[0].clone()).wait().unwrap();
        let ticket = runtime.submit(requests[0].clone());
        // A cache hit is sent synchronously, so the answer is already there.
        assert!(ticket.try_wait().is_some());
        assert_eq!(runtime.stats().cache_hits, 1);
    }

    /// A deliberately faulty index: one poison key panics mid-answer.
    struct PanicIndex;

    impl crate::BatchAnswer for PanicIndex {
        type Request = u64;
        type Answer = u64;

        fn answer_one(&self, request: &u64) -> cqap_common::Result<u64> {
            assert!(*request != 13, "poison key");
            Ok(request * 2)
        }
    }

    #[test]
    fn panicking_request_becomes_an_error_not_a_dead_runtime() {
        let runtime = ServeRuntime::with_config(
            Arc::new(PanicIndex),
            ServeConfig {
                threads: 2,
                cache_capacity: 8,
            },
        );
        let error = runtime.submit(13).wait().expect_err("poison key fails");
        assert!(
            error.to_string().contains("request panicked"),
            "got: {error}"
        );
        assert_eq!(runtime.stats().errors, 1);
        // The runtime is still alive and serving.
        assert_eq!(runtime.submit(7).wait().unwrap(), 14);
        // In a batch, the panic fails the batch without hanging it.
        assert!(runtime.serve_batch(&[1, 13, 2]).is_err());
        assert_eq!(runtime.serve_batch(&[1, 2, 3]).unwrap(), vec![2, 4, 6]);
    }

    #[test]
    fn invalid_request_surfaces_as_error() {
        let (index, requests) = small_index();
        let runtime = ServeRuntime::new(index);
        // Wrong arity for the access pattern: the driver rejects it.
        let bad = AccessRequest::new(requests[0].access(), vec![cqap_common::Tuple::unary(1)]);
        assert!(bad.is_err(), "arity is validated at construction");
        // Errors from the index surface through serve_batch: a request over
        // the wrong access variables reaches the driver and fails there.
        let wrong_vars =
            AccessRequest::single(cqap_common::VarSet::from_iter([0, 1]), &[0, 1]).unwrap();
        let mut batch = requests[..3].to_vec();
        batch.push(wrong_vars);
        assert!(runtime.serve_batch(&batch).is_err());
    }
}
