//! # cqap-serve
//!
//! A batched, concurrent access-request serving runtime over the
//! workspace's CQAP indexes.
//!
//! The paper's contract is asymmetric: preprocessing happens **once**
//! within a space budget `S`, then the structure absorbs a **heavy stream**
//! of access requests, each answered within the online budget `T`. The
//! other crates build the "once" half; this crate is the "heavy stream"
//! half:
//!
//! * [`BatchAnswer`] — the one serving API every index family implements:
//!   the framework driver [`CqapIndex`](cqap_panda::CqapIndex) (whose
//!   online phase is Online Yannakakis per PMTD) and all specialized
//!   structures of `cqap-indexes`.
//! * [`WorkStealingPool`] — a std-only work-stealing thread pool (the
//!   environment has no registry access, so no rayon); round-robin
//!   distribution plus steal-half-from-a-victim rebalances skewed batches.
//! * [`LruCache`] — an O(1) LRU answer cache keyed by the request (for the
//!   driver that is the `(access, tuples)` pair), so zipfian request
//!   streams hit hot answers without re-running the online phase. The
//!   runtime stores `Arc<Answer>` values, so hits and inserts inside the
//!   cache mutex are refcount bumps, never deep `Relation` clones.
//! * [`ServeRuntime`] — ties the three together: `Arc`-shared immutable
//!   index, per-request result channels ([`Ticket`]), order-preserving
//!   batch serving with intra-batch deduplication, in-flight probe sharing
//!   across concurrent submitters (no thundering herd on a hot key), and
//!   [`ServeStats`] counters.
//! * Overload safety — bounded admission with three policies
//!   ([`AdmissionConfig`]: block with optional timeout, shed with a typed
//!   [`ServeError::Overloaded`], FIFO semaphore), absolute deadlines
//!   ([`ServeRuntime::submit_with_deadline`]) dropped before the backend
//!   probe, client-side [`RetryPolicy`] backoff for shed requests, and an
//!   optional cheapest-plan degrade mode past a queue-depth watermark.
//!
//! ## Worked example: serving a 1 000-request batch
//!
//! Build the 3-reachability index of Figure 1 once, then serve a batch of
//! 1 000 access requests concurrently. The batched answers are bit-for-bit
//! identical to answering sequentially with
//! [`CqapIndex::answer`](cqap_panda::CqapIndex::answer):
//!
//! ```
//! use std::sync::Arc;
//! use cqap_decomp::families::pmtds_3reach_fig1;
//! use cqap_panda::CqapIndex;
//! use cqap_query::workload::{zipf_pair_requests, Graph};
//! use cqap_query::AccessRequest;
//! use cqap_serve::{ServeConfig, ServeRuntime};
//!
//! // Preprocessing phase: build once.
//! let (cqap, pmtds) = pmtds_3reach_fig1().unwrap();
//! let graph = Graph::random(60, 260, 42);
//! let db = graph.as_path_database(3);
//! let index = Arc::new(CqapIndex::build(&cqap, &db, &pmtds).unwrap());
//!
//! // Online phase: a zipf-skewed stream of 1 000 requests.
//! let requests: Vec<AccessRequest> = zipf_pair_requests(&graph, 1_000, 1.1, 7)
//!     .into_iter()
//!     .map(|(u, v)| AccessRequest::single(cqap.access(), &[u, v]).unwrap())
//!     .collect();
//!
//! let runtime = ServeRuntime::with_config(
//!     Arc::clone(&index),
//!     ServeConfig { threads: 4, cache_capacity: 512, ..ServeConfig::default() },
//! );
//! let answers = runtime.serve_batch(&requests).unwrap();
//!
//! // Concurrent answers match the sequential reference, in order. Answers
//! // come back as `Arc<Relation>`: duplicates of a hot request share one
//! // allocation instead of cloning the relation per position.
//! assert_eq!(answers.len(), 1_000);
//! for (request, answer) in requests.iter().zip(&answers) {
//!     assert_eq!(answer.as_ref(), &index.answer(request).unwrap());
//! }
//!
//! // The zipf skew means many requests repeat: in this first (cold-cache)
//! // batch the repeats are answered by intra-batch deduplication, so the
//! // index is probed far less than 1 000 times. A second batch would hit
//! // the now-warm LRU cache (`stats.cache_hits`).
//! let stats = runtime.stats();
//! assert_eq!(stats.served, 1_000);
//! assert!(stats.dedup_hits > 0);
//! assert!(stats.cache_misses < 1_000);
//! ```
//!
//! For one-at-a-time submission use [`ServeRuntime::submit`], which returns
//! a [`Ticket`] per request; for a pool-free scoped helper (no `'static`
//! bound, no runtime construction) use [`answer_batch_parallel`].

#![deny(missing_docs)]

pub mod admission;
pub mod batch;
pub mod cache;
pub mod pool;
pub mod runtime;

pub use admission::{
    retry_overloaded, AdmissionConfig, AdmissionPolicy, RetryPolicy, ServeError,
};
pub use batch::BatchAnswer;
pub use cache::LruCache;
pub use pool::{default_threads, WorkStealingPool};
pub use runtime::{ServeConfig, ServeRuntime, ServeStats, Ticket, WaitTimeout};

use cqap_common::Result;

/// Answers `requests` in parallel on `threads` scoped threads, without
/// building a [`ServeRuntime`] (no pool, no cache, no `'static` bounds).
///
/// Threads claim requests from a shared atomic cursor, so finishing early
/// on cheap requests automatically rebalances toward the expensive ones.
/// Answers are returned in input order. This is the helper the throughput
/// benches use to isolate raw parallel speedup from caching effects.
///
/// # Errors
/// Fails if any request fails (the earliest failing position wins).
pub fn answer_batch_parallel<I: BatchAnswer>(
    index: &I,
    requests: &[I::Request],
    threads: usize,
) -> Result<Vec<I::Answer>> {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    let threads = threads.max(1).min(requests.len().max(1));
    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<Result<I::Answer>>>> =
        requests.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let position = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(request) = requests.get(position) else {
                    return;
                };
                *slots[position].lock().expect("slot lock") = Some(index.answer_one(request));
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.into_inner().expect("slot lock").expect("slot filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqap_indexes::TwoReachIndex;
    use cqap_query::workload::{graph_pair_requests, Graph};

    #[test]
    fn scoped_parallel_matches_sequential() {
        let g = Graph::random(60, 300, 3);
        let index = TwoReachIndex::build(&g, 20_000);
        let requests = graph_pair_requests(&g, 500, 5);
        let sequential: Vec<bool> = requests.iter().map(|&(u, v)| index.query(u, v)).collect();
        for threads in [1, 2, 8, 64] {
            let parallel = answer_batch_parallel(&index, &requests, threads).unwrap();
            assert_eq!(parallel, sequential, "threads = {threads}");
        }
    }

    #[test]
    fn empty_batch() {
        let g = Graph::random(10, 20, 1);
        let index = TwoReachIndex::build(&g, 100);
        assert!(answer_batch_parallel(&index, &[], 4).unwrap().is_empty());
    }
}
