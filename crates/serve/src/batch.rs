//! The [`BatchAnswer`] trait: one serving API over every index family.
//!
//! The paper's model is *build once, probe heavily*: preprocessing runs
//! within a space budget, then a stream of access requests arrives. Every
//! answering structure in the workspace — the framework driver
//! ([`CqapIndex`], whose online phase is Online Yannakakis per PMTD) and
//! the specialized budget-parameterized structures of `cqap-indexes` —
//! implements this trait, so the serving runtime, the throughput benches
//! and the examples are written once, generically.
//!
//! Implementations must be usable from many threads at once (`Sync` with
//! `&self` answering); the probe counters inside `cqap-indexes` are relaxed
//! atomics for exactly this reason.

use std::hash::Hash;

use cqap_common::CqapError;
use cqap_common::Result;
use cqap_common::Val;
use cqap_indexes::{
    BfsBaseline, FullReachMaterialization, HierarchicalIndex, KReachGoldstein,
    SetDisjointnessIndex, SquareIndex, TriangleIndex, TwoReachIndex,
};
use cqap_panda::CqapIndex;
use cqap_query::AccessRequest;
use cqap_relation::Relation;

/// An immutable index that answers access requests one at a time or in
/// batches, safely from multiple threads.
///
/// `answer_batch` has a sequential default; structures with a cheaper bulk
/// strategy (shared scans, semi-naive frontiers) can override it for
/// callers that consume whole batches directly. Note that the serving
/// runtime in [`crate::runtime`] dispatches `answer_one` per request (it
/// needs per-request caching and result channels), so a bulk override
/// benefits direct `answer_batch` callers, not `ServeRuntime`.
pub trait BatchAnswer: Send + Sync {
    /// The per-request key. `Hash + Eq` so answers can be cached and
    /// duplicate requests within a batch deduplicated.
    type Request: Clone + Eq + Hash + Send + Sync + 'static;

    /// The per-request answer. `Sync` so the runtime can share one answer
    /// across threads behind an `Arc` (the cache and every waiter on an
    /// in-flight probe hold the same allocation).
    type Answer: Clone + Send + Sync + 'static;

    /// Answers a single request.
    ///
    /// # Errors
    /// Propagates the structure's own failure modes (malformed request,
    /// schema mismatch); the specialized Boolean structures never fail.
    fn answer_one(&self, request: &Self::Request) -> Result<Self::Answer>;

    /// Answers a batch of requests in order.
    ///
    /// # Errors
    /// Fails on the first failing request.
    fn answer_batch(&self, requests: &[Self::Request]) -> Result<Vec<Self::Answer>> {
        requests.iter().map(|r| self.answer_one(r)).collect()
    }

    /// The *coalescing class* of a request, for index families that can
    /// merge several queued requests into one bulk probe (the paper's
    /// §6.4 batching remark). The serving runtime merges requests that
    /// return the same `Some(class)` — for the framework driver,
    /// single-tuple requests sharing an access pattern. `None` (the
    /// default) opts the request out of coalescing.
    fn coalesce_class(request: &Self::Request) -> Option<u64> {
        let _ = request;
        None
    }

    /// Merges two or more same-class requests into one bulk request whose
    /// single probe answers all of them; the per-request answers are
    /// recovered with [`BatchAnswer::extract`].
    ///
    /// # Errors
    /// The default errs (it is never invoked unless
    /// [`BatchAnswer::coalesce_class`] returned `Some`); implementations
    /// may fail on inconsistent groups, in which case the runtime falls
    /// back to one probe per request.
    fn coalesce(requests: &[Self::Request]) -> Result<Self::Request> {
        let _ = requests;
        Err(CqapError::Other(
            "this index family does not coalesce requests".into(),
        ))
    }

    /// Extracts one merged request's answer from the bulk answer of the
    /// probe dispatched for [`BatchAnswer::coalesce`]'s output.
    ///
    /// # Errors
    /// The default errs (never invoked unless coalescing is supported);
    /// implementations propagate their own extraction failures.
    fn extract(&self, bulk: &Self::Answer, request: &Self::Request) -> Result<Self::Answer> {
        let _ = (bulk, request);
        Err(CqapError::Other(
            "this index family does not coalesce requests".into(),
        ))
    }

    /// A *degraded* (cheaper, possibly partial) answer, used by the
    /// serving runtime past its overload watermark
    /// (`ServeConfig::degrade_watermark`). `None` — the default — means
    /// the structure has no cheaper plan to offer, and the runtime falls
    /// back to [`BatchAnswer::answer_one`].
    ///
    /// Implementations returning `Some` must mark the answer as degraded
    /// in a way the caller can observe (the framework driver renames the
    /// answer relation), because the runtime hands it out in place of
    /// the full answer. Degraded answers are never cached.
    fn answer_degraded(&self, request: &Self::Request) -> Option<Result<Self::Answer>> {
        let _ = request;
        None
    }
}

/// The coalescing class shared by every `AccessRequest`-keyed structure:
/// single-tuple requests, grouped by their access pattern (the `VarSet`
/// bits). Multi-tuple requests stay un-coalesced — they are already bulk
/// probes.
pub fn access_request_class(request: &AccessRequest) -> Option<u64> {
    (request.len() == 1).then(|| request.access().0)
}

/// Merges single-tuple access requests over one access pattern into one
/// multi-tuple request (the bulk probe of the §6.4 batching remark).
///
/// # Errors
/// Fails if the group is empty, mixes access patterns, or contains a
/// multi-tuple request — the runtime then falls back to individual probes.
pub fn coalesce_access_requests(requests: &[AccessRequest]) -> Result<AccessRequest> {
    let first = requests.first().ok_or_else(|| {
        CqapError::Other("cannot coalesce an empty request group".into())
    })?;
    let access = first.access();
    let mut tuples = Vec::with_capacity(requests.len());
    for request in requests {
        if request.access() != access || request.len() != 1 {
            return Err(CqapError::Other(
                "coalesce groups must be single-tuple requests over one access pattern".into(),
            ));
        }
        tuples.extend(request.tuples().iter().cloned());
    }
    AccessRequest::new(access, tuples)
}

/// Recovers one request's answer from a coalesced probe's bulk answer.
///
/// Framework answers always carry the access variables (they are projected
/// onto `declared_head ∪ access`), so the bulk answer splits exactly: the
/// tuples belonging to request `t` are those matching `t` on the access
/// variables — a semijoin with the request. This is why coalescing is
/// answer-preserving: `π(join ⋉ ∪ᵢtᵢ) ⋉ tᵢ = π(join ⋉ tᵢ)`.
///
/// # Errors
/// Fails only if the bulk answer does not contain the access variables
/// (impossible for answers produced by the framework drivers).
pub fn extract_access_answer(bulk: &Relation, request: &AccessRequest) -> Result<Relation> {
    bulk.semijoin(&request.as_relation())
}

/// The framework driver: the online phase runs Online Yannakakis over every
/// PMTD and unions the per-PMTD answers, so this impl is the generic
/// (every-CQAP) serving path. It joins the coalescing protocol:
/// single-tuple requests sharing the access pattern merge into one
/// multi-tuple probe, and the per-request answers are recovered by
/// semijoining the bulk answer with each request.
impl BatchAnswer for CqapIndex {
    type Request = AccessRequest;
    type Answer = Relation;

    fn answer_one(&self, request: &Self::Request) -> Result<Self::Answer> {
        self.answer(request)
    }

    fn coalesce_class(request: &Self::Request) -> Option<u64> {
        access_request_class(request)
    }

    fn coalesce(requests: &[Self::Request]) -> Result<Self::Request> {
        coalesce_access_requests(requests)
    }

    fn extract(&self, bulk: &Self::Answer, request: &Self::Request) -> Result<Self::Answer> {
        extract_access_answer(bulk, request)
    }

    /// Past the runtime's overload watermark the driver answers from its
    /// single cheapest PMTD (most materialization, least online work);
    /// the answer relation is renamed to
    /// [`DEGRADED_ANSWER_NAME`](cqap_panda::DEGRADED_ANSWER_NAME).
    fn answer_degraded(&self, request: &Self::Request) -> Option<Result<Self::Answer>> {
        Some(CqapIndex::answer_degraded(self, request))
    }
}

macro_rules! impl_batch_answer_pair {
    ($($ty:ty => $method:ident, $doc:literal;)*) => {$(
        #[doc = $doc]
        impl BatchAnswer for $ty {
            type Request = (Val, Val);
            type Answer = bool;

            fn answer_one(&self, &(a, b): &Self::Request) -> Result<Self::Answer> {
                Ok(self.$method(a, b))
            }
        }
    )*};
}

impl_batch_answer_pair! {
    TwoReachIndex => query, "2-reachability with heavy/light splitting (§5).";
    KReachGoldstein => query, "The Goldstein et al. k-reachability structure (Figures 4a/4b).";
    BfsBaseline => query, "The zero-space BFS baseline.";
    FullReachMaterialization => query, "The full-materialization baseline.";
    SquareIndex => query, "Opposite corners of a square (Example 5.2 / E.5).";
    SetDisjointnessIndex => intersects, "2-set disjointness (§1, §6.1).";
    TriangleIndex => edge_in_triangle, "Edge-in-a-triangle detection (Example E.4).";
}

/// The two-level hierarchical CQAP structure (Appendix F): requests are the
/// 4-tuples of access values `(z1, z2, z3, z4)`.
impl BatchAnswer for HierarchicalIndex {
    type Request = (Val, Val, Val, Val);
    type Answer = bool;

    fn answer_one(&self, &(z1, z2, z3, z4): &Self::Request) -> Result<Self::Answer> {
        Ok(self.query(z1, z2, z3, z4))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqap_decomp::families as pf;
    use cqap_query::workload::{graph_pair_requests, Graph, SetFamily};

    #[test]
    fn driver_batch_matches_singles() {
        let (cqap, pmtds) = pf::pmtds_3reach_fig1().unwrap();
        let g = Graph::random(30, 120, 5);
        let db = g.as_path_database(3);
        let index = CqapIndex::build(&cqap, &db, &pmtds).unwrap();
        let requests: Vec<AccessRequest> = graph_pair_requests(&g, 10, 3)
            .into_iter()
            .map(|(u, v)| AccessRequest::single(cqap.access(), &[u, v]).unwrap())
            .collect();
        let batch = index.answer_batch(&requests).unwrap();
        assert_eq!(batch.len(), requests.len());
        for (request, answer) in requests.iter().zip(&batch) {
            assert_eq!(answer, &index.answer(request).unwrap());
        }
    }

    #[test]
    fn boolean_structures_share_the_api() {
        let g = Graph::random(40, 160, 9);
        let requests = graph_pair_requests(&g, 20, 11);
        let two_reach = TwoReachIndex::build(&g, 10_000);
        let bfs = BfsBaseline::build(&g, 2);
        for pair in &requests {
            assert_eq!(
                two_reach.answer_one(pair).unwrap(),
                bfs.answer_one(pair).unwrap(),
                "structures disagree on {pair:?}"
            );
        }

        let family = SetFamily::zipf(15, 300, 60, 0.8, 13);
        let disjoint = SetDisjointnessIndex::build(&family, 500);
        let batch: Vec<(Val, Val)> = (0..15).map(|i| (i, (i + 3) % 15)).collect();
        let answers = disjoint.answer_batch(&batch).unwrap();
        for (&(a, b), &ans) in batch.iter().zip(&answers) {
            assert_eq!(ans, disjoint.intersects(a, b));
        }
    }

    #[test]
    fn indexes_are_shareable_across_threads() {
        // The point of the atomic probe counters: &TwoReachIndex can be
        // probed from several threads simultaneously.
        let g = Graph::random(50, 250, 21);
        let index = TwoReachIndex::build(&g, 5_000);
        let requests = graph_pair_requests(&g, 200, 23);
        let expected: Vec<bool> = requests.iter().map(|&(u, v)| index.query(u, v)).collect();
        index.counter.reset();
        let results: Vec<Vec<bool>> = std::thread::scope(|s| {
            (0..4)
                .map(|_| {
                    s.spawn(|| {
                        requests
                            .iter()
                            .map(|pair| index.answer_one(pair).unwrap())
                            .collect::<Vec<bool>>()
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        for run in &results {
            assert_eq!(run, &expected);
        }
        // No probes lost to races: 4 identical passes count exactly 4x the
        // single-pass work.
        let single_pass = {
            let fresh = TwoReachIndex::build(&g, 5_000);
            for &(u, v) in &requests {
                fresh.query(u, v);
            }
            fresh.counter.total()
        };
        assert_eq!(index.counter.total(), 4 * single_pass);
    }
}
