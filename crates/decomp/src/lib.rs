//! # cqap-decomp
//!
//! Tree decompositions and *partially materialized tree decompositions*
//! (PMTDs), the structural half of the paper's framework (Section 3):
//!
//! * [`TreeDecomposition`] — a rooted tree decomposition with validity
//!   checks (edge coverage, running-intersection property) and the
//!   `TOP_r(x)` / free-connex machinery of Definition 3.1.
//! * [`Pmtd`] — a tree decomposition augmented with a materialization set
//!   `M` (Definition 3.2), the view-schema mapping `ν(·)`, S-views and
//!   T-views, redundancy (Definition 3.4) and domination (Definition 3.5).
//! * [`enumerate`] — enumeration of candidate PMTDs: the two trivial PMTDs
//!   of Theorem 6.1, all PMTDs of a fixed decomposition, the *induced* PMTD
//!   sets of Section 6.3 (merge-and-truncate along antichains), and
//!   domination/redundancy pruning.
//! * [`families`] — the concrete PMTD sets the paper draws in Figures 1, 2,
//!   3 and uses in Appendix E (3-reachability, 4-reachability, the square
//!   query, k-set intersection).

pub mod enumerate;
pub mod families;
pub mod pmtd;
pub mod td;

pub use pmtd::{Pmtd, View, ViewKind};
pub use td::TreeDecomposition;
