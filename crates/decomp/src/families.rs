//! The concrete PMTD sets used in the paper's worked examples.
//!
//! Each function returns the exact set of PMTDs the paper analyzes, in the
//! order the paper lists them, so the rule-generation and tradeoff layers
//! can regenerate Table 1 and Figures 1–4 verbatim.

use crate::enumerate::{induced_pmtds, prune};
use crate::pmtd::Pmtd;
use crate::td::TreeDecomposition;
use cqap_common::{vars, Result};
use cqap_query::{families as qf, Cqap};

/// The three PMTDs of **Figure 1** for the 3-reachability CQAP:
/// `(T134, T123)`, `(T134, S13)`, `(S14)`.
pub fn pmtds_3reach_fig1() -> Result<(Cqap, Vec<Pmtd>)> {
    let q = qf::k_path_distinct(3);
    let chain = TreeDecomposition::path(vec![vars![1, 3, 4], vars![1, 2, 3]])?;
    let single = TreeDecomposition::single(vars![1, 2, 3, 4]);
    let pmtds = vec![
        Pmtd::for_cqap(chain.clone(), [], &q)?,
        Pmtd::for_cqap(chain, [1], &q)?,
        Pmtd::for_cqap(single, [0], &q)?,
    ];
    Ok((q, pmtds))
}

/// The five PMTDs of **Figure 3** (all non-redundant, non-dominant PMTDs
/// for 3-reachability): the Figure 1 set plus the mirror-image chain
/// `{x1,x2,x4} → {x2,x3,x4}` with and without its leaf materialized.
pub fn pmtds_3reach_all() -> Result<(Cqap, Vec<Pmtd>)> {
    let (q, mut pmtds) = pmtds_3reach_fig1()?;
    let chain_b = TreeDecomposition::path(vec![vars![1, 2, 4], vars![2, 3, 4]])?;
    // Insert the mirror chain's two PMTDs before the single-bag PMTD to
    // match the paper's Figure 3 ordering (left-to-right, top-to-bottom).
    let single = pmtds.pop().expect("three PMTDs");
    pmtds.push(Pmtd::for_cqap(chain_b.clone(), [], &q)?);
    pmtds.push(Pmtd::for_cqap(chain_b, [1], &q)?);
    pmtds.push(single);
    Ok((q, pmtds))
}

/// The two PMTDs of **Figure 2** for the square CQAP:
/// `(T134, T132)` and `(S13)`.
pub fn pmtds_square() -> Result<(Cqap, Vec<Pmtd>)> {
    let q = qf::square(true);
    let chain = TreeDecomposition::path(vec![vars![1, 3, 4], vars![1, 2, 3]])?;
    let single = TreeDecomposition::single(vars![1, 2, 3, 4]);
    let pmtds = vec![
        Pmtd::for_cqap(chain, [], &q)?,
        Pmtd::for_cqap(single, [0], &q)?,
    ];
    Ok((q, pmtds))
}

/// The two PMTDs of **Section 6.1** for the k-set-intersection CQAP (single
/// bag `[k+1]`, materialized or not).
pub fn pmtds_kset(k: usize) -> Result<(Cqap, Vec<Pmtd>)> {
    let q = qf::k_set_intersection(k);
    let pmtds = crate::enumerate::trivial_pmtds(&q)?;
    Ok((q, pmtds))
}

/// The two PMTDs used by **Example E.4** for the triangle query with an
/// empty access pattern: `(T123)` and `(S13)`.
pub fn pmtds_triangle() -> Result<(Cqap, Vec<Pmtd>)> {
    let q = qf::triangle_edge();
    let single = TreeDecomposition::single(vars![1, 2, 3]);
    let pmtds = vec![
        Pmtd::for_cqap(single.clone(), [], &q)?,
        Pmtd::for_cqap(single, [0], &q)?,
    ];
    Ok((q, pmtds))
}

/// The two PMTDs used by the **Section 5** running example for the
/// 2-reachability query: `(T123)` and `(S13)`.
pub fn pmtds_2reach() -> Result<(Cqap, Vec<Pmtd>)> {
    let q = qf::k_path_distinct(2);
    let single = TreeDecomposition::single(vars![1, 2, 3]);
    let pmtds = vec![
        Pmtd::for_cqap(single.clone(), [], &q)?,
        Pmtd::for_cqap(single, [0], &q)?,
    ];
    Ok((q, pmtds))
}

/// The eleven PMTDs of **Example E.8** for the 4-reachability CQAP, in the
/// paper's order:
///
/// ```text
/// (T1235, T345), (T1235, S35), (T1345, T123), (T1345, S13), (T1245, T234),
/// (T1245, S24), (T125, T2345), (T125, S25), (T145, T1234), (T145, S14), (S15)
/// ```
pub fn pmtds_4reach() -> Result<(Cqap, Vec<Pmtd>)> {
    let q = qf::k_path_distinct(4);
    let chains = [
        vec![vars![1, 2, 3, 5], vars![3, 4, 5]],
        vec![vars![1, 3, 4, 5], vars![1, 2, 3]],
        vec![vars![1, 2, 4, 5], vars![2, 3, 4]],
        vec![vars![1, 2, 5], vars![2, 3, 4, 5]],
        vec![vars![1, 4, 5], vars![1, 2, 3, 4]],
    ];
    let mut pmtds = Vec::with_capacity(11);
    for bags in chains {
        let td = TreeDecomposition::path(bags)?;
        pmtds.push(Pmtd::for_cqap(td.clone(), [], &q)?);
        pmtds.push(Pmtd::for_cqap(td, [1], &q)?);
    }
    pmtds.push(Pmtd::for_cqap(
        TreeDecomposition::single(vars![1, 2, 3, 4, 5]),
        [0],
        &q,
    )?);
    Ok((q, pmtds))
}

/// The PMTD set of **Appendix F** for the two-level Boolean hierarchical
/// CQAP (Figure 6b): the induced PMTDs of the decomposition
/// `{x, z1..z4} → {x, y1, z1, z2}, {x, y2, z3, z4}` after pruning.
pub fn pmtds_hierarchical() -> Result<(Cqap, Vec<Pmtd>)> {
    let q = qf::hierarchical_two_level();
    // Variable layout from `qf::hierarchical_two_level`:
    // x = x1, y1 = x2, y2 = x3, z1..z4 = x4..x7.
    let td = TreeDecomposition::new(
        vec![
            vars![1, 4, 5, 6, 7],
            vars![1, 2, 4, 5],
            vars![1, 3, 6, 7],
        ],
        vec![None, Some(0), Some(0)],
        0,
    )?;
    let pmtds = prune(induced_pmtds(&td, &q)?);
    Ok((q, pmtds))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_summaries() {
        let (_, ps) = pmtds_3reach_fig1().unwrap();
        let s: Vec<String> = ps.iter().map(Pmtd::summary).collect();
        assert_eq!(s, vec!["(T134, T123)", "(T134, S13)", "(S14)"]);
    }

    #[test]
    fn figure3_has_five_mutually_non_dominant_pmtds() {
        let (_, ps) = pmtds_3reach_all().unwrap();
        assert_eq!(ps.len(), 5);
        let s: Vec<String> = ps.iter().map(Pmtd::summary).collect();
        assert_eq!(
            s,
            vec![
                "(T134, T123)",
                "(T134, S13)",
                "(T124, T234)",
                "(T124, S24)",
                "(S14)"
            ]
        );
        for p in &ps {
            assert!(p.is_non_redundant());
        }
        for (i, a) in ps.iter().enumerate() {
            for (j, b) in ps.iter().enumerate() {
                if i != j {
                    assert!(!a.dominated_by(b), "{} ⊑ {}", a.summary(), b.summary());
                }
            }
        }
        // Pruning the set leaves it unchanged.
        assert_eq!(prune(ps).len(), 5);
    }

    #[test]
    fn figure2_square() {
        let (_, ps) = pmtds_square().unwrap();
        let s: Vec<String> = ps.iter().map(Pmtd::summary).collect();
        assert_eq!(s, vec!["(T134, T123)", "(S13)"]);
    }

    #[test]
    fn example_e8_eleven_pmtds() {
        let (_, ps) = pmtds_4reach().unwrap();
        assert_eq!(ps.len(), 11);
        let s: Vec<String> = ps.iter().map(Pmtd::summary).collect();
        assert_eq!(
            s,
            vec![
                "(T1235, T345)",
                "(T1235, S35)",
                "(T1345, T123)",
                "(T1345, S13)",
                "(T1245, T234)",
                "(T1245, S24)",
                "(T125, T2345)",
                "(T125, S25)",
                "(T145, T1234)",
                "(T145, S14)",
                "(S15)"
            ]
        );
        for p in &ps {
            assert!(p.is_non_redundant(), "{}", p.summary());
        }
    }

    #[test]
    fn kset_and_triangle_and_2reach() {
        let (_, ps) = pmtds_kset(3).unwrap();
        assert_eq!(ps.len(), 2);
        let (_, ps) = pmtds_triangle().unwrap();
        assert_eq!(
            ps.iter().map(Pmtd::summary).collect::<Vec<_>>(),
            vec!["(T123)", "(S13)"]
        );
        let (_, ps) = pmtds_2reach().unwrap();
        assert_eq!(
            ps.iter().map(Pmtd::summary).collect::<Vec<_>>(),
            vec!["(T123)", "(S13)"]
        );
    }

    #[test]
    fn hierarchical_pmtds_are_valid() {
        let (q, ps) = pmtds_hierarchical().unwrap();
        assert!(!ps.is_empty());
        for p in &ps {
            assert!(p.is_non_redundant());
            assert!(p.access() == q.access());
        }
        // The fully-materialized single bag (S-view over Z) must be present:
        // it corresponds to storing the full answer keyed by Z.
        assert!(ps.iter().any(|p| p.summary() == "(S4567)"));
    }
}
