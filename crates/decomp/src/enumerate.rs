//! Enumeration and pruning of PMTD sets.
//!
//! The framework of Section 4 is parameterized by a finite set of
//! non-redundant, pairwise non-dominant PMTDs. This module provides the
//! three ways the paper obtains such sets:
//!
//! * [`trivial_pmtds`] — the two single-bag PMTDs used in the proof of
//!   Theorem 6.1 ("store the answers" vs. "compute from scratch").
//! * [`all_pmtds_of`] — every PMTD of one fixed decomposition (every
//!   subtree-closed materialization set).
//! * [`induced_pmtds`] — the *induced* set of Section 6.3: pick an antichain
//!   of nodes, merge each picked node's subtree into its bag, truncate, and
//!   materialize the merged nodes.
//! * [`prune`] — remove redundant PMTDs and PMTDs dominated by another
//!   member of the set.

use crate::pmtd::Pmtd;
use crate::td::TreeDecomposition;
use cqap_common::{Result, VarSet};
use cqap_query::Cqap;

/// The two trivial PMTDs of Theorem 6.1 over the single bag `[n]`:
/// one fully materialized (store the query answers keyed by the access
/// pattern) and one not materialized at all (answer from scratch).
pub fn trivial_pmtds(cqap: &Cqap) -> Result<Vec<Pmtd>> {
    let bag = VarSet::prefix(cqap.num_vars());
    let store = Pmtd::for_cqap(TreeDecomposition::single(bag), [0], cqap)?;
    let scratch = Pmtd::for_cqap(TreeDecomposition::single(bag), [], cqap)?;
    Ok(vec![scratch, store])
}

/// Every PMTD obtainable from one fixed rooted decomposition by choosing a
/// subtree-closed materialization set (there are at most `2^nodes` of them;
/// decompositions in this workspace have a handful of nodes).
pub fn all_pmtds_of(td: &TreeDecomposition, cqap: &Cqap) -> Result<Vec<Pmtd>> {
    let n = td.num_nodes();
    assert!(n <= 16, "decomposition too large for exhaustive enumeration");
    let mut out = Vec::new();
    'mask: for mask in 0u32..(1u32 << n) {
        let selected: Vec<usize> = (0..n).filter(|&t| mask >> t & 1 == 1).collect();
        // Subtree-closure check before attempting construction.
        for &t in &selected {
            for u in td.subtree(t) {
                if mask >> u & 1 == 0 {
                    continue 'mask;
                }
            }
        }
        out.push(Pmtd::for_cqap(td.clone(), selected, cqap)?);
    }
    Ok(out)
}

/// The induced PMTD set of Section 6.3 for a fixed free-connex
/// decomposition: for every antichain of nodes (no member an ancestor of
/// another, the empty antichain included), merge each member's subtree bags
/// into that member, truncate the subtree, and materialize the member.
pub fn induced_pmtds(td: &TreeDecomposition, cqap: &Cqap) -> Result<Vec<Pmtd>> {
    let n = td.num_nodes();
    assert!(n <= 16, "decomposition too large for exhaustive enumeration");
    let mut out = Vec::new();
    'mask: for mask in 0u32..(1u32 << n) {
        let selected: Vec<usize> = (0..n).filter(|&t| mask >> t & 1 == 1).collect();
        // Antichain check.
        for &a in &selected {
            for &b in &selected {
                if a != b && td.is_ancestor(a, b) {
                    continue 'mask;
                }
            }
        }
        out.push(merge_and_truncate(td, &selected, cqap)?);
    }
    Ok(out)
}

/// Builds the PMTD obtained from `td` by merging each node of `antichain`'s
/// subtree into its bag, truncating those subtrees, and materializing the
/// merged nodes.
pub fn merge_and_truncate(
    td: &TreeDecomposition,
    antichain: &[usize],
    cqap: &Cqap,
) -> Result<Pmtd> {
    // Nodes strictly below an antichain member are removed.
    let mut removed = vec![false; td.num_nodes()];
    let mut merged_bag: Vec<VarSet> = td.bags().to_vec();
    for &a in antichain {
        for u in td.subtree(a) {
            merged_bag[a] = merged_bag[a].union(td.bag(u));
            if u != a {
                removed[u] = true;
            }
        }
    }
    // Re-index the surviving nodes.
    let survivors: Vec<usize> = (0..td.num_nodes()).filter(|&t| !removed[t]).collect();
    let new_id: cqap_common::FxHashMap<usize, usize> = survivors
        .iter()
        .enumerate()
        .map(|(new, &old)| (old, new))
        .collect();
    let bags: Vec<VarSet> = survivors.iter().map(|&t| merged_bag[t]).collect();
    let parent: Vec<Option<usize>> = survivors
        .iter()
        .map(|&t| td.parent(t).map(|p| new_id[&p]))
        .collect();
    let root = new_id[&td.root()];
    let new_td = TreeDecomposition::new(bags, parent, root)?;
    let materialized: Vec<usize> = antichain.iter().map(|a| new_id[a]).collect();
    Pmtd::for_cqap(new_td, materialized, cqap)
}

/// Removes redundant PMTDs and PMTDs dominated by another member of the
/// set. When two PMTDs dominate each other (their view multisets are
/// equivalent), the earlier one is kept.
pub fn prune(pmtds: Vec<Pmtd>) -> Vec<Pmtd> {
    let candidates: Vec<Pmtd> = pmtds.into_iter().filter(Pmtd::is_non_redundant).collect();
    let mut keep = vec![true; candidates.len()];
    for i in 0..candidates.len() {
        if !keep[i] {
            continue;
        }
        for j in 0..candidates.len() {
            if i == j || !keep[j] {
                continue;
            }
            if candidates[i].dominated_by(&candidates[j]) {
                let mutual = candidates[j].dominated_by(&candidates[i]);
                if !mutual || j < i {
                    keep[i] = false;
                    break;
                }
            }
        }
    }
    candidates
        .into_iter()
        .zip(keep)
        .filter_map(|(p, k)| k.then_some(p))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqap_common::vars;
    use cqap_query::families;

    #[test]
    fn trivial_pmtds_for_kset() {
        // Section 6.1: from the single-node decomposition we get exactly two
        // PMTDs, T[k+1] and S[k+1] (here the S-view keeps the whole head).
        let q = families::k_set_intersection(3);
        let ps = trivial_pmtds(&q).unwrap();
        assert_eq!(ps.len(), 2);
        assert_eq!(ps[0].summary(), "(T1234)");
        assert_eq!(ps[1].summary(), "(S1234)");
        let pruned = prune(ps);
        assert_eq!(pruned.len(), 2);
    }

    #[test]
    fn trivial_pmtds_boolean_case() {
        let q = families::k_set_disjointness(2);
        let ps = trivial_pmtds(&q).unwrap();
        // Head is {x1,x2} after normalization, so the S-view keeps {x1,x2}.
        assert_eq!(ps[1].summary(), "(S12)");
    }

    #[test]
    fn all_pmtds_of_chain() {
        let q = families::k_path_distinct(3);
        let chain = TreeDecomposition::path(vec![vars![1, 3, 4], vars![1, 2, 3]]).unwrap();
        let all = all_pmtds_of(&chain, &q).unwrap();
        // Subtree-closed subsets of a 2-chain: {}, {leaf}, {leaf, root}.
        assert_eq!(all.len(), 3);
        let summaries: Vec<String> = all.iter().map(Pmtd::summary).collect();
        assert!(summaries.contains(&"(T134, T123)".to_string()));
        assert!(summaries.contains(&"(T134, S13)".to_string()));
        // The fully-materialized variant is redundant (empty child view).
        let pruned = prune(all);
        assert_eq!(pruned.len(), 2);
    }

    #[test]
    fn induced_pmtds_recover_figure1() {
        // Inducing from the chain decomposition of Figure 1 gives: the
        // un-materialized chain, the chain with the leaf materialized, and
        // the single merged bag (antichain = {root}) — exactly Figure 1.
        let q = families::k_path_distinct(3);
        let chain = TreeDecomposition::path(vec![vars![1, 3, 4], vars![1, 2, 3]]).unwrap();
        let induced = induced_pmtds(&chain, &q).unwrap();
        assert_eq!(induced.len(), 3);
        let summaries: Vec<String> = induced.iter().map(Pmtd::summary).collect();
        assert!(summaries.contains(&"(T134, T123)".to_string()));
        assert!(summaries.contains(&"(T134, S13)".to_string()));
        assert!(summaries.contains(&"(S14)".to_string()));
        // All three survive pruning (they are exactly Figure 1).
        assert_eq!(prune(induced).len(), 3);
    }

    #[test]
    fn induced_pmtds_example_63() {
        // Example 6.3: 4-reachability with the decomposition
        // {x1,x2,x4,x5} → {x2,x3,x4}.
        let q = families::k_path_distinct(4);
        let td = TreeDecomposition::path(vec![vars![1, 2, 4, 5], vars![2, 3, 4]]).unwrap();
        let induced = induced_pmtds(&td, &q).unwrap();
        let summaries: Vec<String> = induced.iter().map(Pmtd::summary).collect();
        assert!(summaries.contains(&"(T1245, T234)".to_string()));
        assert!(summaries.contains(&"(T1245, S24)".to_string()));
        assert!(summaries.contains(&"(S15)".to_string()));
    }

    #[test]
    fn merge_and_truncate_three_level() {
        // A 3-node chain; merging at the middle node absorbs the leaf.
        let q = families::k_path_distinct(4);
        let td = TreeDecomposition::path(vec![
            vars![1, 2, 4, 5],
            vars![2, 3, 4],
            vars![3, 4],
        ])
        .unwrap();
        let merged = merge_and_truncate(&td, &[1], &q).unwrap();
        assert_eq!(merged.td().num_nodes(), 2);
        assert_eq!(merged.td().bag(1), vars![2, 3, 4]);
        assert!(merged.is_materialized(1));
        assert!(!merged.is_materialized(0));
    }

    #[test]
    fn prune_removes_dominated() {
        let q = families::k_path_distinct(3);
        let chain = TreeDecomposition::path(vec![vars![1, 3, 4], vars![1, 2, 3]]).unwrap();
        let small = Pmtd::for_cqap(chain, [], &q).unwrap();
        let big = Pmtd::for_cqap(TreeDecomposition::single(vars![1, 2, 3, 4]), [], &q).unwrap();
        let pruned = prune(vec![small, big.clone()]);
        assert_eq!(pruned.len(), 1);
        assert_eq!(pruned[0].summary(), big.summary());
    }

    #[test]
    fn prune_keeps_one_of_equivalent_pair() {
        let q = families::k_path_distinct(3);
        let p = Pmtd::for_cqap(TreeDecomposition::single(vars![1, 2, 3, 4]), [0], &q).unwrap();
        let pruned = prune(vec![p.clone(), p]);
        assert_eq!(pruned.len(), 1);
    }
}
