//! Partially materialized tree decompositions (Definition 3.2).

use crate::td::TreeDecomposition;
use cqap_common::{CqapError, Result, VarSet};
use cqap_query::Cqap;
use std::fmt;

/// Whether a view is materialized during preprocessing (`S`) or computed
/// online (`T`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ViewKind {
    /// An S-view: materialized in the preprocessing phase.
    S,
    /// A T-view: computed in the online phase.
    T,
}

/// The view associated with a tree node of a PMTD: its kind and its schema
/// `ν(t)`.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct View {
    /// The tree node this view belongs to.
    pub node: usize,
    /// S or T.
    pub kind: ViewKind,
    /// The view schema `ν(t)`.
    pub vars: VarSet,
}

impl View {
    /// Paper-style label such as `T134` or `S13` (1-based variable digits).
    pub fn label(&self) -> String {
        let mut s = match self.kind {
            ViewKind::S => String::from("S"),
            ViewKind::T => String::from("T"),
        };
        if self.vars.is_empty() {
            s.push('∅');
        } else {
            for v in self.vars.iter() {
                s.push_str(&(v + 1).to_string());
            }
        }
        s
    }
}

impl fmt::Debug for View {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label())
    }
}

/// A Partially Materialized Tree Decomposition (PMTD) of a CQAP
/// `φ(x_H | x_A)` with `H ⊇ A` (Definition 3.2): a free-connex tree
/// decomposition rooted at `r` with `A ⊆ χ(r)`, together with a
/// materialization set `M` closed under taking subtrees.
#[derive(Clone, PartialEq, Eq)]
pub struct Pmtd {
    td: TreeDecomposition,
    materialized: Vec<bool>,
    head: VarSet,
    access: VarSet,
}

impl Pmtd {
    /// Creates a PMTD, validating the three properties of Definition 3.2.
    pub fn new(
        td: TreeDecomposition,
        materialized_nodes: impl IntoIterator<Item = usize>,
        head: VarSet,
        access: VarSet,
    ) -> Result<Self> {
        let mut materialized = vec![false; td.num_nodes()];
        for t in materialized_nodes {
            if t >= td.num_nodes() {
                return Err(CqapError::InvalidPmtd(format!(
                    "materialized node {t} out of range"
                )));
            }
            materialized[t] = true;
        }
        if !access.is_subset(head) {
            return Err(CqapError::InvalidPmtd(format!(
                "PMTDs require A ⊆ H (A = {access}, H = {head})"
            )));
        }
        // Property (2): A ⊆ χ(r).
        if !access.is_subset(td.bag(td.root())) {
            return Err(CqapError::InvalidPmtd(format!(
                "access pattern {access} not contained in the root bag {}",
                td.bag(td.root())
            )));
        }
        // Property (1): free-connex w.r.t. the root.
        if !td.is_free_connex(head) {
            return Err(CqapError::InvalidPmtd(
                "decomposition is not free-connex w.r.t. the root".into(),
            ));
        }
        // Property (3): M is closed under subtrees.
        for t in 0..td.num_nodes() {
            if materialized[t] {
                for u in td.subtree(t) {
                    if !materialized[u] {
                        return Err(CqapError::InvalidPmtd(format!(
                            "materialization set not subtree-closed: node {t} ∈ M but its descendant {u} ∉ M"
                        )));
                    }
                }
            }
        }
        Ok(Pmtd {
            td,
            materialized,
            head,
            access,
        })
    }

    /// Creates a PMTD for the given CQAP (head and access pattern taken from
    /// the query).
    pub fn for_cqap(
        td: TreeDecomposition,
        materialized_nodes: impl IntoIterator<Item = usize>,
        cqap: &Cqap,
    ) -> Result<Self> {
        let pmtd = Pmtd::new(td, materialized_nodes, cqap.head(), cqap.access())?;
        pmtd.td.validate_for(&cqap.hypergraph())?;
        Ok(pmtd)
    }

    /// The underlying tree decomposition.
    pub fn td(&self) -> &TreeDecomposition {
        &self.td
    }

    /// The head `H`.
    pub fn head(&self) -> VarSet {
        self.head
    }

    /// The access pattern `A`.
    pub fn access(&self) -> VarSet {
        self.access
    }

    /// Whether node `t` is in the materialization set.
    pub fn is_materialized(&self, t: usize) -> bool {
        self.materialized[t]
    }

    /// The materialization set `M`.
    pub fn materialization_set(&self) -> Vec<usize> {
        (0..self.td.num_nodes())
            .filter(|&t| self.materialized[t])
            .collect()
    }

    /// The view schema `ν(t)` of Definition 3.2.
    pub fn view_schema(&self, t: usize) -> VarSet {
        let chi = self.td.bag(t);
        if !self.materialized[t] {
            return chi;
        }
        match self.td.parent(t) {
            None => chi.intersect(self.head),
            Some(p) => {
                if !self.materialized[p] {
                    chi.intersect(self.head.union(self.td.bag(p)))
                } else {
                    let mine = chi.intersect(self.head);
                    let parents = self.td.bag(p).intersect(self.head);
                    if mine.is_subset(parents) {
                        VarSet::EMPTY
                    } else {
                        mine
                    }
                }
            }
        }
    }

    /// The view (kind + schema) of node `t`.
    pub fn view(&self, t: usize) -> View {
        View {
            node: t,
            kind: if self.materialized[t] {
                ViewKind::S
            } else {
                ViewKind::T
            },
            vars: self.view_schema(t),
        }
    }

    /// All views in node order.
    pub fn views(&self) -> Vec<View> {
        (0..self.td.num_nodes()).map(|t| self.view(t)).collect()
    }

    /// The S-views (materialized during preprocessing).
    pub fn s_views(&self) -> Vec<View> {
        self.views()
            .into_iter()
            .filter(|v| v.kind == ViewKind::S)
            .collect()
    }

    /// The T-views (computed online).
    pub fn t_views(&self) -> Vec<View> {
        self.views()
            .into_iter()
            .filter(|v| v.kind == ViewKind::T)
            .collect()
    }

    /// PMTD non-redundancy (Definition 3.4): every materialized view is
    /// non-empty, and within each kind no view schema is a subset of
    /// another.
    pub fn is_non_redundant(&self) -> bool {
        let s: Vec<VarSet> = self.s_views().iter().map(|v| v.vars).collect();
        let t: Vec<VarSet> = self.t_views().iter().map(|v| v.vars).collect();
        if s.iter().any(|v| v.is_empty()) {
            return false;
        }
        let no_subset = |views: &[VarSet]| {
            for (i, a) in views.iter().enumerate() {
                for (j, b) in views.iter().enumerate() {
                    if i != j && a.is_subset(*b) {
                        return false;
                    }
                }
            }
            true
        };
        no_subset(&s) && no_subset(&t)
    }

    /// PMTD domination (Definition 3.5): `self` is dominated by `other` if
    /// every S-view schema of `self` is contained in some S-view schema of
    /// `other`, and every T-view schema of `self` is contained in some
    /// T-view schema of `other`.
    pub fn dominated_by(&self, other: &Pmtd) -> bool {
        let other_s: Vec<VarSet> = other.s_views().iter().map(|v| v.vars).collect();
        let other_t: Vec<VarSet> = other.t_views().iter().map(|v| v.vars).collect();
        self.s_views()
            .iter()
            .all(|v| other_s.iter().any(|o| v.vars.is_subset(*o)))
            && self
                .t_views()
                .iter()
                .all(|v| other_t.iter().any(|o| v.vars.is_subset(*o)))
    }

    /// Paper-style summary such as `(T134, S13)` (views in top-down node
    /// order).
    pub fn summary(&self) -> String {
        let labels: Vec<String> = self
            .td
            .top_down_order()
            .into_iter()
            .map(|t| self.view(t).label())
            .collect();
        format!("({})", labels.join(", "))
    }
}

impl fmt::Debug for Pmtd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "PMTD {} (H = {}, A = {})", self.summary(), self.head, self.access)?;
        for t in self.td.top_down_order() {
            let indent = "  ".repeat(self.td.depth(t) + 1);
            writeln!(
                f,
                "{indent}[{t}] χ = {}, view = {:?}",
                self.td.bag(t),
                self.view(t)
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqap_common::vars;
    use cqap_query::families;

    fn three_reach() -> Cqap {
        families::k_path_distinct(3)
    }

    /// The three PMTDs of Figure 1.
    fn figure1() -> (Pmtd, Pmtd, Pmtd) {
        let q = three_reach();
        let chain =
            TreeDecomposition::path(vec![vars![1, 3, 4], vars![1, 2, 3]]).unwrap();
        let left = Pmtd::for_cqap(chain.clone(), [], &q).unwrap();
        let middle = Pmtd::for_cqap(chain, [1], &q).unwrap();
        let single = TreeDecomposition::single(vars![1, 2, 3, 4]);
        let right = Pmtd::for_cqap(single, [0], &q).unwrap();
        (left, middle, right)
    }

    #[test]
    fn figure1_views_match_paper() {
        let (left, middle, right) = figure1();
        // Left: T134 over T123.
        assert_eq!(left.summary(), "(T134, T123)");
        assert_eq!(left.view(0).vars, vars![1, 3, 4]);
        assert_eq!(left.view(1).vars, vars![1, 2, 3]);
        // Middle: the materialized child projects out x2: S13.
        assert_eq!(middle.summary(), "(T134, S13)");
        assert_eq!(middle.view(1).vars, vars![1, 3]);
        assert_eq!(middle.view(1).kind, ViewKind::S);
        // Right: the single materialized bag keeps only x1, x4: S14.
        assert_eq!(right.summary(), "(S14)");
        assert_eq!(right.view(0).vars, vars![1, 4]);
    }

    #[test]
    fn figure1_pmtds_non_redundant_and_mutually_non_dominant() {
        let (left, middle, right) = figure1();
        for p in [&left, &middle, &right] {
            assert!(p.is_non_redundant(), "{p:?}");
        }
        let all = [&left, &middle, &right];
        for (i, a) in all.iter().enumerate() {
            for (j, b) in all.iter().enumerate() {
                if i != j {
                    assert!(!a.dominated_by(b), "{} dominated by {}", a.summary(), b.summary());
                }
            }
        }
    }

    #[test]
    fn example_36_redundant_pmtd() {
        // Example 3.6: take the left decomposition but put BOTH bags in M.
        // The child's view becomes empty, so the PMTD is redundant.
        let q = three_reach();
        let chain =
            TreeDecomposition::path(vec![vars![1, 3, 4], vars![1, 2, 3]]).unwrap();
        let p = Pmtd::for_cqap(chain, [0, 1], &q).unwrap();
        assert_eq!(p.view(0).vars, vars![1, 4]);
        assert_eq!(p.view(1).vars, VarSet::EMPTY);
        assert!(!p.is_non_redundant());
    }

    #[test]
    fn example_36_domination() {
        // Example 3.6: a single non-materialized bag {x1..x4} (view T1234)
        // dominates the left PMTD of Figure 1.
        let q = three_reach();
        let (left, _, _) = figure1();
        let single = TreeDecomposition::single(vars![1, 2, 3, 4]);
        let big = Pmtd::for_cqap(single, [], &q).unwrap();
        assert_eq!(big.summary(), "(T1234)");
        assert!(left.dominated_by(&big));
        assert!(!big.dominated_by(&left));
    }

    #[test]
    fn validation_errors() {
        let q = three_reach();
        // Root bag must contain the access pattern {x1, x4}.
        let bad_root =
            TreeDecomposition::path(vec![vars![1, 2, 3], vars![1, 3, 4]]).unwrap();
        assert!(Pmtd::for_cqap(bad_root, [], &q).is_err());
        // Materialization set must be subtree-closed: marking only the root
        // of a two-node chain is invalid.
        let chain =
            TreeDecomposition::path(vec![vars![1, 3, 4], vars![1, 2, 3]]).unwrap();
        assert!(Pmtd::for_cqap(chain.clone(), [0], &q).is_err());
        // Out-of-range node.
        assert!(Pmtd::for_cqap(chain, [7], &q).is_err());
    }

    #[test]
    fn nu_for_materialized_child_of_materialized_parent() {
        // 3-node chain for the 4-path query, all materialized; the deepest
        // node brings no new head variable and gets an empty view.
        let q = families::k_path_distinct(4);
        let td = TreeDecomposition::path(vec![
            vars![1, 2, 4, 5],
            vars![2, 3, 4],
            vars![2, 3],
        ])
        .unwrap();
        // Note: this decomposition is redundant ({2,3} ⊂ {2,3,4}) but still
        // structurally valid; we only use it to exercise ν.
        let p = Pmtd::new(td, [0, 1, 2], q.head(), q.access()).unwrap();
        assert_eq!(p.view(0).vars, vars![1, 5]);
        // Child of a materialized parent with new head vars? none here:
        // χ(1) ∩ H = ∅ ⊆ χ(0) ∩ H, so ν = ∅.
        assert_eq!(p.view(1).vars, VarSet::EMPTY);
        assert!(!p.is_non_redundant());
    }

    #[test]
    fn figure2_square_pmtds() {
        // Figure 2: two PMTDs for the square CQAP.
        let q = families::square(true);
        let chain =
            TreeDecomposition::path(vec![vars![1, 3, 4], vars![1, 2, 3]]).unwrap();
        let p1 = Pmtd::for_cqap(chain, [], &q).unwrap();
        assert_eq!(p1.summary(), "(T134, T123)");
        let single = TreeDecomposition::single(vars![1, 2, 3, 4]);
        let p2 = Pmtd::for_cqap(single, [0], &q).unwrap();
        assert_eq!(p2.summary(), "(S13)");
        assert!(p1.is_non_redundant() && p2.is_non_redundant());
        assert!(!p1.dominated_by(&p2) && !p2.dominated_by(&p1));
    }

    #[test]
    fn view_labels() {
        let (left, middle, _) = figure1();
        assert_eq!(left.view(0).label(), "T134");
        assert_eq!(middle.view(1).label(), "S13");
    }
}
