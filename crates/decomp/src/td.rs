//! Rooted tree decompositions (Definition 3.1).

use cqap_common::{CqapError, Result, Var, VarSet};
use cqap_query::Hypergraph;
use std::fmt;

/// A rooted tree decomposition `(T, χ, r)` of a hypergraph.
///
/// Nodes are identified by indices `0..num_nodes()`. The tree is stored via
/// parent pointers oriented away from the root.
#[derive(Clone, PartialEq, Eq)]
pub struct TreeDecomposition {
    bags: Vec<VarSet>,
    parent: Vec<Option<usize>>,
    children: Vec<Vec<usize>>,
    root: usize,
}

impl TreeDecomposition {
    /// Creates a rooted tree decomposition from bags and parent pointers.
    ///
    /// `parent[i]` is the parent of node `i`, or `None` exactly for the
    /// root. Structural validity (single root, acyclicity, connectivity) is
    /// checked here; validity *with respect to a hypergraph* (edge coverage
    /// and the running-intersection property) is checked by
    /// [`TreeDecomposition::validate_for`].
    pub fn new(bags: Vec<VarSet>, parent: Vec<Option<usize>>, root: usize) -> Result<Self> {
        let n = bags.len();
        if n == 0 {
            return Err(CqapError::InvalidDecomposition("no bags".into()));
        }
        if parent.len() != n {
            return Err(CqapError::InvalidDecomposition(
                "parent array length mismatch".into(),
            ));
        }
        if root >= n || parent[root].is_some() {
            return Err(CqapError::InvalidDecomposition(
                "root must exist and have no parent".into(),
            ));
        }
        if parent.iter().filter(|p| p.is_none()).count() != 1 {
            return Err(CqapError::InvalidDecomposition(
                "exactly one node may be the root".into(),
            ));
        }
        let mut children = vec![Vec::new(); n];
        for (i, p) in parent.iter().enumerate() {
            if let Some(p) = *p {
                if p >= n {
                    return Err(CqapError::InvalidDecomposition(format!(
                        "node {i} has out-of-range parent {p}"
                    )));
                }
                children[p].push(i);
            }
        }
        let td = TreeDecomposition {
            bags,
            parent,
            children,
            root,
        };
        // Reachability from the root doubles as an acyclicity check: in a
        // graph with n nodes and n-1 parent edges, reaching all nodes from
        // the root implies a tree.
        let mut seen = vec![false; n];
        let mut stack = vec![root];
        while let Some(t) = stack.pop() {
            if seen[t] {
                return Err(CqapError::InvalidDecomposition("cycle detected".into()));
            }
            seen[t] = true;
            stack.extend(td.children[t].iter().copied());
        }
        if seen.iter().any(|s| !s) {
            return Err(CqapError::InvalidDecomposition(
                "tree is not connected".into(),
            ));
        }
        Ok(td)
    }

    /// Convenience constructor for a path-shaped decomposition
    /// `bags[0] → bags[1] → ...` rooted at `bags[0]`.
    pub fn path(bags: Vec<VarSet>) -> Result<Self> {
        let n = bags.len();
        let parent = (0..n)
            .map(|i| if i == 0 { None } else { Some(i - 1) })
            .collect();
        TreeDecomposition::new(bags, parent, 0)
    }

    /// Convenience constructor for a single-bag decomposition.
    pub fn single(bag: VarSet) -> Self {
        TreeDecomposition::new(vec![bag], vec![None], 0).expect("single bag is always valid")
    }

    /// Number of nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.bags.len()
    }

    /// The bag `χ(t)`.
    #[inline]
    pub fn bag(&self, t: usize) -> VarSet {
        self.bags[t]
    }

    /// All bags in node order.
    #[inline]
    pub fn bags(&self) -> &[VarSet] {
        &self.bags
    }

    /// The root node.
    #[inline]
    pub fn root(&self) -> usize {
        self.root
    }

    /// The parent of `t` (`None` for the root).
    #[inline]
    pub fn parent(&self, t: usize) -> Option<usize> {
        self.parent[t]
    }

    /// The children of `t`.
    #[inline]
    pub fn children(&self, t: usize) -> &[usize] {
        &self.children[t]
    }

    /// The union of all bags.
    pub fn all_vars(&self) -> VarSet {
        self.bags
            .iter()
            .fold(VarSet::EMPTY, |acc, &b| acc.union(b))
    }

    /// Whether `anc` is a **proper** ancestor of `node`.
    pub fn is_ancestor(&self, anc: usize, node: usize) -> bool {
        let mut cur = self.parent[node];
        while let Some(p) = cur {
            if p == anc {
                return true;
            }
            cur = self.parent[p];
        }
        false
    }

    /// The nodes of the subtree rooted at `t` (including `t`), in preorder.
    pub fn subtree(&self, t: usize) -> Vec<usize> {
        let mut out = Vec::new();
        let mut stack = vec![t];
        while let Some(u) = stack.pop() {
            out.push(u);
            stack.extend(self.children[u].iter().copied());
        }
        out
    }

    /// Nodes in a bottom-up order (every node appears after all of its
    /// children) — the traversal order of the semijoin-reduce pass.
    pub fn bottom_up_order(&self) -> Vec<usize> {
        let mut order = self.subtree(self.root);
        order.reverse();
        order
    }

    /// Nodes in a top-down order (every node appears before its children).
    pub fn top_down_order(&self) -> Vec<usize> {
        self.subtree(self.root)
    }

    /// `TOP_r(x)`: the node closest to the root whose bag contains `x`, if
    /// any. With the running-intersection property this is unique.
    pub fn top(&self, x: Var) -> Option<usize> {
        let mut best: Option<(usize, usize)> = None; // (depth, node)
        for t in 0..self.num_nodes() {
            if self.bags[t].contains(x) {
                let d = self.depth(t);
                match best {
                    Some((bd, _)) if bd <= d => {}
                    _ => best = Some((d, t)),
                }
            }
        }
        best.map(|(_, t)| t)
    }

    /// Depth of a node (root has depth 0).
    pub fn depth(&self, t: usize) -> usize {
        let mut d = 0;
        let mut cur = self.parent[t];
        while let Some(p) = cur {
            d += 1;
            cur = self.parent[p];
        }
        d
    }

    /// Checks this decomposition against a hypergraph: every hyperedge must
    /// be contained in some bag, every hypergraph vertex must appear in some
    /// bag, and each variable's bags must form a connected subtree (the
    /// running-intersection property).
    pub fn validate_for(&self, hypergraph: &Hypergraph) -> Result<()> {
        for e in hypergraph.edges() {
            if !self.bags.iter().any(|b| e.is_subset(*b)) {
                return Err(CqapError::InvalidDecomposition(format!(
                    "hyperedge {e} is not contained in any bag"
                )));
            }
        }
        if !hypergraph.vertices().is_subset(self.all_vars()) {
            return Err(CqapError::InvalidDecomposition(
                "some hypergraph vertex appears in no bag".into(),
            ));
        }
        for v in self.all_vars().iter() {
            if !self.variable_connected(v) {
                return Err(CqapError::InvalidDecomposition(format!(
                    "bags containing x{} do not form a connected subtree",
                    v + 1
                )));
            }
        }
        Ok(())
    }

    /// Whether the nodes whose bags contain `v` form a connected subtree.
    fn variable_connected(&self, v: Var) -> bool {
        let holders: Vec<usize> = (0..self.num_nodes())
            .filter(|&t| self.bags[t].contains(v))
            .collect();
        if holders.len() <= 1 {
            return true;
        }
        // In a rooted tree, a set of nodes is connected iff every node of
        // the set except the one closest to the root has its parent in the
        // set.
        let top = self.top(v).expect("v occurs in some bag");
        holders.iter().all(|&t| {
            t == top
                || match self.parent[t] {
                    Some(p) => self.bags[p].contains(v),
                    None => false,
                }
        })
    }

    /// Whether this decomposition is free-connex w.r.t. its root and the
    /// head `H` (Definition 3.1 / reference \[34\]): for every `x ∈ H` and
    /// `y ∈ vars \ H`, `TOP_r(y)` is not a (proper) ancestor of `TOP_r(x)`.
    pub fn is_free_connex(&self, head: VarSet) -> bool {
        let all = self.all_vars();
        let non_head = all.difference(head);
        for x in head.intersect(all).iter() {
            let tx = self.top(x).expect("x occurs");
            for y in non_head.iter() {
                let ty = self.top(y).expect("y occurs");
                if self.is_ancestor(ty, tx) {
                    return false;
                }
            }
        }
        true
    }

    /// Whether no bag is a subset of another (non-redundant decomposition).
    pub fn is_non_redundant(&self) -> bool {
        for i in 0..self.num_nodes() {
            for j in 0..self.num_nodes() {
                if i != j && self.bags[i].is_subset(self.bags[j]) {
                    return false;
                }
            }
        }
        true
    }

    /// Whether every bag of `self` is a subset of some bag of `other`
    /// (decomposition domination, Section 3).
    pub fn dominated_by(&self, other: &TreeDecomposition) -> bool {
        self.bags
            .iter()
            .all(|b| other.bags.iter().any(|ob| b.is_subset(*ob)))
    }
}

impl fmt::Debug for TreeDecomposition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "TreeDecomposition (root = {}):", self.root)?;
        for t in self.top_down_order() {
            let indent = "  ".repeat(self.depth(t) + 1);
            writeln!(f, "{indent}[{t}] {}", self.bags[t])?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqap_common::vars;
    use cqap_query::families;

    /// The left decomposition of Figure 1: {x1,x3,x4} → {x1,x2,x3}.
    fn fig1_left() -> TreeDecomposition {
        TreeDecomposition::path(vec![vars![1, 3, 4], vars![1, 2, 3]]).unwrap()
    }

    #[test]
    fn construction_and_navigation() {
        let td = fig1_left();
        assert_eq!(td.num_nodes(), 2);
        assert_eq!(td.root(), 0);
        assert_eq!(td.parent(1), Some(0));
        assert_eq!(td.children(0), &[1]);
        assert_eq!(td.depth(1), 1);
        assert_eq!(td.all_vars(), vars![1, 2, 3, 4]);
        assert!(td.is_ancestor(0, 1));
        assert!(!td.is_ancestor(1, 0));
        assert!(!td.is_ancestor(0, 0));
        assert_eq!(td.bottom_up_order(), vec![1, 0]);
        assert_eq!(td.top_down_order(), vec![0, 1]);
    }

    #[test]
    fn invalid_structures_rejected() {
        // Two roots.
        assert!(TreeDecomposition::new(vec![vars![1], vars![2]], vec![None, None], 0).is_err());
        // Cycle / not reachable from the root.
        assert!(
            TreeDecomposition::new(vec![vars![1], vars![2]], vec![Some(1), None], 0).is_err()
        );
        // Empty.
        assert!(TreeDecomposition::new(vec![], vec![], 0).is_err());
    }

    #[test]
    fn top_computation() {
        let td = fig1_left();
        assert_eq!(td.top(0), Some(0)); // x1 appears in both; top is root
        assert_eq!(td.top(1), Some(1)); // x2 only in child
        assert_eq!(td.top(3), Some(0)); // x4 only in root
        assert_eq!(td.top(9), None);
    }

    #[test]
    fn validation_against_three_path() {
        let q = families::k_path_distinct(3);
        let h = q.hypergraph();
        assert!(fig1_left().validate_for(&h).is_ok());
        // Decomposition missing the edge {x3,x4}.
        let bad = TreeDecomposition::path(vec![vars![1, 2, 3]]).unwrap();
        assert!(bad.validate_for(&h).is_err());
        // Running-intersection violation: x1 in both leaves but not the
        // middle bag.
        let broken = TreeDecomposition::path(vec![vars![1, 2], vars![2, 3], vars![1, 3, 4]])
            .unwrap();
        assert!(broken.validate_for(&h).is_err());
    }

    #[test]
    fn free_connex() {
        // Head {x1,x4}: the Figure 1 decompositions are free-connex.
        let td = fig1_left();
        assert!(td.is_free_connex(vars![1, 4]));
        // Single bag is always free-connex.
        assert!(TreeDecomposition::single(vars![1, 2, 3, 4]).is_free_connex(vars![1, 4]));
        // Root {x2,x3} with child {x1,x2}, head {x1}: TOP(x3) = root is a
        // proper ancestor of TOP(x1) = child, so NOT free-connex.
        let bad = TreeDecomposition::path(vec![vars![2, 3], vars![1, 2]]).unwrap();
        assert!(!bad.is_free_connex(vars![1]));
        // With head {x2} it is fine (TOP(x2) is the root itself).
        assert!(bad.is_free_connex(vars![2]));
    }

    #[test]
    fn redundancy_and_domination() {
        let td = fig1_left();
        assert!(td.is_non_redundant());
        let redundant =
            TreeDecomposition::path(vec![vars![1, 2, 3], vars![1, 2]]).unwrap();
        assert!(!redundant.is_non_redundant());
        let single = TreeDecomposition::single(vars![1, 2, 3, 4]);
        assert!(td.dominated_by(&single));
        assert!(!single.dominated_by(&td));
    }

    #[test]
    fn subtree_enumeration() {
        // A star: root 0 with children 1, 2; node 2 has child 3.
        let td = TreeDecomposition::new(
            vec![vars![1], vars![2], vars![3], vars![4]],
            vec![None, Some(0), Some(0), Some(2)],
            0,
        );
        // This is structurally fine (validation against a hypergraph is a
        // separate concern).
        let td = td.unwrap();
        let mut sub = td.subtree(2);
        sub.sort_unstable();
        assert_eq!(sub, vec![2, 3]);
        assert_eq!(td.subtree(0).len(), 4);
        let bu = td.bottom_up_order();
        let pos = |x: usize| bu.iter().position(|&t| t == x).unwrap();
        assert!(pos(3) < pos(2));
        assert!(pos(1) < pos(0));
        assert!(pos(2) < pos(0));
    }
}
