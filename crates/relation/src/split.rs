//! Heavy/light partitioning — the "split step" of the 2PP algorithm.
//!
//! A split step on a `(Y, X)` pair (Appendix C.2, following Lemma 6.1 of
//! PANDA) partitions a relation so that the product of the number of
//! distinct `X`-values and the per-`X` degree is bounded. In the practical
//! data structures of Section 5 and Section 6 this specializes to a single
//! *threshold* split:
//!
//! * the **heavy** part contains the tuples whose `X`-projection has degree
//!   `> threshold` — there are at most `|R| / threshold` distinct heavy
//!   `X`-values, so anything keyed by heavy values alone is small;
//! * the **light** part contains the remaining tuples — every light
//!   `X`-value has degree `≤ threshold`, so expanding a light value online
//!   is cheap.
//!
//! [`split_geometric`] provides the full PANDA-style bucketing into
//! `O(log |R|)` sub-relations with geometrically increasing degrees, used by
//! the generic 2PP driver.

use crate::index::HashIndex;
use crate::relation::Relation;
use cqap_common::{Result, Tuple, VarSet};

/// The result of a heavy/light threshold split of a relation on a key set.
#[derive(Clone, Debug)]
pub struct HeavyLightSplit {
    /// Tuples whose key has degree strictly greater than the threshold.
    pub heavy: Relation,
    /// Tuples whose key has degree at most the threshold.
    pub light: Relation,
    /// The threshold used.
    pub threshold: usize,
    /// Number of distinct heavy key values.
    pub heavy_keys: usize,
    /// Number of distinct light key values.
    pub light_keys: usize,
}

impl HeavyLightSplit {
    /// Sanity invariant: the two parts partition the input.
    pub fn total_len(&self) -> usize {
        self.heavy.len() + self.light.len()
    }
}

/// Splits `rel` on the key variables `x` with the given degree `threshold`.
///
/// A key value is *heavy* when strictly more than `threshold` tuples share
/// it. The classic 2-Set-Disjointness / 2-reachability structure uses
/// `threshold = |D| / sqrt(S)` so that the heavy part has at most `sqrt(S)`
/// distinct keys.
pub fn split_heavy_light(rel: &Relation, x: VarSet, threshold: usize) -> Result<HeavyLightSplit> {
    let idx = HashIndex::build(rel, x)?;
    let mut heavy = Relation::new(format!("{}^H", rel.name()), rel.schema().clone());
    let mut light = Relation::new(format!("{}^L", rel.name()), rel.schema().clone());
    let mut heavy_keys = 0usize;
    let mut light_keys = 0usize;
    for (_key, tuples) in idx.groups() {
        if tuples.len() > threshold {
            heavy_keys += 1;
            for t in tuples {
                heavy.insert(t.clone())?;
            }
        } else {
            light_keys += 1;
            for t in tuples {
                light.insert(t.clone())?;
            }
        }
    }
    Ok(HeavyLightSplit {
        heavy,
        light,
        threshold,
        heavy_keys,
        light_keys,
    })
}

/// Returns the set of heavy key values (as key tuples over `x` in ascending
/// variable order) — i.e. the keys with degree `> threshold`.
pub fn heavy_keys(rel: &Relation, x: VarSet, threshold: usize) -> Result<Vec<Tuple>> {
    let idx = HashIndex::build(rel, x)?;
    Ok(idx
        .groups()
        .filter(|(_, ts)| ts.len() > threshold)
        .map(|(k, _)| k.clone())
        .collect())
}

/// A single bucket of a geometric split: all tuples whose key degree lies in
/// `(2^(j-1), 2^j]` (bucket 0 holds degree-1 keys).
#[derive(Clone, Debug)]
pub struct DegreeBucket {
    /// Bucket index `j`; key degrees are in `(2^(j-1), 2^j]`.
    pub level: u32,
    /// The sub-relation.
    pub part: Relation,
    /// Number of distinct key values in the bucket (`N_X^{(j)}`).
    pub num_keys: usize,
    /// Maximum key degree in the bucket (`N_{Y|X}^{(j)}`).
    pub max_degree: usize,
}

/// PANDA-style geometric split of `rel` on key set `x`: the tuples are
/// partitioned into `O(log |rel|)` buckets by the power-of-two range their
/// key degree falls into. Within bucket `j`, the number of distinct keys
/// times the maximum degree is at most `2 · |rel|` — the "splitting
/// property" the 2PP analysis relies on (`N_X^{(j)} · N_{Y|X}^{(j)} ≤ 2 N`).
pub fn split_geometric(rel: &Relation, x: VarSet) -> Result<Vec<DegreeBucket>> {
    let idx = HashIndex::build(rel, x)?;
    let max_level = (usize::BITS - rel.len().max(1).leading_zeros()) + 1;
    let mut buckets: Vec<Option<DegreeBucket>> = (0..=max_level).map(|_| None).collect();
    for (_key, tuples) in idx.groups() {
        let d = tuples.len();
        let level = if d <= 1 {
            0
        } else {
            usize::BITS - (d - 1).leading_zeros()
        };
        let entry = buckets[level as usize].get_or_insert_with(|| DegreeBucket {
            level,
            part: Relation::new(format!("{}^({})", rel.name(), level), rel.schema().clone()),
            num_keys: 0,
            max_degree: 0,
        });
        entry.num_keys += 1;
        entry.max_degree = entry.max_degree.max(d);
        for t in tuples {
            entry.part.insert(t.clone())?;
        }
    }
    Ok(buckets.into_iter().flatten().collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqap_common::vars;

    /// Star graph: vertex 1 has out-degree 10; vertices 2..=5 have degree 1.
    fn skewed() -> Relation {
        let mut pairs = Vec::new();
        for j in 0..10 {
            pairs.push((1u64, 100 + j as u64));
        }
        for v in 2..=5u64 {
            pairs.push((v, 200 + v));
        }
        Relation::binary("R", 0, 1, pairs)
    }

    #[test]
    fn threshold_split_partitions_input() {
        let r = skewed();
        let split = split_heavy_light(&r, vars![1], 3).unwrap();
        assert_eq!(split.total_len(), r.len());
        assert_eq!(split.heavy.len(), 10);
        assert_eq!(split.light.len(), 4);
        assert_eq!(split.heavy_keys, 1);
        assert_eq!(split.light_keys, 4);
        // Heavy and light parts are disjoint.
        assert!(split.heavy.intersect_rel(&split.light).unwrap().is_empty());
    }

    #[test]
    fn threshold_extremes() {
        let r = skewed();
        let all_light = split_heavy_light(&r, vars![1], r.len()).unwrap();
        assert!(all_light.heavy.is_empty());
        assert_eq!(all_light.light.len(), r.len());

        let all_heavy = split_heavy_light(&r, vars![1], 0).unwrap();
        assert!(all_heavy.light.is_empty());
        assert_eq!(all_heavy.heavy.len(), r.len());
    }

    #[test]
    fn heavy_keys_bounded_by_n_over_threshold() {
        let r = skewed();
        let threshold = 3;
        let hk = heavy_keys(&r, vars![1], threshold).unwrap();
        assert_eq!(hk.len(), 1);
        assert!(hk.len() <= r.len() / threshold);
        assert_eq!(hk[0], Tuple::unary(1));
    }

    #[test]
    fn light_degree_bounded() {
        let r = skewed();
        let split = split_heavy_light(&r, vars![1], 3).unwrap();
        let idx = HashIndex::build(&split.light, vars![1]).unwrap();
        assert!(idx.max_degree() <= 3);
    }

    #[test]
    fn geometric_split_covers_and_bounds() {
        let r = skewed();
        let buckets = split_geometric(&r, vars![1]).unwrap();
        let total: usize = buckets.iter().map(|b| b.part.len()).sum();
        assert_eq!(total, r.len());
        for b in &buckets {
            // splitting property: keys × degree ≤ 2 |R|
            assert!(b.num_keys * b.max_degree <= 2 * r.len());
            // degrees really lie in the bucket's range
            let lower = if b.level == 0 { 0 } else { 1usize << (b.level - 1) };
            assert!(b.max_degree <= 1usize << b.level);
            assert!(b.max_degree > lower || b.level == 0);
        }
        // vertex 1 (degree 10) goes to level 4 (range (8, 16]).
        assert!(buckets.iter().any(|b| b.level == 4 && b.num_keys == 1));
        // degree-1 vertices go to level 0.
        assert!(buckets.iter().any(|b| b.level == 0 && b.num_keys == 4));
    }

    #[test]
    fn geometric_split_on_empty_relation() {
        let r = Relation::binary("E", 0, 1, std::iter::empty());
        let buckets = split_geometric(&r, vars![1]).unwrap();
        assert!(buckets.is_empty());
    }
}
