//! # cqap-relation
//!
//! The storage and relational-operator substrate used by every algorithm in
//! the workspace:
//!
//! * [`Schema`] — an ordered list of query variables naming the columns of a
//!   relation.
//! * [`Relation`] — an in-memory set of [`Tuple`](cqap_common::Tuple)s with a
//!   schema, plus the relational operators the paper's algorithms need
//!   (projection, selection, natural join, semijoin, union, distinct).
//! * [`HashIndex`] — a hash index over a key subset of a relation's
//!   variables; the building block for the S-view probing of Online
//!   Yannakakis (probes are O(1) and never enumerate the indexed relation).
//! * [`Database`] — a named collection of relations guarded by a set of
//!   degree constraints.
//! * [`DegreeConstraint`] / [`ConstraintSet`] — the statistics `N_{Y|X}`
//!   from Section 2 of the paper, including the *best constraint
//!   assumption*.
//! * [`split`] — heavy/light partitioning of a relation on a `(Y|X)` pair,
//!   the "split step" of the 2PP algorithm (Appendix C.2).

pub mod constraints;
pub mod database;
pub mod index;
pub mod ops;
pub mod relation;
pub mod schema;
pub mod split;

pub use constraints::{ConstraintSet, DegreeConstraint};
pub use database::Database;
pub use index::HashIndex;
pub use ops::is_identity;
pub use relation::{instrument, Relation, RelationBuilder};
pub use schema::Schema;
pub use split::{split_heavy_light, HeavyLightSplit};
