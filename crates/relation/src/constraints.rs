//! Degree and cardinality constraints (Section 2 of the paper).
//!
//! A degree constraint is a triple `(X, Y, N_{Y|X})` with `X ⊂ Y ⊆ [n]`
//! asserting that for every binding `t_X` of the variables `X`, at most
//! `N_{Y|X}` distinct `Y`-projections extend it in the guarding relation.
//! A *cardinality constraint* is the special case `X = ∅`, i.e. `|R_Y| ≤ N`.
//!
//! [`ConstraintSet`] maintains the paper's *best constraints assumption*:
//! for any `(X, Y)` pair it keeps only the smallest bound.

use crate::relation::Relation;
use cqap_common::{CqapError, FxHashMap, Result, VarSet};
use std::fmt;

/// A degree constraint `(X, Y, N_{Y|X})`.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct DegreeConstraint {
    /// The conditioning variables `X` (may be empty for a cardinality
    /// constraint).
    pub on: VarSet,
    /// The constrained variables `Y ⊃ X`.
    pub of: VarSet,
    /// The bound `N_{Y|X}`.
    pub bound: u64,
}

impl DegreeConstraint {
    /// Creates a degree constraint.
    ///
    /// # Errors
    /// Returns an error unless `X ⊂ Y` (strictly).
    pub fn new(on: VarSet, of: VarSet, bound: u64) -> Result<Self> {
        if !on.is_strict_subset(of) {
            return Err(CqapError::InvalidQuery(format!(
                "degree constraint requires X ⊂ Y, got X={on}, Y={of}"
            )));
        }
        Ok(DegreeConstraint { on, of, bound })
    }

    /// A cardinality constraint `|R_Y| ≤ bound`.
    pub fn cardinality(of: VarSet, bound: u64) -> Self {
        DegreeConstraint {
            on: VarSet::EMPTY,
            of,
            bound,
        }
    }

    /// Whether this is a cardinality constraint (`X = ∅`).
    #[inline]
    pub fn is_cardinality(&self) -> bool {
        self.on.is_empty()
    }

    /// `log2` of the bound, used by the LP layer.
    #[inline]
    pub fn log_bound(&self) -> f64 {
        (self.bound.max(1) as f64).log2()
    }

    /// Whether the given relation *guards* this constraint: its schema
    /// contains `Y` and its actual max degree is within the bound.
    pub fn guarded_by(&self, rel: &Relation) -> bool {
        if !self.of.is_subset(rel.varset()) {
            return false;
        }
        match rel.max_degree(self.on, self.of) {
            Ok(deg) => (deg as u64) <= self.bound,
            Err(_) => false,
        }
    }
}

impl fmt::Debug for DegreeConstraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for DegreeConstraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_cardinality() {
            write!(f, "|R_{}| ≤ {}", self.of, self.bound)
        } else {
            write!(f, "deg({} | {}) ≤ {}", self.of, self.on, self.bound)
        }
    }
}

/// A set of degree constraints under the best-constraint assumption.
#[derive(Clone, Default)]
pub struct ConstraintSet {
    by_pair: FxHashMap<(VarSet, VarSet), u64>,
}

impl ConstraintSet {
    /// An empty constraint set.
    pub fn new() -> Self {
        ConstraintSet::default()
    }

    /// Adds a constraint, keeping the minimum bound for each `(X, Y)` pair
    /// (best-constraint assumption).
    pub fn add(&mut self, c: DegreeConstraint) {
        self.by_pair
            .entry((c.on, c.of))
            .and_modify(|b| *b = (*b).min(c.bound))
            .or_insert(c.bound);
    }

    /// Adds a cardinality constraint for the full variable set of a relation.
    pub fn add_cardinality(&mut self, of: VarSet, bound: u64) {
        self.add(DegreeConstraint::cardinality(of, bound));
    }

    /// Number of constraints.
    pub fn len(&self) -> usize {
        self.by_pair.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.by_pair.is_empty()
    }

    /// The bound for a specific `(X, Y)` pair, if any.
    pub fn bound(&self, on: VarSet, of: VarSet) -> Option<u64> {
        self.by_pair.get(&(on, of)).copied()
    }

    /// The cardinality bound on `Y`, if any.
    pub fn cardinality_of(&self, of: VarSet) -> Option<u64> {
        self.bound(VarSet::EMPTY, of)
    }

    /// Iterates over the constraints (in unspecified order).
    pub fn iter(&self) -> impl Iterator<Item = DegreeConstraint> + '_ {
        self.by_pair
            .iter()
            .map(|(&(on, of), &bound)| DegreeConstraint { on, of, bound })
    }

    /// Iterates over the constraints sorted by `(Y, X)` for deterministic
    /// output (used when building LPs so test results are stable).
    pub fn iter_sorted(&self) -> Vec<DegreeConstraint> {
        let mut v: Vec<_> = self.iter().collect();
        v.sort_by_key(|c| (c.of.0, c.on.0, c.bound));
        v
    }

    /// Merges another constraint set into this one.
    pub fn merge(&mut self, other: &ConstraintSet) {
        for c in other.iter() {
            self.add(c);
        }
    }

    /// Infers the full set of degree constraints actually satisfied by a
    /// relation: one constraint for every pair `X ⊂ Y ⊆ vars(R)`, with the
    /// measured max degree as the bound. This is how workload generators
    /// produce the `DC` input of the framework without hand-writing
    /// statistics.
    pub fn infer_from(rel: &Relation) -> Result<Self> {
        let mut set = ConstraintSet::new();
        let full = rel.varset();
        for y in full.subsets() {
            if y.is_empty() {
                continue;
            }
            for x in y.subsets() {
                if x == y {
                    continue;
                }
                let deg = rel.max_degree(x, y)? as u64;
                set.add(DegreeConstraint {
                    on: x,
                    of: y,
                    bound: deg,
                });
            }
        }
        Ok(set)
    }
}

impl fmt::Debug for ConstraintSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut cs = self.iter_sorted();
        cs.sort_by_key(|c| (c.of.0, c.on.0));
        f.debug_set().entries(cs).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::Relation;
    use cqap_common::vars;

    #[test]
    fn constructor_validation() {
        assert!(DegreeConstraint::new(vars![1], vars![1, 2], 5).is_ok());
        assert!(DegreeConstraint::new(vars![1, 2], vars![1, 2], 5).is_err());
        assert!(DegreeConstraint::new(vars![3], vars![1, 2], 5).is_err());
    }

    #[test]
    fn best_constraint_assumption() {
        let mut cs = ConstraintSet::new();
        cs.add(DegreeConstraint::new(vars![1], vars![1, 2], 10).unwrap());
        cs.add(DegreeConstraint::new(vars![1], vars![1, 2], 4).unwrap());
        cs.add(DegreeConstraint::new(vars![1], vars![1, 2], 7).unwrap());
        assert_eq!(cs.len(), 1);
        assert_eq!(cs.bound(vars![1], vars![1, 2]), Some(4));
    }

    #[test]
    fn guard_check() {
        let r = Relation::binary("R", 0, 1, [(1, 10), (1, 11), (2, 10)]);
        let c = DegreeConstraint::new(vars![1], vars![1, 2], 2).unwrap();
        assert!(c.guarded_by(&r));
        let too_tight = DegreeConstraint::new(vars![1], vars![1, 2], 1).unwrap();
        assert!(!too_tight.guarded_by(&r));
        let wrong_vars = DegreeConstraint::new(vars![3], vars![3, 4], 10).unwrap();
        assert!(!wrong_vars.guarded_by(&r));
    }

    #[test]
    fn infer_from_relation() {
        let r = Relation::binary("R", 0, 1, [(1, 10), (1, 11), (1, 12), (2, 10)]);
        let cs = ConstraintSet::infer_from(&r).unwrap();
        // |R| = 4
        assert_eq!(cs.cardinality_of(vars![1, 2]), Some(4));
        // distinct x1 = 2, distinct x2 = 3
        assert_eq!(cs.cardinality_of(vars![1]), Some(2));
        assert_eq!(cs.cardinality_of(vars![2]), Some(3));
        // max out-degree = 3, max in-degree = 2
        assert_eq!(cs.bound(vars![1], vars![1, 2]), Some(3));
        assert_eq!(cs.bound(vars![2], vars![1, 2]), Some(2));
    }

    #[test]
    fn merge_keeps_minimum() {
        let mut a = ConstraintSet::new();
        a.add_cardinality(vars![1, 2], 100);
        let mut b = ConstraintSet::new();
        b.add_cardinality(vars![1, 2], 50);
        b.add_cardinality(vars![3], 7);
        a.merge(&b);
        assert_eq!(a.cardinality_of(vars![1, 2]), Some(50));
        assert_eq!(a.cardinality_of(vars![3]), Some(7));
    }

    #[test]
    fn display() {
        let c = DegreeConstraint::cardinality(vars![1, 2], 9);
        assert!(c.to_string().contains("≤ 9"));
        let d = DegreeConstraint::new(vars![1], vars![1, 2], 3).unwrap();
        assert!(d.to_string().contains("deg"));
    }
}
