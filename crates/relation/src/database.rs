//! Databases: named collections of relations plus the degree constraints
//! they guard.

use crate::constraints::ConstraintSet;
use crate::relation::Relation;
use cqap_common::{CqapError, Result};
use std::fmt;

/// A database instance `D`: the input relations of a CQAP, together with the
/// degree constraints `DC` they guard (Section 2.2).
///
/// The paper defines `|D|` as the *maximum* relation size; [`Database::size`]
/// follows that convention, while [`Database::total_tuples`] reports the sum
/// (useful for space accounting in benches).
#[derive(Clone, Default)]
pub struct Database {
    relations: Vec<Relation>,
    constraints: ConstraintSet,
}

impl Database {
    /// Creates an empty database.
    pub fn new() -> Self {
        Database::default()
    }

    /// Adds a relation. Relation names must be unique.
    ///
    /// # Errors
    /// Returns an error if a relation with the same name already exists.
    pub fn add_relation(&mut self, rel: Relation) -> Result<()> {
        if self.relation(rel.name()).is_some() {
            return Err(CqapError::InvalidQuery(format!(
                "duplicate relation name {}",
                rel.name()
            )));
        }
        // Maintain the paper's assumption that DC always contains the
        // cardinality constraint (∅, F, |R_F|) for every relation.
        self.constraints
            .add_cardinality(rel.varset(), rel.len() as u64);
        self.relations.push(rel);
        Ok(())
    }

    /// Adds a relation and infers *all* of its degree constraints (not just
    /// the cardinality constraint). Inference is quadratic in the number of
    /// subsets of the relation's variables, so this is intended for the
    /// small-arity relations of the paper's workloads.
    pub fn add_relation_with_stats(&mut self, rel: Relation) -> Result<()> {
        let inferred = ConstraintSet::infer_from(&rel)?;
        self.constraints.merge(&inferred);
        self.add_relation(rel)
    }

    /// Looks up a relation by name.
    pub fn relation(&self, name: &str) -> Option<&Relation> {
        self.relations.iter().find(|r| r.name() == name)
    }

    /// Looks up a relation by name, returning an error when absent.
    pub fn relation_or_err(&self, name: &str) -> Result<&Relation> {
        self.relation(name)
            .ok_or_else(|| CqapError::Other(format!("relation {name} not found")))
    }

    /// Mutable lookup of a relation by name, for in-place delta
    /// maintenance.
    ///
    /// The constraint set is *not* refreshed: the cardinality constraint
    /// recorded at [`Database::add_relation`] time describes the relation
    /// as loaded. Constraints only feed analysis-time plan selection
    /// (entropy bounds, heavy/light splits), never answer correctness, so
    /// a maintained database keeps its build-time constraints until the
    /// next full rebuild.
    pub fn relation_mut(&mut self, name: &str) -> Result<&mut Relation> {
        self.relations
            .iter_mut()
            .find(|r| r.name() == name)
            .ok_or_else(|| CqapError::Other(format!("relation {name} not found")))
    }

    /// All relations.
    pub fn relations(&self) -> &[Relation] {
        &self.relations
    }

    /// Number of relations.
    pub fn num_relations(&self) -> usize {
        self.relations.len()
    }

    /// The degree constraints guarded by this database.
    pub fn constraints(&self) -> &ConstraintSet {
        &self.constraints
    }

    /// Adds an externally known degree constraint (the caller asserts it is
    /// guarded by one of the relations).
    pub fn add_constraint(&mut self, c: crate::constraints::DegreeConstraint) {
        self.constraints.add(c);
    }

    /// `|D|`: the maximum relation size (the paper's database-size measure).
    pub fn size(&self) -> usize {
        self.relations.iter().map(Relation::len).max().unwrap_or(0)
    }

    /// Total number of tuples across all relations.
    pub fn total_tuples(&self) -> usize {
        self.relations.iter().map(Relation::len).sum()
    }

    /// Total number of stored values across all relations (arity-weighted).
    pub fn stored_values(&self) -> usize {
        self.relations.iter().map(Relation::stored_values).sum()
    }
}

impl fmt::Debug for Database {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Database (|D| = {}):", self.size())?;
        for r in &self.relations {
            writeln!(f, "  {r:?}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqap_common::vars;

    #[test]
    fn add_and_lookup() {
        let mut db = Database::new();
        db.add_relation(Relation::binary("R", 0, 1, [(1, 2), (2, 3)]))
            .unwrap();
        db.add_relation(Relation::binary("S", 1, 2, [(2, 3)]))
            .unwrap();
        assert_eq!(db.num_relations(), 2);
        assert!(db.relation("R").is_some());
        assert!(db.relation("T").is_none());
        assert!(db.relation_or_err("T").is_err());
        assert_eq!(db.size(), 2);
        assert_eq!(db.total_tuples(), 3);
        assert_eq!(db.stored_values(), 6);
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut db = Database::new();
        db.add_relation(Relation::binary("R", 0, 1, [(1, 2)]))
            .unwrap();
        assert!(db
            .add_relation(Relation::binary("R", 1, 2, [(1, 2)]))
            .is_err());
    }

    #[test]
    fn cardinality_constraints_always_present() {
        let mut db = Database::new();
        db.add_relation(Relation::binary("R", 0, 1, [(1, 2), (2, 3), (3, 4)]))
            .unwrap();
        assert_eq!(db.constraints().cardinality_of(vars![1, 2]), Some(3));
    }

    #[test]
    fn stats_inference() {
        let mut db = Database::new();
        db.add_relation_with_stats(Relation::binary(
            "R",
            0,
            1,
            [(1, 10), (1, 11), (1, 12), (2, 10)],
        ))
        .unwrap();
        assert_eq!(db.constraints().bound(vars![1], vars![1, 2]), Some(3));
        assert_eq!(db.constraints().bound(vars![2], vars![1, 2]), Some(2));
    }
}
