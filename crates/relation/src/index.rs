//! Hash indexes over relations.
//!
//! A [`HashIndex`] groups the tuples of a relation by their projection onto
//! a *key* set of variables. Probing with a key tuple is O(1) and returns
//! the matching tuples; the index also exposes per-key degree information,
//! which the heavy/light split steps and the specialized application indexes
//! rely on.

use crate::relation::Relation;
use crate::schema::Schema;
use cqap_common::{FxHashMap, Result, Tuple, VarSet};

/// A hash index of a relation on a key subset of its variables.
#[derive(Clone, Debug)]
pub struct HashIndex {
    key_vars: VarSet,
    schema: Schema,
    /// Maps a key-projection tuple to the full tuples sharing that key.
    buckets: FxHashMap<Tuple, Vec<Tuple>>,
    entries: usize,
}

impl HashIndex {
    /// Builds an index of `rel` on `key_vars` (which must be a subset of the
    /// relation's variables).
    ///
    /// Key tuples use ascending variable order, matching
    /// [`Schema::positions_of_set`].
    pub fn build(rel: &Relation, key_vars: VarSet) -> Result<Self> {
        let key_positions = rel.schema().positions_of_set(key_vars)?;
        let mut buckets: FxHashMap<Tuple, Vec<Tuple>> = FxHashMap::default();
        for t in rel.iter() {
            buckets
                .entry(t.project(&key_positions))
                .or_default()
                .push(t.clone());
        }
        Ok(HashIndex {
            key_vars,
            schema: rel.schema().clone(),
            entries: rel.len(),
            buckets,
        })
    }

    /// The key variables.
    #[inline]
    pub fn key_vars(&self) -> VarSet {
        self.key_vars
    }

    /// The schema of the indexed tuples.
    #[inline]
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of distinct keys.
    #[inline]
    pub fn num_keys(&self) -> usize {
        self.buckets.len()
    }

    /// Total number of indexed tuples.
    #[inline]
    pub fn len(&self) -> usize {
        self.entries
    }

    /// Whether the index is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }

    /// The tuples matching a key, or an empty slice.
    #[inline]
    pub fn probe(&self, key: &Tuple) -> &[Tuple] {
        self.buckets.get(key).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Whether any tuple matches the key (a semijoin probe).
    #[inline]
    pub fn contains_key(&self, key: &Tuple) -> bool {
        self.buckets.contains_key(key)
    }

    /// The degree of a key (number of matching tuples).
    #[inline]
    pub fn degree(&self, key: &Tuple) -> usize {
        self.buckets.get(key).map(Vec::len).unwrap_or(0)
    }

    /// The maximum degree over all keys.
    pub fn max_degree(&self) -> usize {
        self.buckets.values().map(Vec::len).max().unwrap_or(0)
    }

    /// Iterates over `(key, tuples)` groups.
    pub fn groups(&self) -> impl Iterator<Item = (&Tuple, &[Tuple])> {
        self.buckets.iter().map(|(k, v)| (k, v.as_slice()))
    }

    /// Machine-independent space measure: number of stored values across all
    /// buckets (keys are not double counted since the tuples embed them).
    pub fn stored_values(&self) -> usize {
        self.entries * self.schema.arity()
    }

    /// Inserts tuples incrementally, keeping the index consistent with a
    /// relation that just accepted the same tuples.
    ///
    /// The caller guarantees the tuples are not already indexed (the
    /// owning relation deduplicates before forwarding its net inserts);
    /// a duplicate would inflate [`HashIndex::len`] and degree counts.
    pub fn insert_all(&mut self, tuples: &[Tuple]) -> Result<()> {
        if tuples.is_empty() {
            return Ok(());
        }
        let key_positions = self.schema.positions_of_set(self.key_vars)?;
        for t in tuples {
            self.buckets
                .entry(t.project(&key_positions))
                .or_default()
                .push(t.clone());
            self.entries += 1;
        }
        Ok(())
    }

    /// Removes tuples incrementally, returning how many were found.
    ///
    /// Buckets left empty are dropped so [`HashIndex::contains_key`] (the
    /// semijoin probe) stays exact — a lingering empty bucket would make
    /// a deleted key look present.
    pub fn remove_all(&mut self, tuples: &[Tuple]) -> Result<usize> {
        if tuples.is_empty() {
            return Ok(0);
        }
        let key_positions = self.schema.positions_of_set(self.key_vars)?;
        let mut removed = 0;
        for t in tuples {
            let key = t.project(&key_positions);
            if let Some(bucket) = self.buckets.get_mut(&key) {
                if let Some(pos) = bucket.iter().position(|b| b == t) {
                    bucket.swap_remove(pos);
                    self.entries -= 1;
                    removed += 1;
                    if bucket.is_empty() {
                        self.buckets.remove(&key);
                    }
                }
            }
        }
        Ok(removed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqap_common::vars;

    fn sample() -> Relation {
        Relation::binary("R", 0, 1, [(1, 10), (1, 11), (2, 10), (3, 30), (3, 31)])
    }

    #[test]
    fn build_and_probe() {
        let r = sample();
        let idx = HashIndex::build(&r, vars![1]).unwrap();
        assert_eq!(idx.num_keys(), 3);
        assert_eq!(idx.len(), 5);
        let hits = idx.probe(&Tuple::unary(1));
        assert_eq!(hits.len(), 2);
        assert!(hits.contains(&Tuple::pair(1, 10)));
        assert!(hits.contains(&Tuple::pair(1, 11)));
        assert!(idx.probe(&Tuple::unary(9)).is_empty());
        assert!(idx.contains_key(&Tuple::unary(2)));
        assert!(!idx.contains_key(&Tuple::unary(9)));
    }

    #[test]
    fn degrees() {
        let r = sample();
        let idx = HashIndex::build(&r, vars![1]).unwrap();
        assert_eq!(idx.degree(&Tuple::unary(1)), 2);
        assert_eq!(idx.degree(&Tuple::unary(2)), 1);
        assert_eq!(idx.degree(&Tuple::unary(99)), 0);
        assert_eq!(idx.max_degree(), 2);
    }

    #[test]
    fn index_on_second_column() {
        let r = sample();
        let idx = HashIndex::build(&r, vars![2]).unwrap();
        assert_eq!(idx.num_keys(), 4);
        assert_eq!(idx.degree(&Tuple::unary(10)), 2);
    }

    #[test]
    fn index_on_full_key() {
        let r = sample();
        let idx = HashIndex::build(&r, vars![1, 2]).unwrap();
        assert_eq!(idx.num_keys(), 5);
        assert_eq!(idx.max_degree(), 1);
        assert!(idx.contains_key(&Tuple::pair(3, 31)));
    }

    #[test]
    fn unknown_key_var_is_error() {
        let r = sample();
        assert!(HashIndex::build(&r, vars![7]).is_err());
    }

    #[test]
    fn stored_values() {
        let r = sample();
        let idx = HashIndex::build(&r, vars![1]).unwrap();
        assert_eq!(idx.stored_values(), 10);
    }

    #[test]
    fn incremental_insert_and_remove() {
        let r = sample();
        let mut idx = HashIndex::build(&r, vars![1]).unwrap();
        idx.insert_all(&[Tuple::pair(9, 90)]).unwrap();
        assert_eq!(idx.len(), 6);
        assert!(idx.contains_key(&Tuple::unary(9)));
        assert_eq!(
            idx.remove_all(&[Tuple::pair(9, 90), Tuple::pair(1, 10)])
                .unwrap(),
            2
        );
        assert_eq!(idx.len(), 4);
        assert!(
            !idx.contains_key(&Tuple::unary(9)),
            "empty buckets must be dropped so semijoin probes stay exact"
        );
        assert_eq!(idx.degree(&Tuple::unary(1)), 1);
        // Removing an absent tuple is a no-op.
        assert_eq!(idx.remove_all(&[Tuple::pair(9, 90)]).unwrap(), 0);
        assert_eq!(idx.len(), 4);
    }
}
