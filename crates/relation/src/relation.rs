//! In-memory relations (sets of tuples with a schema).

use crate::schema::Schema;
use cqap_common::{CqapError, FxHashSet, Result, Tuple, Val, Var, VarSet};
use std::fmt;

/// An in-memory relation: a set of tuples over a [`Schema`].
///
/// Relations are *set-semantics*: [`Relation::insert`] deduplicates. The
/// paper's size measures (`|R|`, degree constraints) are all defined over
/// set semantics.
#[derive(Clone)]
pub struct Relation {
    name: String,
    schema: Schema,
    tuples: Vec<Tuple>,
    seen: FxHashSet<Tuple>,
}

impl Relation {
    /// Creates an empty relation with the given name and schema.
    pub fn new(name: impl Into<String>, schema: Schema) -> Self {
        Relation {
            name: name.into(),
            schema,
            tuples: Vec::new(),
            seen: FxHashSet::default(),
        }
    }

    /// Creates a relation and bulk-loads tuples (deduplicating).
    pub fn from_tuples(
        name: impl Into<String>,
        schema: Schema,
        tuples: impl IntoIterator<Item = Tuple>,
    ) -> Result<Self> {
        let mut r = Relation::new(name, schema);
        for t in tuples {
            r.insert(t)?;
        }
        Ok(r)
    }

    /// Convenience constructor for a binary relation over variables `(a, b)`
    /// loaded from `(Val, Val)` pairs — the common case for the paper's
    /// graph workloads.
    pub fn binary(
        name: impl Into<String>,
        a: Var,
        b: Var,
        pairs: impl IntoIterator<Item = (Val, Val)>,
    ) -> Self {
        let mut r = Relation::new(name, Schema::of([a, b]));
        for (x, y) in pairs {
            r.insert(Tuple::pair(x, y)).expect("binary tuple");
        }
        r
    }

    /// The relation's name.
    #[inline]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Renames the relation.
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// The relation's schema.
    #[inline]
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The variables of the relation as a set.
    #[inline]
    pub fn varset(&self) -> VarSet {
        self.schema.varset()
    }

    /// Number of (distinct) tuples.
    #[inline]
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Whether the relation is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Iterates over the tuples.
    #[inline]
    pub fn iter(&self) -> std::slice::Iter<'_, Tuple> {
        self.tuples.iter()
    }

    /// The tuples as a slice.
    #[inline]
    pub fn tuples(&self) -> &[Tuple] {
        &self.tuples
    }

    /// Inserts a tuple, ignoring duplicates.
    ///
    /// # Errors
    /// Returns an error if the tuple arity does not match the schema.
    pub fn insert(&mut self, t: Tuple) -> Result<bool> {
        if t.arity() != self.schema.arity() {
            return Err(CqapError::SchemaMismatch {
                expected: format!("{} (arity {})", self.schema, self.schema.arity()),
                found: format!("tuple of arity {}", t.arity()),
            });
        }
        if self.seen.insert(t.clone()) {
            self.tuples.push(t);
            Ok(true)
        } else {
            Ok(false)
        }
    }

    /// Whether the relation contains the tuple.
    pub fn contains(&self, t: &Tuple) -> bool {
        self.seen.contains(t)
    }

    /// Returns the tuple values for variable `v` (one per tuple, with
    /// repetitions).
    pub fn column(&self, v: Var) -> Result<Vec<Val>> {
        let pos = self
            .schema
            .position(v)
            .ok_or_else(|| CqapError::UnknownVariable(format!("x{}", v + 1)))?;
        Ok(self.tuples.iter().map(|t| t.get(pos)).collect())
    }

    /// Number of distinct values of the projection onto `vars` (a `VarSet`).
    pub fn distinct_count(&self, vars: VarSet) -> Result<usize> {
        let positions = self.schema.positions_of_set(vars.intersect(self.varset()))?;
        let mut set: FxHashSet<Tuple> = FxHashSet::default();
        for t in &self.tuples {
            set.insert(t.project(&positions));
        }
        Ok(set.len())
    }

    /// The maximum degree `max_{t_X} deg(Y | t_X)` over the relation, i.e.
    /// the largest number of distinct `Y`-projections that share one
    /// `X`-projection value. This is the quantity guarded by a degree
    /// constraint `(X, Y, N_{Y|X})` in Section 2 of the paper.
    pub fn max_degree(&self, x: VarSet, y: VarSet) -> Result<usize> {
        if x.is_empty() {
            return self.distinct_count(y);
        }
        let xpos = self.schema.positions_of_set(x)?;
        let ypos = self.schema.positions_of_set(y.intersect(self.varset()))?;
        let mut groups: cqap_common::FxHashMap<Tuple, FxHashSet<Tuple>> =
            cqap_common::FxHashMap::default();
        for t in &self.tuples {
            groups
                .entry(t.project(&xpos))
                .or_default()
                .insert(t.project(&ypos));
        }
        Ok(groups.values().map(|s| s.len()).max().unwrap_or(0))
    }

    /// An estimate of the memory footprint in *stored values* (arity ×
    /// cardinality). Benches report this as the machine-independent space
    /// measure.
    #[inline]
    pub fn stored_values(&self) -> usize {
        self.len() * self.schema.arity()
    }
}

impl fmt::Debug for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}{} [{} tuples]",
            self.name,
            self.schema,
            self.tuples.len()
        )
    }
}

impl PartialEq for Relation {
    /// Two relations are equal if they have the same schema and the same set
    /// of tuples (order-insensitive). Names are ignored.
    fn eq(&self, other: &Self) -> bool {
        self.schema == other.schema && self.len() == other.len() && self.seen == other.seen
    }
}

impl Eq for Relation {}

#[cfg(test)]
mod tests {
    use super::*;

    fn edges(name: &str, pairs: &[(u64, u64)]) -> Relation {
        Relation::binary(name, 0, 1, pairs.iter().copied())
    }

    #[test]
    fn insert_dedup_and_contains() {
        let mut r = Relation::new("R", Schema::of([0, 1]));
        assert!(r.insert(Tuple::pair(1, 2)).unwrap());
        assert!(!r.insert(Tuple::pair(1, 2)).unwrap());
        assert!(r.insert(Tuple::pair(2, 3)).unwrap());
        assert_eq!(r.len(), 2);
        assert!(r.contains(&Tuple::pair(1, 2)));
        assert!(!r.contains(&Tuple::pair(3, 2)));
    }

    #[test]
    fn arity_mismatch_rejected() {
        let mut r = Relation::new("R", Schema::of([0, 1]));
        assert!(r.insert(Tuple::triple(1, 2, 3)).is_err());
    }

    #[test]
    fn distinct_count_and_degree() {
        let r = edges("R", &[(1, 10), (1, 11), (1, 12), (2, 10), (3, 10)]);
        assert_eq!(r.distinct_count(VarSet::singleton(0)).unwrap(), 3);
        assert_eq!(r.distinct_count(VarSet::singleton(1)).unwrap(), 3);
        assert_eq!(
            r.distinct_count(VarSet::from_iter([0, 1])).unwrap(),
            5
        );
        // max out-degree of variable x1 is 3 (vertex 1).
        assert_eq!(
            r.max_degree(VarSet::singleton(0), VarSet::from_iter([0, 1]))
                .unwrap(),
            3
        );
        // max in-degree is 3 (vertex 10).
        assert_eq!(
            r.max_degree(VarSet::singleton(1), VarSet::from_iter([0, 1]))
                .unwrap(),
            3
        );
        // cardinality constraint: X = ∅.
        assert_eq!(
            r.max_degree(VarSet::EMPTY, VarSet::from_iter([0, 1])).unwrap(),
            5
        );
    }

    #[test]
    fn column_extraction() {
        let r = edges("R", &[(1, 10), (2, 20)]);
        let mut c = r.column(1).unwrap();
        c.sort_unstable();
        assert_eq!(c, vec![10, 20]);
        assert!(r.column(5).is_err());
    }

    #[test]
    fn equality_ignores_name_and_order() {
        let a = edges("R", &[(1, 2), (3, 4)]);
        let b = edges("S", &[(3, 4), (1, 2)]);
        assert_eq!(a, b);
        let c = edges("R", &[(1, 2)]);
        assert_ne!(a, c);
    }

    #[test]
    fn stored_values() {
        let r = edges("R", &[(1, 2), (3, 4), (5, 6)]);
        assert_eq!(r.stored_values(), 6);
    }
}
