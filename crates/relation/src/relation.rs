//! In-memory relations (sets of tuples with a schema).

use crate::schema::Schema;
use cqap_common::{CqapError, FxHashSet, Result, Tuple, Val, Var, VarSet};
use std::borrow::Cow;
use std::fmt;
use std::sync::OnceLock;

/// Counters for the relation layer's hash-dedup work, used by tests to
/// prove that the compiled online path stays off the dedup machinery.
pub mod instrument {
    use std::cell::Cell;

    thread_local! {
        static DEDUP_INSERTS: Cell<u64> = const { Cell::new(0) };
    }

    /// Total tuples **this thread** has inserted into a relation-level
    /// dedup hash set (both eager [`Relation::insert`](crate::Relation::insert)
    /// calls and lazy materialization of a membership set). Monotone;
    /// callers diff two readings around the code under test. Per-thread so
    /// concurrent serving workers (and parallel tests) don't pollute each
    /// other's measurements.
    pub fn dedup_inserts() -> u64 {
        DEDUP_INSERTS.with(Cell::get)
    }

    #[inline]
    pub(crate) fn record_dedup_inserts(n: u64) {
        if n > 0 {
            DEDUP_INSERTS.with(|c| c.set(c.get() + n));
        }
    }
}

/// An in-memory relation: a set of tuples over a [`Schema`].
///
/// Relations are *set-semantics*: [`Relation::insert`] deduplicates. The
/// paper's size measures (`|R|`, degree constraints) are all defined over
/// set semantics.
///
/// The dedup hash set backing [`Relation::contains`] and equality is built
/// **lazily**: a relation assembled from tuples that are already distinct
/// (every semijoin/join output of the online phase — see
/// [`RelationBuilder::distinct`]) carries only its tuple vector until some
/// caller actually needs membership tests. Names are `Cow<'static, str>`,
/// so the hot path labels intermediates with borrowed constants instead of
/// `format!` allocations.
#[derive(Clone)]
pub struct Relation {
    name: Cow<'static, str>,
    schema: Schema,
    tuples: Vec<Tuple>,
    /// Lazily materialized dedup/membership set; empty for relations built
    /// through the distinct builder until first needed.
    seen: OnceLock<FxHashSet<Tuple>>,
}

impl Relation {
    /// Creates an empty relation with the given name and schema.
    pub fn new(name: impl Into<Cow<'static, str>>, schema: Schema) -> Self {
        Relation {
            name: name.into(),
            schema,
            tuples: Vec::new(),
            seen: OnceLock::new(),
        }
    }

    /// Creates a relation and bulk-loads tuples (deduplicating).
    pub fn from_tuples(
        name: impl Into<Cow<'static, str>>,
        schema: Schema,
        tuples: impl IntoIterator<Item = Tuple>,
    ) -> Result<Self> {
        let mut r = Relation::new(name, schema);
        for t in tuples {
            r.insert(t)?;
        }
        Ok(r)
    }

    /// Convenience constructor for a binary relation over variables `(a, b)`
    /// loaded from `(Val, Val)` pairs — the common case for the paper's
    /// graph workloads.
    pub fn binary(
        name: impl Into<Cow<'static, str>>,
        a: Var,
        b: Var,
        pairs: impl IntoIterator<Item = (Val, Val)>,
    ) -> Self {
        let mut r = Relation::new(name, Schema::of([a, b]));
        for (x, y) in pairs {
            r.insert(Tuple::pair(x, y)).expect("binary tuple");
        }
        r
    }

    /// The relation's name.
    #[inline]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Renames the relation.
    pub fn with_name(mut self, name: impl Into<Cow<'static, str>>) -> Self {
        self.name = name.into();
        self
    }

    /// The relation's schema.
    #[inline]
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The variables of the relation as a set.
    #[inline]
    pub fn varset(&self) -> VarSet {
        self.schema.varset()
    }

    /// Number of (distinct) tuples.
    #[inline]
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Whether the relation is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Iterates over the tuples.
    #[inline]
    pub fn iter(&self) -> std::slice::Iter<'_, Tuple> {
        self.tuples.iter()
    }

    /// The tuples as a slice.
    #[inline]
    pub fn tuples(&self) -> &[Tuple] {
        &self.tuples
    }

    /// Consumes the relation into its tuple vector (dropping any
    /// membership set). For callers that fold a relation into another
    /// structure and would otherwise clone every tuple.
    #[inline]
    pub fn into_tuples(self) -> Vec<Tuple> {
        self.tuples
    }

    /// The membership set, materializing it on first use.
    fn seen(&self) -> &FxHashSet<Tuple> {
        self.seen.get_or_init(|| {
            instrument::record_dedup_inserts(self.tuples.len() as u64);
            self.tuples.iter().cloned().collect()
        })
    }

    /// Mutable access to the membership set, materializing it on first use.
    fn seen_mut(&mut self) -> &mut FxHashSet<Tuple> {
        if self.seen.get().is_none() {
            let _ = self.seen();
        }
        self.seen.get_mut().expect("seen set just materialized")
    }

    /// Inserts a tuple, ignoring duplicates.
    ///
    /// # Errors
    /// Returns an error if the tuple arity does not match the schema.
    pub fn insert(&mut self, t: Tuple) -> Result<bool> {
        if t.arity() != self.schema.arity() {
            return Err(CqapError::SchemaMismatch {
                expected: format!("{} (arity {})", self.schema, self.schema.arity()),
                found: format!("tuple of arity {}", t.arity()),
            });
        }
        instrument::record_dedup_inserts(1);
        if self.seen_mut().insert(t.clone()) {
            self.tuples.push(t);
            Ok(true)
        } else {
            Ok(false)
        }
    }

    /// Whether the relation contains the tuple.
    pub fn contains(&self, t: &Tuple) -> bool {
        self.seen().contains(t)
    }

    /// Returns the tuple values for variable `v` (one per tuple, with
    /// repetitions).
    pub fn column(&self, v: Var) -> Result<Vec<Val>> {
        let pos = self
            .schema
            .position(v)
            .ok_or_else(|| CqapError::UnknownVariable(format!("x{}", v + 1)))?;
        Ok(self.tuples.iter().map(|t| t.get(pos)).collect())
    }

    /// Number of distinct values of the projection onto `vars` (a `VarSet`).
    pub fn distinct_count(&self, vars: VarSet) -> Result<usize> {
        let positions = self.schema.positions_of_set(vars.intersect(self.varset()))?;
        let mut set: FxHashSet<Tuple> = FxHashSet::default();
        for t in &self.tuples {
            set.insert(t.project(&positions));
        }
        Ok(set.len())
    }

    /// The maximum degree `max_{t_X} deg(Y | t_X)` over the relation, i.e.
    /// the largest number of distinct `Y`-projections that share one
    /// `X`-projection value. This is the quantity guarded by a degree
    /// constraint `(X, Y, N_{Y|X})` in Section 2 of the paper.
    pub fn max_degree(&self, x: VarSet, y: VarSet) -> Result<usize> {
        if x.is_empty() {
            return self.distinct_count(y);
        }
        let xpos = self.schema.positions_of_set(x)?;
        let ypos = self.schema.positions_of_set(y.intersect(self.varset()))?;
        let mut groups: cqap_common::FxHashMap<Tuple, FxHashSet<Tuple>> =
            cqap_common::FxHashMap::default();
        for t in &self.tuples {
            groups
                .entry(t.project(&xpos))
                .or_default()
                .insert(t.project(&ypos));
        }
        Ok(groups.values().map(|s| s.len()).max().unwrap_or(0))
    }

    /// Removes every tuple in `gone` from the relation, returning how many
    /// were actually present (and hence removed).
    ///
    /// One retain pass over the tuple vector. The lazy membership set is
    /// updated only if it has already been materialized — removal never
    /// forces it into existence, so the delta-maintenance path stays off
    /// the counted dedup machinery for relations built distinct.
    pub fn remove_all(&mut self, gone: &FxHashSet<Tuple>) -> usize {
        if gone.is_empty() {
            return 0;
        }
        let before = self.tuples.len();
        self.tuples.retain(|t| !gone.contains(t));
        let removed = before - self.tuples.len();
        if removed > 0 {
            if let Some(seen) = self.seen.get_mut() {
                seen.retain(|t| !gone.contains(t));
            }
        }
        removed
    }

    /// An estimate of the memory footprint in *stored values* (arity ×
    /// cardinality). Benches report this as the machine-independent space
    /// measure.
    #[inline]
    pub fn stored_values(&self) -> usize {
        self.len() * self.schema.arity()
    }
}

impl fmt::Debug for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}{} [{} tuples]",
            self.name,
            self.schema,
            self.tuples.len()
        )
    }
}

impl PartialEq for Relation {
    /// Two relations are equal if they have the same schema and the same set
    /// of tuples (order-insensitive). Names are ignored.
    fn eq(&self, other: &Self) -> bool {
        self.schema == other.schema && self.len() == other.len() && self.seen() == other.seen()
    }
}

impl Eq for Relation {}

/// An append-only assembler for relations whose construction is on a hot
/// path.
///
/// The dedup-on-insert contract of [`Relation::insert`] pays two hash
/// probes and a shadow copy per tuple. Most relations the online phase
/// builds are **duplicate-free by construction** — a semijoin or selection
/// of a set is a subset, and a join output tuple embeds the probe-side
/// tuple plus columns that are functionally determined by it — so the
/// builder lets such producers opt out: [`RelationBuilder::distinct`]
/// skips the hash set entirely, and the resulting relation materializes a
/// membership set only if someone later asks for one.
///
/// Arity is checked with a `debug_assert!` per push (producers derive
/// tuples from the declared schema, so a mismatch is a bug, not input
/// validation); `debug` builds additionally verify the distinctness claim
/// at [`RelationBuilder::finish`].
pub struct RelationBuilder {
    name: Cow<'static, str>,
    schema: Schema,
    tuples: Vec<Tuple>,
    /// `Some` while dedup-on-push is active; `None` for distinct builders.
    seen: Option<FxHashSet<Tuple>>,
}

impl RelationBuilder {
    /// A builder that deduplicates on push, exactly like
    /// [`Relation::insert`].
    pub fn new(name: impl Into<Cow<'static, str>>, schema: Schema) -> Self {
        RelationBuilder {
            name: name.into(),
            schema,
            tuples: Vec::new(),
            seen: Some(FxHashSet::default()),
        }
    }

    /// A builder for producers whose output is duplicate-free by
    /// construction: no dedup set is kept, so pushes are a plain vector
    /// append. The caller guarantees distinctness; debug builds verify it
    /// at [`RelationBuilder::finish`].
    pub fn distinct(name: impl Into<Cow<'static, str>>, schema: Schema) -> Self {
        RelationBuilder {
            name: name.into(),
            schema,
            tuples: Vec::new(),
            seen: None,
        }
    }

    /// The schema tuples must conform to.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of tuples accepted so far.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Whether no tuple has been accepted yet.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Appends one row given as a value slice — the column-to-row exit of
    /// the columnar execution path: the row crosses into a [`Tuple`] here
    /// (inline for arity ≤ 4, so narrow answers never touch the heap) and
    /// nowhere earlier.
    #[inline]
    pub fn push_row(&mut self, vals: &[Val]) {
        self.push(Tuple::from_slice(vals));
    }

    /// Appends a tuple (deduplicating unless this is a distinct builder).
    #[inline]
    pub fn push(&mut self, t: Tuple) {
        debug_assert_eq!(
            t.arity(),
            self.schema.arity(),
            "builder tuple arity must match the schema"
        );
        match &mut self.seen {
            Some(seen) => {
                instrument::record_dedup_inserts(1);
                if seen.insert(t.clone()) {
                    self.tuples.push(t);
                }
            }
            None => self.tuples.push(t),
        }
    }

    /// Finalizes the relation. A deduplicating builder donates its hash set
    /// as the relation's membership set; a distinct builder leaves it to be
    /// materialized lazily (never, on the probe-only serving path).
    pub fn finish(self) -> Relation {
        #[cfg(debug_assertions)]
        if self.seen.is_none() {
            let distinct: FxHashSet<&Tuple> = self.tuples.iter().collect();
            debug_assert_eq!(
                distinct.len(),
                self.tuples.len(),
                "distinct builder received duplicate tuples"
            );
        }
        let seen_cell = OnceLock::new();
        if let Some(seen) = self.seen {
            let _ = seen_cell.set(seen);
        }
        Relation {
            name: self.name,
            schema: self.schema,
            tuples: self.tuples,
            seen: seen_cell,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edges(name: &'static str, pairs: &[(u64, u64)]) -> Relation {
        Relation::binary(name, 0, 1, pairs.iter().copied())
    }

    #[test]
    fn insert_dedup_and_contains() {
        let mut r = Relation::new("R", Schema::of([0, 1]));
        assert!(r.insert(Tuple::pair(1, 2)).unwrap());
        assert!(!r.insert(Tuple::pair(1, 2)).unwrap());
        assert!(r.insert(Tuple::pair(2, 3)).unwrap());
        assert_eq!(r.len(), 2);
        assert!(r.contains(&Tuple::pair(1, 2)));
        assert!(!r.contains(&Tuple::pair(3, 2)));
    }

    #[test]
    fn arity_mismatch_rejected() {
        let mut r = Relation::new("R", Schema::of([0, 1]));
        assert!(r.insert(Tuple::triple(1, 2, 3)).is_err());
    }

    #[test]
    fn distinct_count_and_degree() {
        let r = edges("R", &[(1, 10), (1, 11), (1, 12), (2, 10), (3, 10)]);
        assert_eq!(r.distinct_count(VarSet::singleton(0)).unwrap(), 3);
        assert_eq!(r.distinct_count(VarSet::singleton(1)).unwrap(), 3);
        assert_eq!(
            r.distinct_count(VarSet::from_iter([0, 1])).unwrap(),
            5
        );
        // max out-degree of variable x1 is 3 (vertex 1).
        assert_eq!(
            r.max_degree(VarSet::singleton(0), VarSet::from_iter([0, 1]))
                .unwrap(),
            3
        );
        // max in-degree is 3 (vertex 10).
        assert_eq!(
            r.max_degree(VarSet::singleton(1), VarSet::from_iter([0, 1]))
                .unwrap(),
            3
        );
        // cardinality constraint: X = ∅.
        assert_eq!(
            r.max_degree(VarSet::EMPTY, VarSet::from_iter([0, 1])).unwrap(),
            5
        );
    }

    #[test]
    fn column_extraction() {
        let r = edges("R", &[(1, 10), (2, 20)]);
        let mut c = r.column(1).unwrap();
        c.sort_unstable();
        assert_eq!(c, vec![10, 20]);
        assert!(r.column(5).is_err());
    }

    #[test]
    fn equality_ignores_name_and_order() {
        let a = edges("R", &[(1, 2), (3, 4)]);
        let b = edges("S", &[(3, 4), (1, 2)]);
        assert_eq!(a, b);
        let c = edges("R", &[(1, 2)]);
        assert_ne!(a, c);
    }

    #[test]
    fn stored_values() {
        let r = edges("R", &[(1, 2), (3, 4), (5, 6)]);
        assert_eq!(r.stored_values(), 6);
    }

    #[test]
    fn distinct_builder_skips_the_dedup_set() {
        let before = instrument::dedup_inserts();
        let mut b = RelationBuilder::distinct("out", Schema::of([0, 1]));
        for i in 0..100u64 {
            b.push(Tuple::pair(i, i + 1));
        }
        let r = b.finish();
        assert_eq!(r.len(), 100);
        assert_eq!(
            instrument::dedup_inserts(),
            before,
            "distinct builder must not touch the dedup machinery"
        );
        // Membership still works — the set materializes lazily (and is
        // counted when it does).
        assert!(r.contains(&Tuple::pair(7, 8)));
        assert!(!r.contains(&Tuple::pair(8, 7)));
        assert_eq!(instrument::dedup_inserts(), before + 100);
    }

    #[test]
    fn dedup_builder_matches_insert_semantics() {
        let mut b = RelationBuilder::new("out", Schema::of([0, 1]));
        b.push(Tuple::pair(1, 2));
        b.push(Tuple::pair(1, 2));
        b.push(Tuple::pair(2, 3));
        let r = b.finish();
        assert_eq!(r.len(), 2);
        assert!(r.contains(&Tuple::pair(1, 2)));
        let direct =
            Relation::from_tuples("out", Schema::of([0, 1]), [Tuple::pair(1, 2), Tuple::pair(2, 3)])
                .unwrap();
        assert_eq!(r, direct);
    }

    #[test]
    fn remove_all_updates_membership() {
        let mut r = edges("R", &[(1, 2), (3, 4), (5, 6)]);
        assert!(r.contains(&Tuple::pair(1, 2))); // forces the seen set
        let gone: FxHashSet<Tuple> =
            [Tuple::pair(1, 2), Tuple::pair(9, 9)].into_iter().collect();
        assert_eq!(r.remove_all(&gone), 1);
        assert_eq!(r.len(), 2);
        assert!(!r.contains(&Tuple::pair(1, 2)));
        // A removed tuple can be re-inserted (delete-then-reinsert).
        assert!(r.insert(Tuple::pair(1, 2)).unwrap());
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn remove_all_does_not_force_the_membership_set() {
        let mut b = RelationBuilder::distinct("out", Schema::of([0, 1]));
        for i in 0..10u64 {
            b.push(Tuple::pair(i, i + 1));
        }
        let mut r = b.finish();
        let before = instrument::dedup_inserts();
        let gone: FxHashSet<Tuple> = [Tuple::pair(0, 1)].into_iter().collect();
        assert_eq!(r.remove_all(&gone), 1);
        assert_eq!(
            instrument::dedup_inserts(),
            before,
            "removal must not materialize the lazy membership set"
        );
        assert_eq!(r.len(), 9);
    }

    #[test]
    fn lazy_relations_interoperate_with_eager_ones() {
        let mut b = RelationBuilder::distinct("lazy", Schema::of([0, 1]));
        b.push(Tuple::pair(1, 2));
        b.push(Tuple::pair(3, 4));
        let lazy = b.finish();
        let eager = edges("eager", &[(3, 4), (1, 2)]);
        assert_eq!(lazy, eager);
        // Inserting into a lazily-built relation still deduplicates.
        let mut lazy = lazy;
        assert!(!lazy.insert(Tuple::pair(1, 2)).unwrap());
        assert!(lazy.insert(Tuple::pair(5, 6)).unwrap());
        assert_eq!(lazy.len(), 3);
    }
}
