//! Relational operators: projection, selection, natural join, semijoin,
//! antijoin, union, intersection.
//!
//! These are the operators that proof-sequence steps compile into (Section 5
//! of the paper): a composition step is a join, a decomposition step is a
//! projection, and the Online Yannakakis passes are built from semijoins and
//! joins. All binary operators are hash-based and run in time linear in
//! their input plus output (up to hashing).

use crate::index::HashIndex;
use crate::relation::{Relation, RelationBuilder};
use crate::schema::Schema;
use cqap_common::{FxHashSet, Result, Tuple, Val, Var, VarSet};

/// Whether `positions` is the identity permutation `0..arity` — i.e. the
/// projection/reorder it describes is a no-op. Shared with the compiled
/// online plans, which use it to elide identity final projections.
pub fn is_identity(positions: &[usize], arity: usize) -> bool {
    positions.len() == arity && positions.iter().enumerate().all(|(i, &p)| i == p)
}

impl Relation {
    /// π_vars(R): projection onto `vars` (deduplicating).
    ///
    /// Two structural fast paths keep the serving pipeline off the dedup
    /// machinery: projecting onto (a superset of) the full variable set in
    /// the existing column order is a clone, and any projection that keeps
    /// *all* columns is a permutation (duplicate-free by construction).
    pub fn project_onto(&self, vars: VarSet) -> Result<Relation> {
        let keep = vars.intersect(self.varset());
        let positions = self.schema().positions_of_set(keep)?;
        if is_identity(&positions, self.schema().arity()) {
            return Ok(self.clone());
        }
        let schema = Schema::of(keep.iter());
        if keep == self.varset() {
            // Column permutation: a bijection on tuples, no dedup needed.
            let mut out = RelationBuilder::distinct(
                format!("π{}({})", schema, self.name()),
                schema,
            );
            for t in self.iter() {
                out.push(t.project(&positions));
            }
            return Ok(out.finish());
        }
        let mut out = RelationBuilder::new(format!("π{}({})", schema, self.name()), schema);
        for t in self.iter() {
            out.push(t.project(&positions));
        }
        Ok(out.finish())
    }

    /// σ_{v = val}(R): selection of tuples whose value for `v` equals `val`.
    pub fn select_eq(&self, v: Var, val: Val) -> Result<Relation> {
        let pos = self
            .schema()
            .position(v)
            .ok_or_else(|| cqap_common::CqapError::UnknownVariable(format!("x{}", v + 1)))?;
        // A selection of a set is a subset: duplicate-free by construction.
        let mut out = RelationBuilder::distinct(
            format!("σ_x{}={}({})", v + 1, val, self.name()),
            self.schema().clone(),
        );
        for t in self.iter() {
            if t.get(pos) == val {
                out.push(t.clone());
            }
        }
        Ok(out.finish())
    }

    /// Natural join `R ⋈ S` on the common variables.
    ///
    /// The output schema is `R`'s columns followed by `S`'s non-shared
    /// columns. Implemented as a hash join with the smaller input on the
    /// build side.
    pub fn join(&self, other: &Relation) -> Result<Relation> {
        // Build on the smaller relation.
        if other.len() < self.len() {
            let swapped = other.join_impl(self)?;
            // Reorder columns to keep the documented column order
            // (self's columns first).
            let target = self.schema().join(other.schema());
            return swapped.reorder(&target);
        }
        self.join_impl(other)
    }

    fn join_impl(&self, other: &Relation) -> Result<Relation> {
        let shared = self.varset().intersect(other.varset());
        let out_schema = self.schema().join(other.schema());
        // A join output tuple embeds the probe-side tuple and its matched
        // tuple is determined by it plus the appended columns, so the
        // output of a join of two sets is duplicate-free by construction.
        let mut out = RelationBuilder::distinct(
            format!("({} ⋈ {})", self.name(), other.name()),
            out_schema.clone(),
        );

        // Positions of the shared variables in each input (ascending order).
        let left_key = self.schema().positions_of_set(shared)?;
        let index = HashIndex::build(other, shared)?;
        // Positions (in `other`) of the columns appended to the output.
        let appended: Vec<usize> = out_schema.vars()[self.schema().arity()..]
            .iter()
            .map(|&v| other.schema().position(v).expect("appended var"))
            .collect();

        for lt in self.iter() {
            let key = lt.project(&left_key);
            for rt in index.probe(&key) {
                out.push(lt.concat_projected(rt, &appended));
            }
        }
        Ok(out.finish())
    }

    /// Reorders columns to match `target` (which must contain exactly the
    /// same variable set).
    pub fn reorder(&self, target: &Schema) -> Result<Relation> {
        if target.varset() != self.varset() {
            return Err(cqap_common::CqapError::SchemaMismatch {
                expected: format!("{target}"),
                found: format!("{}", self.schema()),
            });
        }
        let positions = self.schema().positions_of(target.vars())?;
        if is_identity(&positions, self.schema().arity()) {
            return Ok(self.clone());
        }
        // A column permutation is a bijection on tuples: no dedup needed.
        let mut out = RelationBuilder::distinct(self.name().to_string(), target.clone());
        for t in self.iter() {
            out.push(t.project(&positions));
        }
        Ok(out.finish())
    }

    /// Semijoin `R ⋉ S`: tuples of `R` that join with at least one tuple of
    /// `S` on the shared variables. Runs in `O(|R| + |S|)`.
    pub fn semijoin(&self, other: &Relation) -> Result<Relation> {
        let shared = self.varset().intersect(other.varset());
        let other_keys: FxHashSet<Tuple> = {
            let positions = other.schema().positions_of_set(shared)?;
            other.iter().map(|t| t.project(&positions)).collect()
        };
        let left_key = self.schema().positions_of_set(shared)?;
        // A semijoin of a set is a subset: duplicate-free by construction.
        let mut out = RelationBuilder::distinct(
            format!("({} ⋉ {})", self.name(), other.name()),
            self.schema().clone(),
        );
        for t in self.iter() {
            if other_keys.contains(&t.project(&left_key)) {
                out.push(t.clone());
            }
        }
        Ok(out.finish())
    }

    /// Antijoin `R ▷ S`: tuples of `R` that join with *no* tuple of `S`.
    pub fn antijoin(&self, other: &Relation) -> Result<Relation> {
        let shared = self.varset().intersect(other.varset());
        let other_keys: FxHashSet<Tuple> = {
            let positions = other.schema().positions_of_set(shared)?;
            other.iter().map(|t| t.project(&positions)).collect()
        };
        let left_key = self.schema().positions_of_set(shared)?;
        let mut out = RelationBuilder::distinct(
            format!("({} ▷ {})", self.name(), other.name()),
            self.schema().clone(),
        );
        for t in self.iter() {
            if !other_keys.contains(&t.project(&left_key)) {
                out.push(t.clone());
            }
        }
        Ok(out.finish())
    }

    /// Union of two relations over the same variable set (columns are
    /// reordered if necessary).
    ///
    /// The *larger* input is cloned as the base and the smaller one is
    /// inserted into it, so only O(min(|R|, |S|)) tuples go through the
    /// per-tuple insert path — the shape of the per-PMTD answer union in
    /// the serving driver. (The bulk side still costs O(big) to clone,
    /// and its membership set materializes once if it was lazily built;
    /// the saving is the per-tuple re-insertion, not the copy.)
    pub fn union(&self, other: &Relation) -> Result<Relation> {
        if other.schema() == self.schema() && other.len() > self.len() {
            let mut out = other.clone().with_name(self.name().to_string());
            for t in self.iter() {
                out.insert(t.clone())?;
            }
            return Ok(out);
        }
        let mut out = self.clone();
        let reordered;
        let other = if other.schema() == self.schema() {
            other
        } else {
            reordered = other.reorder(self.schema())?;
            &reordered
        };
        for t in other.iter() {
            out.insert(t.clone())?;
        }
        Ok(out)
    }

    /// Consuming union: both inputs are owned, so the larger side becomes
    /// the base *by move* — no relation is cloned at all — and only the
    /// smaller side's tuples go through the per-tuple insert path
    /// (mismatched column orders reorder `other` into `self`'s schema
    /// first). This is the union the serving drivers use to fold
    /// per-PMTD and per-shard answers, where both sides are freshly
    /// produced and owned. Note the result's tuple *order* depends on
    /// which side was larger; only the set contents are guaranteed.
    pub fn union_with(self, other: Relation) -> Result<Relation> {
        let other = if other.schema() == self.schema() {
            other
        } else {
            other.reorder(self.schema())?
        };
        let (mut base, small) = if other.len() > self.len() {
            let name = self.name().to_string();
            (other.with_name(name), self)
        } else {
            (self, other)
        };
        for t in small.into_tuples() {
            base.insert(t)?;
        }
        Ok(base)
    }

    /// Intersection of two relations over the same variable set.
    ///
    /// Iterates the *smaller* input and membership-tests the larger one,
    /// so the cost is O(min(|R|, |S|)) lookups; no input is cloned.
    pub fn intersect_rel(&self, other: &Relation) -> Result<Relation> {
        let reordered;
        let other = if other.schema() == self.schema() {
            other
        } else {
            reordered = other.reorder(self.schema())?;
            &reordered
        };
        let (scan, lookup) = if self.len() <= other.len() {
            (self, other)
        } else {
            (other, self)
        };
        // An intersection of sets is a subset of the scanned set.
        let mut out = RelationBuilder::distinct(
            format!("({} ∩ {})", self.name(), other.name()),
            self.schema().clone(),
        );
        for t in scan.iter() {
            if lookup.contains(t) {
                out.push(t.clone());
            }
        }
        Ok(out.finish())
    }

    /// Cartesian product (join with no shared variables); provided for
    /// completeness and used by a handful of tests.
    pub fn cross(&self, other: &Relation) -> Result<Relation> {
        debug_assert!(self.varset().is_disjoint(other.varset()));
        self.join(other)
    }
}

/// Joins an ordered sequence of relations left to right.
pub fn join_all(relations: &[Relation]) -> Result<Relation> {
    assert!(!relations.is_empty(), "join_all of empty sequence");
    let mut acc = relations[0].clone();
    for r in &relations[1..] {
        acc = acc.join(r)?;
    }
    Ok(acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqap_common::vars;

    fn rel(name: &'static str, a: Var, b: Var, pairs: &[(u64, u64)]) -> Relation {
        Relation::binary(name, a, b, pairs.iter().copied())
    }

    #[test]
    fn projection() {
        let r = rel("R", 0, 1, &[(1, 10), (1, 11), (2, 10)]);
        let p = r.project_onto(vars![1]).unwrap();
        assert_eq!(p.len(), 2);
        assert!(p.contains(&Tuple::unary(1)));
        assert!(p.contains(&Tuple::unary(2)));
        // Projecting on a variable not in the schema keeps only the overlap.
        let q = r.project_onto(vars![2, 5]).unwrap();
        assert_eq!(q.schema().vars(), &[1]);
    }

    #[test]
    fn selection() {
        let r = rel("R", 0, 1, &[(1, 10), (2, 20)]);
        let s = r.select_eq(0, 1).unwrap();
        assert_eq!(s.len(), 1);
        assert!(s.contains(&Tuple::pair(1, 10)));
        assert!(r.select_eq(5, 1).is_err());
    }

    #[test]
    fn hash_join_path() {
        // R(x1,x2) ⋈ S(x2,x3): the classic 2-path.
        let r = rel("R", 0, 1, &[(1, 10), (2, 10), (3, 30)]);
        let s = rel("S", 1, 2, &[(10, 100), (10, 101), (30, 300)]);
        let j = r.join(&s).unwrap();
        assert_eq!(j.schema().vars(), &[0, 1, 2]);
        assert_eq!(j.len(), 5);
        assert!(j.contains(&Tuple::triple(1, 10, 100)));
        assert!(j.contains(&Tuple::triple(2, 10, 101)));
        assert!(j.contains(&Tuple::triple(3, 30, 300)));
        assert!(!j.contains(&Tuple::triple(3, 30, 100)));
    }

    #[test]
    fn join_is_symmetric_in_content() {
        let r = rel("R", 0, 1, &[(1, 10), (2, 10), (3, 30), (4, 40)]);
        let s = rel("S", 1, 2, &[(10, 100), (30, 300)]);
        let j1 = r.join(&s).unwrap();
        let j2 = s.join(&r).unwrap().reorder(j1.schema()).unwrap();
        assert_eq!(j1, j2);
    }

    #[test]
    fn join_no_shared_vars_is_cross_product() {
        let r = rel("R", 0, 1, &[(1, 2), (3, 4)]);
        let s = rel("S", 2, 3, &[(5, 6)]);
        let j = r.join(&s).unwrap();
        assert_eq!(j.len(), 2);
        assert_eq!(j.schema().arity(), 4);
    }

    #[test]
    fn semijoin_and_antijoin_partition() {
        let r = rel("R", 0, 1, &[(1, 10), (2, 20), (3, 30)]);
        let s = rel("S", 1, 2, &[(10, 100), (30, 300)]);
        let semi = r.semijoin(&s).unwrap();
        let anti = r.antijoin(&s).unwrap();
        assert_eq!(semi.len(), 2);
        assert_eq!(anti.len(), 1);
        assert!(anti.contains(&Tuple::pair(2, 20)));
        // semijoin ∪ antijoin = R
        assert_eq!(semi.union(&anti).unwrap(), r);
    }

    #[test]
    fn union_reorders_columns() {
        let r = rel("R", 0, 1, &[(1, 10)]);
        let mut s = Relation::new("S", Schema::of([1, 0]));
        s.insert(Tuple::pair(20, 2)).unwrap();
        let u = r.union(&s).unwrap();
        assert_eq!(u.len(), 2);
        assert!(u.contains(&Tuple::pair(2, 20)));
    }

    #[test]
    fn union_is_size_symmetric() {
        // A tiny delta unioned into a big relation must not depend on the
        // argument order for its result (only for its cost).
        let big = rel("big", 0, 1, &(0..500u64).map(|i| (i, i + 1)).collect::<Vec<_>>());
        let delta = rel("delta", 0, 1, &[(1, 2), (1_000, 1_001)]);
        let a = big.union(&delta).unwrap();
        let b = delta.union(&big).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.len(), 501);
        // Reordered columns still take the slow (reorder) path correctly.
        let mut swapped = Relation::new("S", Schema::of([1, 0]));
        swapped.insert(Tuple::pair(9_999, 77)).unwrap();
        let u = swapped.union(&big).unwrap();
        assert_eq!(u.schema().vars(), &[1, 0]);
        assert_eq!(u.len(), 501);
        assert!(u.contains(&Tuple::pair(9_999, 77)));
        assert!(u.contains(&Tuple::pair(2, 1)), "big side reordered into self's schema");
    }

    #[test]
    fn consuming_union_matches_borrowing_union() {
        let big = rel("big", 0, 1, &(0..200u64).map(|i| (i, i + 1)).collect::<Vec<_>>());
        let delta = rel("delta", 0, 1, &[(1, 2), (900, 901)]);
        let expected = big.union(&delta).unwrap();
        assert_eq!(big.clone().union_with(delta.clone()).unwrap(), expected);
        assert_eq!(delta.clone().union_with(big.clone()).unwrap(), expected);
        // Mismatched column order falls back to the borrowing path.
        let mut swapped = Relation::new("S", Schema::of([1, 0]));
        swapped.insert(Tuple::pair(7, 70)).unwrap();
        assert_eq!(
            swapped.clone().union_with(delta.clone()).unwrap(),
            swapped.union(&delta).unwrap()
        );
    }

    #[test]
    fn intersection_is_size_symmetric() {
        let big = rel("big", 0, 1, &(0..300u64).map(|i| (i, i)).collect::<Vec<_>>());
        let small = rel("small", 0, 1, &[(3, 3), (7, 8)]);
        let a = big.intersect_rel(&small).unwrap();
        let b = small.intersect_rel(&big).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.len(), 1);
        assert!(a.contains(&Tuple::pair(3, 3)));
    }

    #[test]
    fn identity_projection_and_reorder_are_clones() {
        let r = rel("R", 0, 1, &[(1, 2), (3, 4)]);
        let p = r.project_onto(VarSet::from_iter([0, 1, 9])).unwrap();
        assert_eq!(p, r);
        assert_eq!(p.schema(), r.schema());
        let same = r.reorder(r.schema()).unwrap();
        assert_eq!(same, r);
    }

    #[test]
    fn intersection() {
        let r = rel("R", 0, 1, &[(1, 10), (2, 20)]);
        let s = rel("S", 0, 1, &[(2, 20), (3, 30)]);
        let i = r.intersect_rel(&s).unwrap();
        assert_eq!(i.len(), 1);
        assert!(i.contains(&Tuple::pair(2, 20)));
    }

    #[test]
    fn join_all_three_path() {
        let r1 = rel("R1", 0, 1, &[(1, 2), (5, 6)]);
        let r2 = rel("R2", 1, 2, &[(2, 3)]);
        let r3 = rel("R3", 2, 3, &[(3, 4)]);
        let j = join_all(&[r1, r2, r3]).unwrap();
        assert_eq!(j.len(), 1);
        assert!(j.contains(&Tuple::from_slice(&[1, 2, 3, 4])));
    }

    #[test]
    fn reorder_validates_varset() {
        let r = rel("R", 0, 1, &[(1, 2)]);
        assert!(r.reorder(&Schema::of([1, 2])).is_err());
        let ok = r.reorder(&Schema::of([1, 0])).unwrap();
        assert!(ok.contains(&Tuple::pair(2, 1)));
    }
}
