//! Relational operators: projection, selection, natural join, semijoin,
//! antijoin, union, intersection.
//!
//! These are the operators that proof-sequence steps compile into (Section 5
//! of the paper): a composition step is a join, a decomposition step is a
//! projection, and the Online Yannakakis passes are built from semijoins and
//! joins. All binary operators are hash-based and run in time linear in
//! their input plus output (up to hashing).

use crate::index::HashIndex;
use crate::relation::Relation;
use crate::schema::Schema;
use cqap_common::{FxHashSet, Result, Tuple, Val, Var, VarSet};

impl Relation {
    /// π_vars(R): projection onto `vars` (deduplicating).
    pub fn project_onto(&self, vars: VarSet) -> Result<Relation> {
        let keep = vars.intersect(self.varset());
        let positions = self.schema().positions_of_set(keep)?;
        let schema = Schema::of(keep.iter());
        let mut out = Relation::new(format!("π{}({})", schema, self.name()), schema);
        for t in self.iter() {
            out.insert(t.project(&positions))?;
        }
        Ok(out)
    }

    /// σ_{v = val}(R): selection of tuples whose value for `v` equals `val`.
    pub fn select_eq(&self, v: Var, val: Val) -> Result<Relation> {
        let pos = self
            .schema()
            .position(v)
            .ok_or_else(|| cqap_common::CqapError::UnknownVariable(format!("x{}", v + 1)))?;
        let mut out = Relation::new(
            format!("σ_x{}={}({})", v + 1, val, self.name()),
            self.schema().clone(),
        );
        for t in self.iter() {
            if t.get(pos) == val {
                out.insert(t.clone())?;
            }
        }
        Ok(out)
    }

    /// Natural join `R ⋈ S` on the common variables.
    ///
    /// The output schema is `R`'s columns followed by `S`'s non-shared
    /// columns. Implemented as a hash join with the smaller input on the
    /// build side.
    pub fn join(&self, other: &Relation) -> Result<Relation> {
        // Build on the smaller relation.
        if other.len() < self.len() {
            let swapped = other.join_impl(self)?;
            // Reorder columns to keep the documented column order
            // (self's columns first).
            let target = self.schema().join(other.schema());
            return swapped.reorder(&target);
        }
        self.join_impl(other)
    }

    fn join_impl(&self, other: &Relation) -> Result<Relation> {
        let shared = self.varset().intersect(other.varset());
        let out_schema = self.schema().join(other.schema());
        let mut out = Relation::new(
            format!("({} ⋈ {})", self.name(), other.name()),
            out_schema.clone(),
        );

        // Positions of the shared variables in each input (ascending order).
        let left_key = self.schema().positions_of_set(shared)?;
        let index = HashIndex::build(other, shared)?;
        // Positions (in `other`) of the columns appended to the output.
        let appended: Vec<usize> = out_schema.vars()[self.schema().arity()..]
            .iter()
            .map(|&v| other.schema().position(v).expect("appended var"))
            .collect();

        for lt in self.iter() {
            let key = lt.project(&left_key);
            for rt in index.probe(&key) {
                let extra = rt.project(&appended);
                out.insert(lt.concat(&extra))?;
            }
        }
        Ok(out)
    }

    /// Reorders columns to match `target` (which must contain exactly the
    /// same variable set).
    pub fn reorder(&self, target: &Schema) -> Result<Relation> {
        if target.varset() != self.varset() {
            return Err(cqap_common::CqapError::SchemaMismatch {
                expected: format!("{target}"),
                found: format!("{}", self.schema()),
            });
        }
        let positions = self.schema().positions_of(target.vars())?;
        let mut out = Relation::new(self.name().to_string(), target.clone());
        for t in self.iter() {
            out.insert(t.project(&positions))?;
        }
        Ok(out)
    }

    /// Semijoin `R ⋉ S`: tuples of `R` that join with at least one tuple of
    /// `S` on the shared variables. Runs in `O(|R| + |S|)`.
    pub fn semijoin(&self, other: &Relation) -> Result<Relation> {
        let shared = self.varset().intersect(other.varset());
        let other_keys: FxHashSet<Tuple> = {
            let positions = other.schema().positions_of_set(shared)?;
            other.iter().map(|t| t.project(&positions)).collect()
        };
        let left_key = self.schema().positions_of_set(shared)?;
        let mut out = Relation::new(
            format!("({} ⋉ {})", self.name(), other.name()),
            self.schema().clone(),
        );
        for t in self.iter() {
            if other_keys.contains(&t.project(&left_key)) {
                out.insert(t.clone())?;
            }
        }
        Ok(out)
    }

    /// Antijoin `R ▷ S`: tuples of `R` that join with *no* tuple of `S`.
    pub fn antijoin(&self, other: &Relation) -> Result<Relation> {
        let shared = self.varset().intersect(other.varset());
        let other_keys: FxHashSet<Tuple> = {
            let positions = other.schema().positions_of_set(shared)?;
            other.iter().map(|t| t.project(&positions)).collect()
        };
        let left_key = self.schema().positions_of_set(shared)?;
        let mut out = Relation::new(
            format!("({} ▷ {})", self.name(), other.name()),
            self.schema().clone(),
        );
        for t in self.iter() {
            if !other_keys.contains(&t.project(&left_key)) {
                out.insert(t.clone())?;
            }
        }
        Ok(out)
    }

    /// Union of two relations over the same variable set (columns are
    /// reordered if necessary).
    pub fn union(&self, other: &Relation) -> Result<Relation> {
        let mut out = self.clone();
        let other = if other.schema() == self.schema() {
            other.clone()
        } else {
            other.reorder(self.schema())?
        };
        for t in other.iter() {
            out.insert(t.clone())?;
        }
        Ok(out)
    }

    /// Intersection of two relations over the same variable set.
    pub fn intersect_rel(&self, other: &Relation) -> Result<Relation> {
        let other = if other.schema() == self.schema() {
            other.clone()
        } else {
            other.reorder(self.schema())?
        };
        let mut out = Relation::new(
            format!("({} ∩ {})", self.name(), other.name()),
            self.schema().clone(),
        );
        for t in self.iter() {
            if other.contains(t) {
                out.insert(t.clone())?;
            }
        }
        Ok(out)
    }

    /// Cartesian product (join with no shared variables); provided for
    /// completeness and used by a handful of tests.
    pub fn cross(&self, other: &Relation) -> Result<Relation> {
        debug_assert!(self.varset().is_disjoint(other.varset()));
        self.join(other)
    }
}

/// Joins an ordered sequence of relations left to right.
pub fn join_all(relations: &[Relation]) -> Result<Relation> {
    assert!(!relations.is_empty(), "join_all of empty sequence");
    let mut acc = relations[0].clone();
    for r in &relations[1..] {
        acc = acc.join(r)?;
    }
    Ok(acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqap_common::vars;

    fn rel(name: &str, a: Var, b: Var, pairs: &[(u64, u64)]) -> Relation {
        Relation::binary(name, a, b, pairs.iter().copied())
    }

    #[test]
    fn projection() {
        let r = rel("R", 0, 1, &[(1, 10), (1, 11), (2, 10)]);
        let p = r.project_onto(vars![1]).unwrap();
        assert_eq!(p.len(), 2);
        assert!(p.contains(&Tuple::unary(1)));
        assert!(p.contains(&Tuple::unary(2)));
        // Projecting on a variable not in the schema keeps only the overlap.
        let q = r.project_onto(vars![2, 5]).unwrap();
        assert_eq!(q.schema().vars(), &[1]);
    }

    #[test]
    fn selection() {
        let r = rel("R", 0, 1, &[(1, 10), (2, 20)]);
        let s = r.select_eq(0, 1).unwrap();
        assert_eq!(s.len(), 1);
        assert!(s.contains(&Tuple::pair(1, 10)));
        assert!(r.select_eq(5, 1).is_err());
    }

    #[test]
    fn hash_join_path() {
        // R(x1,x2) ⋈ S(x2,x3): the classic 2-path.
        let r = rel("R", 0, 1, &[(1, 10), (2, 10), (3, 30)]);
        let s = rel("S", 1, 2, &[(10, 100), (10, 101), (30, 300)]);
        let j = r.join(&s).unwrap();
        assert_eq!(j.schema().vars(), &[0, 1, 2]);
        assert_eq!(j.len(), 5);
        assert!(j.contains(&Tuple::triple(1, 10, 100)));
        assert!(j.contains(&Tuple::triple(2, 10, 101)));
        assert!(j.contains(&Tuple::triple(3, 30, 300)));
        assert!(!j.contains(&Tuple::triple(3, 30, 100)));
    }

    #[test]
    fn join_is_symmetric_in_content() {
        let r = rel("R", 0, 1, &[(1, 10), (2, 10), (3, 30), (4, 40)]);
        let s = rel("S", 1, 2, &[(10, 100), (30, 300)]);
        let j1 = r.join(&s).unwrap();
        let j2 = s.join(&r).unwrap().reorder(j1.schema()).unwrap();
        assert_eq!(j1, j2);
    }

    #[test]
    fn join_no_shared_vars_is_cross_product() {
        let r = rel("R", 0, 1, &[(1, 2), (3, 4)]);
        let s = rel("S", 2, 3, &[(5, 6)]);
        let j = r.join(&s).unwrap();
        assert_eq!(j.len(), 2);
        assert_eq!(j.schema().arity(), 4);
    }

    #[test]
    fn semijoin_and_antijoin_partition() {
        let r = rel("R", 0, 1, &[(1, 10), (2, 20), (3, 30)]);
        let s = rel("S", 1, 2, &[(10, 100), (30, 300)]);
        let semi = r.semijoin(&s).unwrap();
        let anti = r.antijoin(&s).unwrap();
        assert_eq!(semi.len(), 2);
        assert_eq!(anti.len(), 1);
        assert!(anti.contains(&Tuple::pair(2, 20)));
        // semijoin ∪ antijoin = R
        assert_eq!(semi.union(&anti).unwrap(), r);
    }

    #[test]
    fn union_reorders_columns() {
        let r = rel("R", 0, 1, &[(1, 10)]);
        let mut s = Relation::new("S", Schema::of([1, 0]));
        s.insert(Tuple::pair(20, 2)).unwrap();
        let u = r.union(&s).unwrap();
        assert_eq!(u.len(), 2);
        assert!(u.contains(&Tuple::pair(2, 20)));
    }

    #[test]
    fn intersection() {
        let r = rel("R", 0, 1, &[(1, 10), (2, 20)]);
        let s = rel("S", 0, 1, &[(2, 20), (3, 30)]);
        let i = r.intersect_rel(&s).unwrap();
        assert_eq!(i.len(), 1);
        assert!(i.contains(&Tuple::pair(2, 20)));
    }

    #[test]
    fn join_all_three_path() {
        let r1 = rel("R1", 0, 1, &[(1, 2), (5, 6)]);
        let r2 = rel("R2", 1, 2, &[(2, 3)]);
        let r3 = rel("R3", 2, 3, &[(3, 4)]);
        let j = join_all(&[r1, r2, r3]).unwrap();
        assert_eq!(j.len(), 1);
        assert!(j.contains(&Tuple::from_slice(&[1, 2, 3, 4])));
    }

    #[test]
    fn reorder_validates_varset() {
        let r = rel("R", 0, 1, &[(1, 2)]);
        assert!(r.reorder(&Schema::of([1, 2])).is_err());
        let ok = r.reorder(&Schema::of([1, 0])).unwrap();
        assert!(ok.contains(&Tuple::pair(2, 1)));
    }
}
