//! Relation schemas: ordered lists of query variables.

use cqap_common::{CqapError, Result, Var, VarSet};
use std::fmt;

/// The schema of a relation: an ordered list of distinct query variables.
///
/// The order defines the column order of the relation's tuples. Two
/// relations over the same *set* of variables but different column orders
/// are interchangeable through [`Schema::positions_of`].
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Schema {
    vars: Vec<Var>,
    varset: VarSet,
}

impl Schema {
    /// Creates a schema from an ordered list of variables.
    ///
    /// # Errors
    /// Returns an error if a variable is repeated.
    pub fn new(vars: Vec<Var>) -> Result<Self> {
        let mut seen = VarSet::EMPTY;
        for &v in &vars {
            if seen.contains(v) {
                return Err(CqapError::InvalidQuery(format!(
                    "repeated variable x{} in schema",
                    v + 1
                )));
            }
            seen = seen.insert(v);
        }
        Ok(Schema {
            varset: seen,
            vars,
        })
    }

    /// Creates a schema, panicking on duplicates (for statically-known
    /// schemas in tests and query constructors).
    pub fn of(vars: impl IntoIterator<Item = Var>) -> Self {
        Schema::new(vars.into_iter().collect()).expect("invalid schema")
    }

    /// The empty schema (for Boolean results).
    pub fn empty() -> Self {
        Schema {
            vars: Vec::new(),
            varset: VarSet::EMPTY,
        }
    }

    /// The ordered variables.
    #[inline]
    pub fn vars(&self) -> &[Var] {
        &self.vars
    }

    /// The variables as a set.
    #[inline]
    pub fn varset(&self) -> VarSet {
        self.varset
    }

    /// Number of columns.
    #[inline]
    pub fn arity(&self) -> usize {
        self.vars.len()
    }

    /// Position of variable `v` in the column order, if present.
    #[inline]
    pub fn position(&self, v: Var) -> Option<usize> {
        self.vars.iter().position(|&u| u == v)
    }

    /// Whether the schema contains variable `v`.
    #[inline]
    pub fn contains(&self, v: Var) -> bool {
        self.varset.contains(v)
    }

    /// Positions of the given variables, in the order given.
    ///
    /// # Errors
    /// Returns an error if any variable is missing from the schema.
    pub fn positions_of(&self, vars: &[Var]) -> Result<Vec<usize>> {
        vars.iter()
            .map(|&v| {
                self.position(v)
                    .ok_or_else(|| CqapError::UnknownVariable(format!("x{}", v + 1)))
            })
            .collect()
    }

    /// Positions of the variables of `set`, in ascending variable order.
    pub fn positions_of_set(&self, set: VarSet) -> Result<Vec<usize>> {
        self.positions_of(&set.to_vec())
    }

    /// The schema obtained by projecting onto `set` (ascending variable
    /// order).
    pub fn project(&self, set: VarSet) -> Schema {
        let keep = self.varset.intersect(set);
        Schema {
            vars: keep.to_vec(),
            varset: keep,
        }
    }

    /// The schema of the natural join of `self` and `other`: `self`'s
    /// columns followed by `other`'s columns that are not already present.
    pub fn join(&self, other: &Schema) -> Schema {
        let mut vars = self.vars.clone();
        for &v in &other.vars {
            if !self.varset.contains(v) {
                vars.push(v);
            }
        }
        let varset = self.varset.union(other.varset);
        Schema { vars, varset }
    }
}

impl fmt::Debug for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.vars.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "x{}", v + 1)?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_lookup() {
        let s = Schema::of([0, 2, 5]);
        assert_eq!(s.arity(), 3);
        assert_eq!(s.position(2), Some(1));
        assert_eq!(s.position(3), None);
        assert!(s.contains(5));
        assert_eq!(s.varset(), VarSet::from_iter([0, 2, 5]));
    }

    #[test]
    fn duplicates_rejected() {
        assert!(Schema::new(vec![0, 1, 0]).is_err());
    }

    #[test]
    fn positions_of() {
        let s = Schema::of([3, 1, 2]);
        assert_eq!(s.positions_of(&[2, 3]).unwrap(), vec![2, 0]);
        assert!(s.positions_of(&[4]).is_err());
        assert_eq!(
            s.positions_of_set(VarSet::from_iter([1, 3])).unwrap(),
            vec![1, 0]
        );
    }

    #[test]
    fn project_and_join() {
        let s = Schema::of([3, 1, 2]);
        let p = s.project(VarSet::from_iter([2, 3, 7]));
        assert_eq!(p.vars(), &[2, 3]);

        let t = Schema::of([2, 4]);
        let j = s.join(&t);
        assert_eq!(j.vars(), &[3, 1, 2, 4]);
        assert_eq!(j.varset(), VarSet::from_iter([1, 2, 3, 4]));
    }

    #[test]
    fn display() {
        let s = Schema::of([0, 2]);
        assert_eq!(s.to_string(), "(x1,x3)");
        assert_eq!(Schema::empty().to_string(), "()");
    }
}
