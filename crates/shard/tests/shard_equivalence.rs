//! Property test: sharded answering is *exactly* unsharded answering.
//!
//! Across randomized databases, shard counts `k ∈ {1, 2, 3, 7}` and
//! zipf-skewed multi-tuple request batches, a [`ShardedIndex`] must answer
//! bit-for-bit identically to the single [`CqapIndex`] built over the
//! whole database — the acceptance bar for the hash-partition invariants
//! of `cqap_shard::partition`.

use cqap_common::Tuple;
use cqap_decomp::families::pmtds_3reach_fig1;
use cqap_panda::CqapIndex;
use cqap_query::workload::{graph_pair_requests, zipf_multi_requests, Graph};
use cqap_query::AccessRequest;
use cqap_shard::ShardedIndex;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Randomized database + every shard count: single-binding requests
    /// and zipf multi-tuple batches answer identically to the reference.
    #[test]
    fn sharded_matches_unsharded(seed in 0u64..10_000, edges in 60usize..200) {
        let (cqap, pmtds) = pmtds_3reach_fig1().unwrap();
        let graph = Graph::random(40, edges, seed);
        let db = graph.as_path_database(3);
        let reference = CqapIndex::build(&cqap, &db, &pmtds).unwrap();

        for k in [1usize, 2, 3, 7] {
            let sharded = ShardedIndex::build(&cqap, &db, &pmtds, k).unwrap();
            prop_assert_eq!(sharded.num_shards(), k);

            // Single-binding requests: the routed fast path.
            for (u, v) in graph_pair_requests(&graph, 12, seed ^ 0x5eed) {
                let request = AccessRequest::single(cqap.access(), &[u, v]).unwrap();
                prop_assert_eq!(
                    sharded.answer(&request).unwrap(),
                    reference.answer(&request).unwrap(),
                    "k = {}, request ({}, {})", k, u, v
                );
            }

            // Zipf multi-tuple batches: the scatter/union path.
            for tuples in zipf_multi_requests(&graph, 6, 5, 1.1, seed ^ 0x21f) {
                let tuples: Vec<Tuple> =
                    tuples.into_iter().map(|(u, v)| Tuple::pair(u, v)).collect();
                let request = AccessRequest::new(cqap.access(), tuples).unwrap();
                prop_assert_eq!(
                    sharded.answer(&request).unwrap(),
                    reference.answer(&request).unwrap(),
                    "k = {}", k
                );
            }
        }
    }
}
