//! Property test: sharded answering is *exactly* unsharded answering.
//!
//! Across randomized databases, shard counts `k ∈ {1, 2, 3, 7}` and
//! zipf-skewed multi-tuple request batches, a [`ShardedIndex`] must answer
//! bit-for-bit identically to the single [`CqapIndex`] built over the
//! whole database — the acceptance bar for the hash-partition invariants
//! of `cqap_shard::partition`.

use cqap_common::Tuple;
use cqap_decomp::families::pmtds_3reach_fig1;
use cqap_delta::{ApplyDelta, DeltaBatch};
use cqap_panda::CqapIndex;
use cqap_query::workload::{graph_pair_requests, zipf_multi_requests, Graph};
use cqap_query::AccessRequest;
use cqap_shard::{ShardSpec, ShardedIndex};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Randomized database + every shard count: single-binding requests
    /// and zipf multi-tuple batches answer identically to the reference.
    #[test]
    fn sharded_matches_unsharded(seed in 0u64..10_000, edges in 60usize..200) {
        let (cqap, pmtds) = pmtds_3reach_fig1().unwrap();
        let graph = Graph::random(40, edges, seed);
        let db = graph.as_path_database(3);
        let reference = CqapIndex::build(&cqap, &db, &pmtds).unwrap();

        for k in [1usize, 2, 3, 7] {
            let sharded = ShardedIndex::build(&cqap, &db, &pmtds, k).unwrap();
            prop_assert_eq!(sharded.num_shards(), k);

            // Single-binding requests: the routed fast path.
            for (u, v) in graph_pair_requests(&graph, 12, seed ^ 0x5eed) {
                let request = AccessRequest::single(cqap.access(), &[u, v]).unwrap();
                prop_assert_eq!(
                    sharded.answer(&request).unwrap(),
                    reference.answer(&request).unwrap(),
                    "k = {}, request ({}, {})", k, u, v
                );
            }

            // Zipf multi-tuple batches: the scatter/union path.
            for tuples in zipf_multi_requests(&graph, 6, 5, 1.1, seed ^ 0x21f) {
                let tuples: Vec<Tuple> =
                    tuples.into_iter().map(|(u, v)| Tuple::pair(u, v)).collect();
                let request = AccessRequest::new(cqap.access(), tuples).unwrap();
                prop_assert_eq!(
                    sharded.answer(&request).unwrap(),
                    reference.answer(&request).unwrap(),
                    "k = {}", k
                );
            }
        }
    }

    /// Deltas routed through the [`ShardSpec`] contract: for every shard
    /// count the incrementally maintained sharded deployment answers
    /// identically to an incrementally maintained unsharded index (which
    /// `delta_equivalence.rs` separately pins to a full rebuild).
    #[test]
    fn sharded_deltas_match_unsharded_incremental(seed in 0u64..10_000, edges in 60usize..180) {
        let (cqap, pmtds) = pmtds_3reach_fig1().unwrap();
        let graph = Graph::random(40, edges, seed);
        let db = graph.as_path_database(3);

        let base = 30_000 + (seed % 83) * 10;
        let mut requests: Vec<AccessRequest> = graph_pair_requests(&graph, 10, seed ^ 0xabc)
            .into_iter()
            .map(|(u, v)| AccessRequest::single(cqap.access(), &[u, v]).unwrap())
            .collect();
        // Crosses the inserted chain — only answerable after the delta.
        requests.push(
            AccessRequest::single(cqap.access(), &[base, base + db.num_relations() as u64])
                .unwrap(),
        );

        // One batch: a fresh chain through every relation plus scattered
        // deletes, exactly the round-0 shape of the delta proptests.
        let mut batch = DeltaBatch::new();
        for (i, rel) in db.relations().iter().enumerate() {
            let i = i as u64;
            batch = batch.insert(rel.name(), vec![Tuple::pair(base + i, base + i + 1)]);
            let victims: Vec<Tuple> = rel
                .tuples()
                .iter()
                .skip(seed as usize % 3)
                .step_by(7)
                .take(3)
                .cloned()
                .collect();
            batch = batch.delete(rel.name(), victims);
        }

        let mut reference = CqapIndex::build(&cqap, &db, &pmtds).unwrap();
        reference.apply_delta(&batch).unwrap();

        for k in [1usize, 2, 3, 7] {
            let mut sharded = ShardedIndex::build(&cqap, &db, &pmtds, k).unwrap();
            sharded.apply_delta(&batch).unwrap();
            for request in &requests {
                prop_assert_eq!(
                    sharded.answer(request).unwrap(),
                    reference.answer(request).unwrap(),
                    "k = {}", k
                );
            }
        }
    }

    /// The delta-routing contract itself: tuples of a relation that
    /// mentions the routing variable land on exactly their hash shard,
    /// while ops on replicated relations appear verbatim in *every*
    /// per-shard batch.
    #[test]
    fn partition_delta_routes_and_replicates(seed in 0u64..10_000, edges in 40usize..120) {
        let (cqap, _) = pmtds_3reach_fig1().unwrap();
        let graph = Graph::random(30, edges, seed);
        let db = graph.as_path_database(3);
        let routed = db.relations()[0].name().to_string();
        let replicated = db.relations()[1].name().to_string();

        let inserts: Vec<Tuple> = (0..12u64)
            .map(|i| Tuple::pair(40_000 + seed + i, 40_000 + seed + i + 1))
            .collect();
        let deletes: Vec<Tuple> = db.relations()[1].tuples().iter().take(4).cloned().collect();
        let batch = DeltaBatch::new()
            .insert(routed.clone(), inserts.clone())
            .delete(replicated.clone(), deletes.clone());

        for k in [2usize, 3, 7] {
            let spec = ShardSpec::new(&cqap, k).unwrap();
            let parts = spec.partition_delta(&batch, &db).unwrap();
            prop_assert_eq!(parts.len(), k);

            for t in &inserts {
                let home = spec.shard_of_value(t.get(0));
                for (shard, part) in parts.iter().enumerate() {
                    let present = part.ops().iter().any(|(name, _, tuples)| {
                        name == &routed && tuples.contains(t)
                    });
                    prop_assert_eq!(
                        present,
                        shard == home,
                        "k = {}: routed tuple {:?} misplaced on shard {}", k, t, shard
                    );
                }
            }
            for part in &parts {
                let replica: Vec<&Tuple> = part
                    .ops()
                    .iter()
                    .filter(|(name, _, _)| name == &replicated)
                    .flat_map(|(_, _, tuples)| tuples)
                    .collect();
                prop_assert_eq!(
                    &replica,
                    &deletes.iter().collect::<Vec<_>>(),
                    "k = {}: replicated op not mirrored on every shard", k
                );
            }
        }

        // `k = 1` degenerates to replication everywhere: one shard, every op.
        let spec = ShardSpec::new(&cqap, 1).unwrap();
        let parts = spec.partition_delta(&batch, &db).unwrap();
        prop_assert_eq!(parts.len(), 1);
        prop_assert_eq!(parts[0].num_tuples(), batch.num_tuples());
    }
}
