//! # cqap-shard
//!
//! Hash-sharded serving: partitioned CQAP index shards behind a
//! scatter-gather router.
//!
//! A single [`CqapIndex`](cqap_panda::CqapIndex) caps both preprocessing
//! parallelism and the dataset one working set can hold. This crate makes
//! the roadmap's "a shard is one `Arc<index>` + its runtime" seam real:
//!
//! * [`ShardSpec`] — the partition contract: requests route by the hash of
//!   their *routing variable* (the minimum access variable); relations
//!   mentioning the routing variable are hash-partitioned by it, all
//!   others replicated. These invariants make per-shard answers *exactly*
//!   the unsharded answers (see the [`partition`] module docs for the
//!   argument).
//! * [`ShardedIndex`] — `k` independently and concurrently built
//!   `CqapIndex` shards; itself a [`BatchAnswer`](cqap_serve::BatchAnswer)
//!   implementor, so it drops into every generic serving surface.
//! * [`ShardRouter`] — one [`ServeRuntime`](cqap_serve::ServeRuntime) per
//!   shard; single-binding requests route to exactly one shard,
//!   multi-binding requests scatter-gather, and the router is again a
//!   `BatchAnswer` — wrap it in a top-level `ServeRuntime` and the whole
//!   existing surface (LRU cache, `serve_batch`, `submit`/`Ticket`,
//!   benches, examples) serves over shards unchanged.
//!
//! ## Worked example: shards end to end
//!
//! ```
//! use std::sync::Arc;
//! use cqap_decomp::families::pmtds_3reach_fig1;
//! use cqap_panda::CqapIndex;
//! use cqap_query::workload::{zipf_pair_requests, Graph};
//! use cqap_query::AccessRequest;
//! use cqap_serve::{BatchAnswer, ServeConfig, ServeRuntime};
//! use cqap_shard::{ShardRouter, ShardedIndex};
//!
//! let (cqap, pmtds) = pmtds_3reach_fig1().unwrap();
//! let graph = Graph::random(60, 260, 42);
//! let db = graph.as_path_database(3);
//!
//! // Preprocessing: 4 shards built concurrently from hash partitions.
//! let sharded = ShardedIndex::build(&cqap, &db, &pmtds, 4).unwrap();
//! assert_eq!(sharded.num_shards(), 4);
//!
//! // Serving: per-shard runtimes behind a router, behind a front cache.
//! let runtime = ServeRuntime::with_config(
//!     Arc::new(ShardRouter::new(sharded)),
//!     ServeConfig { threads: 2, cache_capacity: 256, ..ServeConfig::default() },
//! );
//! let requests: Vec<AccessRequest> = zipf_pair_requests(&graph, 300, 1.1, 7)
//!     .into_iter()
//!     .map(|(u, v)| AccessRequest::single(cqap.access(), &[u, v]).unwrap())
//!     .collect();
//! let answers = runtime.serve_batch(&requests).unwrap();
//!
//! // Sharded answers are exactly the unsharded answers (the router hands
//! // out Arc<Relation>, the front runtime wraps once more).
//! let reference = CqapIndex::build(&cqap, &db, &pmtds).unwrap();
//! assert_eq!(answers.len(), requests.len());
//! for (request, answer) in requests.iter().zip(&answers) {
//!     assert_eq!(***answer, reference.answer(request).unwrap());
//! }
//! ```

#![deny(missing_docs)]

pub mod index;
pub mod partition;
pub mod router;

pub use index::ShardedIndex;
pub use partition::ShardSpec;
pub use router::{ShardRouter, ShardRouterConfig};
