//! [`ShardedIndex`]: `k` independently built [`CqapIndex`] shards over a
//! hash-partitioned database.
//!
//! Preprocessing is embarrassingly parallel across shards — each shard
//! runs the full framework pipeline (full join of *its* partition, S-view
//! materialization, Online-Yannakakis preprocessing) on the existing
//! work-stealing pool — and each shard's working set covers only its hash
//! class of the routing variable, which is the "datasets larger than one
//! index" half of the roadmap item.

use std::sync::{mpsc, Arc};

use cqap_common::{CqapError, Result};
use cqap_decomp::Pmtd;
use cqap_delta::{ApplyDelta, DeltaBatch, DeltaStats};
use cqap_panda::CqapIndex;
use cqap_query::{AccessRequest, Cqap};
use cqap_relation::{Database, Relation};
use cqap_serve::{default_threads, BatchAnswer, WorkStealingPool};

use crate::partition::ShardSpec;

/// A hash-sharded CQAP index: the partition contract plus one
/// `Arc`-shared [`CqapIndex`] per shard.
///
/// Implements [`BatchAnswer`] (splitting each request across shards and
/// unioning the per-shard answers), so a `ShardedIndex` drops into every
/// generic serving surface — `ServeRuntime`, `answer_batch_parallel`, the
/// benches — exactly like a single `CqapIndex`. For serving production
/// traffic prefer [`ShardRouter`](crate::ShardRouter), which puts a full
/// `ServeRuntime` (pool + cache) in front of every shard.
pub struct ShardedIndex {
    spec: ShardSpec,
    shards: Vec<Arc<CqapIndex>>,
}

impl ShardedIndex {
    /// Partitions `db` under the [`ShardSpec`] contract and builds the `k`
    /// shard indexes concurrently on a fresh work-stealing pool sized
    /// `min(k, available parallelism)`.
    ///
    /// # Errors
    /// Fails if the spec is invalid (`shards == 0`) or any shard build
    /// fails (lowest shard id wins).
    pub fn build(cqap: &Cqap, db: &Database, pmtds: &[Pmtd], shards: usize) -> Result<Self> {
        let pool = WorkStealingPool::new(shards.max(1).min(default_threads()));
        ShardedIndex::build_with_pool(cqap, db, pmtds, shards, &pool)
    }

    /// [`ShardedIndex::build`] on a caller-provided pool (so several
    /// sharded indexes can share one set of build workers).
    ///
    /// # Errors
    /// Fails if the spec is invalid (`shards == 0`) or any shard build
    /// fails (lowest shard id wins).
    pub fn build_with_pool(
        cqap: &Cqap,
        db: &Database,
        pmtds: &[Pmtd],
        shards: usize,
        pool: &WorkStealingPool,
    ) -> Result<Self> {
        let spec = ShardSpec::new(cqap, shards)?;
        let partitions = spec.partition_database(db)?;
        let (tx, rx) = mpsc::channel::<(usize, Result<CqapIndex>)>();
        let expected = partitions.len();
        for (shard, partition) in partitions.into_iter().enumerate() {
            let tx = tx.clone();
            let cqap = cqap.clone();
            let pmtds = pmtds.to_vec();
            pool.execute(move || {
                let built = CqapIndex::build(&cqap, &partition, &pmtds);
                let _ = tx.send((shard, built));
            });
        }
        drop(tx);

        let mut built: Vec<Option<Arc<CqapIndex>>> = (0..expected).map(|_| None).collect();
        let mut first_error: Option<(usize, CqapError)> = None;
        for _ in 0..expected {
            let (shard, result) = rx
                .recv()
                .map_err(|_| CqapError::Other("shard build worker disappeared".into()))?;
            match result {
                Ok(index) => built[shard] = Some(Arc::new(index)),
                Err(error) => {
                    if first_error.as_ref().is_none_or(|(s, _)| shard < *s) {
                        first_error = Some((shard, error));
                    }
                }
            }
        }
        if let Some((_, error)) = first_error {
            return Err(error);
        }
        Ok(ShardedIndex {
            spec,
            shards: built
                .into_iter()
                .map(|s| s.expect("every shard built or errored"))
                .collect(),
        })
    }

    /// The partition contract.
    pub fn spec(&self) -> &ShardSpec {
        &self.spec
    }

    /// Number of shards `k`.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The per-shard indexes, in shard order.
    pub fn shards(&self) -> &[Arc<CqapIndex>] {
        &self.shards
    }

    /// Attaches a metrics sink to every shard's delta maintenance, so a
    /// sharded [`ApplyDelta::apply_delta`] records apply latency and
    /// net-op counters. Like `apply_delta` itself, this needs exclusive
    /// ownership of every shard.
    ///
    /// # Errors
    /// Fails if any shard `Arc` is shared (serving handles must be
    /// dropped before mutating).
    pub fn set_metrics_sink(&mut self, sink: cqap_obs::MetricsSink) -> Result<()> {
        for shard in &mut self.shards {
            let index = Arc::get_mut(shard).ok_or_else(|| {
                CqapError::Other(
                    "cannot attach a metrics sink: a shard index is shared \
                     (serving handles must be dropped before mutating)"
                        .into(),
                )
            })?;
            index.set_metrics_sink(sink.clone());
        }
        Ok(())
    }

    /// Total intrinsic space across shards (sum of per-shard S-view
    /// sizes). Views that project away the routing variable overlap
    /// between shards, so this can exceed the unsharded index's
    /// [`CqapIndex::space_used`] — the price of partitioned builds.
    pub fn space_used(&self) -> usize {
        self.shards.iter().map(|s| s.space_used()).sum()
    }

    /// Answers an access request: routes each binding to the shard owning
    /// its routing value, answers the per-shard sub-requests, and unions
    /// the answers in sub-request order.
    ///
    /// By the [`ShardSpec`] invariants this is *exactly equal* to the
    /// unsharded [`CqapIndex::answer`] on the whole database.
    ///
    /// # Errors
    /// Propagates the first failing shard's error.
    pub fn answer(&self, request: &AccessRequest) -> Result<Relation> {
        let mut parts = self.spec.split_request(request)?.into_iter();
        let (shard, sub) = parts.next().expect("split_request is never empty");
        let mut answer = self.shards[shard].answer(&sub)?;
        for (shard, sub) in parts {
            // Both sides are owned: move the larger, insert the smaller.
            answer = answer.union_with(self.shards[shard].answer(&sub)?)?;
        }
        Ok(answer)
    }
}

/// Incremental maintenance of a sharded deployment: the batch is routed
/// through [`ShardSpec::partition_delta`] — delta tuples partition (or
/// replicate) exactly like the base data did — and each shard absorbs its
/// per-shard batch through its own [`ApplyDelta`] seam, keeping the
/// partition invariants (and hence exact sharded answering) intact.
///
/// The returned [`DeltaStats`] sum the **shard-local** net effects: a
/// routed relation's changes count once in total, while a replicated
/// relation's changes count once per shard (each shard really did mutate
/// its replica). Callers comparing against an unsharded maintainer should
/// compare answers, not raw counts, whenever replicated relations are in
/// play.
impl ApplyDelta for ShardedIndex {
    fn apply_delta(&mut self, batch: &DeltaBatch) -> Result<DeltaStats> {
        let parts = {
            let db = self.shards[0].database();
            self.spec.partition_delta(batch, db)?
        };
        let mut stats = DeltaStats::default();
        for (shard, part) in self.shards.iter_mut().zip(parts) {
            let index = Arc::get_mut(shard).ok_or_else(|| {
                CqapError::Other(
                    "cannot apply a delta: a shard index is shared (serving \
                     handles must be dropped before mutating)"
                        .into(),
                )
            })?;
            stats.merge(index.apply_delta(&part)?);
        }
        Ok(stats)
    }
}

/// The sharded index serves through the same one-trait API as every other
/// structure, which is what lets runtimes, benches and examples work over
/// shards unchanged. It joins the coalescing protocol: a merged
/// multi-tuple probe is exactly the scatter-gather path, and per-request
/// answers are recovered by semijoining the gathered union.
impl BatchAnswer for ShardedIndex {
    type Request = AccessRequest;
    type Answer = Relation;

    fn answer_one(&self, request: &Self::Request) -> Result<Self::Answer> {
        self.answer(request)
    }

    fn coalesce_class(request: &Self::Request) -> Option<u64> {
        cqap_serve::batch::access_request_class(request)
    }

    fn coalesce(requests: &[Self::Request]) -> Result<Self::Request> {
        cqap_serve::batch::coalesce_access_requests(requests)
    }

    fn extract(&self, bulk: &Self::Answer, request: &Self::Request) -> Result<Self::Answer> {
        cqap_serve::batch::extract_access_answer(bulk, request)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqap_common::Tuple;
    use cqap_decomp::families as pf;
    use cqap_query::workload::{graph_pair_requests, zipf_multi_requests, Graph};

    fn fixture() -> (Cqap, Vec<Pmtd>, Graph, Database, CqapIndex) {
        let (cqap, pmtds) = pf::pmtds_3reach_fig1().unwrap();
        let g = Graph::skewed(50, 220, 4, 30, 23);
        let db = g.as_path_database(3);
        let reference = CqapIndex::build(&cqap, &db, &pmtds).unwrap();
        (cqap, pmtds, g, db, reference)
    }

    #[test]
    fn sharded_answers_equal_unsharded_for_singles() {
        let (cqap, pmtds, g, db, reference) = fixture();
        for k in [1, 2, 3, 7] {
            let sharded = ShardedIndex::build(&cqap, &db, &pmtds, k).unwrap();
            assert_eq!(sharded.num_shards(), k);
            for (u, v) in graph_pair_requests(&g, 40, 29) {
                let request = AccessRequest::single(cqap.access(), &[u, v]).unwrap();
                assert_eq!(
                    sharded.answer(&request).unwrap(),
                    reference.answer(&request).unwrap(),
                    "k = {k}, request ({u},{v})"
                );
            }
        }
    }

    #[test]
    fn sharded_answers_equal_unsharded_for_multi_tuple_batches() {
        let (cqap, pmtds, g, db, reference) = fixture();
        let sharded = ShardedIndex::build(&cqap, &db, &pmtds, 4).unwrap();
        for tuples in zipf_multi_requests(&g, 25, 6, 1.1, 31) {
            let tuples: Vec<Tuple> = tuples.into_iter().map(|(u, v)| Tuple::pair(u, v)).collect();
            let request = AccessRequest::new(cqap.access(), tuples).unwrap();
            assert_eq!(
                sharded.answer(&request).unwrap(),
                reference.answer(&request).unwrap()
            );
        }
    }

    #[test]
    fn empty_request_answers_empty() {
        let (cqap, pmtds, _, db, reference) = fixture();
        let sharded = ShardedIndex::build(&cqap, &db, &pmtds, 3).unwrap();
        let empty = AccessRequest::new(cqap.access(), Vec::new()).unwrap();
        assert_eq!(
            sharded.answer(&empty).unwrap(),
            reference.answer(&empty).unwrap()
        );
    }

    #[test]
    fn build_rejects_zero_shards_and_propagates_shard_errors() {
        let (cqap, pmtds, _, db, _) = fixture();
        assert!(ShardedIndex::build(&cqap, &db, &pmtds, 0).is_err());
        // A PMTD set for a different CQAP fails in every shard; the error
        // surfaces instead of hanging the build.
        let (cqap2, _) = pf::pmtds_2reach().unwrap();
        let g2 = Graph::random(20, 60, 3);
        let db2 = g2.as_path_database(2);
        assert!(ShardedIndex::build(&cqap2, &db2, &pmtds, 3).is_err());
    }

    #[test]
    fn shared_pool_builds_match_dedicated_pool_builds() {
        let (cqap, pmtds, g, db, _) = fixture();
        let pool = WorkStealingPool::new(2);
        let a = ShardedIndex::build_with_pool(&cqap, &db, &pmtds, 3, &pool).unwrap();
        let b = ShardedIndex::build(&cqap, &db, &pmtds, 3).unwrap();
        assert_eq!(a.space_used(), b.space_used());
        for (u, v) in graph_pair_requests(&g, 10, 41) {
            let request = AccessRequest::single(cqap.access(), &[u, v]).unwrap();
            assert_eq!(a.answer(&request).unwrap(), b.answer(&request).unwrap());
        }
    }
}
