//! Hash partitioning of databases and access requests by routing variable.
//!
//! [`ShardSpec`] fixes the three invariants that make sharded answering
//! exact (they are proved as a unit — weaken any one and per-shard answers
//! diverge from the unsharded index):
//!
//! 1. **Routing variable.** The routing variable is the *minimum* access
//!    variable of the CQAP (deterministic, so every component — data
//!    partitioner, request router, workload generators — agrees without
//!    coordination). A CQAP with an empty access pattern degenerates to a
//!    single effective shard.
//! 2. **Request placement.** A request binding belongs to shard
//!    `hash(v) mod k` where `v` is its routing-variable value — the same
//!    [`shard_of_key`] the workload helpers use. Nothing else about the
//!    binding influences placement.
//! 3. **Data placement.** A relation that *mentions* the routing variable
//!    is partitioned by the hash of its routing-variable column; every
//!    other relation is replicated to all shards.
//!
//! Together these guarantee that shard `i` holds **every** tuple of every
//! relation that can participate in a join result whose routing value
//! hashes to `i`: relations mentioning the routing variable contribute
//! only tuples in the shard's hash class (and all of those are present),
//! and all remaining relations are complete. Hence, for any sub-request
//! whose bindings all hash to `i`,
//! `π_head(join(D_i) ⋉ Q_A) = π_head(join(D) ⋉ Q_A)` — the shard's answer
//! is exactly the unsharded answer for those bindings.

use cqap_common::{CqapError, Result, Tuple, Val, Var};
use cqap_delta::DeltaBatch;
use cqap_query::workload::shard_of_key;
use cqap_query::{AccessRequest, Cqap};
use cqap_relation::{Database, Relation};

/// The partition contract of a sharded deployment: shard count plus
/// routing variable. Cheap to copy and embedded in every sharded
/// structure, so the data partitioner and the request router can never
/// disagree.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardSpec {
    shards: usize,
    /// The routing variable (`None` for an empty access pattern, which
    /// pins everything to shard 0).
    routing_var: Option<Var>,
    /// Position of the routing variable inside a request tuple (access
    /// variables are bound in ascending order).
    routing_pos: usize,
}

impl ShardSpec {
    /// The spec for a CQAP: routes by the minimum access variable.
    ///
    /// # Errors
    /// Fails if `shards` is zero.
    pub fn new(cqap: &Cqap, shards: usize) -> Result<Self> {
        ShardSpec::for_access(cqap.access().iter().collect::<Vec<_>>(), shards)
    }

    /// The spec for an explicit access-variable list (sorted internally:
    /// request tuples bind access variables in ascending order, so the
    /// routing position is computed against that order).
    ///
    /// # Errors
    /// Fails if `shards` is zero.
    pub fn for_access(access_vars: impl AsRef<[Var]>, shards: usize) -> Result<Self> {
        if shards == 0 {
            return Err(CqapError::InvalidQuery(
                "a sharded index needs at least one shard".into(),
            ));
        }
        let mut access = access_vars.as_ref().to_vec();
        access.sort_unstable();
        access.dedup();
        let routing_var = access.first().copied();
        Ok(ShardSpec {
            shards,
            routing_var,
            // The routing variable is the minimum, i.e. the first value of
            // every (ascending) request binding.
            routing_pos: 0,
        })
    }

    /// Number of shards `k`.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The routing variable, if the access pattern is non-empty.
    pub fn routing_var(&self) -> Option<Var> {
        self.routing_var
    }

    /// The shard owning a routing-variable value.
    pub fn shard_of_value(&self, value: Val) -> usize {
        shard_of_key(value, self.shards)
    }

    /// The shard owning one request binding (a tuple over the access
    /// variables in ascending order).
    pub fn shard_of_binding(&self, binding: &Tuple) -> usize {
        if self.routing_var.is_none() || binding.arity() == 0 {
            return 0;
        }
        self.shard_of_value(binding.get(self.routing_pos))
    }

    /// Partitions a database into the `k` per-shard databases: relations
    /// mentioning the routing variable are split by its hash, all others
    /// are replicated (invariant 3 above).
    ///
    /// # Errors
    /// Propagates relation-construction failures (cannot happen for
    /// schema-consistent inputs).
    pub fn partition_database(&self, db: &Database) -> Result<Vec<Database>> {
        let mut out: Vec<Database> = (0..self.shards).map(|_| Database::new()).collect();
        for relation in db.relations() {
            let split_pos = self
                .routing_var
                .filter(|_| self.shards > 1)
                .and_then(|r| relation.schema().position(r));
            match split_pos {
                Some(position) => {
                    let mut buckets: Vec<Vec<Tuple>> =
                        (0..self.shards).map(|_| Vec::new()).collect();
                    for tuple in relation.iter() {
                        buckets[self.shard_of_value(tuple.get(position))].push(tuple.clone());
                    }
                    for (shard, bucket) in buckets.into_iter().enumerate() {
                        out[shard].add_relation(Relation::from_tuples(
                            relation.name().to_string(),
                            relation.schema().clone(),
                            bucket,
                        )?)?;
                    }
                }
                None => {
                    for shard in &mut out {
                        shard.add_relation(relation.clone())?;
                    }
                }
            }
        }
        Ok(out)
    }

    /// Routes a delta batch under the **same data-placement invariant** as
    /// [`ShardSpec::partition_database`]: an operation on a relation that
    /// mentions the routing variable is split by the hash of each tuple's
    /// routing column, while operations on every other relation are
    /// replicated to all shards. Operation order is preserved within each
    /// per-shard batch, so per-shard net effects replay exactly like the
    /// global batch would — applying the routed batches to the shard
    /// partitions yields precisely the partitions of the post-delta
    /// database (invariant 3 keeps holding under updates).
    ///
    /// `db` supplies the relation schemas; any shard's partition works,
    /// since schemas are identical across shards. Empty per-shard tuple
    /// lists are omitted, so untouched shards receive an empty batch.
    ///
    /// # Errors
    /// Fails if an operation names a relation `db` does not store, or
    /// carries a tuple whose arity differs from the relation's schema.
    pub fn partition_delta(&self, batch: &DeltaBatch, db: &Database) -> Result<Vec<DeltaBatch>> {
        let mut out: Vec<DeltaBatch> = (0..self.shards).map(|_| DeltaBatch::new()).collect();
        for (name, op, tuples) in batch.ops() {
            let relation = db.relation_or_err(name)?;
            let arity = relation.schema().arity();
            if let Some(bad) = tuples.iter().find(|t| t.arity() != arity) {
                return Err(CqapError::SchemaMismatch {
                    expected: format!("arity {arity} for relation {name}"),
                    found: format!("delta tuple of arity {}", bad.arity()),
                });
            }
            let split_pos = self
                .routing_var
                .filter(|_| self.shards > 1)
                .and_then(|r| relation.schema().position(r));
            match split_pos {
                Some(position) => {
                    let mut buckets: Vec<Vec<Tuple>> =
                        (0..self.shards).map(|_| Vec::new()).collect();
                    for tuple in tuples {
                        buckets[self.shard_of_value(tuple.get(position))].push(tuple.clone());
                    }
                    for (shard, bucket) in buckets.into_iter().enumerate() {
                        if !bucket.is_empty() {
                            out[shard].push(name.clone(), *op, bucket);
                        }
                    }
                }
                None => {
                    for shard in &mut out {
                        shard.push(name.clone(), *op, tuples.clone());
                    }
                }
            }
        }
        Ok(out)
    }

    /// Splits a request into per-shard sub-requests, in order of first
    /// appearance of each shard in the request's tuple list (so unioning
    /// the per-shard answers in the returned order is deterministic).
    ///
    /// A single-binding request — the common serving case — maps to
    /// exactly one `(shard, request)` pair without splitting; so does an
    /// empty request or an empty access pattern (shard 0).
    ///
    /// # Errors
    /// Propagates request reconstruction failures (cannot happen: arity
    /// was validated when `request` was built).
    pub fn split_request(&self, request: &AccessRequest) -> Result<Vec<(usize, AccessRequest)>> {
        if self.shards == 1 || self.routing_var.is_none() || request.tuples().len() <= 1 {
            let shard = request
                .tuples()
                .first()
                .map_or(0, |t| self.shard_of_binding(t));
            return Ok(vec![(shard, request.clone())]);
        }
        let mut order: Vec<usize> = Vec::new();
        let mut buckets: Vec<Vec<Tuple>> = (0..self.shards).map(|_| Vec::new()).collect();
        for tuple in request.tuples() {
            let shard = self.shard_of_binding(tuple);
            if buckets[shard].is_empty() {
                order.push(shard);
            }
            buckets[shard].push(tuple.clone());
        }
        order
            .into_iter()
            .map(|shard| {
                let tuples = std::mem::take(&mut buckets[shard]);
                Ok((shard, AccessRequest::new(request.access(), tuples)?))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqap_common::VarSet;
    use cqap_query::workload::Graph;

    fn spec3() -> ShardSpec {
        ShardSpec::for_access([0usize, 3], 3).unwrap()
    }

    #[test]
    fn routing_variable_is_min_access_var() {
        let spec = spec3();
        assert_eq!(spec.routing_var(), Some(0));
        assert_eq!(spec.shards(), 3);
        assert!(ShardSpec::for_access([0usize, 3], 0).is_err());
    }

    #[test]
    fn empty_access_routes_everything_to_shard_zero() {
        let spec = ShardSpec::for_access([] as [Var; 0], 4).unwrap();
        assert_eq!(spec.routing_var(), None);
        assert_eq!(spec.shard_of_binding(&Tuple::empty()), 0);
        let req = AccessRequest::new(VarSet::EMPTY, vec![Tuple::empty()]).unwrap();
        let parts = spec.split_request(&req).unwrap();
        assert_eq!(parts.len(), 1);
        assert_eq!(parts[0].0, 0);
    }

    #[test]
    fn database_partition_splits_routing_relations_and_replicates_the_rest() {
        let g = Graph::random(60, 300, 11);
        let db = g.as_path_database(3); // R1(x0,x1), R2(x1,x2), R3(x2,x3)
        let spec = spec3(); // routing var x0: only R1 mentions it
        let parts = spec.partition_database(&db).unwrap();
        assert_eq!(parts.len(), 3);

        // R1 is partitioned: shard sizes sum to |R1| and every tuple sits
        // on the shard owning its x0 hash.
        let total_r1: usize = parts
            .iter()
            .map(|p| p.relation("R1").unwrap().len())
            .sum();
        assert_eq!(total_r1, db.relation("R1").unwrap().len());
        for (shard, part) in parts.iter().enumerate() {
            for tuple in part.relation("R1").unwrap().iter() {
                assert_eq!(spec.shard_of_value(tuple.get(0)), shard);
            }
            // R2 / R3 do not mention x0: replicated bit-for-bit.
            assert_eq!(part.relation("R2").unwrap(), db.relation("R2").unwrap());
            assert_eq!(part.relation("R3").unwrap(), db.relation("R3").unwrap());
        }
    }

    #[test]
    fn single_shard_partition_is_the_identity() {
        let g = Graph::random(40, 150, 13);
        let db = g.as_path_database(3);
        let spec = ShardSpec::for_access([0usize, 3], 1).unwrap();
        let parts = spec.partition_database(&db).unwrap();
        assert_eq!(parts.len(), 1);
        for relation in db.relations() {
            assert_eq!(parts[0].relation(relation.name()).unwrap(), relation);
        }
    }

    #[test]
    fn request_split_groups_by_shard_in_first_appearance_order() {
        let spec = spec3();
        let access = VarSet::from_iter([0, 3]);
        let tuples: Vec<Tuple> = (0..20).map(|i| Tuple::pair(i, i + 1)).collect();
        let request = AccessRequest::new(access, tuples.clone()).unwrap();
        let parts = spec.split_request(&request).unwrap();

        // Total bindings preserved; each sub-request homogeneous.
        let total: usize = parts.iter().map(|(_, r)| r.len()).sum();
        assert_eq!(total, 20);
        for (shard, sub) in &parts {
            assert!(sub
                .tuples()
                .iter()
                .all(|t| spec.shard_of_binding(t) == *shard));
        }
        // First-appearance order of shards.
        let expected_order: Vec<usize> = {
            let mut seen = Vec::new();
            for t in &tuples {
                let s = spec.shard_of_binding(t);
                if !seen.contains(&s) {
                    seen.push(s);
                }
            }
            seen
        };
        let got_order: Vec<usize> = parts.iter().map(|(s, _)| *s).collect();
        assert_eq!(got_order, expected_order);

        // A single-binding request routes to exactly one shard, unsplit.
        let single = AccessRequest::single(access, &[7, 9]).unwrap();
        let parts = spec.split_request(&single).unwrap();
        assert_eq!(parts.len(), 1);
        assert_eq!(parts[0].0, spec.shard_of_value(7));
        assert_eq!(parts[0].1, single);
    }
}
