//! [`ShardRouter`]: a scatter-gather front door over per-shard serving
//! runtimes.
//!
//! The router owns one [`ServeRuntime`] per shard — each with its own
//! work-stealing pool and `Arc`-valued LRU answer cache — and implements
//! [`BatchAnswer`] itself:
//!
//! * a **single-binding** request routes to exactly one shard (a hash of
//!   its routing value) and is served by that shard's runtime, hitting
//!   that shard's cache and in-flight dedup;
//! * a **multi-binding** request is split into per-shard sub-requests,
//!   *scattered* as concurrent submissions across the shard runtimes, and
//!   the per-shard answers are *gathered* and unioned, visiting shards in
//!   sub-request (first-appearance) order. Only the answer's *set
//!   contents* are guaranteed — relations are sets, and the union's
//!   internal tuple order depends on per-shard result sizes.
//!
//! Because the router is itself a `BatchAnswer`, the whole generic serving
//! surface — a top-level [`ServeRuntime`] with its own global cache,
//! `serve_batch`, `submit`/`Ticket`, the benches and examples — works over
//! shards unchanged.

use std::sync::Arc;
use std::time::Instant;

use cqap_common::Result;
use cqap_obs::{trace, MetricsSink, StageId, TraceStage};
use cqap_panda::CqapIndex;
use cqap_query::AccessRequest;
use cqap_relation::Relation;
use cqap_serve::{
    default_threads, AdmissionConfig, BatchAnswer, ServeConfig, ServeRuntime, ServeStats,
};

use crate::index::ShardedIndex;
use crate::partition::ShardSpec;

/// Configuration of the per-shard runtimes behind a [`ShardRouter`].
#[derive(Clone, Copy, Debug)]
pub struct ShardRouterConfig {
    /// Worker threads in each shard's pool. Zero means "auto": spread the
    /// machine's available parallelism evenly across shards (at least one
    /// thread each).
    pub threads_per_shard: usize,
    /// Capacity of each shard's LRU answer cache, in entries.
    pub cache_capacity: usize,
    /// Per-shard admission control, applied verbatim to every shard
    /// runtime (each shard gets its own gate of `max_pending` slots —
    /// the router-wide bound is `shards × max_pending`). `None` (the
    /// default) serves unbounded, as before.
    pub admission: Option<AdmissionConfig>,
    /// Per-shard degrade watermark (see `ServeConfig::degrade_watermark`);
    /// `None` disables degrade mode.
    pub degrade_watermark: Option<usize>,
}

impl Default for ShardRouterConfig {
    fn default() -> Self {
        ShardRouterConfig {
            threads_per_shard: 0,
            cache_capacity: 1_024,
            admission: None,
            degrade_watermark: None,
        }
    }
}

/// A scatter-gather router serving a [`ShardedIndex`] through one
/// [`ServeRuntime`] per shard.
pub struct ShardRouter {
    spec: ShardSpec,
    runtimes: Vec<ServeRuntime<CqapIndex>>,
    sink: MetricsSink,
}

impl ShardRouter {
    /// Routes over `index` with the default per-shard configuration.
    pub fn new(index: ShardedIndex) -> Self {
        ShardRouter::with_config(index, ShardRouterConfig::default())
    }

    /// Routes over `index`, with `config` applied to every shard runtime.
    pub fn with_config(index: ShardedIndex, config: ShardRouterConfig) -> Self {
        ShardRouter::with_metrics(index, config, MetricsSink::disabled())
    }

    /// Routes over `index`, recording into `sink`: every shard runtime
    /// shares the sink (their stage timings and pool gauges aggregate
    /// into one recorder), the router counts requests per shard for the
    /// load-balance skew view, and multi-shard gathers record the
    /// answer-union stage.
    pub fn with_metrics(index: ShardedIndex, config: ShardRouterConfig, sink: MetricsSink) -> Self {
        let spec = *index.spec();
        let threads = if config.threads_per_shard == 0 {
            (default_threads() / spec.shards().max(1)).max(1)
        } else {
            config.threads_per_shard
        };
        let runtimes = index
            .shards()
            .iter()
            .enumerate()
            .map(|(shard, index)| {
                // Each shard runtime records through a shard-labelled
                // clone of the shared sink, so a drained trace shows
                // which shard served each scatter-gather leg.
                ServeRuntime::with_metrics(
                    Arc::clone(index),
                    ServeConfig {
                        threads,
                        cache_capacity: config.cache_capacity,
                        admission: config.admission,
                        degrade_watermark: config.degrade_watermark,
                    },
                    sink.with_shard_label(shard as u16),
                )
            })
            .collect();
        ShardRouter {
            spec,
            runtimes,
            sink,
        }
    }

    /// The metrics sink this router (and every shard runtime) records
    /// into; disabled unless built with
    /// [`with_metrics`](Self::with_metrics).
    pub fn metrics(&self) -> &MetricsSink {
        &self.sink
    }

    /// The partition contract the router routes by.
    pub fn spec(&self) -> &ShardSpec {
        &self.spec
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.runtimes.len()
    }

    /// The per-shard runtimes, in shard order (for direct shard probing
    /// and per-shard cache warm-up).
    pub fn runtimes(&self) -> &[ServeRuntime<CqapIndex>] {
        &self.runtimes
    }

    /// Per-shard serving counters, in shard order — the load-balance view
    /// (hash skew shows up as uneven `served` counts here).
    pub fn shard_stats(&self) -> Vec<ServeStats> {
        self.runtimes.iter().map(ServeRuntime::stats).collect()
    }

    /// Fleet-wide counters: the field-wise sum of every shard's stats.
    pub fn stats(&self) -> ServeStats {
        self.shard_stats()
            .into_iter()
            .fold(ServeStats::default(), ServeStats::merge)
    }
}

impl BatchAnswer for ShardRouter {
    type Request = AccessRequest;
    /// `Arc` so the single-shard fast path hands the shard cache's answer
    /// through without a deep `Relation` clone.
    type Answer = Arc<Relation>;

    /// Scatter-gather one request across the shard runtimes.
    ///
    /// Runs under the caller's [`trace::current`] id (set by the serving
    /// worker that invoked this probe), so every scatter-gather leg
    /// submitted to a shard runtime shares the parent request's trace.
    fn answer_one(&self, request: &Self::Request) -> Result<Self::Answer> {
        let parent = trace::current();
        let mut parts = self.spec.split_request(request)?;
        if parts.len() == 1 {
            // Single-shard fast path (every single-binding request): one
            // submission, no union, no further copies — the sub-request is
            // the one split_request built, and the ticket's `Arc` is the
            // shard cache's own allocation.
            let (shard, sub) = parts.pop().expect("one part");
            self.sink.shard_served(shard);
            return self.runtimes[shard].submit_traced(sub, parent).wait();
        }
        // Scatter every sub-request before gathering any answer, so the
        // shards probe concurrently; union the parts in sub-request order.
        let tickets: Vec<_> = parts
            .into_iter()
            .map(|(shard, sub)| {
                self.sink.shard_served(shard);
                self.runtimes[shard].submit_traced(sub, parent)
            })
            .collect();
        let mut answer: Option<Relation> = None;
        let mut union_ns = 0u64;
        for ticket in tickets {
            let part = ticket.wait()?;
            // Only the union work is the gather stage; waiting on the
            // shard probes is their own backend-probe time.
            let timer = self.sink.start();
            let union_started = parent.is_sampled().then(Instant::now);
            answer = Some(match answer {
                None => part.as_ref().clone(),
                Some(acc) => acc.union(part.as_ref())?,
            });
            union_ns += timer.elapsed_ns().unwrap_or(0);
            if let Some(started) = union_started {
                self.sink
                    .trace_span(parent, TraceStage::AnswerUnion, started, Instant::now(), 0);
            }
        }
        self.sink.observe_ns(StageId::AnswerUnion, union_ns);
        Ok(Arc::new(answer.expect("split_request is never empty")))
    }

    fn coalesce_class(request: &Self::Request) -> Option<u64> {
        cqap_serve::batch::access_request_class(request)
    }

    fn coalesce(requests: &[Self::Request]) -> Result<Self::Request> {
        cqap_serve::batch::coalesce_access_requests(requests)
    }

    /// A coalesced probe is one scatter-gather; each member's answer is
    /// the semijoin of the gathered union with the member's binding.
    fn extract(&self, bulk: &Self::Answer, request: &Self::Request) -> Result<Self::Answer> {
        Ok(Arc::new(cqap_serve::batch::extract_access_answer(
            bulk, request,
        )?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqap_common::Tuple;
    use cqap_decomp::families as pf;
    use cqap_query::workload::{graph_pair_requests, zipf_multi_requests, Graph};

    fn router_fixture(k: usize) -> (ShardRouter, CqapIndex, cqap_query::Cqap, Graph) {
        let (cqap, pmtds) = pf::pmtds_3reach_fig1().unwrap();
        let g = Graph::skewed(45, 200, 4, 28, 37);
        let db = g.as_path_database(3);
        let reference = CqapIndex::build(&cqap, &db, &pmtds).unwrap();
        let sharded = ShardedIndex::build(&cqap, &db, &pmtds, k).unwrap();
        (ShardRouter::new(sharded), reference, cqap, g)
    }

    #[test]
    fn router_matches_unsharded_reference() {
        let (router, reference, cqap, g) = router_fixture(3);
        // Single-binding requests (the fast path)...
        for (u, v) in graph_pair_requests(&g, 30, 43) {
            let request = AccessRequest::single(cqap.access(), &[u, v]).unwrap();
            assert_eq!(
                *router.answer_one(&request).unwrap(),
                reference.answer(&request).unwrap()
            );
        }
        // ...and multi-binding scatter-gather requests.
        for tuples in zipf_multi_requests(&g, 15, 5, 1.0, 47) {
            let tuples: Vec<Tuple> = tuples.into_iter().map(|(u, v)| Tuple::pair(u, v)).collect();
            let request = AccessRequest::new(cqap.access(), tuples).unwrap();
            assert_eq!(
                *router.answer_one(&request).unwrap(),
                reference.answer(&request).unwrap()
            );
        }
    }

    #[test]
    fn router_inside_a_serve_runtime_serves_batches_over_shards() {
        let (router, reference, cqap, g) = router_fixture(4);
        let requests: Vec<AccessRequest> = graph_pair_requests(&g, 80, 53)
            .into_iter()
            .map(|(u, v)| AccessRequest::single(cqap.access(), &[u, v]).unwrap())
            .collect();
        // The whole existing serving surface over shards, unchanged: a
        // top-level runtime whose "index" is the router.
        let runtime = ServeRuntime::with_config(
            Arc::new(router),
            ServeConfig {
                threads: 4,
                cache_capacity: 64,
                ..ServeConfig::default()
            },
        );
        let answers = runtime.serve_batch(&requests).unwrap();
        assert_eq!(answers.len(), requests.len());
        for (request, answer) in requests.iter().zip(&answers) {
            // Top-level answers are Arc<Arc<Relation>>: the front cache's
            // Arc around the router's shared answer.
            assert_eq!(***answer, reference.answer(request).unwrap());
        }
        // Requests flowed through to the shard runtimes.
        let shard_stats = runtime.index().shard_stats();
        assert_eq!(shard_stats.len(), 4);
        let fleet = runtime.index().stats();
        assert!(fleet.served > 0);
        assert_eq!(
            fleet.served,
            shard_stats.iter().map(|s| s.served).sum::<u64>()
        );
    }

    #[test]
    fn single_binding_requests_touch_exactly_one_shard() {
        let (router, _, cqap, _) = router_fixture(3);
        let request = AccessRequest::single(cqap.access(), &[1, 2]).unwrap();
        let owner = router.spec().shard_of_binding(&Tuple::pair(1, 2));
        router.answer_one(&request).unwrap();
        for (shard, stats) in router.shard_stats().into_iter().enumerate() {
            let expected = if shard == owner { 1 } else { 0 };
            assert_eq!(stats.served, expected, "shard {shard}");
        }
    }

    #[test]
    fn metrics_sink_aggregates_across_shards() {
        use cqap_obs::{GaugeId, MetricsSink};

        let (cqap, pmtds) = pf::pmtds_3reach_fig1().unwrap();
        let g = Graph::skewed(45, 200, 4, 28, 37);
        let db = g.as_path_database(3);
        let sharded = ShardedIndex::build(&cqap, &db, &pmtds, 3).unwrap();
        let sink = MetricsSink::recording();
        let router =
            ShardRouter::with_metrics(sharded, ShardRouterConfig::default(), sink.clone());

        // Single-binding requests exercise the per-shard counters; a
        // multi-binding request exercises the answer-union stage.
        for (u, v) in graph_pair_requests(&g, 20, 43) {
            let request = AccessRequest::single(cqap.access(), &[u, v]).unwrap();
            router.answer_one(&request).unwrap();
        }
        let tuples: Vec<Tuple> = zipf_multi_requests(&g, 1, 6, 1.0, 47)
            .pop()
            .unwrap()
            .into_iter()
            .map(|(u, v)| Tuple::pair(u, v))
            .collect();
        let multi = AccessRequest::new(cqap.access(), tuples).unwrap();
        router.answer_one(&multi).unwrap();

        drop(router); // join shard pools so all worker laps have landed
        let snap = sink.snapshot().unwrap();
        // Every shard runtime records into the one shared recorder.
        assert!(snap.stage(StageId::BackendProbe).count > 0);
        assert!(snap.stage(StageId::QueueWait).count > 0);
        assert_eq!(snap.stage(StageId::AnswerUnion).count, 1);
        let per_shard: u64 = snap.shard_served.iter().sum();
        assert!(snap.shard_served.len() <= 3);
        assert!(per_shard >= 21, "routed requests counted per shard");
        assert!(snap.shard_balance_skew().expect("shards served") >= 1.0);
        assert_eq!(snap.gauge(GaugeId::QueueDepth), 0);
    }

    #[test]
    fn shard_caches_absorb_repeats() {
        let (router, _, cqap, g) = router_fixture(2);
        let requests: Vec<AccessRequest> = graph_pair_requests(&g, 20, 59)
            .into_iter()
            .map(|(u, v)| AccessRequest::single(cqap.access(), &[u, v]).unwrap())
            .collect();
        for request in &requests {
            router.answer_one(request).unwrap();
        }
        // Second pass: every request hits some shard's LRU (or joins an
        // identical probe).
        for request in &requests {
            router.answer_one(request).unwrap();
        }
        let fleet = router.stats();
        assert_eq!(fleet.served, 2 * requests.len() as u64);
        assert!(
            fleet.cache_hits + fleet.inflight_hits >= requests.len() as u64,
            "warm pass should avoid index probes: {fleet:?}"
        );
    }
}
