//! Offline stand-in for the `criterion` crate.
//!
//! Implements the subset of the Criterion API the workspace's benches use —
//! [`criterion_group!`] / [`criterion_main!`], benchmark groups,
//! `bench_function` / `bench_with_input`, [`BenchmarkId`] — with a simple
//! fixed-sample wall-clock harness: each benchmark closure is warmed up
//! once and then timed for `sample_size` samples.
//!
//! Two fidelity features the workspace relies on for cross-PR
//! comparability:
//!
//! * **Outlier-robust statistics.** Besides mean / min / max, every
//!   benchmark reports the **median** and the **MAD** (median absolute
//!   deviation from the median) — on noisy shared runners one descheduled
//!   sample can double a mean, while the median±MAD pair barely moves.
//! * **Baseline JSON dump** (`--save-baseline` stand-in). When the
//!   `BENCH_BASELINE` environment variable is set (benches may also set it
//!   themselves), every completed benchmark is appended to
//!   `BENCH_<bench-binary>_<baseline>.json` in the working directory — a
//!   JSON array of `{label, samples, median_ns, mad_ns, mean_ns, min_ns,
//!   max_ns, p99_ns, p999_ns}` records, rewritten after each benchmark so
//!   the file is valid even if the run is interrupted. Diffing two such
//!   files is the cross-PR regression check. (The baseline *parser* reads
//!   only `label` and `median_ns`, so files from before the tail-quantile
//!   fields still compare.)
//! * **Tail quantiles.** Every benchmark also reports its p99/p999,
//!   estimated through the `cqap-obs` log-bucketed latency histogram —
//!   the same estimator the serving stack's metrics exposition uses.
//! * **Baseline comparison** (`--baseline` stand-in). When `BENCH_BASELINE`
//!   names a baseline whose `BENCH_*.json` already exists, the saved run
//!   is loaded first and every benchmark also prints its median delta
//!   against it (`vs saved: 1.20 ms -> 1.08 ms (-10.0%)`) before the file
//!   is rewritten with the fresh numbers — the regression check inline,
//!   not just a file to diff by hand.
//!
//! There is no HTML report; the goal is comparable relative numbers in an
//! environment without registry access.

use std::path::{Path, PathBuf};
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// The top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 20,
            _criterion: self,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_benchmark(id, 20, f);
        self
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Accepted for API compatibility; the shim's total measurement time is
    /// simply `sample_size` executions of the closure.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Benchmarks `f` under `id` within this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into_benchmark_id());
        run_benchmark(&label, self.sample_size, f);
        self
    }

    /// Benchmarks `f` with a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into_benchmark_id());
        run_benchmark(&label, self.sample_size, |b| f(b, input));
        self
    }

    /// Ends the group (printing is immediate, so this is a no-op).
    pub fn finish(&mut self) {}
}

/// A function + parameter benchmark identifier.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id rendered as `function/parameter`.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function.into(), parameter),
        }
    }
}

/// Conversion of the various id forms Criterion accepts.
pub trait IntoBenchmarkId {
    /// The rendered label.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.label
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// The timing handle passed to benchmark closures.
pub struct Bencher {
    samples: usize,
    durations: Vec<Duration>,
}

impl Bencher {
    /// Times `sample_size` executions of `routine` (after one warm-up run).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine());
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            self.durations.push(start.elapsed());
        }
    }
}

/// Summary statistics over one benchmark's samples, in nanoseconds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SampleStats {
    /// Number of timed samples.
    pub samples: usize,
    /// Median sample time (outlier-robust location).
    pub median_ns: u128,
    /// Median absolute deviation from the median (outlier-robust spread).
    pub mad_ns: u128,
    /// Arithmetic mean sample time.
    pub mean_ns: u128,
    /// Fastest sample.
    pub min_ns: u128,
    /// Slowest sample.
    pub max_ns: u128,
    /// 99th-percentile sample time, estimated through the log-bucketed
    /// latency histogram of `cqap-obs` (bucket-bounded error; with few
    /// samples this approaches the max).
    pub p99_ns: u128,
    /// 99.9th-percentile sample time, from the same histogram.
    pub p999_ns: u128,
}

impl SampleStats {
    /// Computes the summary over a non-empty sample set.
    pub fn of(durations: &[Duration]) -> SampleStats {
        assert!(!durations.is_empty(), "stats need at least one sample");
        let mut ns: Vec<u128> = durations.iter().map(Duration::as_nanos).collect();
        ns.sort_unstable();
        let median = median_of_sorted(&ns);
        let mut deviations: Vec<u128> = ns.iter().map(|&x| x.abs_diff(median)).collect();
        deviations.sort_unstable();
        // Tail quantiles through the serving stack's own histogram, so a
        // bench's reported p99/p999 and a live sink's exposition agree on
        // their estimator (and its bucket-bounded error).
        let hist = cqap_obs::LatencyHistogram::new();
        for d in durations {
            hist.record(*d);
        }
        let snap = hist.snapshot();
        SampleStats {
            samples: ns.len(),
            median_ns: median,
            mad_ns: median_of_sorted(&deviations),
            mean_ns: ns.iter().sum::<u128>() / ns.len() as u128,
            min_ns: ns[0],
            max_ns: ns[ns.len() - 1],
            p99_ns: snap.p99() as u128,
            p999_ns: snap.p999() as u128,
        }
    }
}

/// Median of an already-sorted slice (midpoint average for even lengths).
fn median_of_sorted(sorted: &[u128]) -> u128 {
    let n = sorted.len();
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) / 2
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, samples: usize, mut f: F) {
    let mut bencher = Bencher {
        samples,
        durations: Vec::with_capacity(samples),
    };
    f(&mut bencher);
    if bencher.durations.is_empty() {
        println!("{label:<50} (no samples)");
        return;
    }
    let stats = SampleStats::of(&bencher.durations);
    println!(
        "{label:<50} median {:>12} ± {:>10} mean {:>12} min {:>12} max {:>12} p99 {:>12} p999 {:>12} ({} samples)",
        fmt_duration(Duration::from_nanos(stats.median_ns as u64)),
        fmt_duration(Duration::from_nanos(stats.mad_ns as u64)),
        fmt_duration(Duration::from_nanos(stats.mean_ns as u64)),
        fmt_duration(Duration::from_nanos(stats.min_ns as u64)),
        fmt_duration(Duration::from_nanos(stats.max_ns as u64)),
        fmt_duration(Duration::from_nanos(stats.p99_ns as u64)),
        fmt_duration(Duration::from_nanos(stats.p999_ns as u64)),
        stats.samples,
    );
    record_baseline(label, &stats);
}

/// Accumulated baseline records plus the file they are dumped to, and the
/// medians of the previously saved run (if the baseline file already
/// existed when this run started) for delta reporting.
struct BaselineSink {
    path: PathBuf,
    records: Vec<String>,
    saved: std::collections::HashMap<String, u128>,
}

static BASELINE_SINK: OnceLock<Option<Mutex<BaselineSink>>> = OnceLock::new();

/// Appends one benchmark record to the baseline JSON file, if baseline
/// dumping is enabled (`BENCH_BASELINE` set). The whole file is rewritten
/// after every record so it is a valid JSON array at all times.
///
/// When `BENCH_BASELINE` names a baseline whose `BENCH_*.json` already
/// exists, the old run is loaded first and every benchmark additionally
/// prints its **median delta** against the saved run — the cross-PR
/// regression check inline, instead of only dumping a file to diff by
/// hand. (The file is still rewritten with the fresh run.)
fn record_baseline(label: &str, stats: &SampleStats) {
    let Some(sink) = BASELINE_SINK
        .get_or_init(|| {
            baseline_path().map(|path| {
                let saved = std::fs::read_to_string(&path)
                    .map(|body| parse_baseline(&body))
                    .unwrap_or_default();
                if !saved.is_empty() {
                    println!(
                        "comparing against saved baseline {} ({} benchmarks)",
                        path.display(),
                        saved.len()
                    );
                }
                Mutex::new(BaselineSink {
                    path,
                    records: Vec::new(),
                    saved,
                })
            })
        })
    else {
        return;
    };
    let mut sink = sink.lock().expect("baseline sink");
    if let Some(&old) = sink.saved.get(label) {
        println!(
            "{:<50} vs saved: {} -> {} ({})",
            "",
            fmt_duration(Duration::from_nanos(old as u64)),
            fmt_duration(Duration::from_nanos(stats.median_ns as u64)),
            fmt_delta(old, stats.median_ns),
        );
    }
    sink.records.push(format!(
        "  {{\"label\": {}, \"samples\": {}, \"median_ns\": {}, \"mad_ns\": {}, \"mean_ns\": {}, \"min_ns\": {}, \"max_ns\": {}, \"p99_ns\": {}, \"p999_ns\": {}}}",
        json_string(label),
        stats.samples,
        stats.median_ns,
        stats.mad_ns,
        stats.mean_ns,
        stats.min_ns,
        stats.max_ns,
        stats.p99_ns,
        stats.p999_ns,
    ));
    let body = format!("[\n{}\n]\n", sink.records.join(",\n"));
    if let Err(error) = std::fs::write(&sink.path, body) {
        eprintln!("warning: cannot write baseline {}: {error}", sink.path.display());
    }
}

/// Percentage change of the median, signed (`-` is faster than the saved
/// run). A zero or missing old median yields `n/a` rather than a division
/// blow-up.
fn fmt_delta(old_ns: u128, new_ns: u128) -> String {
    if old_ns == 0 {
        return "n/a".into();
    }
    let pct = (new_ns as f64 - old_ns as f64) / old_ns as f64 * 100.0;
    format!("{pct:+.1}%")
}

/// Parses a previously dumped baseline file into `label -> median_ns`.
/// Only understands the shim's own output shape (an array of flat objects
/// with string `label` and integer `median_ns`); anything unparseable is
/// skipped silently, so a corrupt file degrades to "no comparison".
fn parse_baseline(body: &str) -> std::collections::HashMap<String, u128> {
    let mut out = std::collections::HashMap::new();
    let mut rest = body;
    while let Some(at) = rest.find("\"label\":") {
        rest = &rest[at + "\"label\":".len()..];
        let Some((label, after)) = parse_json_string(rest) else {
            continue;
        };
        let median = after.find("\"median_ns\":").and_then(|at| {
            let digits = after[at + "\"median_ns\":".len()..].trim_start();
            let end = digits
                .find(|c: char| !c.is_ascii_digit())
                .unwrap_or(digits.len());
            digits[..end].parse::<u128>().ok()
        });
        // Parse the median from this record only — cap the search at the
        // record's closing brace so a missing field cannot steal the next
        // record's median.
        let record_end = after.find('}').unwrap_or(after.len());
        if let Some(median) = median.filter(|_| {
            after.find("\"median_ns\":").is_some_and(|at| at < record_end)
        }) {
            out.insert(label, median);
        }
        rest = after;
    }
    out
}

/// Parses a JSON string literal starting at (or after whitespace before)
/// an opening quote; returns the unescaped content and the remainder.
///
/// Public because downstream examples reuse it to sanity-check other
/// JSON artifacts (e.g. Chrome trace exports) without a JSON dependency.
pub fn parse_json_string(s: &str) -> Option<(String, &str)> {
    let s = s.trim_start();
    let mut chars = s.char_indices();
    match chars.next() {
        Some((_, '"')) => {}
        _ => return None,
    }
    let mut out = String::new();
    while let Some((i, c)) = chars.next() {
        match c {
            '"' => return Some((out, &s[i + 1..])),
            '\\' => match chars.next()?.1 {
                '"' => out.push('"'),
                '\\' => out.push('\\'),
                'n' => out.push('\n'),
                'r' => out.push('\r'),
                't' => out.push('\t'),
                'u' => {
                    let code: String = (0..4).filter_map(|_| chars.next().map(|(_, c)| c)).collect();
                    let c = u32::from_str_radix(&code, 16).ok().and_then(char::from_u32)?;
                    out.push(c);
                }
                _ => return None,
            },
            c => out.push(c),
        }
    }
    None
}

/// `BENCH_<bench-binary>_<baseline>.json`, or `None` when `BENCH_BASELINE`
/// is unset/empty (dumping disabled — keeps unit-test runs file-free).
fn baseline_path() -> Option<PathBuf> {
    let baseline = std::env::var("BENCH_BASELINE").ok().filter(|b| !b.is_empty())?;
    let binary = std::env::args()
        .next()
        .as_deref()
        .and_then(|arg0| Path::new(arg0).file_stem().map(|s| s.to_string_lossy().into_owned()))
        .unwrap_or_else(|| "bench".into());
    let binary = strip_cargo_hash(&binary).to_string();
    Some(PathBuf::from(format!("BENCH_{binary}_{baseline}.json")))
}

/// Strips the `-<16 hex>` suffix cargo appends to bench executable names.
fn strip_cargo_hash(stem: &str) -> &str {
    match stem.rsplit_once('-') {
        Some((name, hash))
            if !name.is_empty()
                && hash.len() == 16
                && hash.chars().all(|c| c.is_ascii_hexdigit()) =>
        {
            name
        }
        _ => stem,
    }
}

/// Minimal JSON string encoder (labels are benchmark ids: ASCII-ish, but
/// escape everything JSON requires anyway).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", nanos as f64 / 1_000_000_000.0)
    }
}

/// Bundles benchmark functions into a single runner, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` for one or more benchmark groups, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_and_id_render() {
        let id = BenchmarkId::new("two_reach", "E^1.5");
        assert_eq!(id.into_benchmark_id(), "two_reach/E^1.5");
    }

    #[test]
    fn bencher_collects_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(5).bench_function("noop", |b| {
            let mut x = 0u64;
            b.iter(|| {
                x = x.wrapping_add(1);
                x
            })
        });
        group.finish();
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_nanos(12)), "12 ns");
        assert_eq!(fmt_duration(Duration::from_micros(2)), "2.00 µs");
        assert_eq!(fmt_duration(Duration::from_millis(3)), "3.00 ms");
        assert_eq!(fmt_duration(Duration::from_secs(4)), "4.00 s");
    }

    #[test]
    fn median_and_mad_are_outlier_robust() {
        // Nine fast samples and one 100x outlier: the mean blows up, the
        // median/MAD barely notice.
        let durations: Vec<Duration> = (0..9)
            .map(|i| Duration::from_nanos(100 + i))
            .chain([Duration::from_nanos(10_000)])
            .collect();
        let stats = SampleStats::of(&durations);
        assert_eq!(stats.samples, 10);
        assert_eq!(stats.median_ns, 104); // avg of 104 and 105 → 104 (integer)
        assert!(stats.mad_ns <= 5, "MAD ignores the outlier: {}", stats.mad_ns);
        assert!(stats.mean_ns > 1_000, "mean is dragged by the outlier");
        assert_eq!(stats.min_ns, 100);
        assert_eq!(stats.max_ns, 10_000);
        // Tail quantiles sit between the median and the max, and with 10
        // samples both land in the outlier's bucket.
        assert!(stats.median_ns <= stats.p99_ns);
        assert!(stats.p99_ns <= stats.p999_ns);
        assert!(stats.p999_ns <= stats.max_ns);
        assert!(stats.p99_ns > 1_000, "p99 sees the outlier");

        // Odd-length median is the middle element.
        let odd: Vec<Duration> = [30u64, 10, 20].iter().map(|&n| Duration::from_nanos(n)).collect();
        assert_eq!(SampleStats::of(&odd).median_ns, 20);
    }

    #[test]
    fn cargo_hash_suffix_is_stripped() {
        assert_eq!(strip_cargo_hash("shard_scaling-0a1b2c3d4e5f6789"), "shard_scaling");
        // Not a 16-hex suffix: untouched.
        assert_eq!(strip_cargo_hash("serve-throughput"), "serve-throughput");
        assert_eq!(strip_cargo_hash("plain"), "plain");
    }

    #[test]
    fn json_strings_are_escaped() {
        assert_eq!(json_string("group/bench k=2"), "\"group/bench k=2\"");
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn baseline_roundtrips_through_the_parser() {
        // A dumped file parses back to exactly the labels and medians that
        // went in, including escaped characters in labels.
        let labels = ["shard_scaling/build/2", "odd \"label\"\\path", "t\tb"];
        let body = format!(
            "[\n{}\n]\n",
            labels
                .iter()
                .enumerate()
                .map(|(i, label)| format!(
                    "  {{\"label\": {}, \"samples\": 5, \"median_ns\": {}, \"mad_ns\": 1, \"mean_ns\": 9, \"min_ns\": 1, \"max_ns\": 20}}",
                    json_string(label),
                    100 + i as u128,
                ))
                .collect::<Vec<_>>()
                .join(",\n")
        );
        let parsed = parse_baseline(&body);
        assert_eq!(parsed.len(), 3);
        for (i, label) in labels.iter().enumerate() {
            assert_eq!(parsed.get(*label), Some(&(100 + i as u128)), "{label}");
        }
        // Garbage degrades to "no comparison", never a panic.
        assert!(parse_baseline("not json at all").is_empty());
        assert!(parse_baseline("[{\"label\": \"x\"}]").is_empty());
    }

    #[test]
    fn delta_formatting() {
        assert_eq!(fmt_delta(1000, 900), "-10.0%");
        assert_eq!(fmt_delta(1000, 1250), "+25.0%");
        assert_eq!(fmt_delta(1000, 1000), "+0.0%");
        assert_eq!(fmt_delta(0, 500), "n/a");
    }

    #[test]
    fn json_string_parser_handles_escapes() {
        let (s, rest) = parse_json_string("  \"a\\\"b\\\\c\\u0041\" , tail").unwrap();
        assert_eq!(s, "a\"b\\cA");
        assert_eq!(rest, " , tail");
        assert!(parse_json_string("no quote").is_none());
        assert!(parse_json_string("\"unterminated").is_none());
    }
}
