//! Offline stand-in for the `criterion` crate.
//!
//! Implements the subset of the Criterion API the workspace's benches use —
//! [`criterion_group!`] / [`criterion_main!`], benchmark groups,
//! `bench_function` / `bench_with_input`, [`BenchmarkId`] — with a simple
//! fixed-sample wall-clock harness: each benchmark closure is warmed up
//! once and then timed for `sample_size` samples, and the mean / min /
//! max per-sample time is printed. There is no statistical analysis, HTML
//! report, or outlier rejection; the goal is comparable relative numbers
//! in an environment without registry access.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// The top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 20,
            _criterion: self,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_benchmark(id, 20, f);
        self
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Accepted for API compatibility; the shim's total measurement time is
    /// simply `sample_size` executions of the closure.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Benchmarks `f` under `id` within this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into_benchmark_id());
        run_benchmark(&label, self.sample_size, f);
        self
    }

    /// Benchmarks `f` with a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into_benchmark_id());
        run_benchmark(&label, self.sample_size, |b| f(b, input));
        self
    }

    /// Ends the group (printing is immediate, so this is a no-op).
    pub fn finish(&mut self) {}
}

/// A function + parameter benchmark identifier.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id rendered as `function/parameter`.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function.into(), parameter),
        }
    }
}

/// Conversion of the various id forms Criterion accepts.
pub trait IntoBenchmarkId {
    /// The rendered label.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.label
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// The timing handle passed to benchmark closures.
pub struct Bencher {
    samples: usize,
    durations: Vec<Duration>,
}

impl Bencher {
    /// Times `sample_size` executions of `routine` (after one warm-up run).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine());
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            self.durations.push(start.elapsed());
        }
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, samples: usize, mut f: F) {
    let mut bencher = Bencher {
        samples,
        durations: Vec::with_capacity(samples),
    };
    f(&mut bencher);
    if bencher.durations.is_empty() {
        println!("{label:<50} (no samples)");
        return;
    }
    let total: Duration = bencher.durations.iter().sum();
    let mean = total / bencher.durations.len() as u32;
    let min = bencher.durations.iter().min().unwrap();
    let max = bencher.durations.iter().max().unwrap();
    println!(
        "{label:<50} mean {:>12} min {:>12} max {:>12} ({} samples)",
        fmt_duration(mean),
        fmt_duration(*min),
        fmt_duration(*max),
        bencher.durations.len(),
    );
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", nanos as f64 / 1_000_000_000.0)
    }
}

/// Bundles benchmark functions into a single runner, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` for one or more benchmark groups, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_and_id_render() {
        let id = BenchmarkId::new("two_reach", "E^1.5");
        assert_eq!(id.into_benchmark_id(), "two_reach/E^1.5");
    }

    #[test]
    fn bencher_collects_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(5).bench_function("noop", |b| {
            let mut x = 0u64;
            b.iter(|| {
                x = x.wrapping_add(1);
                x
            })
        });
        group.finish();
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_nanos(12)), "12 ns");
        assert_eq!(fmt_duration(Duration::from_micros(2)), "2.00 µs");
        assert_eq!(fmt_duration(Duration::from_millis(3)), "3.00 ms");
        assert_eq!(fmt_duration(Duration::from_secs(4)), "4.00 s");
    }
}
