//! Offline stand-in for the `rand` crate.
//!
//! The build environment for this workspace has no network access, so this
//! shim vendors the tiny slice of the `rand 0.9` API the workspace actually
//! uses — `StdRng::seed_from_u64`, `Rng::random_range` over integer ranges,
//! and `IndexedRandom::choose` — on top of a splitmix64 generator. All
//! workload generators only require determinism-given-seed and reasonable
//! uniformity, both of which splitmix64 provides. The stream differs from
//! the real `StdRng` (ChaCha12), so seeds produce different (but still
//! deterministic) workloads.

use std::ops::Range;

/// Random number generators (mirrors `rand::rngs`).
pub mod rngs {
    /// A deterministic generator seeded from a `u64` (splitmix64).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        pub(crate) state: u64,
    }

    impl crate::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Avoid the all-zero weak state and decorrelate small seeds.
            StdRng {
                state: seed ^ 0x9e37_79b9_7f4a_7c15,
            }
        }
    }

    impl crate::RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // splitmix64 (Steele, Lea, Flood).
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

/// A seedable generator (mirrors `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is a deterministic function of
    /// `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The raw source of randomness (mirrors `rand::RngCore`).
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// Types that can be sampled uniformly from a `Range` (mirrors the
/// `SampleRange`/`SampleUniform` machinery of the real crate, collapsed to
/// the integer cases the workspace needs).
pub trait SampleRange<T> {
    /// Draws one value from the range using `rng`.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample an empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Modulo bias is < span / 2^64, negligible for the workload
                // sizes used here (spans far below 2^32).
                let off = (rng.next_u64() as u128 % span) as i128;
                (self.start as i128 + off) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, i128);

/// High-level sampling methods (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    /// Uniform draw from `range`.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// A uniform `bool`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        (self.next_u64() as f64 / u64::MAX as f64) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Sequence-related sampling (mirrors `rand::seq`).
pub mod seq {
    use crate::RngCore;

    /// Uniform selection from a slice (mirrors `rand::seq::IndexedRandom`).
    pub trait IndexedRandom {
        /// The element type.
        type Output;

        /// A uniformly random element, or `None` if the slice is empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Output>;
    }

    impl<T> IndexedRandom for [T] {
        type Output = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get((rng.next_u64() % self.len() as u64) as usize)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::IndexedRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(
                a.random_range(0..1_000_000usize),
                b.random_range(0..1_000_000usize)
            );
        }
    }

    #[test]
    fn respects_bounds_and_covers_range() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let x = rng.random_range(5..15u64);
            assert!((5..15).contains(&x));
            seen[(x - 5) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values of a small range hit");
        let y: i32 = rng.random_range(-5..5);
        assert!((-5..5).contains(&y));
    }

    #[test]
    fn choose_from_slice() {
        let mut rng = StdRng::seed_from_u64(11);
        let xs = [10, 20, 30];
        for _ in 0..50 {
            assert!(xs.contains(xs.choose(&mut rng).unwrap()));
        }
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
