//! Offline stand-in for the `proptest` crate.
//!
//! Implements exactly the subset the workspace's property tests use: the
//! [`proptest!`] macro over integer-range strategies, an optional
//! `#![proptest_config(ProptestConfig::with_cases(n))]` header, and the
//! `prop_assert!` / `prop_assert_eq!` assertion macros. Cases are sampled
//! deterministically (seeded per test by a fixed constant), so failures
//! reproduce across runs; there is no shrinking.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Run-time configuration for a `proptest!` block.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each test function runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` random cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Creates the deterministic generator backing a `proptest!` test function.
/// Public so the macro expansion can call it from any crate without the
/// caller depending on `rand` directly.
#[doc(hidden)]
pub fn new_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// A source of random test inputs. Implemented for integer ranges, which is
/// the only strategy shape the workspace uses.
pub trait Strategy {
    /// The type of the generated values.
    type Value;

    /// Draws one input.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, i128);

/// The common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy};
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {
        assert_eq!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_eq!($left, $right, $($fmt)*)
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// item becomes a `#[test]` that runs `body` for every sampled case.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_fns! { cfg = $cfg; $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_fns! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (
        cfg = $cfg:expr;
        $(
            $(#[$attr:meta])*
            fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$attr])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                // Fixed seed: deterministic, reproducible failures.
                let mut rng = $crate::new_rng(0x70726f70 ^ stringify!($name).len() as u64);
                for case in 0..config.cases {
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)*
                    let run = || $body;
                    let result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(run));
                    if let Err(panic) = result {
                        eprintln!(
                            "proptest case {}/{} failed with inputs: {}",
                            case + 1,
                            config.cases,
                            [$(format!("{} = {:?}", stringify!($arg), $arg)),*].join(", "),
                        );
                        ::std::panic::resume_unwind(panic);
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Sampled values stay inside their strategy's range.
        #[test]
        fn samples_in_range(x in 3u64..17, y in -4i32..9) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-4..9).contains(&y));
            prop_assert_eq!(x, x);
        }
    }

    proptest! {
        /// The no-config form defaults to 32 cases and also compiles with
        /// trailing commas and doc comments.
        #[test]
        fn default_config_form(n in 0usize..5,) {
            prop_assert!(n < 5);
        }
    }
}
