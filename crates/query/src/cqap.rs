//! Conjunctive queries with access patterns (CQAPs).

use crate::cq::ConjunctiveQuery;
use cqap_common::{CqapError, Result, Tuple, Val, VarSet};
use std::fmt;

/// A CQAP `φ(x_H | x_A) ← ⋀_F R_F(x_F)` (Definition 2.1): a conjunctive
/// query whose result is accessed through bindings of the access-pattern
/// variables `A`.
///
/// The paper assumes w.l.o.g. that `H ⊇ A` (Section 2.2): if a CQAP is
/// declared with `H ⊉ A`, [`Cqap::new`] replaces the head by `H ∪ A` and
/// records that the caller should project the final answers back onto the
/// original head.
#[derive(Clone, PartialEq, Eq)]
pub struct Cqap {
    cq: ConjunctiveQuery,
    access: VarSet,
    /// The head as originally declared (before the `H ∪ A` normalization).
    declared_head: VarSet,
}

impl Cqap {
    /// Creates a CQAP from a CQ and an access pattern.
    ///
    /// # Errors
    /// Returns an error if the access pattern mentions unknown variables.
    pub fn new(cq: ConjunctiveQuery, access: VarSet) -> Result<Self> {
        if !access.is_subset(cq.all_vars()) {
            return Err(CqapError::InvalidQuery(format!(
                "access pattern {access} mentions a variable outside the query"
            )));
        }
        let declared_head = cq.head();
        let cq = if access.is_subset(cq.head()) {
            cq
        } else {
            let head = cq.head().union(access);
            cq.with_head(head)?
        };
        Ok(Cqap {
            cq,
            access,
            declared_head,
        })
    }

    /// The underlying (normalized) conjunctive query, with `H ⊇ A`.
    pub fn cq(&self) -> &ConjunctiveQuery {
        &self.cq
    }

    /// The access pattern `A`.
    pub fn access(&self) -> VarSet {
        self.access
    }

    /// The (normalized) head `H ⊇ A`.
    pub fn head(&self) -> VarSet {
        self.cq.head()
    }

    /// The head as originally declared (answers should be projected onto
    /// this set when it differs from [`Cqap::head`]).
    pub fn declared_head(&self) -> VarSet {
        self.declared_head
    }

    /// The non-access head variables `H \ A` — the "output" variables a user
    /// receives for each access request binding.
    pub fn free_output(&self) -> VarSet {
        self.head().difference(self.access)
    }

    /// Whether the CQAP is Boolean *given* its access pattern (no output
    /// variables besides the access variables).
    pub fn is_boolean_given_access(&self) -> bool {
        self.declared_head.is_subset(self.access)
    }

    /// Shorthand: the query hypergraph.
    pub fn hypergraph(&self) -> crate::hypergraph::Hypergraph {
        self.cq.hypergraph()
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.cq.num_vars()
    }
}

impl fmt::Debug for Cqap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Cqap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.cq.name())?;
        for (i, v) in self.head().iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "x{}", v + 1)?;
        }
        write!(f, " | ")?;
        for (i, v) in self.access.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "x{}", v + 1)?;
        }
        write!(f, ") ← ")?;
        for (i, a) in self.cq.atoms().iter().enumerate() {
            if i > 0 {
                write!(f, " ∧ ")?;
            }
            write!(f, "{a}")?;
        }
        Ok(())
    }
}

/// An access request `Q_A`: a set of bindings for the access-pattern
/// variables. The most common case (`|Q_A| = 1`) is a single lookup key; a
/// larger request batches several lookups (Section 2.1).
///
/// `Hash` is derived so requests can key answer caches (the serving
/// runtime's LRU cache is keyed by the `(access, tuples)` pair).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct AccessRequest {
    access: VarSet,
    tuples: Vec<Tuple>,
}

impl AccessRequest {
    /// Creates an access request over the access variables `access`; each
    /// tuple binds those variables in ascending variable order.
    ///
    /// # Errors
    /// Returns an error if a tuple's arity differs from `|access|`.
    pub fn new(access: VarSet, tuples: Vec<Tuple>) -> Result<Self> {
        for t in &tuples {
            if t.arity() != access.len() {
                return Err(CqapError::AccessPatternMismatch {
                    expected_arity: access.len(),
                    found_arity: t.arity(),
                });
            }
        }
        Ok(AccessRequest { access, tuples })
    }

    /// A single-binding request (the `|Q_A| = 1` case of prior work).
    pub fn single(access: VarSet, vals: &[Val]) -> Result<Self> {
        AccessRequest::new(access, vec![Tuple::from_slice(vals)])
    }

    /// The access variables.
    pub fn access(&self) -> VarSet {
        self.access
    }

    /// The bindings.
    pub fn tuples(&self) -> &[Tuple] {
        &self.tuples
    }

    /// Number of bindings `|Q_A|`.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Whether the request is empty.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Materializes the request as a relation named `Q_A` over the access
    /// variables, so it can participate in joins.
    pub fn as_relation(&self) -> cqap_relation::Relation {
        let schema = cqap_relation::Schema::of(self.access.iter());
        cqap_relation::Relation::from_tuples("Q_A", schema, self.tuples.iter().cloned())
            .expect("arity validated at construction")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cq::Atom;
    use cqap_common::vars;

    fn three_path_cqap() -> Cqap {
        let cq = ConjunctiveQuery::new(
            "phi3",
            4,
            vec![
                Atom::new("R1", vec![0, 1]).unwrap(),
                Atom::new("R2", vec![1, 2]).unwrap(),
                Atom::new("R3", vec![2, 3]).unwrap(),
            ],
            vars![1, 4],
        )
        .unwrap();
        Cqap::new(cq, vars![1, 4]).unwrap()
    }

    #[test]
    fn construction() {
        let q = three_path_cqap();
        assert_eq!(q.access(), vars![1, 4]);
        assert_eq!(q.head(), vars![1, 4]);
        assert!(q.is_boolean_given_access());
        assert_eq!(q.free_output(), VarSet::EMPTY);
    }

    #[test]
    fn head_normalization() {
        // Head {x5} with access {x1,...,x4}: H ⊉ A, so the head becomes
        // H ∪ A and the declared head is remembered.
        let cq = ConjunctiveQuery::new(
            "kset",
            5,
            vec![
                Atom::new("R", vec![4, 0]).unwrap(),
                Atom::new("R", vec![4, 1]).unwrap(),
                Atom::new("R", vec![4, 2]).unwrap(),
                Atom::new("R", vec![4, 3]).unwrap(),
            ],
            vars![5],
        )
        .unwrap();
        let q = Cqap::new(cq, vars![1, 2, 3, 4]).unwrap();
        assert_eq!(q.head(), vars![1, 2, 3, 4, 5]);
        assert_eq!(q.declared_head(), vars![5]);
        assert_eq!(q.free_output(), vars![5]);
        assert!(!q.is_boolean_given_access());
    }

    #[test]
    fn invalid_access_pattern() {
        let cq = ConjunctiveQuery::new(
            "q",
            2,
            vec![Atom::new("R", vec![0, 1]).unwrap()],
            vars![1, 2],
        )
        .unwrap();
        assert!(Cqap::new(cq, vars![5]).is_err());
    }

    #[test]
    fn access_request() {
        let req = AccessRequest::single(vars![1, 4], &[10, 20]).unwrap();
        assert_eq!(req.len(), 1);
        assert_eq!(req.access(), vars![1, 4]);
        let rel = req.as_relation();
        assert_eq!(rel.len(), 1);
        assert_eq!(rel.schema().vars(), &[0, 3]);

        assert!(AccessRequest::single(vars![1, 4], &[10]).is_err());
    }

    #[test]
    fn display() {
        let q = three_path_cqap();
        let s = q.to_string();
        assert!(s.contains("(x1,x4 | x1,x4)"));
        assert!(s.contains("R2(x2,x3)"));
    }
}
