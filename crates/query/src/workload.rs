//! Synthetic workload generators.
//!
//! The paper evaluates analytically; for the empirical reproduction we need
//! inputs that exercise the same regimes:
//!
//! * random directed graphs (uniform edge endpoints) — the "typical" case;
//! * skewed graphs with a controlled number of heavy vertices — the inputs
//!   that make the heavy/light split strategies matter (without skew every
//!   vertex is light and the baseline looks as good as the tradeoff
//!   structure);
//! * set families with Zipf-like set sizes for k-set disjointness;
//! * streams of access requests drawn from the realized join keys, so online
//!   probes actually hit non-empty results a controllable fraction of the
//!   time.
//!
//! All generators are deterministic given their seed.

use cqap_common::{Tuple, Val, Var, VarSet};
use cqap_relation::{Database, Relation};
use rand::rngs::StdRng;
use rand::seq::IndexedRandom;
use rand::{Rng, SeedableRng};

/// A synthetic directed graph stored as an edge list.
#[derive(Clone, Debug)]
pub struct Graph {
    /// Number of vertices (ids are `0..num_vertices`).
    pub num_vertices: usize,
    /// Directed edges.
    pub edges: Vec<(Val, Val)>,
}

impl Graph {
    /// Uniform random directed graph with `num_edges` distinct edges over
    /// `num_vertices` vertices.
    pub fn random(num_vertices: usize, num_edges: usize, seed: u64) -> Self {
        assert!(num_vertices >= 2);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut seen = cqap_common::FxHashSet::default();
        let mut edges = Vec::with_capacity(num_edges);
        let max_possible = num_vertices * (num_vertices - 1);
        let target = num_edges.min(max_possible);
        while edges.len() < target {
            let u = rng.random_range(0..num_vertices) as Val;
            let v = rng.random_range(0..num_vertices) as Val;
            if u != v && seen.insert((u, v)) {
                edges.push((u, v));
            }
        }
        Graph {
            num_vertices,
            edges,
        }
    }

    /// Skewed graph: `num_heavy` designated hub vertices receive
    /// `heavy_degree` outgoing edges each; the remaining edges are uniform.
    /// This produces the degree profile under which the paper's heavy/light
    /// materialization strategies differ measurably from the baselines.
    pub fn skewed(
        num_vertices: usize,
        num_edges: usize,
        num_heavy: usize,
        heavy_degree: usize,
        seed: u64,
    ) -> Self {
        assert!(num_vertices >= 2);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut seen = cqap_common::FxHashSet::default();
        let mut edges = Vec::with_capacity(num_edges);
        'outer: for h in 0..num_heavy {
            let hub = h as Val;
            let mut added = 0usize;
            let mut attempts = 0usize;
            while added < heavy_degree {
                if edges.len() >= num_edges {
                    break 'outer;
                }
                attempts += 1;
                if attempts > 10 * heavy_degree + 100 {
                    break;
                }
                let v = rng.random_range(0..num_vertices) as Val;
                if v != hub && seen.insert((hub, v)) {
                    edges.push((hub, v));
                    added += 1;
                }
            }
        }
        while edges.len() < num_edges {
            let u = rng.random_range(0..num_vertices) as Val;
            let v = rng.random_range(0..num_vertices) as Val;
            if u != v && seen.insert((u, v)) {
                edges.push((u, v));
            }
        }
        Graph {
            num_vertices,
            edges,
        }
    }

    /// Loads the graph as a binary relation over variables `(a, b)`.
    pub fn as_relation(&self, name: &str, a: Var, b: Var) -> Relation {
        Relation::binary(name.to_string(), a, b, self.edges.iter().copied())
    }

    /// Builds the database for the k-path query with distinct relation names
    /// `R1..Rk`, all loaded with this graph's edges over consecutive
    /// variables.
    pub fn as_path_database(&self, k: usize) -> Database {
        let mut db = Database::new();
        for i in 0..k {
            db.add_relation(self.as_relation(&format!("R{}", i + 1), i, i + 1))
                .expect("unique names");
        }
        db
    }

    /// Number of edges.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Whether the graph has no edges.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }
}

/// A synthetic family of sets over a universe, for k-set disjointness.
#[derive(Clone, Debug)]
pub struct SetFamily {
    /// Number of sets (ids `0..num_sets`).
    pub num_sets: usize,
    /// Universe size (element ids `0..universe`).
    pub universe: usize,
    /// Membership pairs `(element, set)`.
    pub memberships: Vec<(Val, Val)>,
}

impl SetFamily {
    /// Generates a family in which set `s` has size roughly
    /// `max_size / (s+1)^skew` (Zipf-like): a few large sets and many small
    /// ones. `skew = 0` gives equal sizes.
    pub fn zipf(num_sets: usize, universe: usize, max_size: usize, skew: f64, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut memberships = Vec::new();
        let mut seen = cqap_common::FxHashSet::default();
        for s in 0..num_sets {
            let size = ((max_size as f64 / ((s + 1) as f64).powf(skew)).ceil() as usize)
                .clamp(1, universe);
            let mut added = 0usize;
            let mut attempts = 0usize;
            while added < size && attempts < 10 * size + 100 {
                attempts += 1;
                let e = rng.random_range(0..universe) as Val;
                if seen.insert((e, s as Val)) {
                    memberships.push((e, s as Val));
                    added += 1;
                }
            }
        }
        SetFamily {
            num_sets,
            universe,
            memberships,
        }
    }

    /// Loads the family as the binary relation `R(y, x)` ("element y belongs
    /// to set x") over variables `(y, x)`.
    pub fn as_relation(&self, name: &str, y: Var, x: Var) -> Relation {
        Relation::binary(name.to_string(), y, x, self.memberships.iter().copied())
    }

    /// Total number of membership pairs `N`.
    pub fn len(&self) -> usize {
        self.memberships.len()
    }

    /// Whether the family is empty.
    pub fn is_empty(&self) -> bool {
        self.memberships.is_empty()
    }
}

/// Generates `n` access-request keys for a query whose access variables are
/// endpoints of the data graph: half the keys are sampled from the realized
/// edge endpoints (likely to have answers), half are uniform (likely empty).
pub fn graph_pair_requests(graph: &Graph, n: usize, seed: u64) -> Vec<(Val, Val)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        if i % 2 == 0 && !graph.edges.is_empty() {
            let &(u, _) = graph.edges.choose(&mut rng).expect("non-empty");
            let &(_, v) = graph.edges.choose(&mut rng).expect("non-empty");
            out.push((u, v));
        } else {
            out.push((
                rng.random_range(0..graph.num_vertices) as Val,
                rng.random_range(0..graph.num_vertices) as Val,
            ));
        }
    }
    out
}

/// Generates `n` k-tuples of set ids as access requests for k-set
/// disjointness.
pub fn set_tuple_requests(family: &SetFamily, k: usize, n: usize, seed: u64) -> Vec<Tuple> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let vals: Vec<Val> = (0..k)
                .map(|_| rng.random_range(0..family.num_sets) as Val)
                .collect();
            Tuple::from_slice(&vals)
        })
        .collect()
}

/// Generates `n` access-request keys with **zipfian key skew**: endpoint
/// pairs are drawn from the vertex ids with probability proportional to
/// `1 / rank^skew`, so a few hot keys dominate the stream. This is the
/// "heavy traffic" regime the serving runtime's answer cache targets —
/// `skew = 0` degenerates to uniform, `skew ≈ 1` is classic web-like skew,
/// larger values concentrate the stream further.
pub fn zipf_pair_requests(graph: &Graph, n: usize, skew: f64, seed: u64) -> Vec<(Val, Val)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let sampler = ZipfSampler::new(graph.num_vertices, skew);
    (0..n)
        .map(|_| {
            (
                sampler.sample(&mut rng) as Val,
                sampler.sample(&mut rng) as Val,
            )
        })
        .collect()
}

/// Splits a request stream into batches of `batch_size` (the last batch may
/// be shorter), the unit the serving runtime consumes.
pub fn into_batches<T>(requests: Vec<T>, batch_size: usize) -> Vec<Vec<T>> {
    assert!(batch_size > 0, "batch size must be positive");
    let mut batches = Vec::with_capacity(requests.len().div_ceil(batch_size));
    let mut current = Vec::with_capacity(batch_size);
    for request in requests {
        current.push(request);
        if current.len() == batch_size {
            batches.push(std::mem::replace(&mut current, Vec::with_capacity(batch_size)));
        }
    }
    if !current.is_empty() {
        batches.push(current);
    }
    batches
}

/// Generates `n` **multi-tuple** access requests: each request carries
/// `tuples_per_request` zipf-skewed endpoint pairs (deduplicated within the
/// request). This is the workload shape a scatter-gather shard router has
/// to split: one request's tuples usually hash to several shards.
pub fn zipf_multi_requests(
    graph: &Graph,
    n: usize,
    tuples_per_request: usize,
    skew: f64,
    seed: u64,
) -> Vec<Vec<(Val, Val)>> {
    assert!(tuples_per_request > 0, "requests cannot be empty");
    let mut rng = StdRng::seed_from_u64(seed);
    let sampler = ZipfSampler::new(graph.num_vertices, skew);
    (0..n)
        .map(|_| {
            let mut tuples = Vec::with_capacity(tuples_per_request);
            let mut seen = cqap_common::FxHashSet::default();
            // Bounded attempts, as in the other generators: under heavy
            // skew (or tuples_per_request near the n² pair domain) fresh
            // pairs become vanishingly rare, and the request is allowed to
            // stay shorter rather than coupon-collecting forever.
            let mut attempts = 0usize;
            while tuples.len() < tuples_per_request
                && attempts < 10 * tuples_per_request + 100
            {
                attempts += 1;
                let pair = (
                    sampler.sample(&mut rng) as Val,
                    sampler.sample(&mut rng) as Val,
                );
                if seen.insert(pair) {
                    tuples.push(pair);
                }
            }
            tuples
        })
        .collect()
}

/// Generates `n` **Poisson arrival offsets** in nanoseconds from stream
/// start: inter-arrival gaps are exponential with mean `1 / rate_per_sec`,
/// the open-loop arrival process. Unlike a closed loop (next request waits
/// for the previous answer), an open-loop driver submits at these absolute
/// times regardless of completion — so when offered load exceeds service
/// capacity, queueing delay compounds and the latency *tail* grows, which
/// is exactly the regime tail-attribution reports are for.
pub fn poisson_arrivals_ns(n: usize, rate_per_sec: f64, seed: u64) -> Vec<u64> {
    assert!(rate_per_sec > 0.0, "arrival rate must be positive");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = 0.0f64;
    (0..n)
        .map(|_| {
            let u = rng.random_range(0..u64::MAX) as f64 / u64::MAX as f64;
            // Inverse-CDF of the exponential; `1 - u` keeps ln away from 0.
            t += -(1.0 - u).ln() / rate_per_sec;
            (t * 1e9) as u64
        })
        .collect()
}

/// Generates `n` **flash-crowd arrival offsets** in nanoseconds: a
/// baseline Poisson process at `base_rate_per_sec` with a step change to
/// `burst_rate_per_sec` for the window starting `burst_start_sec` after
/// stream start and lasting `burst_len_sec`. This is the canonical
/// overload shape — steady offered load an admission gate can absorb,
/// then a burst that exceeds service capacity and must be shed (or
/// queued, compounding the tail) until the window passes.
///
/// The rate switch is evaluated at each arrival's timestamp, so the gap
/// *after* the last pre-burst arrival already uses the burst rate once
/// the clock crosses the window boundary.
pub fn flash_crowd_arrivals_ns(
    n: usize,
    base_rate_per_sec: f64,
    burst_rate_per_sec: f64,
    burst_start_sec: f64,
    burst_len_sec: f64,
    seed: u64,
) -> Vec<u64> {
    assert!(base_rate_per_sec > 0.0, "base arrival rate must be positive");
    assert!(
        burst_rate_per_sec > 0.0,
        "burst arrival rate must be positive"
    );
    assert!(burst_len_sec >= 0.0, "burst window cannot be negative");
    let mut rng = StdRng::seed_from_u64(seed);
    let burst_end_sec = burst_start_sec + burst_len_sec;
    let mut t = 0.0f64;
    (0..n)
        .map(|_| {
            let rate = if t >= burst_start_sec && t < burst_end_sec {
                burst_rate_per_sec
            } else {
                base_rate_per_sec
            };
            let u = rng.random_range(0..u64::MAX) as f64 / u64::MAX as f64;
            t += -(1.0 - u).ln() / rate;
            (t * 1e9) as u64
        })
        .collect()
}

/// Generates `n` `(tenant, endpoint pair)` requests from a multi-tenant
/// mix: `tenants` tenants share the serving runtime, each with its own
/// zipf-skewed hot set (hot-key identity is offset per tenant, so tenants
/// mostly don't share cache entries), and tenant `0` is **abusive** — it
/// submits `abuse_factor` times a fair tenant's share of the stream. This
/// is the workload that motivates per-tenant admission: without isolation
/// the abusive tenant's queue depth taxes every well-behaved tenant's
/// latency.
pub fn multi_tenant_pair_requests(
    graph: &Graph,
    n: usize,
    tenants: usize,
    skew: f64,
    abuse_factor: usize,
    seed: u64,
) -> Vec<(usize, (Val, Val))> {
    assert!(tenants > 0, "need at least one tenant");
    assert!(abuse_factor > 0, "abuse factor must be at least 1 (fair)");
    let mut rng = StdRng::seed_from_u64(seed);
    let sampler = ZipfSampler::new(graph.num_vertices, skew);
    // Tenant weights: the abusive tenant 0 counts `abuse_factor` shares,
    // every other tenant one share.
    let total_shares = abuse_factor + (tenants - 1);
    // Per-tenant hot-set offset, as in the drifting generator: distinct
    // tenants get (mostly) disjoint heavy hitters.
    let stride = (graph.num_vertices / tenants).max(1);
    (0..n)
        .map(|_| {
            let share = rng.random_range(0..total_shares as u64) as usize;
            let tenant = if share < abuse_factor {
                0
            } else {
                share - abuse_factor + 1
            };
            let offset = tenant * stride;
            let u = (sampler.sample(&mut rng) + offset) % graph.num_vertices;
            let v = (sampler.sample(&mut rng) + offset) % graph.num_vertices;
            (tenant, (u as Val, v as Val))
        })
        .collect()
}

/// Generates `n` access-request keys whose zipf distribution **drifts**:
/// the stream is cut into windows of `rotate_every` requests, the skew
/// interpolates linearly from `skew_from` to `skew_to` across the windows,
/// and each window rotates *which* vertices are the hot ranks. The drift
/// defeats any cache warmed on an earlier window's heavy hitters — each
/// rotation forces fresh cold probes mid-stream, the workload shape that
/// keeps a serving tail alive even after warm-up.
pub fn drifting_zipf_pair_requests(
    graph: &Graph,
    n: usize,
    skew_from: f64,
    skew_to: f64,
    rotate_every: usize,
    seed: u64,
) -> Vec<(Val, Val)> {
    assert!(rotate_every > 0, "window must be positive");
    let mut rng = StdRng::seed_from_u64(seed);
    let num_windows = n.div_ceil(rotate_every).max(1);
    // Hot-key identity shifts by a fixed stride per window, so distinct
    // windows have (mostly) disjoint heavy hitters.
    let stride = (graph.num_vertices / num_windows).max(1);
    let mut out = Vec::with_capacity(n);
    for w in 0..num_windows {
        let frac = if num_windows == 1 {
            0.0
        } else {
            w as f64 / (num_windows - 1) as f64
        };
        let skew = skew_from + (skew_to - skew_from) * frac;
        let sampler = ZipfSampler::new(graph.num_vertices, skew);
        let offset = w * stride;
        for _ in (w * rotate_every)..((w + 1) * rotate_every).min(n) {
            let u = (sampler.sample(&mut rng) + offset) % graph.num_vertices;
            let v = (sampler.sample(&mut rng) + offset) % graph.num_vertices;
            out.push((u as Val, v as Val));
        }
    }
    out
}

/// The combined open-loop stream: [`poisson_arrivals_ns`] zipped with
/// [`drifting_zipf_pair_requests`] — `(arrival offset ns, endpoint key)`
/// pairs ready for an open-loop driver to replay against a serving
/// runtime.
pub fn open_loop_pair_stream(
    graph: &Graph,
    n: usize,
    rate_per_sec: f64,
    skew_from: f64,
    skew_to: f64,
    rotate_every: usize,
    seed: u64,
) -> Vec<(u64, (Val, Val))> {
    let arrivals = poisson_arrivals_ns(n, rate_per_sec, seed);
    let keys = drifting_zipf_pair_requests(
        graph,
        n,
        skew_from,
        skew_to,
        rotate_every,
        // Decorrelate the key stream from the arrival process.
        seed ^ 0x9E37_79B9_7F4A_7C15,
    );
    arrivals.into_iter().zip(keys).collect()
}

/// The shard a routing-key value belongs to under hash partitioning. This
/// single function is the partition invariant shared by the `cqap-shard`
/// data partitioner and these workload helpers — a request stream split
/// with [`partition_by_shard`] lands each request on the shard that owns
/// its key.
///
/// The hash is mapped to `0..shards` by multiply-shift over the *high*
/// bits (Lemire's range reduction) rather than `% shards`: the Fx hash is
/// multiplicative, so its low bits echo the key's low bits — with
/// `% 2` shard placement would literally be key parity, and any stride in
/// the key space (ids allocated in steps of 2 or 4) would starve shards.
pub fn shard_of_key(key: Val, shards: usize) -> usize {
    assert!(shards > 0, "need at least one shard");
    ((u128::from(cqap_common::hash::hash_u64(key)) * shards as u128) >> 64) as usize
}

/// Splits a request stream into `shards` per-shard streams by a routing-key
/// function, preserving relative order within each shard (the order a
/// per-shard runtime would observe).
pub fn partition_by_shard<T>(
    items: Vec<T>,
    shards: usize,
    key: impl Fn(&T) -> Val,
) -> Vec<Vec<T>> {
    assert!(shards > 0, "need at least one shard");
    let mut out: Vec<Vec<T>> = (0..shards).map(|_| Vec::new()).collect();
    for item in items {
        let shard = shard_of_key(key(&item), shards);
        out[shard].push(item);
    }
    out
}

/// Inverse-CDF sampler for the zipf distribution over `0..n` (rank `i` has
/// weight `1 / (i+1)^skew`). Build cost is O(n), sampling is O(log n).
struct ZipfSampler {
    cdf: Vec<f64>,
}

impl ZipfSampler {
    fn new(n: usize, skew: f64) -> Self {
        assert!(n > 0, "cannot sample from an empty domain");
        assert!(skew >= 0.0, "negative skew is not meaningful");
        let mut cdf = Vec::with_capacity(n);
        let mut total = 0.0;
        for rank in 0..n {
            total += 1.0 / ((rank + 1) as f64).powf(skew);
            cdf.push(total);
        }
        ZipfSampler { cdf }
    }

    fn sample(&self, rng: &mut StdRng) -> usize {
        let total = *self.cdf.last().expect("non-empty domain");
        let target = (rng.random_range(0..u64::MAX) as f64 / u64::MAX as f64) * total;
        self.cdf.partition_point(|&c| c < target).min(self.cdf.len() - 1)
    }
}

/// Convenience: the access [`VarSet`] consisting of the first and last
/// variable of a k-path query.
pub fn path_endpoints(k: usize) -> VarSet {
    VarSet::from_iter([0, k])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_graph_deterministic_and_distinct() {
        let g1 = Graph::random(100, 500, 7);
        let g2 = Graph::random(100, 500, 7);
        assert_eq!(g1.edges, g2.edges);
        assert_eq!(g1.len(), 500);
        let set: cqap_common::FxHashSet<_> = g1.edges.iter().collect();
        assert_eq!(set.len(), 500);
        assert!(g1.edges.iter().all(|&(u, v)| u != v));
    }

    #[test]
    fn random_graph_caps_at_max_edges() {
        let g = Graph::random(3, 100, 1);
        assert_eq!(g.len(), 6); // 3 * 2 possible directed edges
    }

    #[test]
    fn skewed_graph_has_hubs() {
        let g = Graph::skewed(1000, 2000, 5, 200, 11);
        assert_eq!(g.len(), 2000);
        let r = g.as_relation("R", 0, 1);
        let deg = r
            .max_degree(VarSet::singleton(0), VarSet::from_iter([0, 1]))
            .unwrap();
        assert!(deg >= 150, "expected a hub with high degree, got {deg}");
    }

    #[test]
    fn path_database() {
        let g = Graph::random(50, 200, 3);
        let db = g.as_path_database(3);
        assert_eq!(db.num_relations(), 3);
        assert_eq!(db.size(), 200);
        assert!(db.relation("R2").is_some());
        assert_eq!(db.relation("R2").unwrap().schema().vars(), &[1, 2]);
    }

    #[test]
    fn zipf_family_skew() {
        let f = SetFamily::zipf(50, 10_000, 1000, 1.0, 5);
        let r = f.as_relation("R", 4, 0);
        // Set 0 should be much larger than set 49.
        let idx = cqap_relation::HashIndex::build(&r, VarSet::singleton(0)).unwrap();
        let d0 = idx.degree(&Tuple::unary(0));
        let d49 = idx.degree(&Tuple::unary(49));
        assert!(d0 > 5 * d49.max(1), "d0={d0}, d49={d49}");
    }

    #[test]
    fn requests() {
        let g = Graph::random(100, 300, 9);
        let reqs = graph_pair_requests(&g, 64, 1);
        assert_eq!(reqs.len(), 64);
        let f = SetFamily::zipf(10, 100, 20, 0.5, 2);
        let ts = set_tuple_requests(&f, 3, 16, 4);
        assert_eq!(ts.len(), 16);
        assert!(ts.iter().all(|t| t.arity() == 3));
        assert!(ts
            .iter()
            .all(|t| t.as_slice().iter().all(|&v| (v as usize) < f.num_sets)));
    }

    #[test]
    fn endpoints_helper() {
        assert_eq!(path_endpoints(3), VarSet::from_iter([0, 3]));
    }

    #[test]
    fn zipf_requests_are_skewed_and_deterministic() {
        let g = Graph::random(200, 800, 3);
        let a = zipf_pair_requests(&g, 2_000, 1.1, 7);
        let b = zipf_pair_requests(&g, 2_000, 1.1, 7);
        assert_eq!(a, b, "deterministic given seed");
        assert!(a.iter().all(|&(u, v)| (u as usize) < 200 && (v as usize) < 200));
        // Rank-0 keys dominate a skewed stream.
        let zero_sources = a.iter().filter(|&&(u, _)| u == 0).count();
        let tail_sources = a.iter().filter(|&&(u, _)| u == 199).count();
        assert!(
            zero_sources > 10 * tail_sources.max(1),
            "skew missing: {zero_sources} vs {tail_sources}"
        );
        // Zero skew degenerates to roughly uniform.
        let uniform = zipf_pair_requests(&g, 2_000, 0.0, 7);
        let zero_uniform = uniform.iter().filter(|&&(u, _)| u == 0).count();
        assert!(zero_uniform < 60, "uniform stream has no hot key");
    }

    #[test]
    fn multi_tuple_requests_have_distinct_tuples() {
        let g = Graph::random(150, 600, 5);
        let requests = zipf_multi_requests(&g, 200, 6, 1.0, 9);
        assert_eq!(requests.len(), 200);
        for request in &requests {
            assert_eq!(request.len(), 6);
            let distinct: cqap_common::FxHashSet<_> = request.iter().collect();
            assert_eq!(distinct.len(), 6, "tuples deduplicated within a request");
        }
        assert_eq!(
            requests,
            zipf_multi_requests(&g, 200, 6, 1.0, 9),
            "deterministic given seed"
        );
    }

    #[test]
    fn shard_partition_is_total_and_order_preserving() {
        let g = Graph::random(100, 400, 3);
        let requests = graph_pair_requests(&g, 500, 7);
        for shards in [1, 2, 3, 7] {
            let parts = partition_by_shard(requests.clone(), shards, |&(u, _)| u);
            assert_eq!(parts.len(), shards);
            assert_eq!(parts.iter().map(Vec::len).sum::<usize>(), requests.len());
            for (shard, part) in parts.iter().enumerate() {
                // Every item landed on the shard that owns its key...
                assert!(part.iter().all(|&(u, _)| shard_of_key(u, shards) == shard));
                // ...and relative order within the shard is preserved.
                let expected: Vec<_> = requests
                    .iter()
                    .filter(|&&(u, _)| shard_of_key(u, shards) == shard)
                    .copied()
                    .collect();
                assert_eq!(part, &expected);
            }
        }
        // k = 1 is the identity partition.
        let whole = partition_by_shard(requests.clone(), 1, |&(u, _)| u);
        assert_eq!(whole[0], requests);
    }

    #[test]
    fn strided_keys_still_spread_across_shards() {
        // All-even keys: with `hash % k` placement over the multiplicative
        // Fx hash, k = 2 would reduce to key parity and starve shard 1.
        // The high-bits range reduction must keep both shards loaded.
        let keys: Vec<Val> = (0..1_000).map(|i| 2 * i).collect();
        for shards in [2usize, 4] {
            let mut counts = vec![0usize; shards];
            for &key in &keys {
                counts[shard_of_key(key, shards)] += 1;
            }
            for (shard, &count) in counts.iter().enumerate() {
                assert!(
                    count > keys.len() / shards / 4,
                    "shard {shard} starved under stride-2 keys: {counts:?}"
                );
            }
        }
    }

    #[test]
    fn poisson_arrivals_are_ordered_with_the_right_mean() {
        let a = poisson_arrivals_ns(10_000, 50_000.0, 13);
        assert_eq!(a, poisson_arrivals_ns(10_000, 50_000.0, 13), "deterministic");
        assert!(a.windows(2).all(|w| w[0] <= w[1]), "arrival times nondecrease");
        // Mean inter-arrival ≈ 1/rate = 20µs; the sample mean of 10k
        // exponentials is well within a factor of 1.25.
        let mean_ns = *a.last().unwrap() as f64 / a.len() as f64;
        assert!(
            (16_000.0..25_000.0).contains(&mean_ns),
            "mean inter-arrival {mean_ns} ns, expected ≈ 20_000"
        );
        // A 4x rate quarters the span.
        let fast = poisson_arrivals_ns(10_000, 200_000.0, 13);
        assert!(*fast.last().unwrap() < *a.last().unwrap() / 2);
    }

    #[test]
    fn drifting_zipf_rotates_the_hot_keys() {
        let g = Graph::random(200, 800, 3);
        let keys = drifting_zipf_pair_requests(&g, 4_000, 1.2, 1.2, 1_000, 21);
        assert_eq!(
            keys,
            drifting_zipf_pair_requests(&g, 4_000, 1.2, 1.2, 1_000, 21),
            "deterministic given seed"
        );
        assert!(keys.iter().all(|&(u, v)| (u as usize) < 200 && (v as usize) < 200));
        // The modal source key of the first window differs from the last
        // window's: the hot identity rotated.
        let modal = |window: &[(Val, Val)]| -> Val {
            let mut counts = cqap_common::FxHashMap::<Val, usize>::default();
            for &(u, _) in window {
                *counts.entry(u).or_insert(0) += 1;
            }
            counts.into_iter().max_by_key(|&(_, c)| c).unwrap().0
        };
        let first = modal(&keys[..1_000]);
        let last = modal(&keys[3_000..]);
        assert_ne!(first, last, "hot key rotated across windows");
        // And within a window the stream is genuinely skewed.
        let first_hits = keys[..1_000].iter().filter(|&&(u, _)| u == first).count();
        assert!(first_hits > 50, "window hot key dominates: {first_hits}");
    }

    #[test]
    fn open_loop_stream_zips_arrivals_and_keys() {
        let g = Graph::random(100, 400, 5);
        let stream = open_loop_pair_stream(&g, 500, 10_000.0, 0.8, 1.4, 100, 17);
        assert_eq!(stream.len(), 500);
        assert!(stream.windows(2).all(|w| w[0].0 <= w[1].0));
        assert_eq!(
            stream.iter().map(|&(at, _)| at).collect::<Vec<_>>(),
            poisson_arrivals_ns(500, 10_000.0, 17)
        );
    }

    #[test]
    fn flash_crowd_bursts_inside_the_window() {
        // 1k req/s baseline, 20k req/s burst over seconds [1, 2).
        let a = flash_crowd_arrivals_ns(10_000, 1_000.0, 20_000.0, 1.0, 1.0, 9);
        assert_eq!(
            a,
            flash_crowd_arrivals_ns(10_000, 1_000.0, 20_000.0, 1.0, 1.0, 9),
            "deterministic"
        );
        assert!(a.windows(2).all(|w| w[0] <= w[1]), "arrival times nondecrease");
        let in_window = |lo_s: f64, hi_s: f64| {
            a.iter()
                .filter(|&&t| (t as f64) >= lo_s * 1e9 && (t as f64) < hi_s * 1e9)
                .count()
        };
        let before = in_window(0.0, 1.0);
        let during = in_window(1.0, 2.0);
        // ≈1 000 arrivals in the baseline second, ≈20 000 offered in the
        // burst second (capped by n); the step must be unmistakable.
        assert!(before < 2 * during / 10, "burst dwarfs baseline: {before} vs {during}");
        assert!(during > 5_000, "burst window carries the mass: {during}");
        // With burst rate == base rate the generator degenerates to plain
        // Poisson arrivals.
        assert_eq!(
            flash_crowd_arrivals_ns(500, 4_000.0, 4_000.0, 0.5, 1.0, 13),
            poisson_arrivals_ns(500, 4_000.0, 13)
        );
    }

    #[test]
    fn multi_tenant_mix_is_skewed_toward_the_abuser() {
        let g = Graph::random(200, 800, 3);
        let reqs = multi_tenant_pair_requests(&g, 8_000, 4, 1.2, 6, 11);
        assert_eq!(
            reqs,
            multi_tenant_pair_requests(&g, 8_000, 4, 1.2, 6, 11),
            "deterministic given seed"
        );
        let mut per_tenant = vec![0usize; 4];
        for &(tenant, (u, v)) in &reqs {
            assert!(tenant < 4);
            assert!((u as usize) < 200 && (v as usize) < 200);
            per_tenant[tenant] += 1;
        }
        // Tenant 0 holds 6 of 9 shares ≈ 2/3 of the stream; each fair
        // tenant ≈ 1/9.
        assert!(per_tenant[0] > 4_500, "abuser dominates: {per_tenant:?}");
        for tenant in 1..4 {
            assert!(
                (400..1_600).contains(&per_tenant[tenant]),
                "fair tenant share: {per_tenant:?}"
            );
        }
        // Tenants have (mostly) distinct hot keys: the abuser's modal
        // source differs from tenant 2's.
        let modal = |tenant: usize| -> Val {
            let mut counts = cqap_common::FxHashMap::<Val, usize>::default();
            for &(t, (u, _)) in &reqs {
                if t == tenant {
                    *counts.entry(u).or_insert(0) += 1;
                }
            }
            counts.into_iter().max_by_key(|&(_, c)| c).unwrap().0
        };
        assert_ne!(modal(0), modal(2), "per-tenant hot sets are offset");
        // abuse_factor == 1 is a fair mix: every tenant within 2x of the
        // uniform share.
        let fair = multi_tenant_pair_requests(&g, 8_000, 4, 1.0, 1, 7);
        let mut counts = vec![0usize; 4];
        for &(t, _) in &fair {
            counts[t] += 1;
        }
        assert!(counts.iter().all(|&c| (1_000..4_000).contains(&c)), "{counts:?}");
    }

    #[test]
    fn batching_splits_and_preserves_order() {
        let batches = into_batches((0..10).collect::<Vec<_>>(), 4);
        assert_eq!(batches, vec![vec![0, 1, 2, 3], vec![4, 5, 6, 7], vec![8, 9]]);
        let whole = into_batches(vec![1, 2], 10);
        assert_eq!(whole, vec![vec![1, 2]]);
        assert!(into_batches(Vec::<u8>::new(), 3).is_empty());
    }
}
