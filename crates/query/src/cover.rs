//! Fractional edge covers and slack (Section 6.2).

use crate::hypergraph::Hypergraph;
use cqap_common::{CqapError, Rat, Result, VarSet};

/// A fractional edge cover `u = (u_F)_{F ∈ E}` of a hypergraph: one
/// non-negative rational weight per edge.
///
/// The cover *covers* a set `S` when `Σ_{F ∋ i} u_F ≥ 1` for every `i ∈ S`.
/// Its *slack* w.r.t. a set `A` (Section 6.2) is
/// `α(u, A) = min_{i ∉ A} Σ_{F ∋ i} u_F` — the factor by which the cover can
/// be scaled down while still covering the variables outside `A`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FractionalEdgeCover {
    weights: Vec<Rat>,
}

impl FractionalEdgeCover {
    /// Creates a cover from per-edge weights (in hypergraph edge order).
    ///
    /// # Errors
    /// Returns an error if a weight is negative or the number of weights
    /// differs from the number of edges.
    pub fn new(hypergraph: &Hypergraph, weights: Vec<Rat>) -> Result<Self> {
        if weights.len() != hypergraph.num_edges() {
            return Err(CqapError::InvalidQuery(format!(
                "expected {} edge weights, got {}",
                hypergraph.num_edges(),
                weights.len()
            )));
        }
        if weights.iter().any(|w| w.is_negative()) {
            return Err(CqapError::InvalidQuery(
                "edge cover weights must be non-negative".into(),
            ));
        }
        Ok(FractionalEdgeCover { weights })
    }

    /// Creates the all-ones cover (weight 1 on every edge).
    pub fn all_ones(hypergraph: &Hypergraph) -> Self {
        FractionalEdgeCover {
            weights: vec![Rat::ONE; hypergraph.num_edges()],
        }
    }

    /// Weight of edge `i`.
    pub fn weight(&self, i: usize) -> Rat {
        self.weights[i]
    }

    /// All weights.
    pub fn weights(&self) -> &[Rat] {
        &self.weights
    }

    /// Total weight `Σ_F u_F` (written `u*` in the paper).
    pub fn total_weight(&self) -> Rat {
        self.weights
            .iter()
            .fold(Rat::ZERO, |acc, &w| acc + w)
    }

    /// The coverage of a single variable: `Σ_{F ∋ v} u_F`.
    pub fn coverage(&self, hypergraph: &Hypergraph, v: usize) -> Rat {
        hypergraph
            .edges()
            .iter()
            .zip(&self.weights)
            .filter(|(e, _)| e.contains(v))
            .fold(Rat::ZERO, |acc, (_, &w)| acc + w)
    }

    /// Whether the cover covers every variable of `set` (each with total
    /// incident weight ≥ 1).
    pub fn covers(&self, hypergraph: &Hypergraph, set: VarSet) -> bool {
        set.iter()
            .all(|v| self.coverage(hypergraph, v) >= Rat::ONE)
    }

    /// The slack `α(u, A) = min_{v ∉ A} Σ_{F ∋ v} u_F` (Section 6.2). When
    /// every variable is in `A`, the slack is defined here as `+∞`
    /// represented by `None`.
    pub fn slack(&self, hypergraph: &Hypergraph, access: VarSet) -> Option<Rat> {
        hypergraph
            .vertices()
            .difference(access)
            .iter()
            .map(|v| self.coverage(hypergraph, v))
            .min()
    }

    /// The scaled cover `u / α(u, A)`, which covers `[n] \ A` with weight
    /// exactly 1 at the minimizing variable. Returns `None` when the slack
    /// is undefined or zero.
    pub fn scaled_by_slack(
        &self,
        hypergraph: &Hypergraph,
        access: VarSet,
    ) -> Option<FractionalEdgeCover> {
        let alpha = self.slack(hypergraph, access)?;
        if alpha.is_zero() {
            return None;
        }
        Some(FractionalEdgeCover {
            weights: self.weights.iter().map(|&w| w / alpha).collect(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqap_common::rat::rat;
    use cqap_common::vars;

    /// The k-set-disjointness hypergraph for k = 3:
    /// R(y,x1), R(y,x2), R(y,x3) with y = x4.
    fn kset3() -> Hypergraph {
        Hypergraph::new(4, vec![vars![4, 1], vars![4, 2], vars![4, 3]]).unwrap()
    }

    #[test]
    fn validation() {
        let h = kset3();
        assert!(FractionalEdgeCover::new(&h, vec![Rat::ONE; 2]).is_err());
        assert!(FractionalEdgeCover::new(&h, vec![Rat::ONE, Rat::ONE, rat(-1, 2)]).is_err());
        assert!(FractionalEdgeCover::new(&h, vec![Rat::ONE; 3]).is_ok());
    }

    #[test]
    fn coverage_and_covers() {
        let h = kset3();
        let u = FractionalEdgeCover::all_ones(&h);
        // y = x4 appears in all three edges.
        assert_eq!(u.coverage(&h, 3), Rat::int(3));
        assert_eq!(u.coverage(&h, 0), Rat::ONE);
        assert!(u.covers(&h, vars![1, 2, 3, 4]));
        assert_eq!(u.total_weight(), Rat::int(3));

        let half = FractionalEdgeCover::new(&h, vec![rat(1, 2); 3]).unwrap();
        assert!(!half.covers(&h, vars![1]));
        assert!(half.covers(&h, vars![4]));
    }

    #[test]
    fn slack_matches_example_62() {
        // Example 6.2: for k-set disjointness with u_j = 1 for all j, the
        // slack w.r.t. [k] (the access variables x1..xk) is k, because only
        // y = x_{k+1} is outside A and it is covered k times.
        let h = kset3();
        let u = FractionalEdgeCover::all_ones(&h);
        assert_eq!(u.slack(&h, vars![1, 2, 3]), Some(Rat::int(3)));
        // Scaling by the slack yields weight 1/3 per edge, still covering y.
        let scaled = u.scaled_by_slack(&h, vars![1, 2, 3]).unwrap();
        assert_eq!(scaled.weight(0), rat(1, 3));
        assert!(scaled.covers(&h, vars![4]));
    }

    #[test]
    fn slack_on_path_query() {
        // 3-path R1(x1,x2), R2(x2,x3), R3(x3,x4), A = {x1,x4}.
        let h = Hypergraph::new(4, vec![vars![1, 2], vars![2, 3], vars![3, 4]]).unwrap();
        let u = FractionalEdgeCover::all_ones(&h);
        // x2 and x3 are each covered twice, so the slack is 2.
        assert_eq!(u.slack(&h, vars![1, 4]), Some(Rat::int(2)));
        // With all variables in A the slack is undefined.
        assert_eq!(u.slack(&h, vars![1, 2, 3, 4]), None);
    }

    #[test]
    fn zero_slack_scaling() {
        let h = Hypergraph::new(2, vec![vars![1], vars![2]]).unwrap();
        let u = FractionalEdgeCover::new(&h, vec![Rat::ONE, Rat::ZERO]).unwrap();
        // x2's coverage is 0 so the slack w.r.t. {x1} is 0 and scaling fails.
        assert_eq!(u.slack(&h, vars![1]), Some(Rat::ZERO));
        assert!(u.scaled_by_slack(&h, vars![1]).is_none());
    }
}
