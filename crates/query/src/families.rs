//! Constructors for the query families studied in the paper.
//!
//! Variable numbering follows the paper exactly (rendered 1-based in
//! `Display`, stored 0-based):
//!
//! * [`k_reachability`] — `φ_k(x_1, x_{k+1} | x_1, x_{k+1}) ← ⋀_i R(x_i, x_{i+1})`
//!   (Example 2.3; the self-join over one edge relation `R`).
//! * [`k_path_distinct`] — the same body but with distinct relation names
//!   `R_1..R_k` (the form used in Example 3.3 and Appendix E).
//! * [`k_set_disjointness`] / [`k_set_intersection`] — Example 2.2 /
//!   Section 6.1, over `R(y, x)` meaning "element y belongs to set x".
//! * [`square`] — Example 5.2: opposite corners of a 4-cycle.
//! * [`triangle_edge`] — Example E.4: Boolean triangle with empty access
//!   pattern.
//! * [`hierarchical_two_level`] — the Appendix F example
//!   (Figure 6a): four ternary relations sharing a root variable.

use crate::cq::{Atom, ConjunctiveQuery};
use crate::cqap::Cqap;
use cqap_common::VarSet;

/// The k-reachability CQAP over a single edge relation `R`:
/// `φ_k(x_1, x_{k+1} | x_1, x_{k+1}) ← R(x_1,x_2) ∧ ... ∧ R(x_k, x_{k+1})`.
///
/// # Panics
/// Panics if `k == 0` or `k + 1 > 64`.
pub fn k_reachability(k: usize) -> Cqap {
    assert!(k >= 1, "k-reachability requires k >= 1");
    let atoms = (0..k)
        .map(|i| Atom::new("R", vec![i, i + 1]).expect("distinct vars"))
        .collect();
    let head = VarSet::from_iter([0, k]);
    let cq = ConjunctiveQuery::new(format!("reach{k}"), k + 1, atoms, head)
        .expect("valid k-path query");
    Cqap::new(cq, head).expect("A ⊆ vars")
}

/// The k-path CQAP with *distinct* relation names `R1..Rk`, as used in the
/// worked examples of Section 3 and Appendix E. Structurally identical to
/// [`k_reachability`] but each atom reads its own relation, which lets
/// workloads vary the levels independently.
pub fn k_path_distinct(k: usize) -> Cqap {
    assert!(k >= 1);
    let atoms = (0..k)
        .map(|i| Atom::new(format!("R{}", i + 1), vec![i, i + 1]).expect("distinct vars"))
        .collect();
    let head = VarSet::from_iter([0, k]);
    let cq =
        ConjunctiveQuery::new(format!("path{k}"), k + 1, atoms, head).expect("valid k-path query");
    Cqap::new(cq, head).expect("A ⊆ vars")
}

/// The Boolean k-set-disjointness CQAP (Example 2.2, eq. (1)):
/// `φ( | x_1..x_k) ← ⋀_i R(y, x_i)` with `y = x_{k+1}`.
///
/// The head is empty, so after the paper's `H ⊇ A` normalization the head
/// becomes the access pattern itself.
pub fn k_set_disjointness(k: usize) -> Cqap {
    assert!(k >= 1);
    let y = k; // the element variable x_{k+1}
    let atoms = (0..k)
        .map(|i| Atom::new("R", vec![y, i]).expect("distinct vars"))
        .collect();
    let access = VarSet::from_iter(0..k);
    let cq = ConjunctiveQuery::new(format!("setdisj{k}"), k + 1, atoms, VarSet::EMPTY)
        .expect("valid query");
    Cqap::new(cq, access).expect("A ⊆ vars")
}

/// The non-Boolean k-set-intersection CQAP (Example 2.2, eq. (2) /
/// Section 6.1): like [`k_set_disjointness`] but the element variable `y`
/// is returned.
pub fn k_set_intersection(k: usize) -> Cqap {
    assert!(k >= 1);
    let y = k;
    let atoms = (0..k)
        .map(|i| Atom::new("R", vec![y, i]).expect("distinct vars"))
        .collect();
    let access = VarSet::from_iter(0..k);
    let head = access.insert(y);
    let cq =
        ConjunctiveQuery::new(format!("setint{k}"), k + 1, atoms, head).expect("valid query");
    Cqap::new(cq, access).expect("A ⊆ vars")
}

/// The square CQAP (Example 5.2): given two vertices, decide whether they
/// are opposite corners of a 4-cycle.
/// `φ(x1,x3 | x1,x3) ← R1(x1,x2) ∧ R2(x2,x3) ∧ R3(x3,x4) ∧ R4(x4,x1)`.
///
/// When `distinct_relations` is false all four atoms read the same relation
/// `R` (a single graph), matching Example E.5.
pub fn square(distinct_relations: bool) -> Cqap {
    let name = |i: usize| {
        if distinct_relations {
            format!("R{i}")
        } else {
            "R".to_string()
        }
    };
    let atoms = vec![
        Atom::new(name(1), vec![0, 1]).unwrap(),
        Atom::new(name(2), vec![1, 2]).unwrap(),
        Atom::new(name(3), vec![2, 3]).unwrap(),
        Atom::new(name(4), vec![3, 0]).unwrap(),
    ];
    let head = VarSet::from_iter([0, 2]);
    let cq = ConjunctiveQuery::new("square", 4, atoms, head).expect("valid square query");
    Cqap::new(cq, head).expect("A ⊆ vars")
}

/// The triangle CQAP of Example E.4 with an *empty* access pattern:
/// `φ(x1,x3 | ∅) ← R(x1,x2) ∧ R(x2,x3) ∧ R(x3,x1)`.
pub fn triangle_edge() -> Cqap {
    let atoms = vec![
        Atom::new("R", vec![0, 1]).unwrap(),
        Atom::new("R", vec![1, 2]).unwrap(),
        Atom::new("R", vec![2, 0]).unwrap(),
    ];
    let head = VarSet::from_iter([0, 2]);
    let cq = ConjunctiveQuery::new("triangle", 3, atoms, head).expect("valid triangle query");
    Cqap::new(cq, VarSet::EMPTY).expect("empty access pattern")
}

/// The Boolean hierarchical CQAP of Appendix F (Figure 6a):
///
/// `φ(Z | Z) ← R(x,y1,z1) ∧ S(x,y1,z2) ∧ T(x,y2,z3) ∧ U(x,y2,z4)`
/// where `Z = {z1,z2,z3,z4}` is the access pattern.
///
/// Variable layout: `x = x1`, `y1 = x2`, `y2 = x3`, `z1..z4 = x4..x7`.
pub fn hierarchical_two_level() -> Cqap {
    let x = 0;
    let y1 = 1;
    let y2 = 2;
    let z = [3, 4, 5, 6];
    let atoms = vec![
        Atom::new("R", vec![x, y1, z[0]]).unwrap(),
        Atom::new("S", vec![x, y1, z[1]]).unwrap(),
        Atom::new("T", vec![x, y2, z[2]]).unwrap(),
        Atom::new("U", vec![x, y2, z[3]]).unwrap(),
    ];
    let access = VarSet::from_iter(z);
    let cq = ConjunctiveQuery::new("hier", 7, atoms, access).expect("valid hierarchical query");
    Cqap::new(cq, access).expect("A ⊆ vars")
}

/// A star CQAP `φ(x_0 | x_1..x_k) ← ⋀_i R_i(x_0, x_i)` used by tests of the
/// decomposition machinery (hierarchical, acyclic, one shared variable).
pub fn star(k: usize) -> Cqap {
    assert!(k >= 1);
    let atoms = (1..=k)
        .map(|i| Atom::new(format!("R{i}"), vec![0, i]).expect("distinct vars"))
        .collect();
    let access = VarSet::from_iter(1..=k);
    let head = access.insert(0);
    let cq = ConjunctiveQuery::new(format!("star{k}"), k + 1, atoms, head).expect("valid star");
    Cqap::new(cq, access).expect("A ⊆ vars")
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqap_common::vars;

    #[test]
    fn reachability_shapes() {
        for k in 1..=6 {
            let q = k_reachability(k);
            assert_eq!(q.num_vars(), k + 1);
            assert_eq!(q.cq().atoms().len(), k);
            assert_eq!(q.access(), VarSet::from_iter([0, k]));
            assert_eq!(q.head(), q.access());
            assert!(q.is_boolean_given_access());
            // Every atom reads the same relation R.
            assert_eq!(q.cq().relation_names(), vec!["R"]);
        }
    }

    #[test]
    fn three_reachability_matches_example_33() {
        let q = k_path_distinct(3);
        assert_eq!(q.to_string().matches("∧").count(), 2);
        assert_eq!(q.access(), vars![1, 4]);
        assert_eq!(q.cq().relation_names(), vec!["R1", "R2", "R3"]);
        let h = q.hypergraph();
        assert_eq!(h.edges(), &[vars![1, 2], vars![2, 3], vars![3, 4]]);
    }

    #[test]
    fn set_disjointness_and_intersection() {
        let d = k_set_disjointness(3);
        assert_eq!(d.declared_head(), VarSet::EMPTY);
        assert_eq!(d.head(), vars![1, 2, 3]); // normalized to A
        assert!(d.is_boolean_given_access());
        assert!(d.cq().is_hierarchical());

        let i = k_set_intersection(3);
        assert_eq!(i.head(), vars![1, 2, 3, 4]);
        assert_eq!(i.free_output(), vars![4]);
        assert!(!i.is_boolean_given_access());
    }

    #[test]
    fn square_and_triangle() {
        let s = square(true);
        assert_eq!(s.num_vars(), 4);
        assert_eq!(s.access(), vars![1, 3]);
        assert_eq!(s.cq().relation_names().len(), 4);
        let s1 = square(false);
        assert_eq!(s1.cq().relation_names(), vec!["R"]);

        let t = triangle_edge();
        assert_eq!(t.access(), VarSet::EMPTY);
        assert_eq!(t.head(), vars![1, 3]);
    }

    #[test]
    fn hierarchical_query_is_hierarchical() {
        let h = hierarchical_two_level();
        assert!(h.cq().is_hierarchical());
        assert_eq!(h.access().len(), 4);
        assert_eq!(h.num_vars(), 7);
        assert!(h.is_boolean_given_access());
    }

    #[test]
    fn star_query() {
        let s = star(3);
        assert!(s.cq().is_hierarchical());
        assert_eq!(s.free_output(), vars![1]);
    }
}
