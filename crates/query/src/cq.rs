//! Conjunctive queries.

use crate::hypergraph::Hypergraph;
use cqap_common::{CqapError, Result, Var, VarSet};
use std::fmt;

/// An atom `R(x_{i1}, ..., x_{ik})` of a conjunctive query: a relation name
/// plus an ordered list of variables. Repeated variables inside an atom are
/// not supported (none of the paper's queries need them); different atoms
/// may refer to the same relation name (self-joins), as in the k-path query
/// over a single edge relation.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Atom {
    /// Name of the relation this atom reads.
    pub relation: String,
    /// Ordered variables of the atom.
    pub vars: Vec<Var>,
}

impl Atom {
    /// Creates an atom.
    ///
    /// # Errors
    /// Returns an error if a variable is repeated.
    pub fn new(relation: impl Into<String>, vars: Vec<Var>) -> Result<Self> {
        let mut seen = VarSet::EMPTY;
        for &v in &vars {
            if seen.contains(v) {
                return Err(CqapError::InvalidQuery(format!(
                    "repeated variable x{} in atom",
                    v + 1
                )));
            }
            seen = seen.insert(v);
        }
        Ok(Atom {
            relation: relation.into(),
            vars,
        })
    }

    /// The variables of the atom as a set.
    pub fn varset(&self) -> VarSet {
        VarSet::from_iter(self.vars.iter().copied())
    }

    /// Arity of the atom.
    pub fn arity(&self) -> usize {
        self.vars.len()
    }
}

impl fmt::Debug for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.relation)?;
        for (i, v) in self.vars.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "x{}", v + 1)?;
        }
        write!(f, ")")
    }
}

/// A conjunctive query `φ(x_H) ← ⋀_{F ∈ E} R_F(x_F)` over variables
/// `0..num_vars` with head variables `H`.
#[derive(Clone, PartialEq, Eq)]
pub struct ConjunctiveQuery {
    name: String,
    num_vars: usize,
    atoms: Vec<Atom>,
    head: VarSet,
}

impl ConjunctiveQuery {
    /// Creates a conjunctive query.
    ///
    /// # Errors
    /// Returns an error if the head or an atom mentions a variable `≥
    /// num_vars`, if a body variable never occurs in an atom, or if the
    /// body is empty.
    pub fn new(
        name: impl Into<String>,
        num_vars: usize,
        atoms: Vec<Atom>,
        head: VarSet,
    ) -> Result<Self> {
        if atoms.is_empty() {
            return Err(CqapError::InvalidQuery("query has no atoms".into()));
        }
        let universe = VarSet::prefix(num_vars);
        if !head.is_subset(universe) {
            return Err(CqapError::InvalidQuery(format!(
                "head {head} mentions a variable outside [{num_vars}]"
            )));
        }
        let mut covered = VarSet::EMPTY;
        for a in &atoms {
            let vs = a.varset();
            if !vs.is_subset(universe) {
                return Err(CqapError::InvalidQuery(format!(
                    "atom {a} mentions a variable outside [{num_vars}]"
                )));
            }
            covered = covered.union(vs);
        }
        if covered != universe {
            return Err(CqapError::InvalidQuery(format!(
                "variables {} never occur in the body",
                universe.difference(covered)
            )));
        }
        Ok(ConjunctiveQuery {
            name: name.into(),
            num_vars,
            atoms,
            head,
        })
    }

    /// The query's name (used in printed reports).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// All variables `[n]`.
    pub fn all_vars(&self) -> VarSet {
        VarSet::prefix(self.num_vars)
    }

    /// The atoms of the body.
    pub fn atoms(&self) -> &[Atom] {
        &self.atoms
    }

    /// The head variables `H`.
    pub fn head(&self) -> VarSet {
        self.head
    }

    /// Whether the query is *full* (`H = [n]`).
    pub fn is_full(&self) -> bool {
        self.head == self.all_vars()
    }

    /// Whether the query is *Boolean* (`H = ∅`).
    pub fn is_boolean(&self) -> bool {
        self.head.is_empty()
    }

    /// The query hypergraph (one edge per atom).
    pub fn hypergraph(&self) -> Hypergraph {
        Hypergraph::new(self.num_vars, self.atoms.iter().map(Atom::varset).collect())
            .expect("atoms validated at construction")
    }

    /// The distinct relation names referenced by the body.
    pub fn relation_names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.atoms.iter().map(|a| a.relation.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        names
    }

    /// Returns a copy of the query with a different head.
    pub fn with_head(&self, head: VarSet) -> Result<Self> {
        ConjunctiveQuery::new(self.name.clone(), self.num_vars, self.atoms.clone(), head)
    }

    /// Whether the query is *hierarchical*: for any two variables, the sets
    /// of atoms containing them are either disjoint or one contains the
    /// other (Appendix F).
    pub fn is_hierarchical(&self) -> bool {
        let atom_sets: Vec<VarSet> = self.atoms.iter().map(Atom::varset).collect();
        let atoms_of = |v: Var| -> u64 {
            let mut mask = 0u64;
            for (i, a) in atom_sets.iter().enumerate() {
                if a.contains(v) {
                    mask |= 1 << i;
                }
            }
            mask
        };
        let vars: Vec<Var> = self.all_vars().to_vec();
        for (i, &u) in vars.iter().enumerate() {
            for &v in &vars[i + 1..] {
                let a = atoms_of(u);
                let b = atoms_of(v);
                let disjoint = a & b == 0;
                let contained = a & b == a || a & b == b;
                if !(disjoint || contained) {
                    return false;
                }
            }
        }
        true
    }
}

impl fmt::Debug for ConjunctiveQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for ConjunctiveQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.name)?;
        for (i, v) in self.head.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "x{}", v + 1)?;
        }
        write!(f, ") ← ")?;
        for (i, a) in self.atoms.iter().enumerate() {
            if i > 0 {
                write!(f, " ∧ ")?;
            }
            write!(f, "{a}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqap_common::vars;

    fn two_path() -> ConjunctiveQuery {
        ConjunctiveQuery::new(
            "phi2",
            3,
            vec![
                Atom::new("R1", vec![0, 1]).unwrap(),
                Atom::new("R2", vec![1, 2]).unwrap(),
            ],
            vars![1, 3],
        )
        .unwrap()
    }

    #[test]
    fn atom_validation() {
        assert!(Atom::new("R", vec![0, 0]).is_err());
        let a = Atom::new("R", vec![2, 0]).unwrap();
        assert_eq!(a.varset(), vars![1, 3]);
        assert_eq!(a.arity(), 2);
        assert_eq!(a.to_string(), "R(x3,x1)");
    }

    #[test]
    fn cq_validation() {
        assert!(two_path().head().contains(0));
        // head out of range
        assert!(ConjunctiveQuery::new(
            "q",
            2,
            vec![Atom::new("R", vec![0, 1]).unwrap()],
            vars![3]
        )
        .is_err());
        // uncovered variable
        assert!(ConjunctiveQuery::new(
            "q",
            3,
            vec![Atom::new("R", vec![0, 1]).unwrap()],
            vars![1]
        )
        .is_err());
        // empty body
        assert!(ConjunctiveQuery::new("q", 0, vec![], VarSet::EMPTY).is_err());
    }

    #[test]
    fn full_and_boolean() {
        let q = two_path();
        assert!(!q.is_full());
        assert!(!q.is_boolean());
        let full = q.with_head(vars![1, 2, 3]).unwrap();
        assert!(full.is_full());
        let boolean = q.with_head(VarSet::EMPTY).unwrap();
        assert!(boolean.is_boolean());
    }

    #[test]
    fn hypergraph_and_names() {
        let q = two_path();
        let h = q.hypergraph();
        assert_eq!(h.num_edges(), 2);
        assert_eq!(h.edges()[0], vars![1, 2]);
        assert_eq!(q.relation_names(), vec!["R1", "R2"]);
    }

    #[test]
    fn hierarchical_detection() {
        // R(y,x1) ∧ R(y,x2) is hierarchical (2-set-disjointness body).
        let q = ConjunctiveQuery::new(
            "setdisj",
            3,
            vec![
                Atom::new("R", vec![2, 0]).unwrap(),
                Atom::new("R", vec![2, 1]).unwrap(),
            ],
            vars![1, 2],
        )
        .unwrap();
        assert!(q.is_hierarchical());

        // The 3-path is NOT hierarchical (x2 and x3 share atom R2 but each
        // also has a private atom).
        let path = ConjunctiveQuery::new(
            "phi3",
            4,
            vec![
                Atom::new("R1", vec![0, 1]).unwrap(),
                Atom::new("R2", vec![1, 2]).unwrap(),
                Atom::new("R3", vec![2, 3]).unwrap(),
            ],
            vars![1, 4],
        )
        .unwrap();
        assert!(!path.is_hierarchical());
    }

    #[test]
    fn display() {
        let q = two_path();
        let s = q.to_string();
        assert!(s.contains("phi2(x1,x3)"));
        assert!(s.contains("R1(x1,x2) ∧ R2(x2,x3)"));
    }
}
