//! Query hypergraphs.

use cqap_common::{CqapError, Result, Var, VarSet};
use std::fmt;

/// The hypergraph `H = ([n], E)` associated with a conjunctive query: the
/// vertices are the query variables `0..n` and each atom contributes the
/// hyperedge of its variables.
#[derive(Clone, PartialEq, Eq)]
pub struct Hypergraph {
    num_vars: usize,
    edges: Vec<VarSet>,
}

impl Hypergraph {
    /// Creates a hypergraph over `num_vars` variables with the given edges.
    ///
    /// # Errors
    /// Returns an error if an edge is empty or mentions a variable `≥
    /// num_vars`.
    pub fn new(num_vars: usize, edges: Vec<VarSet>) -> Result<Self> {
        let universe = VarSet::prefix(num_vars);
        for (i, e) in edges.iter().enumerate() {
            if e.is_empty() {
                return Err(CqapError::InvalidQuery(format!("edge {i} is empty")));
            }
            if !e.is_subset(universe) {
                return Err(CqapError::InvalidQuery(format!(
                    "edge {i} = {e} mentions a variable outside [{num_vars}]"
                )));
            }
        }
        Ok(Hypergraph { num_vars, edges })
    }

    /// Number of vertices (variables).
    #[inline]
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// The full vertex set `[n]`.
    #[inline]
    pub fn vertices(&self) -> VarSet {
        VarSet::prefix(self.num_vars)
    }

    /// The hyperedges, in atom order.
    #[inline]
    pub fn edges(&self) -> &[VarSet] {
        &self.edges
    }

    /// Number of hyperedges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// The edges containing variable `v`.
    pub fn edges_containing(&self, v: Var) -> impl Iterator<Item = (usize, VarSet)> + '_ {
        self.edges
            .iter()
            .enumerate()
            .filter(move |(_, e)| e.contains(v))
            .map(|(i, &e)| (i, e))
    }

    /// Whether `set` is contained in some hyperedge (i.e. the set is
    /// "covered" by an atom — the condition for a tree-decomposition bag to
    /// host an atom).
    pub fn some_edge_contains(&self, set: VarSet) -> bool {
        self.edges.iter().any(|e| set.is_subset(*e))
    }

    /// Whether every vertex appears in at least one edge.
    pub fn covers_all_vertices(&self) -> bool {
        let mut seen = VarSet::EMPTY;
        for e in &self.edges {
            seen = seen.union(*e);
        }
        self.vertices().is_subset(seen)
    }

    /// Whether two variables co-occur in some edge.
    pub fn adjacent(&self, u: Var, v: Var) -> bool {
        self.edges.iter().any(|e| e.contains(u) && e.contains(v))
    }

    /// The neighbours of a variable (vertices sharing an edge with it),
    /// including the variable itself.
    pub fn closed_neighborhood(&self, v: Var) -> VarSet {
        let mut out = VarSet::singleton(v);
        for e in &self.edges {
            if e.contains(v) {
                out = out.union(*e);
            }
        }
        out
    }
}

impl fmt::Debug for Hypergraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "H([{}], {{", self.num_vars)?;
        for (i, e) in self.edges.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{e}")?;
        }
        write!(f, "}})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqap_common::vars;

    fn three_path() -> Hypergraph {
        // R1(x1,x2), R2(x2,x3), R3(x3,x4)
        Hypergraph::new(4, vec![vars![1, 2], vars![2, 3], vars![3, 4]]).unwrap()
    }

    #[test]
    fn construction_and_validation() {
        let h = three_path();
        assert_eq!(h.num_vars(), 4);
        assert_eq!(h.num_edges(), 3);
        assert_eq!(h.vertices(), vars![1, 2, 3, 4]);
        assert!(Hypergraph::new(2, vec![VarSet::EMPTY]).is_err());
        assert!(Hypergraph::new(2, vec![vars![1, 3]]).is_err());
    }

    #[test]
    fn coverage_queries() {
        let h = three_path();
        assert!(h.some_edge_contains(vars![2, 3]));
        assert!(!h.some_edge_contains(vars![1, 3]));
        assert!(h.covers_all_vertices());
        let partial = Hypergraph::new(3, vec![vars![1, 2]]).unwrap();
        assert!(!partial.covers_all_vertices());
    }

    #[test]
    fn adjacency() {
        let h = three_path();
        assert!(h.adjacent(0, 1));
        assert!(!h.adjacent(0, 2));
        assert_eq!(h.closed_neighborhood(1), vars![1, 2, 3]);
        assert_eq!(h.edges_containing(2).count(), 2);
    }

    #[test]
    fn debug_format() {
        let h = three_path();
        let s = format!("{h:?}");
        assert!(s.contains("{x1,x2}"));
        assert!(s.contains("{x3,x4}"));
    }
}
