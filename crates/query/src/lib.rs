//! # cqap-query
//!
//! Conjunctive queries with access patterns (CQAPs) and everything needed to
//! describe them:
//!
//! * [`Hypergraph`] — the query hypergraph `H = ([n], E)`.
//! * [`Atom`] / [`ConjunctiveQuery`] — a CQ `φ(x_H) ← ⋀_F R_F(x_F)`.
//! * [`Cqap`] — a CQ with an access pattern `φ(x_H | x_A)` (Definition 2.1)
//!   and the *access CQ* obtained by conjoining an access request `Q_A`.
//! * [`FractionalEdgeCover`] — fractional edge covers and their *slack*
//!   `α(u, A)` (Section 6.2).
//! * [`families`] — constructors for every query family used in the paper:
//!   k-reachability / k-path, k-set disjointness and intersection, the
//!   triangle and square queries, and the Boolean hierarchical query of
//!   Appendix F.
//! * [`workload`] — synthetic data generators (random graphs, skewed graphs,
//!   set families, access-request streams) for the empirical reproduction.

pub mod cover;
pub mod cq;
pub mod cqap;
pub mod families;
pub mod hypergraph;
pub mod workload;

pub use cover::FractionalEdgeCover;
pub use cq::{Atom, ConjunctiveQuery};
pub use cqap::{AccessRequest, Cqap};
pub use hypergraph::Hypergraph;
