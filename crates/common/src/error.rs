//! Shared error type for the CQAP workspace.

use std::fmt;

/// Convenient result alias used throughout the workspace.
pub type Result<T, E = CqapError> = std::result::Result<T, E>;

/// Errors produced by the CQAP crates.
///
/// The workspace prefers returning `CqapError` over panicking for anything
/// that depends on user input (malformed queries, schema mismatches,
/// infeasible LPs, invalid decompositions). Internal invariant violations
/// still use `debug_assert!`/`panic!`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CqapError {
    /// A relation was used with a schema of unexpected arity or variables.
    SchemaMismatch {
        /// What the operation expected.
        expected: String,
        /// What it received.
        found: String,
    },
    /// A query refers to a variable that does not exist.
    UnknownVariable(String),
    /// A query or decomposition is structurally invalid.
    InvalidQuery(String),
    /// A tree decomposition violates one of its defining properties.
    InvalidDecomposition(String),
    /// A PMTD violates one of the properties of Definition 3.2.
    InvalidPmtd(String),
    /// The linear program was infeasible.
    LpInfeasible(String),
    /// The linear program was unbounded.
    LpUnbounded(String),
    /// An access request does not match the access pattern of the CQAP.
    AccessPatternMismatch {
        /// Expected arity of the access request.
        expected_arity: usize,
        /// Provided arity.
        found_arity: usize,
    },
    /// The requested space budget cannot be met.
    SpaceBudgetExceeded {
        /// Budget in tuples.
        budget: usize,
        /// Tuples that would be required.
        required: usize,
    },
    /// A serving runtime rejected the request because its admission
    /// queue was full (load shedding / admission timeout).
    Overloaded {
        /// Requests already admitted when this one was rejected.
        pending: usize,
        /// The configured admission bound.
        limit: usize,
    },
    /// A request's deadline passed before a backend probe could run;
    /// the work was dropped instead of served late.
    DeadlineExpired {
        /// How far past the deadline the request was when dropped,
        /// in nanoseconds.
        late_ns: u64,
    },
    /// Catch-all for other error conditions.
    Other(String),
}

impl CqapError {
    /// Whether this is an admission rejection ([`CqapError::Overloaded`]).
    #[inline]
    pub fn is_overloaded(&self) -> bool {
        matches!(self, CqapError::Overloaded { .. })
    }

    /// Whether this is a missed deadline ([`CqapError::DeadlineExpired`]).
    #[inline]
    pub fn is_deadline_expired(&self) -> bool {
        matches!(self, CqapError::DeadlineExpired { .. })
    }
}

impl fmt::Display for CqapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CqapError::SchemaMismatch { expected, found } => {
                write!(f, "schema mismatch: expected {expected}, found {found}")
            }
            CqapError::UnknownVariable(v) => write!(f, "unknown variable: {v}"),
            CqapError::InvalidQuery(msg) => write!(f, "invalid query: {msg}"),
            CqapError::InvalidDecomposition(msg) => {
                write!(f, "invalid tree decomposition: {msg}")
            }
            CqapError::InvalidPmtd(msg) => write!(f, "invalid PMTD: {msg}"),
            CqapError::LpInfeasible(msg) => write!(f, "linear program infeasible: {msg}"),
            CqapError::LpUnbounded(msg) => write!(f, "linear program unbounded: {msg}"),
            CqapError::AccessPatternMismatch {
                expected_arity,
                found_arity,
            } => write!(
                f,
                "access request arity {found_arity} does not match access pattern arity {expected_arity}"
            ),
            CqapError::SpaceBudgetExceeded { budget, required } => write!(
                f,
                "space budget of {budget} tuples exceeded: {required} tuples required"
            ),
            CqapError::Overloaded { pending, limit } => write!(
                f,
                "overloaded: {pending} requests pending at admission limit {limit}"
            ),
            CqapError::DeadlineExpired { late_ns } => write!(
                f,
                "deadline expired: request was {:.3} ms past its deadline when dropped",
                *late_ns as f64 / 1e6
            ),
            CqapError::Other(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for CqapError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = CqapError::SchemaMismatch {
            expected: "R(x1,x2)".into(),
            found: "R(x1)".into(),
        };
        let s = e.to_string();
        assert!(s.contains("R(x1,x2)"));
        assert!(s.contains("R(x1)"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CqapError>();
    }

    #[test]
    fn overload_predicates_and_messages() {
        let e = CqapError::Overloaded {
            pending: 32,
            limit: 32,
        };
        assert!(e.is_overloaded() && !e.is_deadline_expired());
        assert!(e.to_string().contains("32"));
        let e = CqapError::DeadlineExpired { late_ns: 2_500_000 };
        assert!(e.is_deadline_expired() && !e.is_overloaded());
        assert!(e.to_string().contains("2.500 ms"));
        assert!(!CqapError::Other("x".into()).is_overloaded());
    }

    #[test]
    fn space_budget_message() {
        let e = CqapError::SpaceBudgetExceeded {
            budget: 10,
            required: 20,
        };
        assert!(e.to_string().contains("10"));
        assert!(e.to_string().contains("20"));
    }
}
