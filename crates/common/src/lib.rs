//! # cqap-common
//!
//! Foundational types shared by every crate in the CQAP workspace:
//!
//! * [`Val`] / [`Tuple`] — the value and tuple representation used by the
//!   relational layer. Tuples of arity ≤ 4 are stored inline (no heap
//!   allocation), which covers every relation in the paper (all binary or
//!   ternary) and keeps the hot join loops allocation-free.
//! * [`VarSet`] — a bitset over query variables (≤ 64 variables), the
//!   currency of the hypergraph / tree-decomposition / polymatroid layers.
//! * [`Rat`] — exact rational arithmetic used by the Shannon-flow LP layer.
//! * [`FxHashMap`] / [`FxHashSet`] — hash containers with a fast
//!   non-cryptographic hash, following the standard advice for database
//!   workloads where HashDoS is not a concern.
//! * [`CqapError`] — the shared error type.

pub mod error;
pub mod hash;
pub mod rat;
pub mod tuple;
pub mod varint;
pub mod varset;

pub use error::{CqapError, Result};
pub use hash::{hash_fold_column, hash_vals, FxHashMap, FxHashSet, FxHasher};
pub use rat::Rat;
pub use tuple::{Tuple, Val};
pub use varset::{Var, VarSet};
