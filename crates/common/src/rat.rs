//! Exact rational arithmetic.
//!
//! The Shannon-flow layer manipulates linear programs whose coefficients are
//! small rationals (the paper's inequalities use coefficients like `1/2`,
//! `3/2`, `19/11`). Floating point would make the dual extraction and the
//! tradeoff exponents unreliable, so the LP solver works over [`Rat`], a
//! normalized `i128` fraction. All arithmetic panics on overflow (the LPs in
//! this workspace are tiny, so overflow indicates a bug rather than a size
//! limitation).

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A rational number `num / den` with `den > 0` and `gcd(|num|, den) = 1`.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rat {
    num: i128,
    den: i128,
}

#[inline]
fn gcd(mut a: i128, mut b: i128) -> i128 {
    a = a.abs();
    b = b.abs();
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

impl Rat {
    /// Zero.
    pub const ZERO: Rat = Rat { num: 0, den: 1 };
    /// One.
    pub const ONE: Rat = Rat { num: 1, den: 1 };

    /// Creates a rational from a numerator and denominator.
    ///
    /// # Panics
    /// Panics if `den == 0`.
    pub fn new(num: i128, den: i128) -> Self {
        assert!(den != 0, "zero denominator");
        let sign = if den < 0 { -1 } else { 1 };
        let (num, den) = (num * sign, den * sign);
        let g = gcd(num, den);
        if g == 0 {
            Rat { num: 0, den: 1 }
        } else {
            Rat {
                num: num / g,
                den: den / g,
            }
        }
    }

    /// Creates an integer rational.
    #[inline]
    pub fn int(n: i128) -> Self {
        Rat { num: n, den: 1 }
    }

    /// Numerator (after normalization).
    #[inline]
    pub fn numer(self) -> i128 {
        self.num
    }

    /// Denominator (always positive).
    #[inline]
    pub fn denom(self) -> i128 {
        self.den
    }

    /// Whether this is exactly zero.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.num == 0
    }

    /// Whether this is strictly positive.
    #[inline]
    pub fn is_positive(self) -> bool {
        self.num > 0
    }

    /// Whether this is strictly negative.
    #[inline]
    pub fn is_negative(self) -> bool {
        self.num < 0
    }

    /// Whether the value is an integer.
    #[inline]
    pub fn is_integer(self) -> bool {
        self.den == 1
    }

    /// Absolute value.
    #[inline]
    pub fn abs(self) -> Rat {
        Rat {
            num: self.num.abs(),
            den: self.den,
        }
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    /// Panics if the value is zero.
    pub fn recip(self) -> Rat {
        assert!(self.num != 0, "reciprocal of zero");
        Rat::new(self.den, self.num)
    }

    /// Conversion to `f64` (used only for plotting / reporting).
    #[inline]
    pub fn to_f64(self) -> f64 {
        self.num as f64 / self.den as f64
    }

    /// The minimum of two rationals.
    pub fn min(self, other: Rat) -> Rat {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// The maximum of two rationals.
    pub fn max(self, other: Rat) -> Rat {
        if self >= other {
            self
        } else {
            other
        }
    }
}

impl Default for Rat {
    fn default() -> Self {
        Rat::ZERO
    }
}

impl From<i64> for Rat {
    fn from(n: i64) -> Self {
        Rat::int(n as i128)
    }
}

impl From<i32> for Rat {
    fn from(n: i32) -> Self {
        Rat::int(n as i128)
    }
}

impl From<usize> for Rat {
    fn from(n: usize) -> Self {
        Rat::int(n as i128)
    }
}

impl From<(i64, i64)> for Rat {
    fn from((n, d): (i64, i64)) -> Self {
        Rat::new(n as i128, d as i128)
    }
}

impl Add for Rat {
    type Output = Rat;
    fn add(self, rhs: Rat) -> Rat {
        Rat::new(self.num * rhs.den + rhs.num * self.den, self.den * rhs.den)
    }
}

impl Sub for Rat {
    type Output = Rat;
    fn sub(self, rhs: Rat) -> Rat {
        Rat::new(self.num * rhs.den - rhs.num * self.den, self.den * rhs.den)
    }
}

impl Mul for Rat {
    type Output = Rat;
    fn mul(self, rhs: Rat) -> Rat {
        Rat::new(self.num * rhs.num, self.den * rhs.den)
    }
}

impl Div for Rat {
    type Output = Rat;
    fn div(self, rhs: Rat) -> Rat {
        assert!(rhs.num != 0, "division by zero");
        Rat::new(self.num * rhs.den, self.den * rhs.num)
    }
}

impl Neg for Rat {
    type Output = Rat;
    fn neg(self) -> Rat {
        Rat {
            num: -self.num,
            den: self.den,
        }
    }
}

impl AddAssign for Rat {
    fn add_assign(&mut self, rhs: Rat) {
        *self = *self + rhs;
    }
}

impl SubAssign for Rat {
    fn sub_assign(&mut self, rhs: Rat) {
        *self = *self - rhs;
    }
}

impl MulAssign for Rat {
    fn mul_assign(&mut self, rhs: Rat) {
        *self = *self * rhs;
    }
}

impl DivAssign for Rat {
    fn div_assign(&mut self, rhs: Rat) {
        *self = *self / rhs;
    }
}

impl PartialOrd for Rat {
    fn partial_cmp(&self, other: &Rat) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rat {
    fn cmp(&self, other: &Rat) -> Ordering {
        // den > 0 always, so cross-multiplication preserves order.
        (self.num * other.den).cmp(&(other.num * self.den))
    }
}

impl fmt::Debug for Rat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for Rat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

/// Convenience constructor: `rat(3, 2)` is `3/2`.
#[inline]
pub fn rat(num: i128, den: i128) -> Rat {
    Rat::new(num, den)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization() {
        assert_eq!(Rat::new(2, 4), Rat::new(1, 2));
        assert_eq!(Rat::new(-2, -4), Rat::new(1, 2));
        assert_eq!(Rat::new(2, -4), Rat::new(-1, 2));
        assert_eq!(Rat::new(0, -5), Rat::ZERO);
        assert_eq!(Rat::new(0, 7).denom(), 1);
    }

    #[test]
    fn arithmetic() {
        let a = rat(1, 2);
        let b = rat(1, 3);
        assert_eq!(a + b, rat(5, 6));
        assert_eq!(a - b, rat(1, 6));
        assert_eq!(a * b, rat(1, 6));
        assert_eq!(a / b, rat(3, 2));
        assert_eq!(-a, rat(-1, 2));
        assert_eq!(a.recip(), rat(2, 1));
    }

    #[test]
    fn ordering() {
        assert!(rat(1, 3) < rat(1, 2));
        assert!(rat(-1, 2) < Rat::ZERO);
        assert!(rat(7, 5) > rat(19, 14));
        assert_eq!(rat(3, 2).max(rat(19, 11)), rat(19, 11));
        assert_eq!(rat(3, 2).min(rat(19, 11)), rat(3, 2));
    }

    #[test]
    fn predicates_and_conversion() {
        assert!(rat(0, 5).is_zero());
        assert!(rat(3, 2).is_positive());
        assert!(rat(-3, 2).is_negative());
        assert!(rat(4, 2).is_integer());
        assert!(!rat(1, 2).is_integer());
        assert!((rat(1, 2).to_f64() - 0.5).abs() < 1e-12);
        assert_eq!(rat(-3, 2).abs(), rat(3, 2));
    }

    #[test]
    fn display() {
        assert_eq!(rat(3, 2).to_string(), "3/2");
        assert_eq!(rat(4, 2).to_string(), "2");
        assert_eq!(rat(-1, 2).to_string(), "-1/2");
    }

    #[test]
    #[should_panic(expected = "zero denominator")]
    fn zero_denominator_panics() {
        let _ = Rat::new(1, 0);
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn division_by_zero_panics() {
        let _ = rat(1, 2) / Rat::ZERO;
    }
}
