//! Values and tuples.
//!
//! Every attribute value is an interned [`Val`] (`u64`). A [`Tuple`] is a
//! fixed-arity sequence of values; tuples of arity ≤ 4 are stored inline so
//! the relational operators never allocate per tuple for the binary and
//! ternary relations that make up all of the paper's workloads.

use std::fmt;
use std::hash::{Hash, Hasher};

/// An attribute value. Workload generators intern vertex ids, set ids and
/// element ids directly as `u64`.
pub type Val = u64;

const INLINE: usize = 4;

/// Counters for heap-allocating tuple representations, used by tests to
/// prove that the columnar online path never boxes an intermediate tuple.
pub mod instrument {
    use std::cell::Cell;

    thread_local! {
        static HEAP_BOXINGS: Cell<u64> = const { Cell::new(0) };
    }

    /// Total tuples **this thread** has materialized in the heap
    /// representation (arity above the inline limit). Monotone; callers
    /// diff two readings around the code under test. Per-thread so
    /// concurrent serving workers don't pollute each other's measurements.
    pub fn heap_boxings() -> u64 {
        HEAP_BOXINGS.with(Cell::get)
    }

    #[inline]
    pub(super) fn record_heap_boxing() {
        HEAP_BOXINGS.with(|c| c.set(c.get() + 1));
    }
}

/// A relational tuple of fixed arity.
#[derive(Clone, PartialEq, Eq)]
pub struct Tuple {
    repr: Repr,
}

#[derive(Clone, PartialEq, Eq)]
enum Repr {
    /// Arity ≤ INLINE, stored without heap allocation.
    Inline { len: u8, data: [Val; INLINE] },
    /// Arity > INLINE.
    Heap(Box<[Val]>),
}

/// Tuples hash as their value slice, so hash containers keyed by `Tuple`
/// can be probed with a borrowed `&[Val]` scratch slice (see the
/// `Borrow<[Val]>` impl) without materializing a key tuple first.
impl Hash for Tuple {
    #[inline]
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

/// Tuples order as their value slice (lexicographic), keeping `Ord`
/// consistent with the slice-based `Hash`/`Eq`/`Borrow<[Val]>` family —
/// a derived order would compare the inline/heap representation first.
impl Ord for Tuple {
    #[inline]
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl PartialOrd for Tuple {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Lets hash-map lookups borrow a tuple as its value slice: a hot loop
/// projects a key into a reused `Vec<Val>` ([`Tuple::project_into`]) and
/// probes the map with the slice, building an owned `Tuple` only on the
/// miss path. Consistent with `Hash`/`Eq` because both sides hash and
/// compare the slice.
impl std::borrow::Borrow<[Val]> for Tuple {
    #[inline]
    fn borrow(&self) -> &[Val] {
        self.as_slice()
    }
}

impl Tuple {
    /// The empty (arity-0) tuple, used for Boolean query results.
    pub fn empty() -> Self {
        Tuple {
            repr: Repr::Inline {
                len: 0,
                data: [0; INLINE],
            },
        }
    }

    /// Creates a tuple from a slice of values.
    pub fn from_slice(vals: &[Val]) -> Self {
        if vals.len() <= INLINE {
            let mut data = [0; INLINE];
            data[..vals.len()].copy_from_slice(vals);
            Tuple {
                repr: Repr::Inline {
                    len: vals.len() as u8,
                    data,
                },
            }
        } else {
            instrument::record_heap_boxing();
            Tuple {
                repr: Repr::Heap(vals.to_vec().into_boxed_slice()),
            }
        }
    }

    /// Creates a unary tuple.
    #[inline]
    pub fn unary(a: Val) -> Self {
        Tuple::from_slice(&[a])
    }

    /// Creates a binary tuple.
    #[inline]
    pub fn pair(a: Val, b: Val) -> Self {
        Tuple::from_slice(&[a, b])
    }

    /// Creates a ternary tuple.
    #[inline]
    pub fn triple(a: Val, b: Val, c: Val) -> Self {
        Tuple::from_slice(&[a, b, c])
    }

    /// Number of values in the tuple.
    #[inline]
    pub fn arity(&self) -> usize {
        match &self.repr {
            Repr::Inline { len, .. } => *len as usize,
            Repr::Heap(b) => b.len(),
        }
    }

    /// The values as a slice.
    #[inline]
    pub fn as_slice(&self) -> &[Val] {
        match &self.repr {
            Repr::Inline { len, data } => &data[..*len as usize],
            Repr::Heap(b) => b,
        }
    }

    /// Value at position `i`.
    ///
    /// # Panics
    /// Panics if `i >= arity()`.
    #[inline]
    pub fn get(&self, i: usize) -> Val {
        self.as_slice()[i]
    }

    /// Projects the tuple onto the given positions (in the given order).
    pub fn project(&self, positions: &[usize]) -> Tuple {
        let slice = self.as_slice();
        if positions.len() <= INLINE {
            let mut data = [0; INLINE];
            for (k, &p) in positions.iter().enumerate() {
                data[k] = slice[p];
            }
            Tuple {
                repr: Repr::Inline {
                    len: positions.len() as u8,
                    data,
                },
            }
        } else {
            instrument::record_heap_boxing();
            Tuple {
                repr: Repr::Heap(positions.iter().map(|&p| slice[p]).collect()),
            }
        }
    }

    /// Concatenates two tuples.
    pub fn concat(&self, other: &Tuple) -> Tuple {
        let a = self.as_slice();
        let b = other.as_slice();
        let total = a.len() + b.len();
        if total <= INLINE {
            let mut data = [0; INLINE];
            data[..a.len()].copy_from_slice(a);
            data[a.len()..total].copy_from_slice(b);
            Tuple {
                repr: Repr::Inline {
                    len: total as u8,
                    data,
                },
            }
        } else {
            instrument::record_heap_boxing();
            let mut v = Vec::with_capacity(total);
            v.extend_from_slice(a);
            v.extend_from_slice(b);
            Tuple {
                repr: Repr::Heap(v.into_boxed_slice()),
            }
        }
    }

    /// Returns a copy of the values as a `Vec`.
    pub fn to_vec(&self) -> Vec<Val> {
        self.as_slice().to_vec()
    }

    /// In-place projection: writes the projected values into `buf`
    /// (cleared first) instead of building a new tuple. Combined with the
    /// `Borrow<[Val]>` impl, this is how the compiled online path probes
    /// its key-memo tables: project into a reused buffer, look the slice
    /// up, and build an owned key [`Tuple`] only when the lookup misses.
    #[inline]
    pub fn project_into(&self, positions: &[usize], buf: &mut Vec<Val>) {
        let slice = self.as_slice();
        buf.clear();
        buf.extend(positions.iter().map(|&p| slice[p]));
    }

    /// Fused `self.concat(&other.project(positions))` without building the
    /// intermediate projected tuple — the shape of every join-output tuple
    /// (probe-side tuple + the appended columns of the matched tuple).
    pub fn concat_projected(&self, other: &Tuple, positions: &[usize]) -> Tuple {
        let a = self.as_slice();
        let b = other.as_slice();
        let total = a.len() + positions.len();
        if total <= INLINE {
            let mut data = [0; INLINE];
            data[..a.len()].copy_from_slice(a);
            for (k, &p) in positions.iter().enumerate() {
                data[a.len() + k] = b[p];
            }
            Tuple {
                repr: Repr::Inline {
                    len: total as u8,
                    data,
                },
            }
        } else {
            instrument::record_heap_boxing();
            let mut v = Vec::with_capacity(total);
            v.extend_from_slice(a);
            v.extend(positions.iter().map(|&p| b[p]));
            Tuple {
                repr: Repr::Heap(v.into_boxed_slice()),
            }
        }
    }

    /// Scatters the tuple's values into per-column vectors: value `j` is
    /// appended to `cols[j]`. The struct-of-arrays entry point of the
    /// columnar execution path — a row crosses into column runs without
    /// any intermediate allocation.
    #[inline]
    pub fn scatter_into(&self, cols: &mut [Vec<Val>]) {
        let slice = self.as_slice();
        debug_assert_eq!(slice.len(), cols.len());
        for (col, &v) in cols.iter_mut().zip(slice) {
            col.push(v);
        }
    }

    /// Whether `self` projected onto `my_positions` equals `other`
    /// projected onto `other_positions`, compared value-by-value without
    /// materializing either projection. Both position slices must have the
    /// same length (callers derive them from one shared variable set).
    #[inline]
    pub fn projected_eq(
        &self,
        my_positions: &[usize],
        other: &Tuple,
        other_positions: &[usize],
    ) -> bool {
        debug_assert_eq!(my_positions.len(), other_positions.len());
        let a = self.as_slice();
        let b = other.as_slice();
        my_positions
            .iter()
            .zip(other_positions)
            .all(|(&p, &q)| a[p] == b[q])
    }
}

impl fmt::Debug for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.as_slice().iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

impl From<&[Val]> for Tuple {
    fn from(vals: &[Val]) -> Self {
        Tuple::from_slice(vals)
    }
}

impl From<Vec<Val>> for Tuple {
    fn from(vals: Vec<Val>) -> Self {
        Tuple::from_slice(&vals)
    }
}

impl<const N: usize> From<[Val; N]> for Tuple {
    fn from(vals: [Val; N]) -> Self {
        Tuple::from_slice(&vals)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inline_and_heap() {
        let t = Tuple::from_slice(&[1, 2, 3]);
        assert_eq!(t.arity(), 3);
        assert_eq!(t.as_slice(), &[1, 2, 3]);
        assert!(matches!(t.repr, Repr::Inline { .. }));

        let big = Tuple::from_slice(&[1, 2, 3, 4, 5, 6]);
        assert_eq!(big.arity(), 6);
        assert_eq!(big.get(5), 6);
        assert!(matches!(big.repr, Repr::Heap(_)));
    }

    #[test]
    fn equality_across_representations() {
        // The same logical tuple always has the same representation because
        // representation is chosen by arity, so equality is structural.
        let a = Tuple::from_slice(&[7, 8]);
        let b = Tuple::pair(7, 8);
        assert_eq!(a, b);
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let mut h1 = DefaultHasher::new();
        let mut h2 = DefaultHasher::new();
        a.hash(&mut h1);
        b.hash(&mut h2);
        assert_eq!(h1.finish(), h2.finish());
    }

    #[test]
    fn projection() {
        let t = Tuple::from_slice(&[10, 20, 30, 40, 50]);
        assert_eq!(t.project(&[0, 2]), Tuple::pair(10, 30));
        assert_eq!(t.project(&[4, 0]), Tuple::pair(50, 10));
        assert_eq!(t.project(&[]), Tuple::empty());
        assert_eq!(
            t.project(&[0, 1, 2, 3, 4]).as_slice(),
            &[10, 20, 30, 40, 50]
        );
    }

    #[test]
    fn concat() {
        let a = Tuple::pair(1, 2);
        let b = Tuple::triple(3, 4, 5);
        assert_eq!(a.concat(&b).as_slice(), &[1, 2, 3, 4, 5]);
        assert_eq!(a.concat(&Tuple::empty()), a);
        assert_eq!(Tuple::empty().concat(&a), a);
    }

    #[test]
    fn empty_tuple() {
        let e = Tuple::empty();
        assert_eq!(e.arity(), 0);
        assert_eq!(e.as_slice(), &[] as &[Val]);
    }

    #[test]
    fn display() {
        assert_eq!(Tuple::triple(1, 2, 3).to_string(), "(1,2,3)");
        assert_eq!(Tuple::empty().to_string(), "()");
    }

    #[test]
    fn in_place_projection_and_slice_borrowed_lookup() {
        let t = Tuple::from_slice(&[10, 20, 30, 40, 50]);
        let mut buf = Vec::new();
        t.project_into(&[4, 0], &mut buf);
        assert_eq!(buf, vec![50, 10]);
        t.project_into(&[], &mut buf);
        assert!(buf.is_empty());

        // The Borrow<[Val]> contract: a map keyed by Tuple is probeable
        // with the projected slice, across both representations.
        let mut map = std::collections::HashMap::new();
        map.insert(Tuple::pair(50, 10), "inline");
        map.insert(Tuple::from_slice(&[1, 2, 3, 4, 5]), "heap");
        t.project_into(&[4, 0], &mut buf);
        assert_eq!(map.get(buf.as_slice()), Some(&"inline"));
        assert_eq!(
            map.get([1u64, 2, 3, 4, 5].as_slice()),
            Some(&"heap")
        );
        assert_eq!(map.get([9u64].as_slice()), None);
    }

    #[test]
    fn ordering_is_lexicographic_across_representations() {
        // Ord must agree with slice order even when the representations
        // differ (inline vs heap) — the Borrow<[Val]> consistency contract.
        fn slice_cmp(a: &Tuple, b: &Tuple) -> std::cmp::Ordering {
            a.as_slice().cmp(b.as_slice())
        }
        let tuples = [
            Tuple::empty(),
            Tuple::unary(5),
            Tuple::pair(1, 2),
            Tuple::from_slice(&[1, 2, 3, 4, 5]),
            Tuple::from_slice(&[9, 0, 0, 0, 0, 0]),
        ];
        for a in &tuples {
            for b in &tuples {
                assert_eq!(a.cmp(b), slice_cmp(a, b), "{a} vs {b}");
            }
        }
    }

    #[test]
    fn fused_concat_projected() {
        let a = Tuple::pair(1, 2);
        let b = Tuple::triple(7, 8, 9);
        assert_eq!(a.concat_projected(&b, &[2, 0]), Tuple::from_slice(&[1, 2, 9, 7]));
        assert_eq!(a.concat_projected(&b, &[]), a);
        // Spilling past the inline limit matches the two-step composition.
        let wide = Tuple::from_slice(&[1, 2, 3, 4]);
        assert_eq!(
            wide.concat_projected(&b, &[0, 1]),
            wide.concat(&b.project(&[0, 1]))
        );
    }

    #[test]
    fn projected_equality() {
        let a = Tuple::triple(1, 5, 9);
        let b = Tuple::from_slice(&[5, 9, 1, 0]);
        assert!(a.projected_eq(&[0, 1], &b, &[2, 0]));
        assert!(!a.projected_eq(&[0, 1], &b, &[0, 1]));
        assert!(a.projected_eq(&[], &b, &[]));
    }

    #[test]
    fn conversions() {
        let t: Tuple = [1u64, 2, 3].into();
        assert_eq!(t, Tuple::triple(1, 2, 3));
        let t: Tuple = vec![4u64, 5].into();
        assert_eq!(t, Tuple::pair(4, 5));
    }
}
