//! Variable identifiers and bitsets over query variables.
//!
//! A conjunctive query in this workspace has at most 64 variables (far more
//! than any query in the paper), so a set of variables is represented as a
//! `u64` bitmask. All set algebra used by the hypergraph, tree-decomposition
//! and polymatroid layers (union, intersection, difference, subset tests,
//! iteration) is O(1) or O(popcount).

use std::fmt;
use std::ops::{BitAnd, BitOr, BitXor, Sub};

/// A query variable, identified by its index `0 ..= 63`.
///
/// The paper writes variables as `x_1, ..., x_n`; we use zero-based indices
/// internally and render them as `x{i+1}` in `Display` so printed output
/// matches the paper's numbering.
pub type Var = usize;

/// Maximum number of distinct variables supported in one query.
pub const MAX_VARS: usize = 64;

/// A set of query variables represented as a 64-bit mask.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct VarSet(pub u64);

impl VarSet {
    /// The empty variable set.
    pub const EMPTY: VarSet = VarSet(0);

    /// Creates a set containing a single variable.
    ///
    /// # Panics
    /// Panics if `v >= 64`.
    #[inline]
    pub fn singleton(v: Var) -> Self {
        assert!(v < MAX_VARS, "variable index {v} out of range");
        VarSet(1u64 << v)
    }

    /// Creates a set from an iterator of variables.
    pub fn from_iter<I: IntoIterator<Item = Var>>(iter: I) -> Self {
        let mut s = VarSet::EMPTY;
        for v in iter {
            s = s.insert(v);
        }
        s
    }

    /// Creates the set `{0, 1, ..., n-1}`.
    #[inline]
    pub fn prefix(n: usize) -> Self {
        assert!(n <= MAX_VARS);
        if n == MAX_VARS {
            VarSet(u64::MAX)
        } else {
            VarSet((1u64 << n) - 1)
        }
    }

    /// Returns the set with `v` added.
    #[inline]
    #[must_use]
    pub fn insert(self, v: Var) -> Self {
        assert!(v < MAX_VARS, "variable index {v} out of range");
        VarSet(self.0 | (1u64 << v))
    }

    /// Returns the set with `v` removed.
    #[inline]
    #[must_use]
    pub fn remove(self, v: Var) -> Self {
        VarSet(self.0 & !(1u64 << v))
    }

    /// Whether the set contains `v`.
    #[inline]
    pub fn contains(self, v: Var) -> bool {
        v < MAX_VARS && (self.0 >> v) & 1 == 1
    }

    /// Number of variables in the set.
    #[inline]
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Whether the set is empty.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Set union.
    #[inline]
    #[must_use]
    pub fn union(self, other: VarSet) -> VarSet {
        VarSet(self.0 | other.0)
    }

    /// Set intersection.
    #[inline]
    #[must_use]
    pub fn intersect(self, other: VarSet) -> VarSet {
        VarSet(self.0 & other.0)
    }

    /// Set difference `self \ other`.
    #[inline]
    #[must_use]
    pub fn difference(self, other: VarSet) -> VarSet {
        VarSet(self.0 & !other.0)
    }

    /// Whether `self ⊆ other`.
    #[inline]
    pub fn is_subset(self, other: VarSet) -> bool {
        self.0 & !other.0 == 0
    }

    /// Whether `self ⊂ other` (strict).
    #[inline]
    pub fn is_strict_subset(self, other: VarSet) -> bool {
        self != other && self.is_subset(other)
    }

    /// Whether `self ⊇ other`.
    #[inline]
    pub fn is_superset(self, other: VarSet) -> bool {
        other.is_subset(self)
    }

    /// Whether the sets are disjoint.
    #[inline]
    pub fn is_disjoint(self, other: VarSet) -> bool {
        self.0 & other.0 == 0
    }

    /// The "incomparable" relation `I ⊥ J` used by the submodularity rule:
    /// `I ⊄ J` and `J ⊄ I` (neither is a subset of the other).
    #[inline]
    pub fn is_incomparable(self, other: VarSet) -> bool {
        !self.is_subset(other) && !other.is_subset(self)
    }

    /// Iterates over the variables in ascending order.
    #[inline]
    pub fn iter(self) -> VarSetIter {
        VarSetIter(self.0)
    }

    /// Returns the variables as a `Vec`, ascending.
    pub fn to_vec(self) -> Vec<Var> {
        self.iter().collect()
    }

    /// Smallest variable in the set, if non-empty.
    #[inline]
    pub fn min_var(self) -> Option<Var> {
        if self.0 == 0 {
            None
        } else {
            Some(self.0.trailing_zeros() as usize)
        }
    }

    /// Largest variable in the set, if non-empty.
    #[inline]
    pub fn max_var(self) -> Option<Var> {
        if self.0 == 0 {
            None
        } else {
            Some(63 - self.0.leading_zeros() as usize)
        }
    }

    /// Enumerates all subsets of this set (including `∅` and the set itself).
    ///
    /// The number of subsets is `2^len()`, so this is intended for the
    /// query-complexity layers (hypergraphs have ≤ ~10 variables).
    pub fn subsets(self) -> impl Iterator<Item = VarSet> {
        SubsetIter {
            mask: self.0,
            current: 0,
            done: false,
        }
    }

    /// Enumerates the *non-empty proper* subsets of this set.
    pub fn proper_nonempty_subsets(self) -> impl Iterator<Item = VarSet> {
        let full = self;
        self.subsets()
            .filter(move |s| !s.is_empty() && *s != full)
    }
}

impl BitOr for VarSet {
    type Output = VarSet;
    #[inline]
    fn bitor(self, rhs: VarSet) -> VarSet {
        self.union(rhs)
    }
}

impl BitAnd for VarSet {
    type Output = VarSet;
    #[inline]
    fn bitand(self, rhs: VarSet) -> VarSet {
        self.intersect(rhs)
    }
}

impl Sub for VarSet {
    type Output = VarSet;
    #[inline]
    fn sub(self, rhs: VarSet) -> VarSet {
        self.difference(rhs)
    }
}

impl BitXor for VarSet {
    type Output = VarSet;
    #[inline]
    fn bitxor(self, rhs: VarSet) -> VarSet {
        VarSet(self.0 ^ rhs.0)
    }
}

impl FromIterator<Var> for VarSet {
    fn from_iter<I: IntoIterator<Item = Var>>(iter: I) -> Self {
        VarSet::from_iter(iter)
    }
}

impl fmt::Debug for VarSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for VarSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        let mut first = true;
        for v in self.iter() {
            if !first {
                write!(f, ",")?;
            }
            write!(f, "x{}", v + 1)?;
            first = false;
        }
        write!(f, "}}")
    }
}

/// Iterator over the variables of a [`VarSet`].
pub struct VarSetIter(u64);

impl Iterator for VarSetIter {
    type Item = Var;

    #[inline]
    fn next(&mut self) -> Option<Var> {
        if self.0 == 0 {
            None
        } else {
            let v = self.0.trailing_zeros() as usize;
            self.0 &= self.0 - 1;
            Some(v)
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.0.count_ones() as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for VarSetIter {}

struct SubsetIter {
    mask: u64,
    current: u64,
    done: bool,
}

impl Iterator for SubsetIter {
    type Item = VarSet;

    fn next(&mut self) -> Option<VarSet> {
        if self.done {
            return None;
        }
        let result = VarSet(self.current);
        if self.current == self.mask {
            self.done = true;
        } else {
            // Standard trick for enumerating subsets of a mask in order.
            self.current = (self.current.wrapping_sub(self.mask)) & self.mask;
        }
        Some(result)
    }
}

/// Convenience macro for building a [`VarSet`] from 1-based variable numbers
/// as they appear in the paper, e.g. `vars![1, 3, 4]` is `{x1, x3, x4}`.
#[macro_export]
macro_rules! vars {
    ($($v:expr),* $(,)?) => {
        $crate::varset::VarSet::from_iter([$( ($v as usize) - 1 ),*])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_ops() {
        let a = VarSet::from_iter([0, 2, 3]);
        let b = VarSet::from_iter([2, 4]);
        assert_eq!(a.len(), 3);
        assert!(a.contains(2));
        assert!(!a.contains(1));
        assert_eq!(a.union(b), VarSet::from_iter([0, 2, 3, 4]));
        assert_eq!(a.intersect(b), VarSet::singleton(2));
        assert_eq!(a.difference(b), VarSet::from_iter([0, 3]));
        assert!(VarSet::singleton(2).is_subset(a));
        assert!(!a.is_subset(b));
        assert!(a.is_strict_subset(a.insert(10)));
        assert!(!a.is_strict_subset(a));
    }

    #[test]
    fn incomparable() {
        let a = VarSet::from_iter([0, 1]);
        let b = VarSet::from_iter([1, 2]);
        let c = VarSet::from_iter([0, 1, 2]);
        assert!(a.is_incomparable(b));
        assert!(!a.is_incomparable(c));
        assert!(!a.is_incomparable(a));
    }

    #[test]
    fn iteration_order() {
        let a = VarSet::from_iter([5, 1, 9]);
        assert_eq!(a.to_vec(), vec![1, 5, 9]);
        assert_eq!(a.min_var(), Some(1));
        assert_eq!(a.max_var(), Some(9));
        assert_eq!(VarSet::EMPTY.min_var(), None);
    }

    #[test]
    fn prefix_sets() {
        assert_eq!(VarSet::prefix(0), VarSet::EMPTY);
        assert_eq!(VarSet::prefix(3), VarSet::from_iter([0, 1, 2]));
        assert_eq!(VarSet::prefix(64).len(), 64);
    }

    #[test]
    fn subsets_enumeration() {
        let a = VarSet::from_iter([1, 4, 6]);
        let subs: Vec<_> = a.subsets().collect();
        assert_eq!(subs.len(), 8);
        assert!(subs.contains(&VarSet::EMPTY));
        assert!(subs.contains(&a));
        assert!(subs.contains(&VarSet::from_iter([1, 6])));
        // All unique.
        let uniq: std::collections::HashSet<_> = subs.iter().collect();
        assert_eq!(uniq.len(), 8);

        let proper: Vec<_> = a.proper_nonempty_subsets().collect();
        assert_eq!(proper.len(), 6);
    }

    #[test]
    fn display_matches_paper_numbering() {
        let a = vars![1, 3, 4];
        assert_eq!(format!("{a}"), "{x1,x3,x4}");
    }

    #[test]
    fn operators() {
        let a = vars![1, 2];
        let b = vars![2, 3];
        assert_eq!(a | b, vars![1, 2, 3]);
        assert_eq!(a & b, vars![2]);
        assert_eq!(a - b, vars![1]);
        assert_eq!(a ^ b, vars![1, 3]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        let _ = VarSet::singleton(64);
    }
}
