//! LEB128 variable-length integers (plus a zigzag mapping for signed
//! deltas) — the codec behind the v2 compressed on-disk run format.
//!
//! The encoding is the standard unsigned LEB128: 7 payload bits per byte,
//! low bits first, the high bit of each byte marking continuation. A
//! `u64` therefore occupies 1–10 bytes; sorted-key deltas and small tuple
//! values — the bulk of a cold segment — fit in 1–2.
//!
//! Decoding here is **strict**: every helper rejects, as an `Err`-shaped
//! `None`, both *truncated* input (continuation bit set at end of buffer,
//! or more than [`MAX_LEN`] bytes) and *overlong* (non-canonical)
//! encodings — a multi-byte varint whose final byte is `0x00` would
//! decode to the same value with fewer bytes, and a 10th byte above `0x01`
//! would overflow 64 bits. Canonical-only decoding makes the on-disk
//! format bijective, so a corrupt or truncated run surfaces as an open
//! error instead of silently aliasing another valid file.
//!
//! Signed deltas (a later key component may be *smaller* than the
//! segment-base component it is encoded against) go through the zigzag
//! mapping `0, -1, 1, -2, 2, …` → `0, 1, 2, 3, 4, …` so that small
//! magnitudes of either sign stay short.

/// Maximum encoded length of a `u64`: ⌈64 / 7⌉ bytes.
pub const MAX_LEN: usize = 10;

/// Appends the LEB128 encoding of `value` to `out`.
#[inline]
pub fn encode_u64(mut value: u64, out: &mut Vec<u8>) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Number of bytes [`encode_u64`] emits for `value` (without encoding).
#[inline]
pub fn encoded_len(value: u64) -> usize {
    // bits-needed / 7, rounded up; `value == 0` still takes one byte.
    (64 - value.leading_zeros() as usize).max(1).div_ceil(7)
}

/// Decodes one canonical LEB128 `u64` from the front of `buf`.
///
/// Returns the value and the number of bytes consumed, or `None` when the
/// input is truncated, longer than [`MAX_LEN`] bytes, overflows 64 bits,
/// or is a non-canonical (overlong) encoding.
#[inline]
pub fn decode_u64(buf: &[u8]) -> Option<(u64, usize)> {
    let mut value = 0u64;
    let mut shift = 0u32;
    for (i, &byte) in buf.iter().take(MAX_LEN).enumerate() {
        let payload = u64::from(byte & 0x7f);
        // The 10th byte carries bits 63.. and may only be 0x00 or 0x01;
        // anything else overflows u64.
        if i == MAX_LEN - 1 && byte > 0x01 {
            return None;
        }
        value |= payload << shift;
        if byte & 0x80 == 0 {
            // Canonical form: a multi-byte encoding must use its last
            // byte (a trailing 0x00 means a shorter encoding existed).
            if i > 0 && byte == 0 {
                return None;
            }
            return Some((value, i + 1));
        }
        shift += 7;
    }
    // Ran out of input (or exceeded MAX_LEN) with the continuation bit
    // still set: truncated or overlong.
    None
}

/// Maps a signed delta into the zigzag unsigned space.
#[inline]
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
#[inline]
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Appends the zigzag-LEB128 encoding of the signed delta `b - a`
/// (computed wrapping, so any `u64` pair round-trips).
#[inline]
pub fn encode_delta(base: u64, value: u64, out: &mut Vec<u8>) {
    encode_u64(zigzag(value.wrapping_sub(base) as i64), out);
}

/// Decodes a zigzag delta from `buf` and applies it to `base`.
#[inline]
pub fn decode_delta(base: u64, buf: &[u8]) -> Option<(u64, usize)> {
    let (raw, used) = decode_u64(buf)?;
    Some((base.wrapping_add(unzigzag(raw) as u64), used))
}

/// Decodes `n` canonical varints from the front of `buf` into `out`,
/// returning the number of bytes consumed (`None` on truncated, overlong
/// or overflowing input; `out` may then hold a partial prefix).
///
/// The hot loop runs 8 values at a time: while the next eight bytes are
/// all continuation-free (`word & 0x8080…80 == 0`) they are eight
/// complete single-byte varints — the overwhelmingly common case for
/// delta-encoded keys and small tuple values — and are widened
/// byte-to-`u64` in one branch-free `chunks_exact`-style block the
/// compiler autovectorizes. Any chunk containing a continuation bit
/// falls back to one strict [`decode_u64`] and re-probes.
pub fn decode_block(buf: &[u8], n: usize, out: &mut Vec<u64>) -> Option<usize> {
    let mut pos = 0usize;
    let mut left = n;
    out.reserve(n);
    while left >= 8 {
        if let Some(chunk) = buf.get(pos..pos + 8) {
            let word = u64::from_le_bytes(chunk.try_into().expect("8 bytes"));
            if word & 0x8080_8080_8080_8080 == 0 {
                out.extend(chunk.iter().map(|&b| u64::from(b)));
                pos += 8;
                left -= 8;
                continue;
            }
        }
        let (v, used) = decode_u64(buf.get(pos..)?)?;
        out.push(v);
        pos += used;
        left -= 1;
    }
    while left > 0 {
        let (v, used) = decode_u64(buf.get(pos..)?)?;
        out.push(v);
        pos += used;
        left -= 1;
    }
    Some(pos)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(v: u64) {
        let mut buf = Vec::new();
        encode_u64(v, &mut buf);
        assert_eq!(buf.len(), encoded_len(v), "len for {v}");
        assert_eq!(decode_u64(&buf), Some((v, buf.len())), "round trip {v}");
    }

    #[test]
    fn round_trips_boundaries() {
        for v in [
            0,
            1,
            0x7f,
            0x80,
            0x3fff,
            0x4000,
            u64::from(u32::MAX),
            u64::MAX - 1,
            u64::MAX,
        ] {
            round_trip(v);
        }
        // Every 7-bit boundary.
        for shift in 0..64 {
            round_trip(1u64 << shift);
            round_trip((1u64 << shift) - 1);
        }
    }

    #[test]
    fn truncated_input_is_rejected() {
        let mut buf = Vec::new();
        encode_u64(300, &mut buf);
        assert_eq!(buf.len(), 2);
        assert_eq!(decode_u64(&buf[..1]), None);
        assert_eq!(decode_u64(&[]), None);
        // A lone continuation byte is truncated too.
        assert_eq!(decode_u64(&[0x80]), None);
    }

    #[test]
    fn overlong_encodings_are_rejected() {
        // 0 padded to two bytes: 0x80 0x00 decodes to 0 but is overlong.
        assert_eq!(decode_u64(&[0x80, 0x00]), None);
        // 1 padded to three bytes.
        assert_eq!(decode_u64(&[0x81, 0x80, 0x00]), None);
        // Eleven continuation bytes: longer than any canonical u64.
        assert_eq!(decode_u64(&[0x80; 11]), None);
        // A 10th byte above 0x01 overflows 64 bits.
        let mut buf = vec![0xffu8; 9];
        buf.push(0x02);
        assert_eq!(decode_u64(&buf), None);
        // ...while 0x01 in the 10th byte is exactly u64::MAX's top bit.
        let mut buf = vec![0xffu8; 9];
        buf.push(0x01);
        assert_eq!(decode_u64(&buf), Some((u64::MAX, 10)));
    }

    #[test]
    fn zigzag_round_trips() {
        for v in [0i64, -1, 1, -2, 2, i64::MIN, i64::MAX, -123456, 123456] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
    }

    #[test]
    fn deltas_round_trip_any_pair() {
        let pairs = [
            (0u64, 0u64),
            (10, 3),
            (3, 10),
            (u64::MAX, 0),
            (0, u64::MAX),
            (u64::MAX, u64::MAX),
            (1 << 63, (1 << 63) - 1),
        ];
        for (base, value) in pairs {
            let mut buf = Vec::new();
            encode_delta(base, value, &mut buf);
            assert_eq!(
                decode_delta(base, &buf),
                Some((value, buf.len())),
                "base {base} value {value}"
            );
        }
    }

    #[test]
    fn block_decode_matches_one_at_a_time() {
        // Mix single-byte and multi-byte values so the 8-wide fast path
        // enters, bails, and re-enters.
        let values: Vec<u64> = (0..100u64)
            .map(|i| if i % 9 == 0 { i * 1_000_000 + 5 } else { i % 100 })
            .collect();
        let mut buf = Vec::new();
        for &v in &values {
            encode_u64(v, &mut buf);
        }
        let mut out = Vec::new();
        assert_eq!(decode_block(&buf, values.len(), &mut out), Some(buf.len()));
        assert_eq!(out, values);

        // Truncation inside the block is caught.
        let mut out = Vec::new();
        assert_eq!(decode_block(&buf[..buf.len() - 1], values.len(), &mut out), None);
        // An overlong value inside the block is caught.
        let mut corrupt = buf.clone();
        corrupt[0] = 0x80;
        corrupt.insert(1, 0x00);
        let mut out = Vec::new();
        assert_eq!(decode_block(&corrupt, values.len(), &mut out), None);
    }

    #[test]
    fn small_deltas_stay_short() {
        let mut buf = Vec::new();
        encode_delta(1_000_000, 1_000_003, &mut buf);
        assert_eq!(buf.len(), 1);
        buf.clear();
        encode_delta(1_000_003, 1_000_000, &mut buf);
        assert_eq!(buf.len(), 1);
    }
}
