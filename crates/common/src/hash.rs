//! Fast, non-cryptographic hashing for database workloads.
//!
//! The default `SipHash` hasher in `std` protects against HashDoS attacks but
//! is slow for the short integer keys that dominate join processing. This
//! module provides an `Fx`-style multiplicative hasher (the algorithm used by
//! rustc) implemented from scratch so the workspace does not need an extra
//! dependency, plus [`FxHashMap`] / [`FxHashSet`] aliases that are drop-in
//! replacements for the standard containers.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

/// 64-bit Fx multiplicative hash constant (derived from the golden ratio).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// A fast multiplicative hasher suitable for integer-like keys.
///
/// Quality is lower than SipHash but throughput is much higher; this is the
/// standard tradeoff for in-memory database operators where the key
/// distribution is not adversarial.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_u128(&mut self, i: u128) {
        self.add_to_hash(i as u64);
        self.add_to_hash((i >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

/// Hash a single `u64` key directly (used by specialized probe tables).
#[inline]
pub fn hash_u64(x: u64) -> u64 {
    let mut h = FxHasher::default();
    h.write_u64(x);
    h.finish()
}

/// Hash a pair of `u64` keys directly.
#[inline]
pub fn hash_pair(a: u64, b: u64) -> u64 {
    let mut h = FxHasher::default();
    h.write_u64(a);
    h.write_u64(b);
    h.finish()
}

/// Hash a slice of `u64` values word-by-word — the key hash of the
/// compiled online path's probe memos, computed **once** per key
/// occurrence and then reused for lookup and insertion (a map keyed by
/// the slice itself would re-hash it on every probe).
#[inline]
pub fn hash_vals(vals: &[u64]) -> u64 {
    let mut h = FxHasher::default();
    for &v in vals {
        h.write_u64(v);
    }
    h.finish()
}

/// Folds one key column into a batch of running hashes: for every `i`,
/// `hashes[i] = (hashes[i].rotate_left(5) ^ col[i]) * SEED` — exactly one
/// [`FxHasher::write_u64`] step. Calling this once per key position over
/// zeroed hashes reproduces [`hash_vals`] of every row's projected key at
/// once, but column-at-a-time: the loop body is branch-free over two
/// contiguous slices, so the compiler unrolls and autovectorizes the
/// 8-wide `chunks_exact` blocks instead of re-walking short per-row key
/// slices. The columnar kernels use this to hoist key hashing out of
/// their per-row probe loops.
#[inline]
pub fn hash_fold_column(hashes: &mut [u64], col: &[u64]) {
    debug_assert_eq!(hashes.len(), col.len());
    let n = hashes.len().min(col.len());
    let (hash_chunks, hash_tail) = hashes[..n].split_at_mut(n - n % 8);
    let (col_chunks, col_tail) = col[..n].split_at(n - n % 8);
    for (hs, vs) in hash_chunks.chunks_exact_mut(8).zip(col_chunks.chunks_exact(8)) {
        for i in 0..8 {
            hs[i] = (hs[i].rotate_left(ROTATE) ^ vs[i]).wrapping_mul(SEED);
        }
    }
    for (h, &v) in hash_tail.iter_mut().zip(col_tail) {
        *h = (h.rotate_left(ROTATE) ^ v).wrapping_mul(SEED);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(hash_u64(42), hash_u64(42));
        assert_eq!(hash_pair(1, 2), hash_pair(1, 2));
    }

    #[test]
    fn distinguishes_order() {
        assert_ne!(hash_pair(1, 2), hash_pair(2, 1));
    }

    #[test]
    fn map_round_trip() {
        let mut m: FxHashMap<u64, u64> = FxHashMap::default();
        for i in 0..1000u64 {
            m.insert(i, i * i);
        }
        for i in 0..1000u64 {
            assert_eq!(m[&i], i * i);
        }
        assert_eq!(m.len(), 1000);
    }

    #[test]
    fn set_round_trip() {
        let mut s: FxHashSet<(u64, u64)> = FxHashSet::default();
        for i in 0..100u64 {
            s.insert((i, i + 1));
        }
        assert!(s.contains(&(5, 6)));
        assert!(!s.contains(&(6, 5)));
    }

    #[test]
    fn byte_writes_cover_remainder() {
        let mut h1 = FxHasher::default();
        h1.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        let mut h2 = FxHasher::default();
        h2.write(&[1, 2, 3, 4, 5, 6, 7, 8, 10]);
        assert_ne!(h1.finish(), h2.finish());
    }

    #[test]
    fn column_fold_matches_row_hashing() {
        // Build 37 rows of width 3 (odd count exercises the chunk tail),
        // fold column-at-a-time, and compare with per-row `hash_vals`.
        let rows: Vec<[u64; 3]> = (0..37u64)
            .map(|i| [i.wrapping_mul(0x9e37), i ^ 0xdead, u64::MAX - i])
            .collect();
        let mut hashes = vec![0u64; rows.len()];
        for k in 0..3 {
            let col: Vec<u64> = rows.iter().map(|r| r[k]).collect();
            hash_fold_column(&mut hashes, &col);
        }
        for (row, &h) in rows.iter().zip(&hashes) {
            assert_eq!(h, hash_vals(row));
        }
    }

    #[test]
    fn reasonable_distribution_low_bits() {
        // Sequential keys should not all collide in the low bits used for
        // bucket selection.
        let mut buckets = [0usize; 16];
        for i in 0..16_000u64 {
            buckets[(hash_u64(i) & 0xf) as usize] += 1;
        }
        for &b in &buckets {
            assert!(b > 500, "bucket badly underfull: {b}");
        }
    }
}
