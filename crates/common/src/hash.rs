//! Fast, non-cryptographic hashing for database workloads.
//!
//! The default `SipHash` hasher in `std` protects against HashDoS attacks but
//! is slow for the short integer keys that dominate join processing. This
//! module provides an `Fx`-style multiplicative hasher (the algorithm used by
//! rustc) implemented from scratch so the workspace does not need an extra
//! dependency, plus [`FxHashMap`] / [`FxHashSet`] aliases that are drop-in
//! replacements for the standard containers.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

/// 64-bit Fx multiplicative hash constant (derived from the golden ratio).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// A fast multiplicative hasher suitable for integer-like keys.
///
/// Quality is lower than SipHash but throughput is much higher; this is the
/// standard tradeoff for in-memory database operators where the key
/// distribution is not adversarial.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_u128(&mut self, i: u128) {
        self.add_to_hash(i as u64);
        self.add_to_hash((i >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

/// Hash a single `u64` key directly (used by specialized probe tables).
#[inline]
pub fn hash_u64(x: u64) -> u64 {
    let mut h = FxHasher::default();
    h.write_u64(x);
    h.finish()
}

/// Hash a pair of `u64` keys directly.
#[inline]
pub fn hash_pair(a: u64, b: u64) -> u64 {
    let mut h = FxHasher::default();
    h.write_u64(a);
    h.write_u64(b);
    h.finish()
}

/// Hash a slice of `u64` values word-by-word — the key hash of the
/// compiled online path's probe memos, computed **once** per key
/// occurrence and then reused for lookup and insertion (a map keyed by
/// the slice itself would re-hash it on every probe).
#[inline]
pub fn hash_vals(vals: &[u64]) -> u64 {
    let mut h = FxHasher::default();
    for &v in vals {
        h.write_u64(v);
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(hash_u64(42), hash_u64(42));
        assert_eq!(hash_pair(1, 2), hash_pair(1, 2));
    }

    #[test]
    fn distinguishes_order() {
        assert_ne!(hash_pair(1, 2), hash_pair(2, 1));
    }

    #[test]
    fn map_round_trip() {
        let mut m: FxHashMap<u64, u64> = FxHashMap::default();
        for i in 0..1000u64 {
            m.insert(i, i * i);
        }
        for i in 0..1000u64 {
            assert_eq!(m[&i], i * i);
        }
        assert_eq!(m.len(), 1000);
    }

    #[test]
    fn set_round_trip() {
        let mut s: FxHashSet<(u64, u64)> = FxHashSet::default();
        for i in 0..100u64 {
            s.insert((i, i + 1));
        }
        assert!(s.contains(&(5, 6)));
        assert!(!s.contains(&(6, 5)));
    }

    #[test]
    fn byte_writes_cover_remainder() {
        let mut h1 = FxHasher::default();
        h1.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        let mut h2 = FxHasher::default();
        h2.write(&[1, 2, 3, 4, 5, 6, 7, 8, 10]);
        assert_ne!(h1.finish(), h2.finish());
    }

    #[test]
    fn reasonable_distribution_low_bits() {
        // Sequential keys should not all collide in the low bits used for
        // bucket selection.
        let mut buckets = [0usize; 16];
        for i in 0..16_000u64 {
            buckets[(hash_u64(i) & 0xf) as usize] += 1;
        }
        for &b in &buckets {
            assert!(b > 500, "bucket badly underfull: {b}");
        }
    }
}
