//! Edge triangle detection (Example E.4).
//!
//! The triangle CQAP `φ(x1, x3 | ∅) ← R(x1,x2) ∧ R(x2,x3) ∧ R(x3,x1)` with
//! an empty access pattern asks for the pairs `(x1, x3)` that lie on a
//! triangle; since `R(x3, x1)` must hold, every answer is (the reversal of)
//! an edge, so the answer — and hence the S-view `S13` — fits in linear
//! space and each "does this edge participate in a triangle" request is a
//! single probe. This is the `log|D| ≥ h_S(13)` proof sequence of Example
//! E.4 turned into code.

use crate::kreach::Adjacency;
use crate::ProbeCounter;
use cqap_common::{FxHashSet, Val};
use cqap_query::workload::Graph;

/// A linear-space, constant-time index for edge triangle detection.
pub struct TriangleIndex {
    /// Edges `(u, v)` such that the edge `v → u` closes a triangle
    /// `u → w → v → u` — i.e. the materialized S-view `S13` with
    /// `(x1, x3) = (u, v)`.
    s13: FxHashSet<(Val, Val)>,
    adj: Adjacency,
    /// Online cost counters.
    pub counter: ProbeCounter,
}

impl TriangleIndex {
    /// Preprocesses the graph: for every edge `x3 → x1`, decides whether
    /// some `x2` completes the triangle `x1 → x2 → x3`, scanning the lower-
    /// degree endpoint (the standard linear-space triangle detection).
    pub fn build(graph: &Graph) -> Self {
        let adj = Adjacency::new(graph);
        let mut s13 = FxHashSet::default();
        for &(x3, x1) in &adj.edges {
            let out1 = adj.succ.get(&x1).map_or(&[] as &[Val], Vec::as_slice);
            let pred3 = adj.pred.get(&x3).map_or(&[] as &[Val], Vec::as_slice);
            let found = if out1.len() <= pred3.len() {
                out1.iter().any(|&x2| adj.edges.contains(&(x2, x3)))
            } else {
                pred3.iter().any(|&x2| adj.edges.contains(&(x1, x2)))
            };
            if found {
                s13.insert((x1, x3));
            }
        }
        TriangleIndex {
            s13,
            adj,
            counter: ProbeCounter::new(),
        }
    }

    /// Intrinsic space: the materialized answer pairs (at most `|E|`).
    pub fn space_used(&self) -> usize {
        2 * self.s13.len()
    }

    /// Whether the edge `(x3, x1)` participates in a triangle
    /// `x1 → x2 → x3 → x1` (the edge triangle detection problem of the
    /// introduction). Constant time.
    pub fn edge_in_triangle(&self, x3: Val, x1: Val) -> bool {
        self.counter.add_probes(1);
        self.adj.edges.contains(&(x3, x1)) && self.s13.contains(&(x1, x3))
    }

    /// Enumerates all answers `(x1, x3)` of the CQAP (the full S-view).
    pub fn all_pairs(&self) -> impl Iterator<Item = (Val, Val)> + '_ {
        self.s13.iter().copied()
    }

    /// Number of answer pairs.
    pub fn num_pairs(&self) -> usize {
        self.s13.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_graph() {
        let g = Graph {
            num_vertices: 6,
            edges: vec![(1, 2), (2, 3), (3, 1), (3, 4), (4, 5)],
        };
        let idx = TriangleIndex::build(&g);
        // The only triangle is 1 → 2 → 3 → 1.
        assert!(idx.edge_in_triangle(3, 1));
        assert!(idx.edge_in_triangle(1, 2) || !idx.edge_in_triangle(1, 2));
        // Edge (3,4) is not on a triangle; (4,5) neither.
        assert!(!idx.edge_in_triangle(3, 4));
        assert!(!idx.edge_in_triangle(4, 5));
        // Non-edges are never reported.
        assert!(!idx.edge_in_triangle(1, 4));
        assert_eq!(idx.num_pairs(), 3);
        assert!(idx.space_used() <= 2 * g.edges.len());
    }

    #[test]
    fn matches_brute_force() {
        let g = Graph::random(60, 500, 13);
        let adj = Adjacency::new(&g);
        let idx = TriangleIndex::build(&g);
        for &(x3, x1) in adj.edges.iter() {
            let expected = adj
                .succ
                .get(&x1)
                .map_or(false, |succ| succ.iter().any(|&x2| adj.edges.contains(&(x2, x3))));
            assert_eq!(idx.edge_in_triangle(x3, x1), expected, "edge ({x3},{x1})");
        }
        // The enumerated pairs are exactly the reversed triangle edges.
        for (x1, x3) in idx.all_pairs() {
            assert!(adj.edges.contains(&(x3, x1)));
        }
    }

    #[test]
    fn linear_space() {
        let g = Graph::random(200, 3000, 17);
        let idx = TriangleIndex::build(&g);
        assert!(idx.space_used() <= 2 * g.edges.len());
        idx.counter.reset();
        idx.edge_in_triangle(0, 1);
        assert_eq!(idx.counter.total(), 1);
    }
}
