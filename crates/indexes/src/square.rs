//! The square CQAP index (Example 5.2 / E.5).
//!
//! `φ(x1, x3 | x1, x3) ← R1(x1,x2) ∧ R2(x2,x3) ∧ R3(x3,x4) ∧ R4(x4,x1)`:
//! given two vertices, decide whether they sit on opposite corners of a
//! 4-cycle. The two "sides" of the square are independent 2-path
//! sub-problems — `x1 →_{R1} x2 →_{R2} x3` and `x3 →_{R3} x4 →_{R4} x1` —
//! so the structure is two [`TwoReachIndex`]-style halves and the answer is
//! their conjunction, giving the paper's `S · T² ≾ |D|² · |Q|²` tradeoff.

use crate::kreach::{k_reachable_naive, Adjacency, TwoReachIndex};
use crate::ProbeCounter;
use cqap_common::Val;
use cqap_query::workload::Graph;

/// A budget-parameterized index for the square CQAP over a single graph
/// (all four atoms read the same edge relation, as in Example E.5).
pub struct SquareIndex {
    /// The `x1 → x2 → x3` side.
    forward: TwoReachIndex,
    /// The `x3 → x4 → x1` side.
    backward: TwoReachIndex,
    adj: Adjacency,
    /// Online cost counters (aggregated over both halves).
    pub counter: ProbeCounter,
}

impl SquareIndex {
    /// Builds the index with a total space budget split evenly across the
    /// two sides of the square.
    pub fn build(graph: &Graph, budget: usize) -> Self {
        let half = (budget / 2).max(1);
        SquareIndex {
            forward: TwoReachIndex::build(graph, half),
            backward: TwoReachIndex::build(graph, half),
            adj: Adjacency::new(graph),
            counter: ProbeCounter::new(),
        }
    }

    /// Intrinsic space usage of both halves.
    pub fn space_used(&self) -> usize {
        self.forward.space_used() + self.backward.space_used()
    }

    /// Whether `(a, c)` are opposite corners of a square: `a` 2-reaches `c`
    /// and `c` 2-reaches `a`.
    pub fn query(&self, a: Val, c: Val) -> bool {
        let result = self.forward.query(a, c) && self.backward.query(c, a);
        // Fold the halves' counters into the aggregate counter so callers
        // see one number per query.
        self.counter
            .add_probes(self.forward.counter.probes() + self.backward.counter.probes());
        self.counter
            .add_scans(self.forward.counter.scans() + self.backward.counter.scans());
        self.forward.counter.reset();
        self.backward.counter.reset();
        result
    }

    /// Reference answer by BFS on both sides.
    pub fn query_naive(&self, a: Val, c: Val) -> bool {
        k_reachable_naive(&self.adj, 2, a, c) && k_reachable_naive(&self.adj, 2, c, a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqap_query::workload::graph_pair_requests;

    #[test]
    fn matches_naive() {
        let g = Graph::skewed(200, 1200, 5, 90, 19);
        for budget in [2usize, 128, 1 << 14] {
            let idx = SquareIndex::build(&g, budget);
            for (a, c) in graph_pair_requests(&g, 200, 7) {
                assert_eq!(idx.query(a, c), idx.query_naive(a, c), "pair ({a},{c})");
            }
        }
    }

    #[test]
    fn finds_a_known_square() {
        // 1 → 2 → 3 → 4 → 1 is a 4-cycle: (1,3) and (2,4) are opposite.
        let g = Graph {
            num_vertices: 6,
            edges: vec![(1, 2), (2, 3), (3, 4), (4, 1), (1, 5)],
        };
        let idx = SquareIndex::build(&g, 64);
        assert!(idx.query(1, 3));
        assert!(idx.query(2, 4));
        assert!(!idx.query(1, 4));
        assert!(!idx.query(1, 5));
    }

    #[test]
    fn tradeoff_direction() {
        let g = Graph::skewed(300, 2000, 6, 150, 23);
        let tight = SquareIndex::build(&g, 2);
        let roomy = SquareIndex::build(&g, 1 << 18);
        assert!(roomy.space_used() >= tight.space_used());
        for (a, c) in graph_pair_requests(&g, 200, 29) {
            tight.query(a, c);
            roomy.query(a, c);
        }
        assert!(roomy.counter.total() <= tight.counter.total());
    }
}
