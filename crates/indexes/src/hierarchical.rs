//! The two-level Boolean hierarchical CQAP of Appendix F.
//!
//! `φ(Z | Z) ← R(x,y1,z1) ∧ S(x,y1,z2) ∧ T(x,y2,z3) ∧ U(x,y2,z4)` with
//! access pattern `Z = (z1,z2,z3,z4)`: given a binding of the four leaf
//! variables, does some root value `x` (with witnesses `y1, y2`) satisfy all
//! four atoms?
//!
//! The structure follows the adapted Kara-et-al. strategy of Appendix F,
//! driven by a degree threshold `Δ` on the root variable `x`:
//!
//! * for every **light** `x` (at most `Δ` tuples in each relation), the
//!   half-views `W1(x | z1,z2) = ∃y1. R ∧ S` and `W2(x | z3,z4) = ∃y2. T ∧ U`
//!   are materialized and indexed by their `z`-pair — space `O(N·Δ)`;
//! * **heavy** `x` values (at most `N/Δ` of them) are checked online per
//!   request by probing the four per-`(x, z)` indexes — time `O(N/Δ)`
//!   probes.
//!
//! Sweeping `Δ` traces a space/time tradeoff between the two extremes
//! (everything materialized vs. everything online), which is what the
//! Appendix F experiment measures.

use crate::ProbeCounter;
use cqap_common::{FxHashMap, FxHashSet, Val};

/// A tuple of one hierarchical input relation: `(x, y, z)`.
pub type HTuple = (Val, Val, Val);

/// The synthetic input of the hierarchical experiment: the four ternary
/// relations of Figure 6a.
#[derive(Clone, Debug, Default)]
pub struct HierarchicalInstance {
    /// `R(x, y1, z1)`.
    pub r: Vec<HTuple>,
    /// `S(x, y1, z2)`.
    pub s: Vec<HTuple>,
    /// `T(x, y2, z3)`.
    pub t: Vec<HTuple>,
    /// `U(x, y2, z4)`.
    pub u: Vec<HTuple>,
}

impl HierarchicalInstance {
    /// Total number of tuples `N`.
    pub fn len(&self) -> usize {
        self.r.len() + self.s.len() + self.t.len() + self.u.len()
    }

    /// Whether the instance is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Generates a skewed instance: `num_roots` root values, the first
    /// `num_heavy` of which receive `heavy_width` (y, z) combinations per
    /// relation while the rest receive few, drawn deterministically from
    /// the seed.
    pub fn generate(
        num_roots: usize,
        num_heavy: usize,
        heavy_width: usize,
        light_width: usize,
        z_domain: usize,
        seed: u64,
    ) -> Self {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let mut inst = HierarchicalInstance::default();
        for x in 0..num_roots as Val {
            let width = if (x as usize) < num_heavy {
                heavy_width
            } else {
                light_width
            };
            for w in 0..width {
                let y1 = (x * 1000 + w as Val) % 10_000;
                let y2 = (x * 2000 + w as Val) % 10_000;
                inst.r.push((x, y1, rng.random_range(0..z_domain) as Val));
                inst.s.push((x, y1, rng.random_range(0..z_domain) as Val));
                inst.t.push((x, y2, rng.random_range(0..z_domain) as Val));
                inst.u.push((x, y2, rng.random_range(0..z_domain) as Val));
            }
        }
        inst
    }
}

/// Sorts and deduplicates a vector in place and returns it.
fn sorted_dedup<T: Ord>(mut v: Vec<T>) -> Vec<T> {
    v.sort_unstable();
    v.dedup();
    v
}

/// The budget-parameterized index for the hierarchical CQAP.
pub struct HierarchicalIndex {
    /// Light-root half-views: `(z1, z2) → sorted x values` with `∃y1. R∧S`.
    w1: FxHashMap<(Val, Val), Vec<Val>>,
    /// Light-root half-views: `(z3, z4) → sorted x values` with `∃y2. T∧U`.
    w2: FxHashMap<(Val, Val), Vec<Val>>,
    /// Heavy root values, checked online per request.
    heavy_roots: Vec<Val>,
    /// Per-(x, z1) index of R: the y1 witnesses.
    r_by_xz: FxHashMap<(Val, Val), FxHashSet<Val>>,
    s_by_xz: FxHashMap<(Val, Val), FxHashSet<Val>>,
    t_by_xz: FxHashMap<(Val, Val), FxHashSet<Val>>,
    u_by_xz: FxHashMap<(Val, Val), FxHashSet<Val>>,
    threshold: usize,
    space: usize,
    /// Online cost counters.
    pub counter: ProbeCounter,
}

impl HierarchicalIndex {
    /// Builds the index with the given root-degree threshold `Δ`.
    pub fn build_with_threshold(inst: &HierarchicalInstance, threshold: usize) -> Self {
        let threshold = threshold.max(1);
        // Per-root tuple counts to classify heavy/light.
        let mut degree: FxHashMap<Val, usize> = FxHashMap::default();
        for (x, _, _) in inst
            .r
            .iter()
            .chain(&inst.s)
            .chain(&inst.t)
            .chain(&inst.u)
        {
            *degree.entry(*x).or_default() += 1;
        }
        let heavy: FxHashSet<Val> = degree
            .iter()
            .filter(|(_, &d)| d > 4 * threshold)
            .map(|(&x, _)| x)
            .collect();

        // Per-(x, z) atom indexes (these are rearrangements of the input and
        // count as the Õ(|D|) part of the space, not the intrinsic cost).
        let index_atom = |tuples: &[HTuple]| {
            let mut m: FxHashMap<(Val, Val), FxHashSet<Val>> = FxHashMap::default();
            for &(x, y, z) in tuples {
                m.entry((x, z)).or_default().insert(y);
            }
            m
        };
        let r_by_xz = index_atom(&inst.r);
        let s_by_xz = index_atom(&inst.s);
        let t_by_xz = index_atom(&inst.t);
        let u_by_xz = index_atom(&inst.u);

        // Materialize the light-root half-views W1 and W2.
        let half_view = |a: &FxHashMap<(Val, Val), FxHashSet<Val>>,
                         b: &FxHashMap<(Val, Val), FxHashSet<Val>>|
         -> FxHashMap<(Val, Val), Vec<Val>> {
            let mut out: FxHashMap<(Val, Val), FxHashSet<Val>> = FxHashMap::default();
            for (&(x, za), ys) in a {
                if heavy.contains(&x) {
                    continue;
                }
                for (&(x2, zb), ys2) in b {
                    if x2 != x {
                        continue;
                    }
                    if ys.iter().any(|y| ys2.contains(y)) {
                        out.entry((za, zb)).or_default().insert(x);
                    }
                }
            }
            out.into_iter()
                .map(|(k, v)| (k, sorted_dedup(v.into_iter().collect())))
                .collect()
        };
        let w1 = half_view(&r_by_xz, &s_by_xz);
        let w2 = half_view(&t_by_xz, &u_by_xz);

        let space = w1.values().map(Vec::len).sum::<usize>()
            + w2.values().map(Vec::len).sum::<usize>();
        let mut heavy_roots: Vec<Val> = heavy.into_iter().collect();
        heavy_roots.sort_unstable();
        HierarchicalIndex {
            w1,
            w2,
            heavy_roots,
            r_by_xz,
            s_by_xz,
            t_by_xz,
            u_by_xz,
            threshold,
            space,
            counter: ProbeCounter::new(),
        }
    }

    /// Builds the index from a space budget: `Δ ≈ budget / N` per root (the
    /// materialized half-views hold `O(N · Δ / N) = O(Δ)` values per root on
    /// average).
    pub fn build(inst: &HierarchicalInstance, budget: usize) -> Self {
        let n = inst.len().max(1);
        let threshold = (budget.max(1) / n.max(1)).max(1);
        Self::build_with_threshold(inst, threshold)
    }

    /// The root-degree threshold Δ.
    pub fn threshold(&self) -> usize {
        self.threshold
    }

    /// Number of heavy roots checked online per request.
    pub fn num_heavy_roots(&self) -> usize {
        self.heavy_roots.len()
    }

    /// Intrinsic space usage: the materialized half-view entries.
    pub fn space_used(&self) -> usize {
        self.space
    }

    /// Answers the Boolean hierarchical CQAP for the request
    /// `Z = (z1, z2, z3, z4)`.
    pub fn query(&self, z1: Val, z2: Val, z3: Val, z4: Val) -> bool {
        // Light roots: intersect the two materialized half-view lists.
        self.counter.add_probes(2);
        let l1 = self.w1.get(&(z1, z2));
        let l2 = self.w2.get(&(z3, z4));
        if let (Some(l1), Some(l2)) = (l1, l2) {
            let (small, big) = if l1.len() <= l2.len() { (l1, l2) } else { (l2, l1) };
            self.counter.add_scans(small.len() as u64);
            if small.iter().any(|x| big.binary_search(x).is_ok()) {
                return true;
            }
        }
        // Heavy roots: check each one directly against the four atoms.
        for &x in &self.heavy_roots {
            self.counter.add_probes(4);
            let (Some(ry), Some(sy), Some(ty), Some(uy)) = (
                self.r_by_xz.get(&(x, z1)),
                self.s_by_xz.get(&(x, z2)),
                self.t_by_xz.get(&(x, z3)),
                self.u_by_xz.get(&(x, z4)),
            ) else {
                continue;
            };
            let y1_ok = {
                let (a, b) = if ry.len() <= sy.len() { (ry, sy) } else { (sy, ry) };
                self.counter.add_scans(a.len() as u64);
                a.iter().any(|y| b.contains(y))
            };
            if !y1_ok {
                continue;
            }
            let y2_ok = {
                let (a, b) = if ty.len() <= uy.len() { (ty, uy) } else { (uy, ty) };
                self.counter.add_scans(a.len() as u64);
                a.iter().any(|y| b.contains(y))
            };
            if y2_ok {
                return true;
            }
        }
        false
    }

    /// Reference answer by brute force over all roots.
    pub fn query_naive(&self, inst: &HierarchicalInstance, z: (Val, Val, Val, Val)) -> bool {
        let roots: FxHashSet<Val> = inst.r.iter().map(|&(x, _, _)| x).collect();
        for &x in &roots {
            let y1_ok = inst.r.iter().any(|&(rx, ry, rz)| {
                rx == x
                    && rz == z.0
                    && inst
                        .s
                        .iter()
                        .any(|&(sx, sy, sz)| sx == x && sy == ry && sz == z.1)
            });
            if !y1_ok {
                continue;
            }
            let y2_ok = inst.t.iter().any(|&(tx, ty, tz)| {
                tx == x
                    && tz == z.2
                    && inst
                        .u
                        .iter()
                        .any(|&(ux, uy, uz)| ux == x && uy == ty && uz == z.3)
            });
            if y2_ok {
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn instance() -> HierarchicalInstance {
        HierarchicalInstance::generate(60, 3, 60, 4, 12, 7)
    }

    #[test]
    fn matches_naive() {
        let inst = instance();
        let mut rng = StdRng::seed_from_u64(3);
        for threshold in [1usize, 8, 1_000] {
            let idx = HierarchicalIndex::build_with_threshold(&inst, threshold);
            for _ in 0..150 {
                let z = (
                    rng.random_range(0..12) as Val,
                    rng.random_range(0..12) as Val,
                    rng.random_range(0..12) as Val,
                    rng.random_range(0..12) as Val,
                );
                assert_eq!(
                    idx.query(z.0, z.1, z.2, z.3),
                    idx.query_naive(&inst, z),
                    "Δ = {threshold}, z = {z:?}"
                );
            }
        }
    }

    #[test]
    fn known_positive_and_negative() {
        let inst = HierarchicalInstance {
            r: vec![(1, 10, 100)],
            s: vec![(1, 10, 101)],
            t: vec![(1, 20, 102)],
            u: vec![(1, 20, 103)],
        };
        let idx = HierarchicalIndex::build_with_threshold(&inst, 4);
        assert!(idx.query(100, 101, 102, 103));
        assert!(!idx.query(100, 101, 102, 104));
        assert!(!idx.query(101, 100, 102, 103));
    }

    #[test]
    fn threshold_controls_heavy_set_and_space() {
        let inst = instance();
        let all_online = HierarchicalIndex::build_with_threshold(&inst, 1);
        let all_materialized = HierarchicalIndex::build_with_threshold(&inst, 1_000_000);
        assert!(all_online.num_heavy_roots() >= all_materialized.num_heavy_roots());
        assert_eq!(all_materialized.num_heavy_roots(), 0);
        assert!(all_materialized.space_used() >= all_online.space_used());
    }

    #[test]
    fn more_space_less_online_work() {
        let inst = instance();
        let tight = HierarchicalIndex::build_with_threshold(&inst, 1);
        let roomy = HierarchicalIndex::build_with_threshold(&inst, 1_000_000);
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..200 {
            let z = (
                rng.random_range(0..12) as Val,
                rng.random_range(0..12) as Val,
                rng.random_range(0..12) as Val,
                rng.random_range(0..12) as Val,
            );
            tight.query(z.0, z.1, z.2, z.3);
            roomy.query(z.0, z.1, z.2, z.3);
        }
        assert!(roomy.counter.total() <= tight.counter.total());
    }

    #[test]
    fn budget_constructor() {
        let inst = instance();
        let idx = HierarchicalIndex::build(&inst, 10 * inst.len());
        assert!(idx.threshold() >= 1);
    }
}
