//! Set disjointness / set intersection with a space-time tradeoff.
//!
//! The classic structure from the introduction (and Section 6.1): given a
//! family of sets with `N` membership pairs in total and a space budget
//! `S`, pick the degree threshold `Δ = N / √S`. Sets larger than `Δ` are
//! *heavy* — there are at most `N/Δ = √S` of them, so the emptiness answer
//! for every heavy-heavy pair fits in `S`. A query involving a light set is
//! answered online by scanning the lighter of the two sets (≤ `Δ`
//! elements) and probing the other's membership table, giving
//! `T = O(Δ) = O(N/√S)` and the tradeoff `S · T² = O(N²)`.
//!
//! The k-ary generalization answers k-set intersection queries by scanning
//! the smallest of the k sets and probing the remaining k−1 membership
//! tables (with the heavy-pair table still short-circuiting Boolean
//! heavy-heavy 2-set queries).

use crate::ProbeCounter;
use cqap_common::{FxHashMap, FxHashSet, Val};
use cqap_query::workload::SetFamily;

/// A space/time-tradeoff index for set disjointness and set intersection.
pub struct SetDisjointnessIndex {
    /// Membership test: (set, element) pairs.
    membership: FxHashSet<(Val, Val)>,
    /// Elements of each set.
    elements: FxHashMap<Val, Vec<Val>>,
    /// Degree threshold Δ.
    threshold: usize,
    /// Heavy sets (size > Δ).
    heavy: FxHashSet<Val>,
    /// For heavy set pairs (a ≤ b): whether they intersect.
    heavy_pairs: FxHashMap<(Val, Val), bool>,
    /// Online cost counters.
    pub counter: ProbeCounter,
    budget: usize,
}

impl SetDisjointnessIndex {
    /// Builds the index from a set family with the given space budget
    /// (counted in stored values for the heavy-pair table).
    ///
    /// The threshold is `Δ = ⌈N / √budget⌉` (with `budget ≥ 1`), matching
    /// the analysis in the introduction of the paper.
    pub fn build(family: &SetFamily, budget: usize) -> Self {
        let n = family.len().max(1);
        let budget = budget.max(1);
        let threshold = (n as f64 / (budget as f64).sqrt()).ceil() as usize;
        Self::build_with_threshold(family, threshold, budget)
    }

    /// Builds the index with an explicit degree threshold (used by the
    /// benchmark harness to sweep the tradeoff directly).
    pub fn build_with_threshold(family: &SetFamily, threshold: usize, budget: usize) -> Self {
        let mut membership = FxHashSet::default();
        let mut elements: FxHashMap<Val, Vec<Val>> = FxHashMap::default();
        for &(e, s) in &family.memberships {
            if membership.insert((s, e)) {
                elements.entry(s).or_default().push(e);
            }
        }
        let threshold = threshold.max(1);
        let heavy: FxHashSet<Val> = elements
            .iter()
            .filter(|(_, els)| els.len() > threshold)
            .map(|(&s, _)| s)
            .collect();
        // Materialize emptiness answers for all heavy-heavy pairs.
        let mut heavy_list: Vec<Val> = heavy.iter().copied().collect();
        heavy_list.sort_unstable();
        let mut heavy_pairs = FxHashMap::default();
        for (i, &a) in heavy_list.iter().enumerate() {
            for &b in &heavy_list[i..] {
                let intersects = {
                    let (small, big) = if elements[&a].len() <= elements[&b].len() {
                        (a, b)
                    } else {
                        (b, a)
                    };
                    elements[&small]
                        .iter()
                        .any(|&e| membership.contains(&(big, e)))
                };
                heavy_pairs.insert((a, b), intersects);
            }
        }
        SetDisjointnessIndex {
            membership,
            elements,
            threshold,
            heavy,
            heavy_pairs,
            counter: ProbeCounter::new(),
            budget,
        }
    }

    /// The degree threshold Δ in use.
    pub fn threshold(&self) -> usize {
        self.threshold
    }

    /// The number of heavy sets.
    pub fn num_heavy(&self) -> usize {
        self.heavy.len()
    }

    /// The space budget the index was built for.
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// Intrinsic space usage: the heavy-pair table (the membership and
    /// element tables are the input database itself, which the paper counts
    /// separately as `|D|`).
    pub fn space_used(&self) -> usize {
        self.heavy_pairs.len()
    }

    /// Whether both sets are heavy (answered from the materialized table).
    pub fn is_heavy(&self, set: Val) -> bool {
        self.heavy.contains(&set)
    }

    /// 2-set disjointness: do sets `a` and `b` intersect?
    pub fn intersects(&self, a: Val, b: Val) -> bool {
        if self.heavy.contains(&a) && self.heavy.contains(&b) {
            self.counter.add_probes(1);
            let key = if a <= b { (a, b) } else { (b, a) };
            return *self.heavy_pairs.get(&key).unwrap_or(&false);
        }
        // At least one set is light: scan the smaller one.
        let (scan, probe) = match (self.elements.get(&a), self.elements.get(&b)) {
            (Some(ea), Some(eb)) => {
                if ea.len() <= eb.len() {
                    (a, b)
                } else {
                    (b, a)
                }
            }
            _ => return false, // an unknown set is empty
        };
        let scanned = &self.elements[&scan];
        self.counter.add_scans(scanned.len() as u64);
        scanned
            .iter()
            .any(|&e| self.membership.contains(&(probe, e)))
    }

    /// k-set intersection: the elements common to all the given sets
    /// (Example 2.2, eq. (2)). Returns an empty vector if any set is
    /// unknown.
    pub fn intersection(&self, sets: &[Val]) -> Vec<Val> {
        if sets.is_empty() {
            return Vec::new();
        }
        let Some(smallest) = sets
            .iter()
            .filter_map(|s| self.elements.get(s).map(|e| (s, e.len())))
            .min_by_key(|&(_, len)| len)
            .map(|(s, _)| *s)
        else {
            return Vec::new();
        };
        if sets.iter().any(|s| !self.elements.contains_key(s)) {
            return Vec::new();
        }
        let base = &self.elements[&smallest];
        self.counter.add_scans(base.len() as u64);
        base.iter()
            .copied()
            .filter(|&e| {
                sets.iter().all(|&s| {
                    if s == smallest {
                        true
                    } else {
                        self.counter.add_probes(1);
                        self.membership.contains(&(s, e))
                    }
                })
            })
            .collect()
    }

    /// k-set disjointness (Boolean): is the intersection of the given sets
    /// non-empty?
    pub fn intersects_all(&self, sets: &[Val]) -> bool {
        if sets.len() == 2 {
            return self.intersects(sets[0], sets[1]);
        }
        !self.intersection(sets).is_empty()
    }

    /// Reference answer computed by brute force (used in tests).
    pub fn intersects_naive(&self, a: Val, b: Val) -> bool {
        match (self.elements.get(&a), self.elements.get(&b)) {
            (Some(ea), Some(eb)) => {
                let set: FxHashSet<Val> = ea.iter().copied().collect();
                eb.iter().any(|e| set.contains(e))
            }
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqap_query::workload::SetFamily;

    fn family() -> SetFamily {
        SetFamily::zipf(40, 2_000, 400, 1.0, 7)
    }

    #[test]
    fn matches_naive_on_all_pairs() {
        let f = family();
        let idx = SetDisjointnessIndex::build(&f, 64);
        for a in 0..f.num_sets as Val {
            for b in 0..f.num_sets as Val {
                assert_eq!(
                    idx.intersects(a, b),
                    idx.intersects_naive(a, b),
                    "sets {a}, {b}"
                );
            }
        }
    }

    #[test]
    fn space_respects_budget_shape() {
        let f = family();
        let n = f.len();
        for budget in [1usize, 16, 256, 4096] {
            let idx = SetDisjointnessIndex::build(&f, budget);
            // Heavy sets are at most N/Δ ≈ √budget, so the pair table is
            // O(budget) (up to the +1 rounding of the threshold).
            let heavy_bound = n / idx.threshold() + 1;
            assert!(idx.num_heavy() <= heavy_bound);
            assert!(
                idx.space_used() <= heavy_bound * (heavy_bound + 1) / 2,
                "budget {budget}: {} stored",
                idx.space_used()
            );
        }
    }

    #[test]
    fn more_space_means_less_online_work() {
        let f = family();
        let small = SetDisjointnessIndex::build(&f, 4);
        let large = SetDisjointnessIndex::build(&f, 10_000);
        let queries: Vec<(Val, Val)> = (0..40).map(|i| (i % 7, (i * 3) % 40)).collect();
        for &(a, b) in &queries {
            small.intersects(a, b);
            large.intersects(a, b);
        }
        assert!(
            large.counter.total() <= small.counter.total(),
            "large-budget index should do no more online work ({} vs {})",
            large.counter.total(),
            small.counter.total()
        );
    }

    #[test]
    fn heavy_heavy_pairs_are_constant_time() {
        let f = family();
        let idx = SetDisjointnessIndex::build(&f, 1_000_000);
        // With a huge budget every non-trivial set is heavy.
        assert!(idx.num_heavy() > 0);
        let heavy: Vec<Val> = (0..f.num_sets as Val).filter(|&s| idx.is_heavy(s)).collect();
        idx.counter.reset();
        idx.intersects(heavy[0], heavy[heavy.len() - 1]);
        assert_eq!(idx.counter.scans(), 0);
        assert_eq!(idx.counter.probes(), 1);
    }

    #[test]
    fn k_set_intersection_matches_naive() {
        let f = family();
        let idx = SetDisjointnessIndex::build(&f, 128);
        for combo in [[0, 1, 2], [0, 5, 10], [3, 3, 7], [30, 31, 32]] {
            let got = idx.intersection(&combo.map(|s| s as Val));
            // Brute force.
            let mut expected: Vec<Val> = idx.elements[&(combo[0] as Val)]
                .iter()
                .copied()
                .filter(|&e| {
                    combo[1..]
                        .iter()
                        .all(|&s| idx.membership.contains(&(s as Val, e)))
                })
                .collect();
            let mut got_sorted = got.clone();
            got_sorted.sort_unstable();
            expected.sort_unstable();
            assert_eq!(got_sorted, expected, "combo {combo:?}");
            assert_eq!(
                idx.intersects_all(&combo.map(|s| s as Val)),
                !expected.is_empty()
            );
        }
    }

    #[test]
    fn unknown_sets_are_empty() {
        let f = family();
        let idx = SetDisjointnessIndex::build(&f, 64);
        assert!(!idx.intersects(0, 10_000));
        assert!(idx.intersection(&[0, 10_000]).is_empty());
        assert!(idx.intersection(&[]).is_empty());
    }
}
