//! # cqap-indexes
//!
//! Concrete, budget-parameterized data structures for the CQAPs the paper
//! studies — the *empirical* half of the reproduction. Each structure
//! implements one of the materialization strategies the framework
//! prescribes, exposes its intrinsic space usage (`space_used`, counted in
//! stored values beyond the input) and counts the probes it performs online
//! so benchmarks can report machine-independent time measures next to
//! wall-clock numbers.
//!
//! | module | paper reference | structure |
//! |---|---|---|
//! | [`setdisjoint`] | §1, §6.1, Ex. 6.2 | 2-set disjointness / k-set intersection with heavy/light thresholding (`S·T² = N²`) |
//! | [`kreach`] | §5, §6.4 | 2-reachability heavy/light index, the Goldstein-et-al. recursive k-reachability structure (`S·T^{2/(k−1)} = |D|²`), full materialization, BFS baseline |
//! | [`square`] | Ex. 5.2 / E.5 | opposite-corners-of-a-square index (`S·T² = |D|²·|Q|²`) |
//! | [`triangle`] | Ex. E.4 | edge-participates-in-a-triangle index (linear space, constant time) |
//! | [`hierarchical`] | App. F | two-level Boolean hierarchical CQAP index (adapted Kara et al. strategy) |

use std::sync::atomic::{AtomicU64, Ordering};

pub mod hierarchical;
pub mod kreach;
pub mod setdisjoint;
pub mod square;
pub mod triangle;

pub use hierarchical::HierarchicalIndex;
pub use kreach::{BfsBaseline, FullReachMaterialization, KReachGoldstein, TwoReachIndex};
pub use setdisjoint::SetDisjointnessIndex;
pub use square::SquareIndex;
pub use triangle::TriangleIndex;

/// Online cost counters shared by every index structure: the number of hash
/// probes and the number of tuples scanned while answering queries since
/// the last [`ProbeCounter::reset`]. These are the machine-independent
/// "time" measure the benchmark harness reports next to wall-clock time.
///
/// The counters are relaxed atomics rather than `Cell`s so that every index
/// structure is `Sync` and can be probed concurrently from many serving
/// threads (see the `cqap-serve` crate); counting stays accurate under
/// concurrency because each increment is a single atomic add.
#[derive(Debug, Default)]
pub struct ProbeCounter {
    probes: AtomicU64,
    scans: AtomicU64,
}

impl Clone for ProbeCounter {
    fn clone(&self) -> Self {
        ProbeCounter {
            probes: AtomicU64::new(self.probes.load(Ordering::Relaxed)),
            scans: AtomicU64::new(self.scans.load(Ordering::Relaxed)),
        }
    }
}

impl ProbeCounter {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        ProbeCounter::default()
    }

    /// Records `n` hash probes.
    #[inline]
    pub fn add_probes(&self, n: u64) {
        self.probes.fetch_add(n, Ordering::Relaxed);
    }

    /// Records `n` scanned tuples.
    #[inline]
    pub fn add_scans(&self, n: u64) {
        self.scans.fetch_add(n, Ordering::Relaxed);
    }

    /// Hash probes performed since the last reset.
    pub fn probes(&self) -> u64 {
        self.probes.load(Ordering::Relaxed)
    }

    /// Tuples scanned since the last reset.
    pub fn scans(&self) -> u64 {
        self.scans.load(Ordering::Relaxed)
    }

    /// Total online work (probes + scans).
    pub fn total(&self) -> u64 {
        self.probes.load(Ordering::Relaxed) + self.scans.load(Ordering::Relaxed)
    }

    /// Resets both counters to zero.
    pub fn reset(&self) {
        self.probes.store(0, Ordering::Relaxed);
        self.scans.store(0, Ordering::Relaxed);
    }
}
