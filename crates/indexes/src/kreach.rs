//! k-reachability index structures (Section 5 and Section 6.4).
//!
//! * [`TwoReachIndex`] — the Section 5 running example: heavy/light split of
//!   the two edge levels with threshold `Δ = |D|/√S`; heavy-heavy endpoint
//!   pairs are materialized, every other query expands the light endpoint.
//!   Tradeoff `S · T² = O(|D|²)`.
//! * [`KReachGoldstein`] — the prior state-of-the-art recursive structure of
//!   Goldstein et al. for arbitrary `k`: materialize answers for
//!   heavy-heavy endpoint pairs, expand a light endpoint and recurse into a
//!   `(k−1)`-reachability structure. Tradeoff `S · T^{2/(k−1)} = O(|D|²)` —
//!   the brown baseline of Figures 4a/4b.
//! * [`FullReachMaterialization`] — the `T = O(1)` extreme: store all
//!   reachable endpoint pairs.
//! * [`BfsBaseline`] — the `S = O(1)` extreme: answer every request by a
//!   length-bounded breadth-first search.

use crate::ProbeCounter;
use cqap_common::{FxHashMap, FxHashSet, Val};
use cqap_query::workload::Graph;

/// Adjacency representation shared by the reachability structures.
#[derive(Clone, Debug, Default)]
pub struct Adjacency {
    /// Successors of each vertex.
    pub succ: FxHashMap<Val, Vec<Val>>,
    /// Predecessors of each vertex.
    pub pred: FxHashMap<Val, Vec<Val>>,
    /// Edge membership.
    pub edges: FxHashSet<(Val, Val)>,
}

impl Adjacency {
    /// Builds the adjacency structure of a graph.
    pub fn new(graph: &Graph) -> Self {
        let mut adj = Adjacency::default();
        for &(u, v) in &graph.edges {
            if adj.edges.insert((u, v)) {
                adj.succ.entry(u).or_default().push(v);
                adj.pred.entry(v).or_default().push(u);
            }
        }
        adj
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Out-degree of a vertex.
    pub fn out_degree(&self, v: Val) -> usize {
        self.succ.get(&v).map_or(0, Vec::len)
    }

    /// In-degree of a vertex (used by tests and future strategies).
    pub fn in_degree(&self, v: Val) -> usize {
        self.pred.get(&v).map_or(0, Vec::len)
    }
}

/// Whether there is a path of length exactly `k` from `u` to `v`, computed
/// by forward BFS level by level (the reference answer and the zero-space
/// baseline's workhorse).
pub fn k_reachable_naive(adj: &Adjacency, k: usize, u: Val, v: Val) -> bool {
    let mut frontier: FxHashSet<Val> = FxHashSet::default();
    frontier.insert(u);
    for _ in 0..k {
        let mut next = FxHashSet::default();
        for &x in &frontier {
            if let Some(succ) = adj.succ.get(&x) {
                next.extend(succ.iter().copied());
            }
        }
        frontier = next;
        if frontier.is_empty() {
            return false;
        }
    }
    frontier.contains(&v)
}

/// The `S = O(1)` baseline: answer every query by a length-k BFS.
pub struct BfsBaseline {
    adj: Adjacency,
    k: usize,
    /// Online cost counters.
    pub counter: ProbeCounter,
}

impl BfsBaseline {
    /// Builds the baseline (no preprocessing beyond adjacency lists).
    pub fn build(graph: &Graph, k: usize) -> Self {
        BfsBaseline {
            adj: Adjacency::new(graph),
            k,
            counter: ProbeCounter::new(),
        }
    }

    /// Intrinsic space: nothing beyond the input.
    pub fn space_used(&self) -> usize {
        0
    }

    /// Whether `u` reaches `v` by a path of length exactly `k`.
    pub fn query(&self, u: Val, v: Val) -> bool {
        let mut frontier: FxHashSet<Val> = FxHashSet::default();
        frontier.insert(u);
        for _ in 0..self.k {
            let mut next = FxHashSet::default();
            for &x in &frontier {
                if let Some(succ) = self.adj.succ.get(&x) {
                    self.counter.add_scans(succ.len() as u64);
                    next.extend(succ.iter().copied());
                }
            }
            frontier = next;
            if frontier.is_empty() {
                return false;
            }
        }
        self.counter.add_probes(1);
        frontier.contains(&v)
    }
}

/// The `T = O(1)` extreme: all k-reachable pairs stored in a hash table.
pub struct FullReachMaterialization {
    pairs: FxHashSet<(Val, Val)>,
    /// Online cost counters.
    pub counter: ProbeCounter,
}

impl FullReachMaterialization {
    /// Materializes every k-reachable pair of the graph.
    pub fn build(graph: &Graph, k: usize) -> Self {
        let adj = Adjacency::new(graph);
        // Forward expansion from every source vertex.
        let mut pairs = FxHashSet::default();
        let sources: FxHashSet<Val> = adj.succ.keys().copied().collect();
        for &s in &sources {
            let mut frontier: FxHashSet<Val> = FxHashSet::default();
            frontier.insert(s);
            for _ in 0..k {
                let mut next = FxHashSet::default();
                for &x in &frontier {
                    if let Some(succ) = adj.succ.get(&x) {
                        next.extend(succ.iter().copied());
                    }
                }
                frontier = next;
                if frontier.is_empty() {
                    break;
                }
            }
            for &t in &frontier {
                pairs.insert((s, t));
            }
        }
        FullReachMaterialization {
            pairs,
            counter: ProbeCounter::new(),
        }
    }

    /// Intrinsic space: the stored pair table.
    pub fn space_used(&self) -> usize {
        2 * self.pairs.len()
    }

    /// O(1) lookup.
    pub fn query(&self, u: Val, v: Val) -> bool {
        self.counter.add_probes(1);
        self.pairs.contains(&(u, v))
    }
}

/// The Section 5 running example: a 2-reachability index with heavy/light
/// splitting on both endpoints.
pub struct TwoReachIndex {
    adj: Adjacency,
    /// Degree threshold Δ = |D|/√S.
    threshold: usize,
    /// Sources with out-degree > Δ.
    heavy_out: FxHashSet<Val>,
    /// Targets with in-degree > Δ.
    heavy_in: FxHashSet<Val>,
    /// Materialized S13: heavy-heavy 2-reachable pairs.
    s13: FxHashSet<(Val, Val)>,
    /// Online cost counters.
    pub counter: ProbeCounter,
}

impl TwoReachIndex {
    /// Builds the index with space budget `S` (threshold `Δ = ⌈|E|/√S⌉`).
    pub fn build(graph: &Graph, budget: usize) -> Self {
        let n = graph.len().max(1);
        let threshold = (n as f64 / (budget.max(1) as f64).sqrt()).ceil() as usize;
        Self::build_with_threshold(graph, threshold.max(1))
    }

    /// Builds the index with an explicit degree threshold.
    pub fn build_with_threshold(graph: &Graph, threshold: usize) -> Self {
        let adj = Adjacency::new(graph);
        let heavy_out: FxHashSet<Val> = adj
            .succ
            .iter()
            .filter(|(_, s)| s.len() > threshold)
            .map(|(&v, _)| v)
            .collect();
        let heavy_in: FxHashSet<Val> = adj
            .pred
            .iter()
            .filter(|(_, p)| p.len() > threshold)
            .map(|(&v, _)| v)
            .collect();
        // Materialize heavy-heavy reachable pairs: for every heavy source,
        // expand once and keep heavy-in targets.
        let mut s13 = FxHashSet::default();
        for &a in &heavy_out {
            let mut reached: FxHashSet<Val> = FxHashSet::default();
            for &b in &adj.succ[&a] {
                if let Some(succ) = adj.succ.get(&b) {
                    reached.extend(succ.iter().copied());
                }
            }
            for c in reached {
                if heavy_in.contains(&c) {
                    s13.insert((a, c));
                }
            }
        }
        TwoReachIndex {
            adj,
            threshold,
            heavy_out,
            heavy_in,
            s13,
            counter: ProbeCounter::new(),
        }
    }

    /// The degree threshold Δ.
    pub fn threshold(&self) -> usize {
        self.threshold
    }

    /// Intrinsic space: the materialized heavy-heavy pair table.
    pub fn space_used(&self) -> usize {
        2 * self.s13.len()
    }

    /// Whether there is a path of length exactly 2 from `a` to `c`.
    pub fn query(&self, a: Val, c: Val) -> bool {
        if self.heavy_out.contains(&a) && self.heavy_in.contains(&c) {
            self.counter.add_probes(1);
            return self.s13.contains(&(a, c));
        }
        if self.adj.out_degree(a) <= self.threshold {
            // a is light: scan its successors and probe the edge (b, c).
            if let Some(succ) = self.adj.succ.get(&a) {
                self.counter.add_scans(succ.len() as u64);
                self.counter.add_probes(succ.len() as u64);
                return succ.iter().any(|&b| self.adj.edges.contains(&(b, c)));
            }
            return false;
        }
        // c is light: scan its predecessors and probe the edge (a, b).
        if let Some(pred) = self.adj.pred.get(&c) {
            self.counter.add_scans(pred.len() as u64);
            self.counter.add_probes(pred.len() as u64);
            return pred.iter().any(|&b| self.adj.edges.contains(&(a, b)));
        }
        false
    }
}

/// The Goldstein-et-al. recursive k-reachability structure, the conjectured
/// optimal `S · T^{2/(k−1)} = O(|D|²)` baseline the paper improves on.
///
/// Level `k` materializes the answers for pairs whose source has heavy
/// out-degree and whose target has heavy in-degree, and otherwise expands
/// the light endpoint, delegating to the level-(k−1) structure. Level 1 is
/// an edge lookup.
pub struct KReachGoldstein {
    k: usize,
    adj: Adjacency,
    threshold: usize,
    /// Materialized heavy-heavy answers per level (index 0 = level 2, ...).
    levels: Vec<FxHashSet<(Val, Val)>>,
    heavy_out: FxHashSet<Val>,
    heavy_in: FxHashSet<Val>,
    /// Online cost counters.
    pub counter: ProbeCounter,
}

impl KReachGoldstein {
    /// Builds the structure for paths of length exactly `k` with the given
    /// degree threshold Δ. The materialized tables have
    /// `O((|E|/Δ)²)` entries per level and queries take `O(Δ^{k−1})` probes,
    /// i.e. `S = (|E|/Δ)²` and `T = Δ^{k−1}` — the
    /// `S · T^{2/(k−1)} = O(|E|²)` tradeoff.
    pub fn build_with_threshold(graph: &Graph, k: usize, threshold: usize) -> Self {
        assert!(k >= 1);
        let adj = Adjacency::new(graph);
        let threshold = threshold.max(1);
        let heavy_out: FxHashSet<Val> = adj
            .succ
            .iter()
            .filter(|(_, s)| s.len() > threshold)
            .map(|(&v, _)| v)
            .collect();
        let heavy_in: FxHashSet<Val> = adj
            .pred
            .iter()
            .filter(|(_, p)| p.len() > threshold)
            .map(|(&v, _)| v)
            .collect();
        // For every level j = 2..=k, materialize the j-reachable heavy-heavy
        // pairs (heavy source, heavy target).
        let mut levels = Vec::new();
        for j in 2..=k {
            let mut table = FxHashSet::default();
            for &a in &heavy_out {
                let mut frontier: FxHashSet<Val> = FxHashSet::default();
                frontier.insert(a);
                for _ in 0..j {
                    let mut next = FxHashSet::default();
                    for &x in &frontier {
                        if let Some(succ) = adj.succ.get(&x) {
                            next.extend(succ.iter().copied());
                        }
                    }
                    frontier = next;
                    if frontier.is_empty() {
                        break;
                    }
                }
                for &c in &frontier {
                    if heavy_in.contains(&c) {
                        table.insert((a, c));
                    }
                }
            }
            levels.push(table);
        }
        KReachGoldstein {
            k,
            adj,
            threshold,
            levels,
            heavy_out,
            heavy_in,
            counter: ProbeCounter::new(),
        }
    }

    /// Builds the structure from a space budget: `Δ = ⌈|E|/√(S/(k−1))⌉`, so
    /// that the `k−1` materialized levels together fit in `O(S)`.
    pub fn build(graph: &Graph, k: usize, budget: usize) -> Self {
        let n = graph.len().max(1);
        let per_level = (budget.max(1) as f64 / (k.max(2) - 1) as f64).max(1.0);
        let threshold = (n as f64 / per_level.sqrt()).ceil() as usize;
        Self::build_with_threshold(graph, k, threshold.max(1))
    }

    /// The degree threshold Δ.
    pub fn threshold(&self) -> usize {
        self.threshold
    }

    /// Path length `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Intrinsic space: the materialized heavy-heavy tables of all levels.
    pub fn space_used(&self) -> usize {
        self.levels.iter().map(|t| 2 * t.len()).sum()
    }

    /// Whether there is a path of length exactly `k` from `u` to `v`.
    pub fn query(&self, u: Val, v: Val) -> bool {
        self.query_level(self.k, u, v)
    }

    fn query_level(&self, j: usize, u: Val, v: Val) -> bool {
        if j == 0 {
            return u == v;
        }
        if j == 1 {
            self.counter.add_probes(1);
            return self.adj.edges.contains(&(u, v));
        }
        if self.heavy_out.contains(&u) && self.heavy_in.contains(&v) {
            self.counter.add_probes(1);
            return self.levels[j - 2].contains(&(u, v));
        }
        if self.adj.out_degree(u) <= self.threshold {
            if let Some(succ) = self.adj.succ.get(&u) {
                self.counter.add_scans(succ.len() as u64);
                return succ.iter().any(|&w| self.query_level(j - 1, w, v));
            }
            return false;
        }
        // v must be light on the in-side.
        if let Some(pred) = self.adj.pred.get(&v) {
            self.counter.add_scans(pred.len() as u64);
            return pred.iter().any(|&w| self.query_level(j - 1, u, w));
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqap_query::workload::graph_pair_requests;

    fn graph() -> Graph {
        Graph::skewed(300, 1500, 6, 120, 3)
    }

    fn queries(g: &Graph, n: usize, seed: u64) -> Vec<(Val, Val)> {
        graph_pair_requests(g, n, seed)
    }

    #[test]
    fn two_reach_matches_naive() {
        let g = graph();
        let adj = Adjacency::new(&g);
        for budget in [1usize, 64, 1024, 1 << 16] {
            let idx = TwoReachIndex::build(&g, budget);
            for (u, v) in queries(&g, 200, 11) {
                assert_eq!(
                    idx.query(u, v),
                    k_reachable_naive(&adj, 2, u, v),
                    "budget {budget}, pair ({u},{v})"
                );
            }
        }
    }

    #[test]
    fn two_reach_space_and_time_tradeoff() {
        let g = graph();
        let tight = TwoReachIndex::build(&g, 4);
        let roomy = TwoReachIndex::build(&g, 1 << 18);
        // More budget: no less materialized space, no more online work.
        assert!(roomy.space_used() >= tight.space_used());
        for (u, v) in queries(&g, 300, 13) {
            tight.query(u, v);
            roomy.query(u, v);
        }
        assert!(roomy.counter.total() <= tight.counter.total());
        // The heavy-heavy table is bounded by (|E|/Δ)².
        let cap = (g.len() / roomy.threshold() + 1).pow(2);
        assert!(roomy.space_used() / 2 <= cap);
    }

    #[test]
    fn goldstein_matches_naive_for_k_3_and_4() {
        let g = Graph::skewed(200, 900, 5, 80, 9);
        let adj = Adjacency::new(&g);
        for k in [3usize, 4] {
            for threshold in [1usize, 4, 16, 1024] {
                let idx = KReachGoldstein::build_with_threshold(&g, k, threshold);
                for (u, v) in queries(&g, 120, 17 + k as u64) {
                    assert_eq!(
                        idx.query(u, v),
                        k_reachable_naive(&adj, k, u, v),
                        "k={k}, Δ={threshold}, pair ({u},{v})"
                    );
                }
            }
        }
    }

    #[test]
    fn goldstein_budget_controls_space() {
        let g = graph();
        let small = KReachGoldstein::build(&g, 3, 16);
        let large = KReachGoldstein::build(&g, 3, 1 << 16);
        assert!(small.threshold() >= large.threshold());
        assert!(small.space_used() <= large.space_used());
    }

    #[test]
    fn extremes_agree() {
        let g = Graph::skewed(150, 700, 4, 60, 21);
        let adj = Adjacency::new(&g);
        for k in [2usize, 3] {
            let bfs = BfsBaseline::build(&g, k);
            let full = FullReachMaterialization::build(&g, k);
            assert_eq!(bfs.space_used(), 0);
            assert!(full.space_used() > 0);
            for (u, v) in queries(&g, 150, 31) {
                let expected = k_reachable_naive(&adj, k, u, v);
                assert_eq!(bfs.query(u, v), expected);
                assert_eq!(full.query(u, v), expected);
            }
            // Full materialization answers with a single probe.
            full.counter.reset();
            full.query(0, 1);
            assert_eq!(full.counter.total(), 1);
        }
    }

    #[test]
    fn k1_is_edge_lookup() {
        let g = Graph::random(50, 200, 5);
        let idx = KReachGoldstein::build_with_threshold(&g, 1, 4);
        assert_eq!(idx.space_used(), 0);
        for &(u, v) in g.edges.iter().take(20) {
            assert!(idx.query(u, v));
        }
        assert!(!idx.query(1, 1) || g.edges.contains(&(1, 1)));
    }
}
