//! 2-phase disjunctive rules induced by a set of PMTDs (Section 4.2).

use cqap_common::VarSet;
use cqap_decomp::{Pmtd, ViewKind};
use cqap_entropy::RuleShape;
use std::fmt;

/// A 2-phase disjunctive rule (Definition 4.1), tracked together with the
/// PMTD views that generated each target.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TwoPhaseRule {
    /// The rule's shape (S-target and T-target schemas), the form consumed
    /// by the tradeoff LP layer.
    pub shape: RuleShape,
    /// For every PMTD in the generating set, the node whose view this rule
    /// picked.
    pub choice: Vec<usize>,
}

impl TwoPhaseRule {
    /// Paper-style label, e.g. `T134 ∨ T124 ∨ S14`.
    pub fn label(&self) -> String {
        self.shape.label()
    }

    /// The rule's targets as `(kind, schema)` pairs, used for the
    /// subset-based pruning of Observation E.1.
    fn target_set(&self) -> Vec<(ViewKind, VarSet)> {
        let mut v: Vec<(ViewKind, VarSet)> = self
            .shape
            .s_targets
            .iter()
            .map(|&s| (ViewKind::S, s))
            .chain(self.shape.t_targets.iter().map(|&t| (ViewKind::T, t)))
            .collect();
        v.sort_by_key(|(k, s)| (matches!(k, ViewKind::T), s.0));
        v
    }

    /// Whether every target of `other` is also a target of `self`.
    fn contains_all_targets_of(&self, other: &TwoPhaseRule) -> bool {
        let mine = self.target_set();
        other.target_set().iter().all(|t| mine.contains(t))
    }
}

impl fmt::Display for TwoPhaseRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ← body", self.label())
    }
}

/// Builds the rule corresponding to one *choice* of a node (view) from every
/// PMTD in the set: an S-target for every chosen materialized view, a
/// T-target for every chosen online view. Empty view schemas (which only
/// occur in redundant PMTDs) are skipped.
pub fn rule_of_choice(pmtds: &[Pmtd], choice: &[usize]) -> TwoPhaseRule {
    assert_eq!(pmtds.len(), choice.len());
    let num_vars = pmtds
        .iter()
        .map(|p| p.td().all_vars().max_var().map_or(0, |v| v + 1))
        .max()
        .unwrap_or(0);
    let mut s_targets = Vec::new();
    let mut t_targets = Vec::new();
    for (pmtd, &node) in pmtds.iter().zip(choice) {
        let view = pmtd.view(node);
        if view.vars.is_empty() {
            continue;
        }
        match view.kind {
            ViewKind::S => s_targets.push(view.vars),
            ViewKind::T => t_targets.push(view.vars),
        }
    }
    TwoPhaseRule {
        shape: RuleShape::new(num_vars, s_targets, t_targets),
        choice: choice.to_vec(),
    }
}

/// Generates every 2-phase disjunctive rule induced by the PMTD set: the
/// cartesian product of view choices (Section 4.2), deduplicated by target
/// set.
pub fn generate_rules(pmtds: &[Pmtd]) -> Vec<TwoPhaseRule> {
    assert!(!pmtds.is_empty(), "rule generation needs at least one PMTD");
    let sizes: Vec<usize> = pmtds.iter().map(|p| p.td().num_nodes()).collect();
    let total: usize = sizes.iter().product();
    assert!(total <= 1 << 20, "PMTD set too large to enumerate");
    let mut rules: Vec<TwoPhaseRule> = Vec::new();
    let mut choice = vec![0usize; pmtds.len()];
    for mut idx in 0..total {
        for (i, &s) in sizes.iter().enumerate() {
            choice[i] = idx % s;
            idx /= s;
        }
        let rule = rule_of_choice(pmtds, &choice);
        if !rules.iter().any(|r| r.target_set() == rule.target_set()) {
            rules.push(rule);
        }
    }
    rules
}

/// Prunes the rule set down to the rules with inclusion-minimal target sets
/// (Observation E.1): a rule whose targets strictly contain another rule's
/// targets is "no harder" and can be ignored when combining tradeoffs.
pub fn prune_rules(rules: Vec<TwoPhaseRule>) -> Vec<TwoPhaseRule> {
    let mut keep = vec![true; rules.len()];
    for i in 0..rules.len() {
        for j in 0..rules.len() {
            if i != j
                && keep[i]
                && rules[i].contains_all_targets_of(&rules[j])
                && rules[i].target_set() != rules[j].target_set()
            {
                keep[i] = false;
            }
        }
    }
    rules
        .into_iter()
        .zip(keep)
        .filter_map(|(r, k)| k.then_some(r))
        .collect()
}

/// Convenience: generate-then-prune.
pub fn minimal_rules(pmtds: &[Pmtd]) -> Vec<TwoPhaseRule> {
    prune_rules(generate_rules(pmtds))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqap_decomp::families as pf;

    #[test]
    fn example_42_rules_from_figure1() {
        // Example 4.2: the three PMTDs of Figure 1 yield four 2-phase
        // disjunctive rules (after removing redundant targets).
        let (_, pmtds) = pf::pmtds_3reach_fig1().unwrap();
        let rules = generate_rules(&pmtds);
        assert_eq!(rules.len(), 4);
        let labels: Vec<String> = rules.iter().map(TwoPhaseRule::label).collect();
        assert!(labels.contains(&"T134 ∨ S14".to_string()));
        assert!(labels.contains(&"T134 ∨ S13 ∨ S14".to_string()));
        assert!(labels.contains(&"T123 ∨ T134 ∨ S14".to_string()));
        assert!(labels.contains(&"T123 ∨ S13 ∨ S14".to_string()));
    }

    #[test]
    fn table1_rules_from_figure3() {
        // Section 6.4: the five PMTDs of Figure 3 generate 16 rules; after
        // discarding rules with strictly more targets, exactly the four
        // rules of Table 1 remain.
        let (_, pmtds) = pf::pmtds_3reach_all().unwrap();
        let all = generate_rules(&pmtds);
        assert!(all.len() <= 16);
        let minimal = prune_rules(all);
        assert_eq!(minimal.len(), 4);
        let labels: Vec<String> = minimal.iter().map(TwoPhaseRule::label).collect();
        assert!(labels.contains(&"T124 ∨ T134 ∨ S14".to_string()), "{labels:?}");
        assert!(
            labels.contains(&"T123 ∨ T124 ∨ S13 ∨ S14".to_string()),
            "{labels:?}"
        );
        assert!(
            labels.contains(&"T134 ∨ T234 ∨ S14 ∨ S24".to_string()),
            "{labels:?}"
        );
        assert!(
            labels.contains(&"T123 ∨ T234 ∨ S13 ∨ S14 ∨ S24".to_string()),
            "{labels:?}"
        );
    }

    #[test]
    fn square_and_kset_rules() {
        let (_, pmtds) = pf::pmtds_square().unwrap();
        let rules = minimal_rules(&pmtds);
        assert_eq!(rules.len(), 2);
        let labels: Vec<String> = rules.iter().map(TwoPhaseRule::label).collect();
        assert!(labels.contains(&"T134 ∨ S13".to_string()));
        assert!(labels.contains(&"T123 ∨ S13".to_string()));

        let (_, pmtds) = pf::pmtds_kset(3).unwrap();
        let rules = minimal_rules(&pmtds);
        assert_eq!(rules.len(), 1);
        assert_eq!(rules[0].label(), "T1234 ∨ S1234");
    }

    #[test]
    fn two_reach_single_rule() {
        let (_, pmtds) = pf::pmtds_2reach().unwrap();
        let rules = minimal_rules(&pmtds);
        assert_eq!(rules.len(), 1);
        assert_eq!(rules[0].label(), "T123 ∨ S13");
    }

    #[test]
    fn four_reach_rules_cover_example_e8() {
        let (_, pmtds) = pf::pmtds_4reach().unwrap();
        let minimal = minimal_rules(&pmtds);
        // Every minimal rule must either contain one of the "wide" online
        // targets (T1245, T125, T145 — the ρ1 case of Example E.8) or be one
        // of the ρ2–ρ5 shapes over the narrower targets.
        assert!(!minimal.is_empty());
        for rule in &minimal {
            let label = rule.label();
            assert!(label.contains("S15"), "every rule includes S15: {label}");
        }
        // The pruning keeps the rule count manageable for the LP sweep.
        assert!(minimal.len() <= 40, "got {} rules", minimal.len());
    }

    #[test]
    fn prune_is_idempotent() {
        let (_, pmtds) = pf::pmtds_3reach_all().unwrap();
        let once = prune_rules(generate_rules(&pmtds));
        let twice = prune_rules(once.clone());
        assert_eq!(once.len(), twice.len());
    }
}
