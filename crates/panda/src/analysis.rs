//! Analytic reproduction of the paper's tables and figures.
//!
//! * [`table1_3reach`] — Table 1: the four 2-phase disjunctive rules for the
//!   3-reachability CQAP together with their intrinsic tradeoffs, each
//!   verified (and checked tight in the `|D|` exponent) against the LP
//!   oracle of `cqap-entropy`.
//! * [`figure4a_curve`] / [`figure4b_curve`] — the combined space-time
//!   tradeoff curves of Figures 4a and 4b for 3- and 4-reachability at
//!   `|Q_A| = 1`, sampled exactly (rational arithmetic) on a grid of space
//!   budgets.
//! * [`goldstein_baseline`] — the prior state-of-the-art tradeoff
//!   `S · T^{2/(k−1)} = O(|D|²)` of Goldstein et al., the brown baseline of
//!   both figures.

use crate::rules::{minimal_rules, TwoPhaseRule};
use cqap_common::{CqapError, Rat, Result};
use cqap_decomp::families as pmtd_families;
use cqap_entropy::tradeoff::{
    combined_curve, is_tight, time_exponent_at, verify_tradeoff, Stats, SymbolicTradeoff,
    TradeoffCurve,
};
use cqap_query::Cqap;

/// One row of a rule/tradeoff report (one rule of Table 1, or one rule of
/// the Appendix E analysis for 4-reachability).
#[derive(Clone, Debug)]
pub struct RuleReport {
    /// Paper-style rule label, e.g. `T134 ∨ T124 ∨ S14`.
    pub label: String,
    /// The underlying rule.
    pub rule: TwoPhaseRule,
    /// The tradeoffs the paper claims for this rule.
    pub claimed: Vec<SymbolicTradeoff>,
    /// Whether each claim was verified by the LP oracle.
    pub verified: Vec<bool>,
    /// Whether each claim is tight in the `|D|` exponent (lowering the
    /// exponent by 1/10 breaks it).
    pub tight: Vec<bool>,
}

impl RuleReport {
    /// Whether every claimed tradeoff was verified.
    pub fn all_verified(&self) -> bool {
        self.verified.iter().all(|&v| v)
    }
}

fn report_for(
    rule: &TwoPhaseRule,
    stats: &Stats,
    claims: Vec<SymbolicTradeoff>,
) -> RuleReport {
    let verified = claims
        .iter()
        .map(|c| verify_tradeoff(&rule.shape, stats, c))
        .collect();
    let tight = claims
        .iter()
        .map(|c| is_tight(&rule.shape, stats, c, Rat::new(1, 10)))
        .collect();
    RuleReport {
        label: rule.label(),
        rule: rule.clone(),
        claimed: claims,
        verified,
        tight,
    }
}

fn find_rule<'a>(rules: &'a [TwoPhaseRule], label: &str) -> Result<&'a TwoPhaseRule> {
    rules
        .iter()
        .find(|r| r.label() == label)
        .ok_or_else(|| CqapError::Other(format!("expected rule {label} was not generated")))
}

/// Table 1: the four 2-phase disjunctive rules for 3-reachability generated
/// from the Figure 3 PMTD set, with the paper's claimed tradeoffs verified.
///
/// | rule | head | tradeoff |
/// |------|------|----------|
/// | ρ1 | `T134 ∨ T124 ∨ S14` | `S·T² ≾ |D|²·|Q|²` |
/// | ρ2 | `T123 ∨ S13 ∨ T124 ∨ S14` | `S²·T³ ≾ |D|⁴·|Q|³`, `T ≾ |D|·|Q|` |
/// | ρ3 | `T134 ∨ T234 ∨ S24 ∨ S14` | `S²·T³ ≾ |D|⁴·|Q|³`, `T ≾ |D|·|Q|` |
/// | ρ4 | `T123 ∨ S13 ∨ T234 ∨ S24 ∨ S14` | `S·T ≾ |D|²·|Q|`, `S⁴·T ≾ |D|⁶·|Q|`, `T ≾ |D|·|Q|` |
pub fn table1_3reach() -> Result<(Cqap, Vec<RuleReport>)> {
    let (cqap, pmtds) = pmtd_families::pmtds_3reach_all()?;
    let stats = Stats::uniform_for_cqap(&cqap);
    let rules = minimal_rules(&pmtds);

    let rho1 = find_rule(&rules, "T124 ∨ T134 ∨ S14")?;
    let rho2 = find_rule(&rules, "T123 ∨ T124 ∨ S13 ∨ S14")?;
    let rho3 = find_rule(&rules, "T134 ∨ T234 ∨ S14 ∨ S24")?;
    let rho4 = find_rule(&rules, "T123 ∨ T234 ∨ S13 ∨ S14 ∨ S24")?;

    let reports = vec![
        report_for(rho1, &stats, vec![SymbolicTradeoff::new(1, 2, 2, 2)]),
        report_for(
            rho2,
            &stats,
            vec![
                SymbolicTradeoff::new(2, 3, 4, 3),
                SymbolicTradeoff::new(0, 1, 1, 1),
            ],
        ),
        report_for(
            rho3,
            &stats,
            vec![
                SymbolicTradeoff::new(2, 3, 4, 3),
                SymbolicTradeoff::new(0, 1, 1, 1),
            ],
        ),
        report_for(
            rho4,
            &stats,
            vec![
                SymbolicTradeoff::new(1, 1, 2, 1),
                SymbolicTradeoff::new(4, 1, 6, 1),
                SymbolicTradeoff::new(0, 1, 1, 1),
            ],
        ),
    ];
    Ok((cqap, reports))
}

/// The rule reports of Example E.8 for 4-reachability: the representative
/// rules ρ1, ρ2, ρ4 (ρ3/ρ5 are symmetric) with the paper's claimed
/// tradeoffs.
pub fn example_e8_4reach() -> Result<(Cqap, Vec<RuleReport>)> {
    let (cqap, pmtds) = pmtd_families::pmtds_4reach()?;
    let stats = Stats::uniform_for_cqap(&cqap);
    let rules = minimal_rules(&pmtds);

    let _ = &rules; // the generated set is consulted by the bench binaries
    let shape = |s: &[&[usize]], t: &[&[usize]]| {
        let to_set = |vars: &[usize]| {
            cqap_common::VarSet::from_iter(vars.iter().map(|&v| v - 1))
        };
        cqap_entropy::RuleShape::new(
            5,
            s.iter().map(|v| to_set(v)).collect(),
            t.iter().map(|v| to_set(v)).collect(),
        )
    };
    let as_rule = |shape: cqap_entropy::RuleShape| TwoPhaseRule {
        shape,
        choice: Vec::new(),
    };

    // ρ1 (Example E.8): any rule containing a "wide" online target; the
    // canonical representative is T1245 ∨ S15.
    let rho1 = crate::rules::rule_of_choice(&[pmtds[4].clone(), pmtds[10].clone()], &[0, 0]);
    // ρ2: T1235 ∨ T1345 ∨ (T234 ∨ S24 ∨ S25 ∨ S14 ∨ S15).
    let rho2 = as_rule(shape(
        &[&[2, 4], &[2, 5], &[1, 4], &[1, 5]],
        &[&[1, 2, 3, 5], &[1, 3, 4, 5], &[2, 3, 4]],
    ));
    // ρ4: T345 ∨ S35 ∨ (T234 ∨ S24 ∨ S25 ∨ S14 ∨ S15).
    let rho4 = as_rule(shape(
        &[&[3, 5], &[2, 4], &[2, 5], &[1, 4], &[1, 5]],
        &[&[3, 4, 5], &[2, 3, 4]],
    ));

    let reports = vec![
        report_for(&rho1, &stats, vec![SymbolicTradeoff::new(1, 1, 2, 1)]),
        report_for(&rho2, &stats, vec![SymbolicTradeoff::new(2, 2, 4, 2)]),
        report_for(
            &rho4,
            &stats,
            vec![
                SymbolicTradeoff::new(6, 5, 12, 5),
                SymbolicTradeoff::new(8, 3, 13, 3),
            ],
        ),
    ];
    Ok((cqap, reports))
}

/// The prior state-of-the-art tradeoff of Goldstein et al. for
/// k-reachability, `S · T^{2/(k−1)} = O(|D|²)`, expressed as the answering
/// time exponent at space budget `S = |D|^σ` (clamped at 0).
pub fn goldstein_baseline(k: usize, sigma: Rat) -> Rat {
    assert!(k >= 2);
    // τ = (2 − σ) · (k − 1) / 2.
    let tau = (Rat::int(2) - sigma) * Rat::new((k as i128) - 1, 2);
    tau.max(Rat::ZERO)
}

/// Default space-budget grid for the Figure 4 curves: `σ = 0, 1/8, ..., 2`.
pub fn default_sigma_grid() -> Vec<Rat> {
    (0..=16).map(|i| Rat::new(i, 8)).collect()
}

/// Figure 4a: the combined space-time tradeoff curve for 3-reachability at
/// `|Q_A| = 1`, computed from the rules generated by the Figure 3 PMTD set.
pub fn figure4a_curve(sigmas: &[Rat]) -> Result<TradeoffCurve> {
    let (cqap, pmtds) = pmtd_families::pmtds_3reach_all()?;
    let stats = Stats::uniform_for_cqap(&cqap);
    let rules = minimal_rules(&pmtds);
    let shapes: Vec<_> = rules.iter().map(|r| r.shape.clone()).collect();
    Ok(combined_curve(&shapes, &stats, sigmas, Rat::ZERO))
}

/// Figure 4b: the combined space-time tradeoff curve for 4-reachability at
/// `|Q_A| = 1`, computed from the rules generated by the Example E.8 PMTD
/// set.
pub fn figure4b_curve(sigmas: &[Rat]) -> Result<TradeoffCurve> {
    let (cqap, pmtds) = pmtd_families::pmtds_4reach()?;
    let stats = Stats::uniform_for_cqap(&cqap);
    let rules = minimal_rules(&pmtds);
    let shapes: Vec<_> = rules.iter().map(|r| r.shape.clone()).collect();
    Ok(combined_curve(&shapes, &stats, sigmas, Rat::ZERO))
}

/// The time exponent of a single rule at a given space budget (`|Q_A| = 1`)
/// — convenience wrapper used by the bench binaries to print per-rule
/// curves.
pub fn rule_time_exponent(rule: &TwoPhaseRule, cqap: &Cqap, sigma: Rat) -> Option<Rat> {
    let stats = Stats::uniform_for_cqap(cqap);
    time_exponent_at(&rule.shape, &stats, sigma, Rat::ZERO)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_all_claims_verified() {
        let (_, reports) = table1_3reach().unwrap();
        assert_eq!(reports.len(), 4);
        for report in &reports {
            assert!(
                report.all_verified(),
                "claims of {} not verified: {:?}",
                report.label,
                report.verified
            );
        }
        // The headline ρ1 tradeoff S·T² ≾ |D|²·|Q|² is tight.
        assert!(reports[0].tight[0]);
    }

    #[test]
    fn goldstein_baseline_values() {
        // k = 3: S·T = |D|².
        assert_eq!(goldstein_baseline(3, Rat::ZERO), Rat::int(2));
        assert_eq!(goldstein_baseline(3, Rat::ONE), Rat::ONE);
        assert_eq!(goldstein_baseline(3, Rat::int(2)), Rat::ZERO);
        assert_eq!(goldstein_baseline(3, Rat::int(3)), Rat::ZERO);
        // k = 4: S·T^{2/3} = |D|² ⇒ τ = 3(2−σ)/2.
        assert_eq!(goldstein_baseline(4, Rat::ONE), Rat::new(3, 2));
    }

    #[test]
    fn figure4a_matches_paper_shape() {
        let sigmas: Vec<Rat> = vec![
            Rat::ZERO,
            Rat::ONE,
            Rat::new(5, 4),
            Rat::new(3, 2),
            Rat::new(7, 4),
            Rat::int(2),
        ];
        let curve = figure4a_curve(&sigmas).unwrap();
        assert!(curve.is_monotone());
        // At S = |D|² everything is materializable: T = O(1).
        assert_eq!(curve.time_at(Rat::int(2)), Some(Rat::ZERO));
        // At S = |D| the curve meets the baseline (τ = 1).
        assert_eq!(curve.time_at(Rat::ONE), Some(Rat::ONE));
        // Not worse than the S·T = |D|² baseline anywhere on the grid.
        for p in &curve.points {
            assert!(p.time <= goldstein_baseline(3, p.space));
        }
        // Strictly better than the baseline in the upper-space regime (the
        // paper's headline improvement for 3-reachability, Figure 4a).
        for &sigma in &[Rat::new(3, 2), Rat::new(7, 4)] {
            let ours = curve.time_at(sigma).unwrap();
            let baseline = goldstein_baseline(3, sigma);
            assert!(
                ours < baseline,
                "expected improvement at σ = {sigma}: ours {ours} vs baseline {baseline}"
            );
        }
    }

    #[test]
    fn example_e8_rho1_verified() {
        let (_, reports) = example_e8_4reach().unwrap();
        assert!(!reports.is_empty());
        // ρ1: S·T ≾ |D|²·|Q| must verify.
        assert_eq!(reports[0].label, "T1245 ∨ S15");
        assert!(reports[0].all_verified());
    }
}
