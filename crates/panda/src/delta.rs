//! Compiled delta plans: incremental maintenance of the S-views.
//!
//! The paper's preprocessing phase materializes, per PMTD, the S-views as
//! semijoin-reduced projections of the full join `J = ⋈_F R_F`. Because
//! the SS-edge semijoin-reduce is a no-op on that *ideal* content (every
//! parent tuple is the projection of some J-row, which also projects into
//! the child), each S-view is **exactly** `π_{ν(t)}(J)` — so maintaining
//! the views under database updates reduces to maintaining projections of
//! J with support counts, semi-naive style:
//!
//! * `ΔJ⁻ = ⋃_a (ΔR⁻ renamed to atom a) ⋈ (all other atoms over the
//!   pre-delta database)` — the J-rows that disappear;
//! * `ΔJ⁺ = ⋃_a (ΔR⁺ renamed to atom a) ⋈ (all other atoms over the
//!   post-delta database)` — the J-rows that appear.
//!
//! (Net deltas are disjoint from / contained in the stored relations, so
//! both unions are exact — no overcounting across atoms beyond the set
//! union.) A support count per (plan, materialized node, view tuple)
//! tracks how many J-rows project onto it; a view tuple leaves its S-view
//! when its count reaches zero and enters when it departs from zero.
//!
//! The per-atom join chains are **compiled once at build time** (schemas,
//! key positions, appended columns — the same pre-resolved shape as the
//! T-view programs of `compiled.rs`) and execute by probing the shared
//! `AtomIndexCache`, so delta application reuses the build's `O(|D|)`
//! atom indexes instead of re-deriving them, evicting only the indexes
//! over relations the batch touched.

use std::sync::Arc;

use cqap_common::{FxHashMap, FxHashSet, Result, Tuple, VarSet};
use cqap_decomp::Pmtd;
use cqap_delta::{net_effect, DeltaBatch, DeltaStats, RelationDelta};
use cqap_obs::{CounterId, MetricsSink, StageId, TraceStage};
use cqap_query::Cqap;
use cqap_relation::{Database, HashIndex, Relation, RelationBuilder, Schema};
use cqap_yannakakis::naive::{atom_relation, full_join};
use cqap_yannakakis::{OnlineYannakakis, SViewProbe};

use crate::compiled::{AtomIndexCache, CompiledPmtd};

/// One pre-resolved join step of a delta plan: joining the accumulated
/// ΔJ-prefix with one other atom of the query, probing that atom's
/// build-time hash index on the (statically known) shared variables.
#[derive(Clone, Debug)]
struct DeltaStep {
    /// Index of the joined atom in `cqap.cq().atoms()`.
    atom: usize,
    /// Variables shared between the chain schema so far and the atom.
    shared: VarSet,
    /// Positions of `shared` in the chain schema at this step.
    key_positions: Vec<usize>,
    /// Atom-side positions of the columns appended to the chain.
    appended: Vec<usize>,
}

/// The compiled delta plan of one atom: how a batch of that atom's tuple
/// deltas expands to full-join row deltas. Compiled once per atom at
/// index build time; the join order is connectivity-greedy so each step
/// keys on a non-empty shared variable set whenever the query allows it.
#[derive(Clone, Debug)]
struct DeltaProgram {
    /// The delta tuples renamed to the atom's variables.
    schema: Schema,
    steps: Vec<DeltaStep>,
}

impl DeltaProgram {
    fn compile(cqap: &Cqap, a: usize) -> Result<DeltaProgram> {
        let atoms = cqap.cq().atoms();
        let schema = Schema::new(atoms[a].vars.clone())?;
        let mut chain = schema.clone();
        let mut remaining: Vec<usize> = (0..atoms.len()).filter(|&b| b != a).collect();
        let mut steps = Vec::with_capacity(remaining.len());
        while !remaining.is_empty() {
            let pick = remaining
                .iter()
                .position(|&b| {
                    !Schema::new(atoms[b].vars.clone())
                        .map(|s| s.varset().intersect(chain.varset()).is_empty())
                        .unwrap_or(true)
                })
                .unwrap_or(0);
            let b = remaining.remove(pick);
            let b_schema = Schema::new(atoms[b].vars.clone())?;
            let shared = chain.varset().intersect(b_schema.varset());
            let out = chain.join(&b_schema);
            let appended = out.vars()[chain.arity()..]
                .iter()
                .map(|&v| b_schema.position(v).expect("appended var"))
                .collect();
            steps.push(DeltaStep {
                atom: b,
                shared,
                key_positions: chain.positions_of_set(shared)?,
                appended,
            });
            chain = out;
        }
        Ok(DeltaProgram { schema, steps })
    }

    /// Expands this atom's tuple delta into full-join row deltas by
    /// running the compiled chain against `db`, probing (and lazily
    /// rebuilding) the shared atom-index cache.
    fn exec(
        &self,
        tuples: &[Tuple],
        cqap: &Cqap,
        db: &Database,
        cache: &mut AtomIndexCache,
    ) -> Result<Relation> {
        let atoms = cqap.cq().atoms();
        let mut acc =
            Relation::from_tuples("ΔR", self.schema.clone(), tuples.iter().cloned())?;
        for step in &self.steps {
            let atom = &atoms[step.atom];
            let cache_key = (atom.relation.clone(), atom.vars.clone(), step.shared.0);
            let index = match cache.get(&cache_key) {
                Some(index) => Arc::clone(index),
                None => {
                    let rel = atom_relation(db, atom)?;
                    let index = Arc::new(HashIndex::build(&rel, step.shared)?);
                    cache.insert(cache_key, Arc::clone(&index));
                    index
                }
            };
            let out_schema = acc.schema().join(index.schema());
            // A join of two sets is duplicate-free by construction (the
            // probed tuple is determined by the key plus the appended
            // columns), so the builder skips the dedup set.
            let mut out = RelationBuilder::distinct("ΔJ", out_schema);
            for lt in acc.iter() {
                let key = lt.project(&step.key_positions);
                for rt in index.probe(&key) {
                    out.push(lt.concat_projected(rt, &step.appended));
                }
            }
            acc = out.finish();
        }
        Ok(acc)
    }
}

/// Support counts for one materialized node of one plan: how many
/// full-join rows project onto each stored view tuple.
#[derive(Clone, Debug)]
struct ViewCounts {
    node: usize,
    vars: VarSet,
    counts: FxHashMap<Tuple, u64>,
}

/// Which side of a net delta to expand through the delta plans.
#[derive(Clone, Copy)]
enum Side {
    Inserts,
    Deletes,
}

/// The per-plan ΔS-views of one applied batch plus what it changed.
#[derive(Debug, Default)]
pub struct DeltaOutcome {
    /// Net database-level changes (see [`DeltaStats`]).
    pub stats: DeltaStats,
    /// Per plan (index-aligned with the PMTDs the maintenance was built
    /// over), per materialized node: `(node, inserts, deletes)` — the net
    /// view tuples to add and remove from that S-view.
    pub views: Vec<Vec<(usize, Vec<Tuple>, Vec<Tuple>)>>,
    /// Names of the stored relations the batch actually changed; empty
    /// exactly when the batch was a net no-op.
    pub touched: Vec<String>,
}

/// Build-once maintenance state for a set of PMTD plans over one
/// database: compiled per-atom delta plans, per-view support counts, the
/// shared atom-index cache, and whether recompiles need the full join.
///
/// Cloneable so a second backend over the same preprocessing output (the
/// disk spill in `cqap-store`) carries its own maintenance lineage; the
/// cached atom indexes are `Arc`-shared until a delta diverges them.
#[derive(Clone, Debug)]
pub struct DeltaMaintenance {
    programs: Vec<DeltaProgram>,
    plans: Vec<Vec<ViewCounts>>,
    atom_indexes: AtomIndexCache,
    needs_full: bool,
    /// Observability seam: apply latency, net-op sizes and recompile
    /// counts. Disabled (free) unless a sink is attached via
    /// [`DeltaMaintenance::set_metrics_sink`]. Clones share the
    /// recorder, so a spilled backend's maintenance lineage keeps
    /// reporting into the same registry.
    sink: MetricsSink,
}

impl DeltaMaintenance {
    /// Compiles the delta plans and initializes the support counts from
    /// the build-time full join. `atom_indexes` is the build's memo (the
    /// delta plans keep reusing it); `needs_full` records whether any
    /// compiled plan uses the fallback T-view path, in which case
    /// recompiles after a delta must recompute the full join.
    pub fn build(
        cqap: &Cqap,
        pmtds: &[Pmtd],
        full: &Relation,
        atom_indexes: AtomIndexCache,
        needs_full: bool,
    ) -> Result<Self> {
        let num_atoms = cqap.cq().atoms().len();
        let mut programs = Vec::with_capacity(num_atoms);
        for a in 0..num_atoms {
            programs.push(DeltaProgram::compile(cqap, a)?);
        }
        let mut plans = Vec::with_capacity(pmtds.len());
        for pmtd in pmtds {
            let mut views = Vec::new();
            for node in pmtd.materialization_set() {
                let vars = pmtd.view_schema(node);
                let positions = full.schema().positions_of_set(vars)?;
                let mut counts: FxHashMap<Tuple, u64> = FxHashMap::default();
                for t in full.iter() {
                    *counts.entry(t.project(&positions)).or_insert(0) += 1;
                }
                views.push(ViewCounts { node, vars, counts });
            }
            plans.push(views);
        }
        Ok(DeltaMaintenance {
            programs,
            plans,
            atom_indexes,
            needs_full,
            sink: MetricsSink::disabled(),
        })
    }

    /// Attaches a metrics sink: [`DeltaMaintenance::apply`] records the
    /// `delta_apply` stage latency and the net insert/delete counters,
    /// and [`DeltaMaintenance::recompile`] counts plan recompilations.
    pub fn set_metrics_sink(&mut self, sink: MetricsSink) {
        self.sink = sink;
    }

    /// Whether recompiled pipelines need the (recomputed) full join —
    /// true only if some bag of some plan uses the fallback T-view path.
    pub fn needs_full(&self) -> bool {
        self.needs_full
    }

    /// The full join to feed [`DeltaMaintenance::recompile`]: recomputed
    /// from `db` only when some plan actually retains it (fallback bags);
    /// otherwise a cheap empty placeholder, which is sound because
    /// fallback-ness is decided purely from schemas and so cannot change
    /// between builds over the same CQAP and PMTDs.
    pub fn full_for_recompile(&self, cqap: &Cqap, db: &Database) -> Result<Relation> {
        if self.needs_full {
            full_join(cqap, db)
        } else {
            Ok(Relation::new("J∅", Schema::empty()))
        }
    }

    /// Recompiles one plan's answering pipeline against `views` after the
    /// backing database and S-views absorbed a delta, reusing the shared
    /// atom-index cache (indexes over touched relations were evicted by
    /// [`DeltaMaintenance::apply`] and rebuild lazily from `db`).
    pub fn recompile<V: SViewProbe>(
        &mut self,
        cqap: &Cqap,
        db: &Database,
        evaluator: &OnlineYannakakis,
        views: &V,
        full: &Relation,
    ) -> Result<CompiledPmtd> {
        self.sink.incr(CounterId::PlanRecompiles);
        CompiledPmtd::compile_cached(cqap, db, evaluator, views, full, &mut self.atom_indexes)
    }

    /// Applies one batch: computes `ΔJ⁻` against the pre-delta `db`,
    /// mutates `db` to the post-delta state, computes `ΔJ⁺`, updates the
    /// support counts, and returns the per-plan net ΔS-views for the
    /// caller's backend to absorb. Evicts cached atom indexes over the
    /// touched relations so subsequent plan executions and recompiles see
    /// post-delta content.
    ///
    /// A batch whose net effect is empty short-circuits: `db`, the
    /// counts and the index cache are left untouched and the outcome
    /// carries no view deltas.
    pub fn apply(
        &mut self,
        cqap: &Cqap,
        db: &mut Database,
        batch: &DeltaBatch,
    ) -> Result<DeltaOutcome> {
        let timer = self.sink.start();
        let apply_mark = self.sink.trace_mark_background();
        let deltas = net_effect(db, batch)?;
        if deltas.is_empty() {
            self.sink.stop(timer, StageId::DeltaApply);
            self.sink.trace_leaf(apply_mark, TraceStage::DeltaApply, 0);
            return Ok(DeltaOutcome::default());
        }
        // ΔJ⁻ over the pre-delta database.
        let minus = self.delta_join(cqap, db, &deltas, Side::Deletes)?;
        // Net effect into the stored relations.
        let mut stats = DeltaStats::default();
        for delta in &deltas {
            let rel = db.relation_mut(&delta.relation)?;
            let gone: FxHashSet<Tuple> = delta.deletes.iter().cloned().collect();
            stats.deleted += rel.remove_all(&gone);
            for t in &delta.inserts {
                if rel.insert(t.clone())? {
                    stats.inserted += 1;
                }
            }
        }
        // Indexes over touched relations are stale from here on; evict
        // them so ΔJ⁺ (and later recompiles) rebuild from the new content.
        let touched: Vec<String> = deltas.iter().map(|d| d.relation.clone()).collect();
        self.atom_indexes
            .retain(|(name, _, _), _| !touched.iter().any(|t| t == name));
        // ΔJ⁺ over the post-delta database.
        let plus = self.delta_join(cqap, db, &deltas, Side::Inserts)?;
        // Support-count transitions → net ΔS-views per plan and node.
        let mut views = Vec::with_capacity(self.plans.len());
        for plan in &mut self.plans {
            let mut per_plan = Vec::with_capacity(plan.len());
            for vc in plan.iter_mut() {
                let mut shifts: FxHashMap<Tuple, i64> = FxHashMap::default();
                if let Some(minus) = &minus {
                    let positions = minus.schema().positions_of_set(vc.vars)?;
                    for t in minus.iter() {
                        *shifts.entry(t.project(&positions)).or_insert(0) -= 1;
                    }
                }
                if let Some(plus) = &plus {
                    let positions = plus.schema().positions_of_set(vc.vars)?;
                    for t in plus.iter() {
                        *shifts.entry(t.project(&positions)).or_insert(0) += 1;
                    }
                }
                let mut ins = Vec::new();
                let mut del = Vec::new();
                for (key, shift) in shifts {
                    if shift == 0 {
                        continue;
                    }
                    let old = vc.counts.get(&key).copied().unwrap_or(0);
                    let new = old as i64 + shift;
                    debug_assert!(new >= 0, "view support count went negative");
                    let new = new.max(0) as u64;
                    if old > 0 && new == 0 {
                        vc.counts.remove(&key);
                        del.push(key);
                    } else if old == 0 && new > 0 {
                        vc.counts.insert(key.clone(), new);
                        ins.push(key);
                    } else if new != old {
                        vc.counts.insert(key, new);
                    }
                }
                per_plan.push((vc.node, ins, del));
            }
            views.push(per_plan);
        }
        self.sink.add(CounterId::DeltaNetInserts, stats.inserted as u64);
        self.sink.add(CounterId::DeltaNetDeletes, stats.deleted as u64);
        self.sink.stop(timer, StageId::DeltaApply);
        self.sink.trace_leaf(
            apply_mark,
            TraceStage::DeltaApply,
            (stats.inserted + stats.deleted) as u64,
        );
        Ok(DeltaOutcome {
            stats,
            views,
            touched,
        })
    }

    /// `⋃_a ΔR_a ⋈ (other atoms over db)` for one side of the net deltas:
    /// the exact set of full-join rows the batch removes (`Deletes`, run
    /// against the pre-delta database) or adds (`Inserts`, post-delta).
    fn delta_join(
        &mut self,
        cqap: &Cqap,
        db: &Database,
        deltas: &[RelationDelta],
        side: Side,
    ) -> Result<Option<Relation>> {
        let atoms = cqap.cq().atoms();
        let mut acc: Option<Relation> = None;
        for (a, atom) in atoms.iter().enumerate() {
            let Some(delta) = deltas.iter().find(|d| d.relation == atom.relation) else {
                continue;
            };
            let tuples = match side {
                Side::Inserts => &delta.inserts,
                Side::Deletes => &delta.deletes,
            };
            if tuples.is_empty() {
                continue;
            }
            let part = self.programs[a].exec(tuples, cqap, db, &mut self.atom_indexes)?;
            acc = Some(match acc {
                None => part,
                Some(prev) => prev.union_with(part)?,
            });
        }
        Ok(acc)
    }
}
