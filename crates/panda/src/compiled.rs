//! The compiled online driver: per-PMTD T-view *programs* plus the
//! compiled probe plan of `cqap-yannakakis`.
//!
//! The interpreted driver ([`online_t_views`](crate::online_t_views))
//! pays, on every request and for every non-materialized bag, the cost of
//! (a) cloning each in-bag atom's relation out of the database (a full
//! copy including its membership set) and (b) re-building a hash-join
//! index over it. Both are request-independent, so a compiled T-view program
//! hoists them to build time:
//!
//! * a bag containing **no access variable** has a request-independent
//!   T-view: its content is joined once at build time and reused as-is
//!   (the program's static form);
//! * a bag **covered by its atoms and access pattern** compiles to a
//!   chain of pre-built [`HashIndex`]es keyed on the join variables: the
//!   per-request work is one index probe per accumulator tuple, never a
//!   scan of the database;
//! * the rare uncovered bag (hand-written decompositions) falls back to
//!   the full join, which is precomputed once and shared.
//!
//! A [`CompiledPmtd`] pairs these programs with the
//! [`CompiledPlan`] for the PMTD; [`answer_with_compiled`] is the driver
//! loop shared by every backend (in-memory `CqapIndex`, `cqap-store`'s
//! disk-resident `StoredIndex`), mirroring
//! [`answer_with_plans`](crate::answer_with_plans) step for step.

use std::cell::RefCell;
use std::sync::Arc;

use cqap_common::{hash_vals, CqapError, FxHashSet, Result, Tuple, Val, VarSet};
use cqap_query::{AccessRequest, Cqap};
use cqap_relation::{Database, HashIndex, Relation, RelationBuilder, Schema};
use cqap_yannakakis::naive::atom_relation;
use cqap_yannakakis::{
    ColumnRun, ColumnarScratch, CompiledPlan, KeyMemo, OnlineYannakakis, PlanScratch, SViewProbe,
};

thread_local! {
    /// One scratch arena per serving worker: the pool threads of
    /// `cqap-serve` each own exactly one, so the compiled pipelines run
    /// with warm buffers and no cross-thread contention.
    static DRIVER_SCRATCH: RefCell<DriverScratch> = RefCell::new(DriverScratch::new());
}

/// Runs `f` with this thread's reusable [`DriverScratch`] arena.
pub fn with_driver_scratch<R>(f: impl FnOnce(&mut DriverScratch) -> R) -> R {
    DRIVER_SCRATCH.with(|cell| f(&mut cell.borrow_mut()))
}

/// The per-worker scratch of the full compiled driver: the plan-execution
/// arenas (row and columnar) plus the buffers of the T-view programs, so
/// neither half of a request allocates working state on a warm worker.
#[derive(Debug, Default)]
pub struct DriverScratch {
    /// The row-plan arena (handed to `CompiledPlan::answer_with`).
    plan: PlanScratch,
    /// The columnar-plan arena (handed to
    /// `CompiledPlan::answer_from_columns`).
    col: ColumnarScratch,
    /// Ping-pong accumulators of the row-path dynamic T-view join chains.
    acc: Vec<Tuple>,
    next: Vec<Tuple>,
    /// Seed-deduplication set for multi-tuple requests (row path).
    seen: FxHashSet<Tuple>,
    /// Ping buffer of the columnar T-view join chains.
    col_acc: ColumnRun,
    /// Reused key-projection buffer of the columnar T-view programs.
    key_vals: Vec<Val>,
    /// Seed-deduplication memo for multi-tuple requests (columnar path).
    seed_memo: KeyMemo<()>,
    /// Pooled per-program output runs of the columnar path.
    slot_runs: Vec<ColumnRun>,
}

impl DriverScratch {
    /// A fresh scratch arena (all buffers empty).
    pub fn new() -> Self {
        DriverScratch::default()
    }
}

/// Build-time memo of per-atom join indexes, keyed by the atom's stored
/// relation, its variable renaming and the join-key varset: the PMTDs of
/// one index routinely join the same atoms on the same keys, so the
/// O(|D|)-sized indexes are built (and retained) once per distinct key,
/// not once per PMTD.
pub(crate) type AtomIndexCache =
    cqap_common::FxHashMap<(String, Vec<usize>, u64), Arc<HashIndex>>;

/// One pre-resolved join of the accumulator with an in-bag atom: the
/// atom's relation is indexed once, at build time, on the variables it
/// shares with the accumulator schema at this point of the chain.
#[derive(Clone, Debug)]
struct PreJoin {
    /// Shared across the PMTDs of one index build (see [`AtomIndexCache`]).
    index: Arc<HashIndex>,
    /// Shared-variable positions in the accumulator schema.
    key_positions: Vec<usize>,
    /// Atom-side positions of the columns appended to the output.
    appended: Vec<usize>,
}

/// How one T-view is produced per request.
#[derive(Clone, Debug)]
enum TViewKind {
    /// No access variable in the bag: the content is request-independent
    /// and fully precomputed.
    Static(Arc<Relation>),
    /// Start from the request projected onto the bag's access variables,
    /// then run the pre-indexed join chain.
    Dynamic {
        /// Positions of the bag's access variables in the request schema.
        start_positions: Vec<usize>,
        joins: Vec<PreJoin>,
    },
    /// Uncovered bag: semijoin the precomputed full join by the request
    /// and project onto the bag.
    Fallback { bag: VarSet, full: Arc<Relation> },
}

/// A compiled producer for the T-view of one non-materialized node.
#[derive(Clone, Debug)]
struct TViewProgram {
    node: usize,
    schema: Schema,
    kind: TViewKind,
}

impl TViewProgram {
    fn exec(
        &self,
        request: &AccessRequest,
        scratch: &mut DriverScratch,
    ) -> Result<Option<Relation>> {
        match &self.kind {
            // Statics are shared by reference; the caller borrows them.
            TViewKind::Static(_) => Ok(None),
            TViewKind::Dynamic {
                start_positions,
                joins,
            } => {
                // Seed: the request projected onto the bag's access
                // variables, deduplicated, in the reused accumulator.
                let acc = &mut scratch.acc;
                let next = &mut scratch.next;
                acc.clear();
                if request.len() <= 1 {
                    acc.extend(
                        request
                            .tuples()
                            .iter()
                            .map(|t| t.project(start_positions)),
                    );
                } else {
                    scratch.seen.clear();
                    for t in request.tuples() {
                        let p = t.project(start_positions);
                        if !scratch.seen.contains(&p) {
                            scratch.seen.insert(p.clone());
                            acc.push(p);
                        }
                    }
                }
                // The pre-indexed join chain: requests never scan an atom
                // relation, they probe its build-time index.
                for join in joins {
                    next.clear();
                    for lt in acc.iter() {
                        let key = lt.project(&join.key_positions);
                        for rt in join.index.probe(&key) {
                            next.push(lt.concat_projected(rt, &join.appended));
                        }
                    }
                    std::mem::swap(acc, next);
                }
                // Distinct by construction: the seed is deduplicated and
                // each join extends tuples by key-determined columns.
                let mut builder = RelationBuilder::distinct("T_view", self.schema.clone());
                for t in acc.drain(..) {
                    builder.push(t);
                }
                Ok(Some(builder.finish()))
            }
            TViewKind::Fallback { bag, full } => {
                let restricted = if request.access().is_empty() {
                    full.as_ref().clone()
                } else {
                    full.semijoin(&request.as_relation())?
                };
                Ok(Some(restricted.project_onto(*bag)?))
            }
        }
    }

    /// The columnar mirror of [`TViewProgram::exec`]: produces the T-view
    /// directly as a [`ColumnRun`] in the compile-time column order, so
    /// the view's tuples never exist in row form. Only called for
    /// non-static programs (static content lives folded inside the plan).
    fn exec_columns(
        &self,
        request: &AccessRequest,
        out: &mut ColumnRun,
        ping: &mut ColumnRun,
        key_vals: &mut Vec<Val>,
        seed_memo: &mut KeyMemo<()>,
    ) -> Result<()> {
        match &self.kind {
            TViewKind::Static(_) => unreachable!("static T-views are folded into the plan"),
            TViewKind::Dynamic {
                start_positions,
                joins,
            } => {
                // Seed: the request projected onto the bag's access
                // variables, deduplicated, straight into columns.
                out.reset(start_positions.len());
                if request.len() <= 1 {
                    for t in request.tuples() {
                        t.project_into(start_positions, key_vals);
                        out.push_row(key_vals);
                    }
                } else {
                    seed_memo.clear();
                    for t in request.tuples() {
                        t.project_into(start_positions, key_vals);
                        let hash = hash_vals(key_vals);
                        if seed_memo.insert_if_absent(hash, key_vals) {
                            out.push_row(key_vals);
                        }
                    }
                }
                // The pre-indexed join chain: probe the build-time index
                // per row, append matches as column pushes (the key tuple
                // is the only row-shaped value, and it stays inline).
                for join in joins {
                    ping.reset(out.width() + join.appended.len());
                    for r in 0..out.rows() {
                        out.project_row_into(r, &join.key_positions, key_vals);
                        let key = Tuple::from_slice(key_vals);
                        for rt in join.index.probe(&key) {
                            ping.push_join_row(out, r, rt.as_slice(), &join.appended);
                        }
                    }
                    std::mem::swap(out, ping);
                }
                Ok(())
            }
            TViewKind::Fallback { bag, full } => {
                let restricted = if request.access().is_empty() {
                    full.as_ref().clone()
                } else {
                    full.semijoin(&request.as_relation())?
                };
                let rel = restricted.project_onto(*bag)?;
                debug_assert_eq!(rel.schema(), &self.schema);
                out.reset(rel.schema().arity());
                out.extend_from_tuples(rel.tuples());
                Ok(())
            }
        }
    }

    fn is_static(&self) -> bool {
        matches!(self.kind, TViewKind::Static(_))
    }
}

/// One PMTD's full compiled answering pipeline: the T-view programs plus
/// the compiled Online-Yannakakis plan, sharing one fixed set of schemas.
///
/// Compiled once per plan at index build time; cloned (cheaply — the big
/// pieces are behind `Arc` or are position tables) when a second backend
/// (e.g. a disk spill) reuses the same preprocessing output.
#[derive(Clone, Debug)]
pub struct CompiledPmtd {
    access: VarSet,
    programs: Vec<TViewProgram>,
    /// Indices into `programs` of the non-static (per-request) programs —
    /// precomputed so the warm columnar path never re-partitions (or
    /// allocates) per request.
    dynamic: Vec<usize>,
    plan: CompiledPlan,
}

impl CompiledPmtd {
    /// Compiles the T-view programs and the probe plan for `evaluator`'s
    /// PMTD against the backend `views`. `full` is the precomputed full
    /// join of the query (the build phase has it anyway); it is retained
    /// only if some bag needs the fallback path.
    ///
    /// # Errors
    /// Propagates schema/atom resolution failures; fails if a probed
    /// S-view is missing from `views`.
    pub fn compile<V: SViewProbe>(
        cqap: &Cqap,
        db: &Database,
        evaluator: &OnlineYannakakis,
        views: &V,
        full: &Relation,
    ) -> Result<CompiledPmtd> {
        CompiledPmtd::compile_cached(cqap, db, evaluator, views, full, &mut AtomIndexCache::default())
    }

    /// [`CompiledPmtd::compile`] with a caller-owned atom-index memo, so a
    /// multi-PMTD build shares one `Arc`'d join index per distinct
    /// (atom, join-key) pair instead of rebuilding it per PMTD.
    pub(crate) fn compile_cached<V: SViewProbe>(
        cqap: &Cqap,
        db: &Database,
        evaluator: &OnlineYannakakis,
        views: &V,
        full: &Relation,
        atom_indexes: &mut AtomIndexCache,
    ) -> Result<CompiledPmtd> {
        let pmtd = evaluator.pmtd();
        let access = cqap.access();
        let request_schema = Schema::of(access.iter());
        let mut full_arc: Option<Arc<Relation>> = None;
        let mut programs = Vec::new();
        for node in 0..pmtd.td().num_nodes() {
            if pmtd.is_materialized(node) {
                continue;
            }
            let bag = pmtd.td().bag(node);
            let access_in_bag = access.intersect(bag);
            let in_bag_atoms: Vec<_> = cqap
                .cq()
                .atoms()
                .iter()
                .filter(|atom| atom.varset().is_subset(bag))
                .collect();

            let fallback = |full_arc: &mut Option<Arc<Relation>>| {
                let full = full_arc
                    .get_or_insert_with(|| Arc::new(full.clone()))
                    .clone();
                TViewProgram {
                    node,
                    schema: Schema::of(bag.iter()),
                    kind: TViewKind::Fallback { bag, full },
                }
            };

            let program = if access_in_bag.is_empty() {
                // Request-independent: join the in-bag atoms once, now.
                let mut acc: Option<Relation> = None;
                for atom in &in_bag_atoms {
                    let rel = atom_relation(db, atom)?;
                    acc = Some(match acc {
                        None => rel,
                        Some(prev) => prev.join(&rel)?,
                    });
                }
                match acc {
                    Some(rel) if rel.varset() == bag => TViewProgram {
                        node,
                        schema: rel.schema().clone(),
                        kind: TViewKind::Static(Arc::new(rel)),
                    },
                    _ => fallback(&mut full_arc),
                }
            } else {
                // Simulate the join chain's schemas and index each atom
                // on its (statically known) join variables.
                let start_positions = request_schema.positions_of_set(access_in_bag)?;
                let mut schema = request_schema.project(access_in_bag);
                let mut joins = Vec::with_capacity(in_bag_atoms.len());
                for atom in &in_bag_atoms {
                    let atom_schema = Schema::new(atom.vars.clone())?;
                    let shared = schema.varset().intersect(atom_schema.varset());
                    let out_schema = schema.join(&atom_schema);
                    let appended = out_schema.vars()[schema.arity()..]
                        .iter()
                        .map(|&v| atom_schema.position(v).expect("appended var"))
                        .collect();
                    let cache_key = (atom.relation.clone(), atom.vars.clone(), shared.0);
                    let index = match atom_indexes.get(&cache_key) {
                        Some(index) => Arc::clone(index),
                        None => {
                            let rel = atom_relation(db, atom)?;
                            let index = Arc::new(HashIndex::build(&rel, shared)?);
                            atom_indexes.insert(cache_key, Arc::clone(&index));
                            index
                        }
                    };
                    joins.push(PreJoin {
                        key_positions: schema.positions_of_set(shared)?,
                        index,
                        appended,
                    });
                    schema = out_schema;
                }
                if schema.varset() == bag {
                    TViewProgram {
                        node,
                        schema,
                        kind: TViewKind::Dynamic {
                            start_positions,
                            joins,
                        },
                    }
                } else {
                    fallback(&mut full_arc)
                }
            };
            programs.push(program);
        }

        let t_schemas: Vec<(usize, Schema)> = programs
            .iter()
            .map(|p| (p.node, p.schema.clone()))
            .collect();
        // Static programs produce the same content on every request, so
        // their reductions are hoisted out of the per-request plan: the
        // plan folds static-only edges at compile time and prebuilds
        // key sets / join indexes over the still-static sides.
        let statics: Vec<(usize, &Relation)> = programs
            .iter()
            .filter_map(|p| match &p.kind {
                TViewKind::Static(rel) => Some((p.node, rel.as_ref())),
                _ => None,
            })
            .collect();
        let plan = evaluator.compile_with_statics(views, &t_schemas, &statics)?;
        let dynamic = (0..programs.len())
            .filter(|&i| !programs[i].is_static())
            .collect();
        Ok(CompiledPmtd {
            access,
            programs,
            dynamic,
            plan,
        })
    }

    /// Whether some bag of this plan uses the fallback T-view path (and
    /// therefore retains the full join): recompiles after a delta must
    /// recompute the full join exactly when this is true. Fallback-ness
    /// is decided purely from schemas, so it is stable across recompiles
    /// over the same CQAP and PMTD.
    pub(crate) fn needs_full(&self) -> bool {
        self.programs
            .iter()
            .any(|p| matches!(p.kind, TViewKind::Fallback { .. }))
    }

    /// Answers one request through the **columnar** pipeline (the default
    /// serving path): the T-view programs write their output directly as
    /// column runs, the plan executes column-at-a-time, and rows become
    /// tuples only at the final head projection. Static T-views were
    /// folded into the plan at compile time and cost nothing per request.
    ///
    /// # Errors
    /// The same validation failures as the interpreted path, plus backend
    /// storage errors.
    pub fn answer<V: SViewProbe>(
        &self,
        views: &V,
        request: &AccessRequest,
        scratch: &mut DriverScratch,
    ) -> Result<Relation> {
        if request.access() != self.access {
            return Err(CqapError::AccessPatternMismatch {
                expected_arity: self.access.len(),
                found_arity: request.access().len(),
            });
        }
        let mut runs = std::mem::take(&mut scratch.slot_runs);
        while runs.len() < self.dynamic.len() {
            runs.push(ColumnRun::new());
        }
        let mut result = Ok(());
        for (&i, run) in self.dynamic.iter().zip(runs.iter_mut()) {
            result = self.programs[i].exec_columns(
                request,
                run,
                &mut scratch.col_acc,
                &mut scratch.key_vals,
                &mut scratch.seed_memo,
            );
            if result.is_err() {
                break;
            }
        }
        let answer = result.and_then(|()| {
            self.plan.answer_from_columns(
                views,
                self.dynamic
                    .iter()
                    .map(|&i| self.programs[i].node)
                    .zip(runs.iter().map(|r| &*r)),
                request,
                &mut scratch.col,
            )
        });
        scratch.slot_runs = runs;
        answer
    }

    /// Answers one request through the row-compiled pipeline of PR 4 —
    /// the tested fallback the columnar path is measured (and proptested)
    /// against. Static T-views are folded into the plan exactly as on the
    /// columnar path.
    ///
    /// # Errors
    /// Same failure modes as [`CompiledPmtd::answer`].
    pub fn answer_rows<V: SViewProbe>(
        &self,
        views: &V,
        request: &AccessRequest,
        scratch: &mut DriverScratch,
    ) -> Result<Relation> {
        if request.access() != self.access {
            return Err(CqapError::AccessPatternMismatch {
                expected_arity: self.access.len(),
                found_arity: request.access().len(),
            });
        }
        let mut owned: Vec<(usize, Relation)> = Vec::new();
        for program in &self.programs {
            if let Some(rel) = program.exec(request, scratch)? {
                owned.push((program.node, rel));
            }
        }
        // Static T-views are omitted: the plan folded their content at
        // compile time and would ignore anything passed for them.
        let t_views: Vec<(usize, &Relation)> =
            owned.iter().map(|(node, rel)| (*node, rel)).collect();
        self.plan.answer_with(views, &t_views, request, &mut scratch.plan)
    }
}

/// Projects `rel` onto `target ∩ varset` like
/// [`Relation::project_onto`], but moves the relation through unchanged
/// when the projection is the identity (the common case for the framework
/// drivers, whose plans already produce head-shaped answers).
fn project_final(rel: Relation, target: VarSet) -> Result<Relation> {
    let keep = target.intersect(rel.varset());
    if keep == rel.varset() && rel.schema().vars().windows(2).all(|w| w[0] < w[1]) {
        return Ok(rel);
    }
    rel.project_onto(target)
}

/// The compiled driver loop over any S-view backend: runs every PMTD's
/// **columnar** pipeline (the default serving path), unions the per-PMTD
/// answers, and projects onto `declared_head ∪ access` — the compiled
/// mirror of [`answer_with_plans`](crate::answer_with_plans), used by
/// `CqapIndex` (in-memory views) and `cqap-store`'s `StoredIndex` (disk
/// views), so the backends cannot silently diverge.
///
/// # Errors
/// Fails for an empty plan set, and propagates evaluation errors.
pub fn answer_with_compiled<'a, V, I>(
    cqap: &Cqap,
    plans: I,
    request: &AccessRequest,
) -> Result<Relation>
where
    V: SViewProbe + 'a,
    I: IntoIterator<Item = (&'a CompiledPmtd, &'a V)>,
{
    with_driver_scratch(|scratch| {
        let mut acc: Option<Relation> = None;
        for (plan, views) in plans {
            let part = plan.answer(views, request, scratch)?;
            acc = Some(match acc {
                None => part,
                // Both sides are owned: the larger moves, the smaller's
                // tuples are inserted — no relation clone.
                Some(prev) => prev.union_with(part)?,
            });
        }
        let result = acc.ok_or_else(|| {
            CqapError::InvalidQuery("the framework needs at least one PMTD".into())
        })?;
        project_final(result, cqap.declared_head().union(cqap.access()))
    })
}

/// [`answer_with_compiled`] over the **row-compiled** pipelines of PR 4 —
/// the tested fallback the columnar default is benchmarked and proptested
/// against.
///
/// # Errors
/// Same failure modes as [`answer_with_compiled`].
pub fn answer_with_compiled_rows<'a, V, I>(
    cqap: &Cqap,
    plans: I,
    request: &AccessRequest,
) -> Result<Relation>
where
    V: SViewProbe + 'a,
    I: IntoIterator<Item = (&'a CompiledPmtd, &'a V)>,
{
    with_driver_scratch(|scratch| {
        let mut acc: Option<Relation> = None;
        for (plan, views) in plans {
            let part = plan.answer_rows(views, request, scratch)?;
            acc = Some(match acc {
                None => part,
                Some(prev) => prev.union_with(part)?,
            });
        }
        let result = acc.ok_or_else(|| {
            CqapError::InvalidQuery("the framework needs at least one PMTD".into())
        })?;
        project_final(result, cqap.declared_head().union(cqap.access()))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{online_t_views, CqapIndex};
    use cqap_decomp::families as pf;
    use cqap_query::workload::{graph_pair_requests, Graph};
    use cqap_yannakakis::naive::full_join;

    #[test]
    fn compiled_t_views_match_the_interpreted_ones() {
        let (cqap, pmtds) = pf::pmtds_3reach_fig1().unwrap();
        let g = Graph::random(35, 150, 3);
        let db = g.as_path_database(3);
        let full = full_join(&cqap, &db).unwrap();
        for pmtd in &pmtds {
            let evaluator = OnlineYannakakis::new(pmtd.clone());
            let mut s_views = Vec::new();
            for node in pmtd.materialization_set() {
                s_views.push((node, full.project_onto(pmtd.view_schema(node)).unwrap()));
            }
            let pre = evaluator.preprocess(&s_views).unwrap();
            let compiled = CompiledPmtd::compile(&cqap, &db, &evaluator, &pre, &full).unwrap();
            for (u, v) in graph_pair_requests(&g, 15, 5) {
                let request = AccessRequest::single(cqap.access(), &[u, v]).unwrap();
                let expected = online_t_views(&cqap, &db, pmtd, &request).unwrap();
                for program in &compiled.programs {
                    let produced;
                    let got: &Relation = match &program.kind {
                        TViewKind::Static(rel) => rel,
                        _ => {
                            produced = program
                                .exec(&request, &mut DriverScratch::new())
                                .unwrap()
                                .unwrap();
                            &produced
                        }
                    };
                    let want = expected
                        .iter()
                        .find(|(n, _)| *n == program.node)
                        .map(|(_, r)| r)
                        .expect("same node set");
                    assert_eq!(got, want, "node {} of {}", program.node, pmtd.summary());
                }
            }
        }
    }

    #[test]
    fn access_free_bags_are_hoisted_and_answers_stay_exact() {
        // A 2-path CQAP whose access pattern is only {x1}: the bag
        // {x2,x3} contains no access variable, so its T-view program is
        // static and every reduction over it must be hoisted into the
        // plan (prebuilt key set, folded projection, top-down static
        // join). A Boolean variant (empty access pattern) folds the whole
        // tree: the root join and the top-down join probe compile-time
        // indexes, and the per-request work is output-sensitive.
        use cqap_common::{vars, VarSet};
        use cqap_decomp::{Pmtd, TreeDecomposition};
        use cqap_query::{Atom, ConjunctiveQuery};

        let atoms = || {
            vec![
                Atom::new("R1", vec![0, 1]).unwrap(),
                Atom::new("R2", vec![1, 2]).unwrap(),
            ]
        };
        let g = Graph::random(30, 140, 19);
        let db = g.as_path_database(2);
        let full_head = VarSet::from_iter([0, 1, 2]);

        let check = |cqap: &Cqap, pmtds: &[Pmtd], requests: &[AccessRequest]| {
            let index = CqapIndex::build(cqap, &db, pmtds).unwrap();
            for request in requests {
                let expected = index.answer_from_scratch(request).unwrap();
                assert_eq!(index.answer(request).unwrap(), expected, "columnar");
                assert_eq!(index.answer_rows(request).unwrap(), expected, "rows");
                assert_eq!(
                    index.answer_interpreted(request).unwrap(),
                    expected,
                    "interpreted"
                );
            }
        };

        let cq = ConjunctiveQuery::new("p2", 3, atoms(), full_head).unwrap();
        let cqap = Cqap::new(cq, VarSet::from_iter([0])).unwrap();
        let td = TreeDecomposition::path(vec![vars![1, 2], vars![2, 3]]).unwrap();
        let pmtds = vec![Pmtd::for_cqap(td, [], &cqap).unwrap()];
        let requests: Vec<AccessRequest> = graph_pair_requests(&g, 20, 23)
            .into_iter()
            .map(|(u, _)| AccessRequest::single(cqap.access(), &[u]).unwrap())
            .collect();
        check(&cqap, &pmtds, &requests);

        // Boolean variant: empty access pattern, everything static.
        let cq = ConjunctiveQuery::new("p2b", 3, atoms(), full_head).unwrap();
        let bool_cqap = Cqap::new(cq, VarSet::EMPTY).unwrap();
        let td = TreeDecomposition::path(vec![vars![1, 2], vars![2, 3]]).unwrap();
        let pmtds = vec![Pmtd::for_cqap(td, [], &bool_cqap).unwrap()];
        let truthy = AccessRequest::new(VarSet::EMPTY, vec![Tuple::empty()]).unwrap();
        check(&bool_cqap, &pmtds, &[truthy]);
        // The empty request is the "false" binding: no answers on any
        // online path (the naive evaluator has no falsy form, so it is
        // not a reference here).
        let falsy = AccessRequest::new(VarSet::EMPTY, vec![]).unwrap();
        let index = CqapIndex::build(&bool_cqap, &db, &pmtds).unwrap();
        assert!(index.answer(&falsy).unwrap().is_empty());
        assert!(index.answer_rows(&falsy).unwrap().is_empty());
        assert!(index.answer_interpreted(&falsy).unwrap().is_empty());
    }

    #[test]
    fn warm_single_request_driver_path_performs_zero_dedup_inserts() {
        // The fully-materialized plan (S14): after one warm-up request,
        // the complete driver path — T-view programs, compiled plan,
        // per-PMTD union, final projection — must never touch the
        // relation-level dedup machinery (the paper's "probe-only online
        // phase" made literal at the allocator level).
        let (cqap, pmtds) = pf::pmtds_3reach_fig1().unwrap();
        let g = Graph::random(50, 260, 13);
        let db = g.as_path_database(3);
        let index = CqapIndex::build(&cqap, &db, &pmtds[2..3]).unwrap();
        let requests: Vec<AccessRequest> = graph_pair_requests(&g, 6, 17)
            .into_iter()
            .map(|(u, v)| AccessRequest::single(cqap.access(), &[u, v]).unwrap())
            .collect();
        // Expected answers (interpreted path) computed outside the
        // counted window — the reference itself uses dedup inserts.
        let expected: Vec<Relation> = requests
            .iter()
            .map(|r| index.answer_interpreted(r).unwrap())
            .collect();
        index.answer(&requests[0]).unwrap(); // warm the scratch arena

        let dedup_before = cqap_relation::instrument::dedup_inserts();
        let boxes_before = cqap_common::tuple::instrument::heap_boxings();
        let answers: Vec<Relation> =
            requests.iter().map(|r| index.answer(r).unwrap()).collect();
        assert_eq!(
            cqap_relation::instrument::dedup_inserts(),
            dedup_before,
            "warm single-request serving must perform zero relation-level dedup inserts"
        );
        assert_eq!(
            cqap_common::tuple::instrument::heap_boxings(),
            boxes_before,
            "the warm columnar request path must perform zero tuple heap boxings"
        );
        assert_eq!(answers, expected);
    }

    #[test]
    fn warm_path_after_deltas_stays_zero_dedup_and_zero_boxing() {
        // The maintenance seam must not erode the paper's probe-only
        // online phase: an empty [`DeltaBatch`] short-circuits without
        // touching the compiled plans, so a warm serving loop that
        // absorbs it stays allocation-free; and after a *real* delta
        // (which recompiles the plans) a single re-warming request
        // restores the zero-dedup / zero-boxing steady state.
        use cqap_delta::{ApplyDelta, DeltaBatch};

        let (cqap, pmtds) = pf::pmtds_3reach_fig1().unwrap();
        let g = Graph::random(50, 260, 13);
        let db = g.as_path_database(3);
        let mut index = CqapIndex::build(&cqap, &db, &pmtds[2..3]).unwrap();
        let requests: Vec<AccessRequest> = graph_pair_requests(&g, 6, 17)
            .into_iter()
            .map(|(u, v)| AccessRequest::single(cqap.access(), &[u, v]).unwrap())
            .collect();
        let expected: Vec<Relation> = requests
            .iter()
            .map(|r| index.answer_interpreted(r).unwrap())
            .collect();
        index.answer(&requests[0]).unwrap(); // warm the scratch arena

        // Counted window 1: empty batch + warm answering.
        let dedup_before = cqap_relation::instrument::dedup_inserts();
        let boxes_before = cqap_common::tuple::instrument::heap_boxings();
        let stats = index.apply_delta(&DeltaBatch::new()).unwrap();
        assert!(stats.is_noop(), "an empty batch must be a net no-op");
        let answers: Vec<Relation> =
            requests.iter().map(|r| index.answer(r).unwrap()).collect();
        assert_eq!(
            cqap_relation::instrument::dedup_inserts(),
            dedup_before,
            "an empty delta batch must leave the zero-dedup warm path intact"
        );
        assert_eq!(
            cqap_common::tuple::instrument::heap_boxings(),
            boxes_before,
            "an empty delta batch must leave the zero-boxing warm path intact"
        );
        assert_eq!(answers, expected);

        // A real delta: plans recompile, answers change where the new
        // chain completes, and one re-warming request restores the
        // allocation-free steady state.
        let batch = DeltaBatch::new()
            .insert("R1", vec![Tuple::pair(90_000, 90_001)])
            .insert("R2", vec![Tuple::pair(90_001, 90_002)])
            .insert("R3", vec![Tuple::pair(90_002, 90_003)]);
        assert!(!index.apply_delta(&batch).unwrap().is_noop());
        let mut post_requests = requests.clone();
        post_requests
            .push(AccessRequest::single(cqap.access(), &[90_000, 90_003]).unwrap());
        let post_expected: Vec<Relation> = post_requests
            .iter()
            .map(|r| index.answer_interpreted(r).unwrap())
            .collect();
        assert_eq!(
            post_expected.last().unwrap().len(),
            1,
            "the inserted chain must produce the new answer"
        );
        index.answer(&post_requests[0]).unwrap(); // re-warm after recompile

        // Counted window 2: warm answering over the maintained index.
        let dedup_before = cqap_relation::instrument::dedup_inserts();
        let boxes_before = cqap_common::tuple::instrument::heap_boxings();
        let post_answers: Vec<Relation> = post_requests
            .iter()
            .map(|r| index.answer(r).unwrap())
            .collect();
        assert_eq!(
            cqap_relation::instrument::dedup_inserts(),
            dedup_before,
            "warm serving after a delta must perform zero relation-level dedup inserts"
        );
        assert_eq!(
            cqap_common::tuple::instrument::heap_boxings(),
            boxes_before,
            "warm serving after a delta must perform zero tuple heap boxings"
        );
        assert_eq!(post_answers, post_expected);
    }

    #[test]
    fn compiled_driver_matches_interpreted_driver() {
        let (cqap, pmtds) = pf::pmtds_3reach_all().unwrap();
        let g = Graph::skewed(40, 180, 3, 30, 7);
        let db = g.as_path_database(3);
        let index = CqapIndex::build(&cqap, &db, &pmtds).unwrap();
        for (u, v) in graph_pair_requests(&g, 25, 11) {
            let request = AccessRequest::single(cqap.access(), &[u, v]).unwrap();
            assert_eq!(
                index.answer(&request).unwrap(),
                index.answer_interpreted(&request).unwrap(),
                "({u},{v})"
            );
        }
    }
}
