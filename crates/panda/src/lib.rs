//! # cqap-panda
//!
//! The framework layer of the paper (Sections 4 and 5):
//!
//! * [`rules`] — generation of the 2-phase disjunctive rules induced by a
//!   set of PMTDs (Section 4.2): one rule per choice of one view from every
//!   PMTD, deduplicated, with the paper's "discard rules with strictly more
//!   targets" pruning (Observation E.1).
//! * [`driver`] — an executable instantiation of the general framework: a
//!   [`driver::CqapIndex`] materializes the S-views of a PMTD set during a
//!   preprocessing phase and answers access requests with Online Yannakakis
//!   per PMTD, unioning the per-PMTD results (Section 4.3). It is the
//!   reference "framework engine" the specialized index structures in
//!   `cqap-indexes` are benchmarked against.
//! * [`analysis`] — the analytic reproduction entry points: Table 1
//!   (2-phase disjunctive rules for 3-reachability with their verified
//!   tradeoffs), the combined tradeoff curves of Figures 4a and 4b, and the
//!   prior-state-of-the-art baselines they are compared against.

pub mod analysis;
pub mod driver;
pub mod rules;

pub use analysis::{figure4a_curve, figure4b_curve, goldstein_baseline, table1_3reach, RuleReport};
pub use driver::CqapIndex;
pub use rules::{generate_rules, prune_rules, rule_of_choice, TwoPhaseRule};
