//! # cqap-panda
//!
//! The framework layer of the paper (Sections 4 and 5):
//!
//! * [`rules`] — generation of the 2-phase disjunctive rules induced by a
//!   set of PMTDs (Section 4.2): one rule per choice of one view from every
//!   PMTD, deduplicated, with the paper's "discard rules with strictly more
//!   targets" pruning (Observation E.1).
//! * [`driver`] — an executable instantiation of the general framework: a
//!   [`driver::CqapIndex`] materializes the S-views of a PMTD set during a
//!   preprocessing phase and answers access requests with Online Yannakakis
//!   per PMTD, unioning the per-PMTD results (Section 4.3). It is the
//!   reference "framework engine" the specialized index structures in
//!   `cqap-indexes` are benchmarked against.
//! * [`analysis`] — the analytic reproduction entry points: Table 1
//!   (2-phase disjunctive rules for 3-reachability with their verified
//!   tradeoffs), the combined tradeoff curves of Figures 4a and 4b, and the
//!   prior-state-of-the-art baselines they are compared against.
//!
//! ## Quick start: the full pipeline
//!
//! The quickstart flow (`examples/quickstart.rs` at the workspace root),
//! compressed to its essentials — define the CQAP and PMTDs of Figure 1,
//! preprocess, answer online, and cross-check against the from-scratch
//! evaluator:
//!
//! ```
//! use cqap_decomp::families::pmtds_3reach_fig1;
//! use cqap_panda::CqapIndex;
//! use cqap_query::workload::{graph_pair_requests, Graph};
//! use cqap_query::AccessRequest;
//!
//! // The CQAP φ3(x1,x4 | x1,x4) ← R1(x1,x2) ∧ R2(x2,x3) ∧ R3(x3,x4)
//! // and the three PMTDs of Figure 1.
//! let (cqap, pmtds) = pmtds_3reach_fig1().unwrap();
//!
//! // A small synthetic graph loaded as the three path relations.
//! let graph = Graph::random(50, 200, 42);
//! let db = graph.as_path_database(3);
//!
//! // Preprocessing phase: materialize the S-views of every PMTD.
//! let index = CqapIndex::build(&cqap, &db, &pmtds).unwrap();
//! assert_eq!(index.num_pmtds(), 3);
//!
//! // Online phase: answer access requests, checked against the naive
//! // from-scratch evaluation.
//! for (u, v) in graph_pair_requests(&graph, 5, 1) {
//!     let request = AccessRequest::single(cqap.access(), &[u, v]).unwrap();
//!     let answer = index.answer(&request).unwrap();
//!     assert_eq!(answer, index.answer_from_scratch(&request).unwrap());
//! }
//! ```
//!
//! The analytic half — generating the Table 1 rules and verifying the
//! claimed space-time tradeoffs with the exact-rational LP:
//!
//! ```
//! use cqap_panda::table1_3reach;
//!
//! let (_rules, reports) = table1_3reach().unwrap();
//! assert!(reports.iter().all(|report| report.all_verified()));
//! ```

pub mod analysis;
pub mod compiled;
pub mod delta;
pub mod driver;
pub mod rules;

pub use analysis::{figure4a_curve, figure4b_curve, goldstein_baseline, table1_3reach, RuleReport};
pub use compiled::{
    answer_with_compiled, answer_with_compiled_rows, with_driver_scratch, CompiledPmtd,
    DriverScratch,
};
pub use delta::{DeltaMaintenance, DeltaOutcome};
pub use driver::{answer_with_plans, online_t_views, CqapIndex, DEGRADED_ANSWER_NAME};
pub use rules::{generate_rules, prune_rules, rule_of_choice, TwoPhaseRule};
