//! An executable instantiation of the general framework (Sections 4.2–4.3).
//!
//! [`CqapIndex`] is the "reference engine" for the framework: given a CQAP,
//! a database and a set of PMTDs, the preprocessing phase materializes the
//! S-views of every PMTD (as semijoin-reduced projections of the full join,
//! which is exactly the content the paper's preprocessing phase guarantees
//! after its final semijoin-reduce step) and indexes them for Online
//! Yannakakis. The online phase computes the T-views for the incoming
//! access request — joining only the atoms of each non-materialized bag,
//! restricted by the request — runs Online Yannakakis per PMTD, and unions
//! the results across PMTDs.
//!
//! The engine is *correct for every CQAP and PMTD set* and its space usage
//! is exactly the S-view sizes; its online time is not always the optimum
//! the 2PP analysis promises (that requires the per-rule heavy/light
//! splitting implemented by the specialized structures in `cqap-indexes`),
//! which is precisely the gap the benchmarks quantify.

use cqap_common::{CqapError, Result};
use cqap_decomp::Pmtd;
use cqap_delta::{ApplyDelta, DeltaBatch, DeltaStats};
use cqap_query::{AccessRequest, Cqap};
use cqap_relation::{Database, Relation};
use cqap_yannakakis::naive::{atom_relation, full_join};
use cqap_yannakakis::{naive_answer, OnlineYannakakis, PreprocessedViews, SViewProbe};

use crate::compiled::{answer_with_compiled, answer_with_compiled_rows, AtomIndexCache, CompiledPmtd};
use crate::delta::DeltaMaintenance;

/// The relation name stamped onto answers produced by
/// [`CqapIndex::answer_degraded`], so degraded (possibly partial)
/// answers are always distinguishable from full ones.
pub const DEGRADED_ANSWER_NAME: &str = "degraded";

/// A materialized CQAP index over a set of PMTDs.
pub struct CqapIndex {
    cqap: Cqap,
    db: Database,
    plans: Vec<Plan>,
    maintenance: DeltaMaintenance,
}

struct Plan {
    evaluator: OnlineYannakakis,
    preprocessed: PreprocessedViews,
    /// `Arc`-shared so a second backend over the same preprocessing
    /// output (a disk spill) reuses the pipeline — including its
    /// `O(|D|)`-sized pre-built atom indexes — by refcount, not by copy.
    compiled: std::sync::Arc<CompiledPmtd>,
}

impl CqapIndex {
    /// Preprocessing phase: materializes and indexes the S-views of every
    /// PMTD in the set.
    ///
    /// # Errors
    /// Returns an error if a PMTD does not match the CQAP (different access
    /// pattern or head).
    pub fn build(cqap: &Cqap, db: &Database, pmtds: &[Pmtd]) -> Result<Self> {
        if pmtds.is_empty() {
            return Err(CqapError::InvalidQuery(
                "the framework needs at least one PMTD".into(),
            ));
        }
        for p in pmtds {
            if p.access() != cqap.access() || p.head() != cqap.head() {
                return Err(CqapError::InvalidPmtd(
                    "PMTD head/access pattern does not match the CQAP".into(),
                ));
            }
        }
        let full = full_join(cqap, db)?;
        let mut plans = Vec::with_capacity(pmtds.len());
        // One atom-index memo for the whole build: PMTDs sharing an
        // (atom, join-key) pair share one Arc'd index.
        let mut atom_indexes = AtomIndexCache::default();
        for pmtd in pmtds {
            let evaluator = OnlineYannakakis::new(pmtd.clone());
            let mut s_views = Vec::new();
            for node in pmtd.materialization_set() {
                let schema = pmtd.view_schema(node);
                s_views.push((node, full.project_onto(schema)?));
            }
            let preprocessed = evaluator.preprocess(&s_views)?;
            let compiled = CompiledPmtd::compile_cached(
                cqap,
                db,
                &evaluator,
                &preprocessed,
                &full,
                &mut atom_indexes,
            )?;
            plans.push(Plan {
                evaluator,
                preprocessed,
                compiled: std::sync::Arc::new(compiled),
            });
        }
        // Delta-maintenance state rides along from day one: the compiled
        // per-atom delta plans, the per-view support counts (initialized
        // from the same full join the S-views were projected from), and
        // the atom-index memo, retained so incremental applies and
        // recompiles keep sharing the build's indexes.
        let needs_full = plans.iter().any(|p| p.compiled.needs_full());
        let maintenance = DeltaMaintenance::build(cqap, pmtds, &full, atom_indexes, needs_full)?;
        Ok(CqapIndex {
            cqap: cqap.clone(),
            db: db.clone(),
            plans,
            maintenance,
        })
    }

    /// The intrinsic space cost: total stored values across all S-views of
    /// all PMTDs (excluding the input database itself, as in the paper's
    /// `Õ(S + |D|)` accounting).
    pub fn space_used(&self) -> usize {
        self.plans.iter().map(|p| p.preprocessed.stored_values()).sum()
    }

    /// The CQAP this index answers.
    pub fn cqap(&self) -> &Cqap {
        &self.cqap
    }

    /// The input database (kept so the online phase can compute T-views;
    /// it is *not* part of [`CqapIndex::space_used`], matching the paper's
    /// `Õ(S + |D|)` accounting).
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// The per-PMTD plans — each an Online-Yannakakis evaluator plus its
    /// preprocessed (semijoin-reduced, link-indexed) S-views. This is the
    /// preprocessing output a second storage tier spills: `cqap-store`
    /// serializes exactly these views, keyed by the same link variables.
    pub fn plans(&self) -> impl Iterator<Item = (&OnlineYannakakis, &PreprocessedViews)> {
        self.plans.iter().map(|p| (&p.evaluator, &p.preprocessed))
    }

    /// The per-PMTD compiled pipelines (T-view programs + probe plans) —
    /// what [`CqapIndex::answer`] executes. A second backend over the same
    /// preprocessing output (e.g. `cqap-store`'s disk spill) shares these
    /// by `Arc` instead of recompiling or deep-copying the pre-built atom
    /// indexes.
    pub fn compiled(&self) -> impl Iterator<Item = &std::sync::Arc<CompiledPmtd>> {
        self.plans.iter().map(|p| &p.compiled)
    }

    /// Number of PMTDs in the plan set.
    pub fn num_pmtds(&self) -> usize {
        self.plans.len()
    }

    /// Online phase: answers an access request by running Online Yannakakis
    /// for every PMTD and unioning the per-PMTD answers (Section 4.3),
    /// projected onto the CQAP's declared head.
    ///
    /// Requests run through the **compiled columnar** pipeline: per-request
    /// work is column-at-a-time plan execution against pre-resolved
    /// positions, pre-built atom indexes and hoisted static-side
    /// reductions, with all intermediate state in a per-worker
    /// struct-of-arrays scratch arena. Answers are identical to
    /// [`CqapIndex::answer_rows`] and [`CqapIndex::answer_interpreted`]
    /// (proptest-enforced in `crates/yannakakis/tests`).
    pub fn answer(&self, request: &AccessRequest) -> Result<Relation> {
        answer_with_compiled(
            &self.cqap,
            self.plans
                .iter()
                .map(|p| (p.compiled.as_ref(), &p.preprocessed)),
            request,
        )
    }

    /// Graceful-degradation online phase: answers from the single
    /// *cheapest* plan — the PMTD with the most materialized values,
    /// hence the least online work — skipping the cross-PMTD union.
    ///
    /// With several PMTDs the per-plan answers can be complementary
    /// (e.g. heavy/light splits), so the degraded answer may be a
    /// **subset** of [`CqapIndex::answer`]. The answer relation is
    /// renamed to [`DEGRADED_ANSWER_NAME`] so callers can always tell it
    /// apart from a full answer; with a single PMTD the contents are
    /// identical (but still flagged). The serving runtime uses this past
    /// its overload watermark and never caches the result.
    ///
    /// # Errors
    /// Propagates the plan's evaluation errors.
    pub fn answer_degraded(&self, request: &AccessRequest) -> Result<Relation> {
        let plan = self
            .plans
            .iter()
            .max_by_key(|p| p.preprocessed.stored_values())
            .expect("build requires at least one PMTD");
        let answer = answer_with_compiled(
            &self.cqap,
            std::iter::once((plan.compiled.as_ref(), &plan.preprocessed)),
            request,
        )?;
        Ok(answer.with_name(DEGRADED_ANSWER_NAME))
    }

    /// The row-compiled online phase of PR 4 (tuple ping-pong instead of
    /// column runs) — kept as the tested fallback and as the columnar
    /// path's baseline in the `online_latency` bench.
    pub fn answer_rows(&self, request: &AccessRequest) -> Result<Relation> {
        answer_with_compiled_rows(
            &self.cqap,
            self.plans
                .iter()
                .map(|p| (p.compiled.as_ref(), &p.preprocessed)),
            request,
        )
    }

    /// The pre-compilation online phase: re-resolves schemas and rebuilds
    /// T-views from the database on every request. Kept as the reference
    /// the compiled path is tested against (and as the honest baseline for
    /// the `online_latency` bench).
    pub fn answer_interpreted(&self, request: &AccessRequest) -> Result<Relation> {
        answer_with_plans(&self.cqap, &self.db, self.plans(), request)
    }

    /// Reference answer computed from scratch (used by tests and as the
    /// zero-space baseline in benchmarks).
    pub fn answer_from_scratch(&self, request: &AccessRequest) -> Result<Relation> {
        let ans = naive_answer(&self.cqap, &self.db, request)?;
        ans.project_onto(self.cqap.declared_head().union(self.cqap.access()))
    }

    /// The delta-maintenance state (compiled delta plans, support counts,
    /// atom-index memo). A second backend over the same preprocessing
    /// output (the disk spill in `cqap-store`) clones this to maintain
    /// its own lineage of the views.
    pub fn maintenance(&self) -> &DeltaMaintenance {
        &self.maintenance
    }

    /// Attaches a metrics sink to the index's delta maintenance:
    /// [`ApplyDelta::apply_delta`] then records apply latency, net
    /// insert/delete counters, and plan-recompile counts into it.
    pub fn set_metrics_sink(&mut self, sink: cqap_obs::MetricsSink) {
        self.maintenance.set_metrics_sink(sink);
    }
}

/// In-place incremental maintenance: the net effect flows through the
/// compiled delta plans into ΔS-views applied to every plan's hash-backed
/// [`PreprocessedViews`], then each plan's compiled pipeline is refreshed
/// (its precomputed static bags and pre-built atom indexes fold database
/// content, so they must re-fold the post-delta relations — the retained
/// atom-index memo makes that incremental too: only indexes over touched
/// relations rebuild).
impl ApplyDelta for CqapIndex {
    fn apply_delta(&mut self, batch: &DeltaBatch) -> Result<DeltaStats> {
        let outcome = self.maintenance.apply(&self.cqap, &mut self.db, batch)?;
        if outcome.touched.is_empty() {
            // Net no-op: views, plans and scratch state are untouched, so
            // the warm answering path stays warm.
            return Ok(outcome.stats);
        }
        for (plan, view_deltas) in self.plans.iter_mut().zip(&outcome.views) {
            for (node, ins, del) in view_deltas {
                plan.preprocessed.apply_delta(*node, ins, del)?;
            }
        }
        let full = self.maintenance.full_for_recompile(&self.cqap, &self.db)?;
        for plan in &mut self.plans {
            let compiled = self.maintenance.recompile(
                &self.cqap,
                &self.db,
                &plan.evaluator,
                &plan.preprocessed,
                &full,
            )?;
            plan.compiled = std::sync::Arc::new(compiled);
        }
        Ok(outcome.stats)
    }
}

/// The shared online driver loop over any S-view backend: computes the
/// T-views and runs Online Yannakakis for every plan, unions the per-plan
/// answers, and projects onto `declared_head ∪ access`. [`CqapIndex`]
/// calls this with its in-memory [`PreprocessedViews`]; `cqap-store`'s
/// `StoredIndex` with its disk-resident views — one loop, so the backends
/// cannot silently diverge.
///
/// # Errors
/// Fails for an empty plan set, and propagates evaluation errors.
pub fn answer_with_plans<'a, V, I>(
    cqap: &Cqap,
    db: &Database,
    plans: I,
    request: &AccessRequest,
) -> Result<Relation>
where
    V: SViewProbe + 'a,
    I: IntoIterator<Item = (&'a OnlineYannakakis, &'a V)>,
{
    let mut acc: Option<Relation> = None;
    for (evaluator, views) in plans {
        let t_views = online_t_views(cqap, db, evaluator.pmtd(), request)?;
        let part = evaluator.answer_with(views, &t_views, request)?;
        acc = Some(match acc {
            None => part,
            // Both sides are owned: move the larger, insert the smaller.
            Some(prev) => prev.union_with(part)?,
        });
    }
    let result = acc.ok_or_else(|| {
        CqapError::InvalidQuery("the framework needs at least one PMTD".into())
    })?;
    result.project_onto(cqap.declared_head().union(cqap.access()))
}

/// Computes the online T-view content of a PMTD for the given request: for
/// every non-materialized bag, the join of the request (projected onto the
/// access variables inside the bag) with the atoms contained in the bag. In
/// the rare case where a bag is not covered by its atoms and the access
/// pattern (possible for hand-written decompositions), the view falls back
/// to a projection of the request-restricted full join, which is always
/// correct but pays the full-join cost online.
///
/// This is the online half of the framework pipeline, shared by every
/// backend that answers from the same preprocessing output ([`CqapIndex`]
/// in memory, `cqap-store`'s `StoredIndex` from disk).
///
/// # Errors
/// Propagates schema/atom lookup failures from the database.
pub fn online_t_views(
    cqap: &Cqap,
    db: &Database,
    pmtd: &Pmtd,
    request: &AccessRequest,
) -> Result<Vec<(usize, Relation)>> {
    let request_rel = request.as_relation();
    let mut out = Vec::new();
    for node in 0..pmtd.td().num_nodes() {
        if pmtd.is_materialized(node) {
            continue;
        }
        let bag = pmtd.td().bag(node);
        let access_in_bag = request.access().intersect(bag);
        let mut acc: Option<Relation> = if access_in_bag.is_empty() {
            None
        } else {
            Some(request_rel.project_onto(access_in_bag)?)
        };
        for atom in cqap.cq().atoms() {
            if !atom.varset().is_subset(bag) {
                continue;
            }
            let rel = atom_relation(db, atom)?;
            acc = Some(match acc {
                None => rel,
                Some(prev) => prev.join(&rel)?,
            });
        }
        let view = match acc {
            Some(rel) if rel.varset() == bag => rel,
            _ => {
                // Fallback: the bag is not covered by its atoms plus the
                // access pattern; compute it from the restricted full
                // join instead.
                let full = full_join(cqap, db)?;
                let restricted = if request.access().is_empty() {
                    full
                } else {
                    full.semijoin(&request_rel)?
                };
                restricted.project_onto(bag)?
            }
        };
        out.push((node, view));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqap_common::Tuple;
    use cqap_decomp::families as pf;
    use cqap_query::workload::{graph_pair_requests, Graph};

    fn check_matches_scratch(index: &CqapIndex, cqap: &Cqap, requests: &[(u64, u64)]) {
        for &(a, b) in requests {
            let req = AccessRequest::single(cqap.access(), &[a, b]).unwrap();
            let got = index.answer(&req).unwrap();
            let expected = index.answer_from_scratch(&req).unwrap();
            assert_eq!(got, expected, "mismatch on request ({a},{b})");
        }
    }

    #[test]
    fn three_reach_index_matches_scratch() {
        let (cqap, pmtds) = pf::pmtds_3reach_all().unwrap();
        let g = Graph::skewed(50, 220, 3, 35, 5);
        let db = g.as_path_database(3);
        let index = CqapIndex::build(&cqap, &db, &pmtds).unwrap();
        assert_eq!(index.num_pmtds(), 5);
        assert!(index.space_used() > 0);
        let reqs = graph_pair_requests(&g, 25, 9);
        check_matches_scratch(&index, &cqap, &reqs);
    }

    #[test]
    fn two_reach_index_matches_scratch() {
        let (cqap, pmtds) = pf::pmtds_2reach().unwrap();
        let g = Graph::random(40, 200, 21);
        let db = g.as_path_database(2);
        let index = CqapIndex::build(&cqap, &db, &pmtds).unwrap();
        let reqs = graph_pair_requests(&g, 25, 23);
        check_matches_scratch(&index, &cqap, &reqs);
    }

    #[test]
    fn square_index_matches_scratch() {
        let (cqap, pmtds) = pf::pmtds_square().unwrap();
        let g = Graph::random(20, 100, 33);
        let mut db = Database::new();
        for i in 1..=4 {
            db.add_relation(Relation::binary(
                format!("R{i}"),
                0,
                1,
                g.edges.iter().copied(),
            ))
            .unwrap();
        }
        let index = CqapIndex::build(&cqap, &db, &pmtds).unwrap();
        let reqs = graph_pair_requests(&g, 20, 35);
        check_matches_scratch(&index, &cqap, &reqs);
    }

    #[test]
    fn batched_requests_match() {
        let (cqap, pmtds) = pf::pmtds_3reach_fig1().unwrap();
        let g = Graph::random(35, 150, 45);
        let db = g.as_path_database(3);
        let index = CqapIndex::build(&cqap, &db, &pmtds).unwrap();
        let tuples: Vec<Tuple> = graph_pair_requests(&g, 12, 47)
            .into_iter()
            .map(|(a, b)| Tuple::pair(a, b))
            .collect();
        let req = AccessRequest::new(cqap.access(), tuples).unwrap();
        let got = index.answer(&req).unwrap();
        let expected = index.answer_from_scratch(&req).unwrap();
        assert_eq!(got, expected);
    }

    #[test]
    fn mismatched_pmtd_rejected() {
        let (cqap3, pmtds3) = pf::pmtds_3reach_fig1().unwrap();
        let (cqap2, _) = pf::pmtds_2reach().unwrap();
        let g = Graph::random(20, 60, 3);
        let db2 = g.as_path_database(2);
        assert!(CqapIndex::build(&cqap2, &db2, &pmtds3).is_err());
        assert!(CqapIndex::build(&cqap3, &db2, &[]).is_err());
    }

    #[test]
    fn space_accounting_reflects_materialization() {
        // The Figure 1 set: (T134,T123) stores nothing, (T134,S13) stores
        // the S13 view, (S14) stores the answer pairs. Using only the first
        // PMTD must use zero space.
        let (cqap, pmtds) = pf::pmtds_3reach_fig1().unwrap();
        let g = Graph::random(30, 120, 51);
        let db = g.as_path_database(3);
        let only_online = CqapIndex::build(&cqap, &db, &pmtds[..1]).unwrap();
        assert_eq!(only_online.space_used(), 0);
        let all = CqapIndex::build(&cqap, &db, &pmtds).unwrap();
        assert!(all.space_used() > 0);
    }
}
