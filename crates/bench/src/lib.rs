//! # cqap-bench
//!
//! The benchmark harness: one entry point per table and figure of the
//! paper's evaluation. The library half contains the workload definitions
//! and the sweep loops; the `experiments` binary prints paper-style rows;
//! the Criterion benches in `benches/paper_benches.rs` measure wall-clock
//! time for the same configurations.
//!
//! Two kinds of experiments:
//!
//! * **analytic** — regenerate the paper's tables/figures exactly (rational
//!   LP): Table 1, the PMTD inventories of Figures 1–3, the tradeoff curves
//!   of Figures 4a/4b, and the Section 6 / Appendix E/F symbolic tradeoffs.
//! * **empirical** — sweep the space budget of the concrete index
//!   structures on synthetic workloads and record measured space, measured
//!   online work (hash probes + scanned tuples) and wall-clock time; the
//!   *shape* of these curves is what the paper's tradeoffs predict.

use cqap_common::Val;
use cqap_indexes::{
    BfsBaseline, FullReachMaterialization, HierarchicalIndex, KReachGoldstein,
    SetDisjointnessIndex, SquareIndex, TriangleIndex, TwoReachIndex,
};
use cqap_query::workload::{graph_pair_requests, set_tuple_requests, Graph, SetFamily};
use std::time::Instant;

pub mod analytic;

/// Defaults `BENCH_BASELINE` to `local` so a bench that calls this always
/// dumps (and, on re-runs, compares against) its JSON baseline — the
/// criterion shim only writes when the variable is set. Shared by the
/// `shard_scaling` and `tier_tradeoff` benches so the naming convention
/// cannot drift between them.
pub fn ensure_baseline_named() {
    if std::env::var("BENCH_BASELINE").map_or(true, |v| v.is_empty()) {
        std::env::set_var("BENCH_BASELINE", "local");
    }
}

/// One measured row of an empirical sweep.
#[derive(Clone, Debug)]
pub struct SweepRow {
    /// Human-readable configuration label (structure + budget).
    pub config: String,
    /// The space budget requested (in stored values), if applicable.
    pub budget: Option<usize>,
    /// The space the structure actually uses (stored values).
    pub space_used: usize,
    /// Average online work per request (hash probes + scanned tuples).
    pub avg_work: f64,
    /// Average wall-clock time per request, in nanoseconds.
    pub avg_time_ns: f64,
    /// Fraction of requests with a positive answer.
    pub positive_rate: f64,
}

/// Prints a slice of sweep rows as an aligned table.
pub fn print_rows(title: &str, rows: &[SweepRow]) {
    println!("\n== {title} ==");
    println!(
        "{:<34} {:>12} {:>12} {:>14} {:>14} {:>10}",
        "configuration", "budget", "space", "avg work", "avg ns/query", "positive"
    );
    for r in rows {
        println!(
            "{:<34} {:>12} {:>12} {:>14.1} {:>14.1} {:>9.1}%",
            r.config,
            r.budget.map_or_else(|| "-".to_string(), |b| b.to_string()),
            r.space_used,
            r.avg_work,
            r.avg_time_ns,
            100.0 * r.positive_rate
        );
    }
}

/// Serializes rows as JSON lines (for downstream plotting). The format is
/// written by hand: the build environment has no registry access, so the
/// workspace carries no serde dependency at all.
pub fn rows_to_json(rows: &[SweepRow]) -> String {
    rows.iter()
        .map(|r| {
            format!(
                "{{\"config\":\"{}\",\"budget\":{},\"space_used\":{},\"avg_work\":{},\"avg_time_ns\":{},\"positive_rate\":{}}}",
                r.config.replace('"', "'"),
                r.budget.map_or_else(|| "null".to_string(), |b| b.to_string()),
                r.space_used,
                r.avg_work,
                r.avg_time_ns,
                r.positive_rate
            )
        })
        .collect::<Vec<_>>()
        .join("\n")
}

fn measure<F: FnMut(&(Val, Val)) -> bool>(
    config: String,
    budget: Option<usize>,
    space_used: usize,
    requests: &[(Val, Val)],
    work_counter: impl Fn() -> u64,
    mut query: F,
) -> SweepRow {
    let start_work = work_counter();
    let start = Instant::now();
    let mut positives = 0usize;
    for req in requests {
        if query(req) {
            positives += 1;
        }
    }
    let elapsed = start.elapsed().as_nanos() as f64;
    let total_work = work_counter() - start_work;
    SweepRow {
        config,
        budget,
        space_used,
        avg_work: total_work as f64 / requests.len().max(1) as f64,
        avg_time_ns: elapsed / requests.len().max(1) as f64,
        positive_rate: positives as f64 / requests.len().max(1) as f64,
    }
}

/// Standard budget grid: `S = N^σ` for `σ ∈ {0.5, 0.75, ..., 2.0}`.
pub fn budget_grid(n: usize) -> Vec<(f64, usize)> {
    [0.5, 0.75, 1.0, 1.25, 1.5, 1.75, 2.0]
        .iter()
        .map(|&e| (e, (n as f64).powf(e).round() as usize))
        .collect()
}

/// The default experiment scale (kept modest so `cargo bench` finishes in
/// minutes; the binaries accept a scale factor to go bigger).
#[derive(Clone, Copy, Debug)]
pub struct Scale {
    /// Number of edges in graph workloads.
    pub edges: usize,
    /// Number of online requests per configuration.
    pub requests: usize,
}

impl Default for Scale {
    fn default() -> Self {
        Scale {
            edges: 40_000,
            requests: 2_000,
        }
    }
}

impl Scale {
    /// A smaller scale used by the Criterion benches and smoke tests.
    pub fn small() -> Self {
        Scale {
            edges: 6_000,
            requests: 400,
        }
    }
}

/// §5 running example: the 2-reachability heavy/light index vs. the
/// baselines, swept over the space budget.
pub fn sweep_2reach(scale: Scale) -> Vec<SweepRow> {
    let graph = Graph::skewed(scale.edges / 5, scale.edges, 20, 500, 7);
    let requests = graph_pair_requests(&graph, scale.requests, 11);
    let n = graph.len();
    let mut rows = Vec::new();

    let bfs = BfsBaseline::build(&graph, 2);
    rows.push(measure(
        "bfs-from-scratch (S=0)".into(),
        None,
        bfs.space_used(),
        &requests,
        || bfs.counter.total(),
        |&(u, v)| bfs.query(u, v),
    ));
    for (exp, budget) in budget_grid(n) {
        let idx = TwoReachIndex::build(&graph, budget);
        rows.push(measure(
            format!("two-reach S=|E|^{exp:.2}"),
            Some(budget),
            idx.space_used(),
            &requests,
            || idx.counter.total(),
            |&(u, v)| idx.query(u, v),
        ));
    }
    let full = FullReachMaterialization::build(&graph, 2);
    rows.push(measure(
        "full materialization".into(),
        None,
        full.space_used(),
        &requests,
        || full.counter.total(),
        |&(u, v)| full.query(u, v),
    ));
    rows
}

/// Figures 4a/4b (empirical side): the Goldstein-et-al. k-reachability
/// structure swept over the budget, vs. BFS and full materialization.
pub fn sweep_kreach(k: usize, scale: Scale) -> Vec<SweepRow> {
    let graph = Graph::skewed(scale.edges / 5, scale.edges, 15, 400, 13 + k as u64);
    let requests = graph_pair_requests(&graph, scale.requests, 17);
    let n = graph.len();
    let mut rows = Vec::new();

    let bfs = BfsBaseline::build(&graph, k);
    rows.push(measure(
        format!("{k}-reach bfs (S=0)"),
        None,
        bfs.space_used(),
        &requests,
        || bfs.counter.total(),
        |&(u, v)| bfs.query(u, v),
    ));
    // Parallel build of the budgeted structures (the builds dominate).
    let grid = budget_grid(n);
    let indexes: Vec<(f64, usize, KReachGoldstein)> = std::thread::scope(|s| {
        let handles: Vec<_> = grid
            .iter()
            .map(|&(exp, budget)| {
                let graph = &graph;
                s.spawn(move || (exp, budget, KReachGoldstein::build(graph, k, budget)))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for (exp, budget, idx) in &indexes {
        rows.push(measure(
            format!("{k}-reach goldstein S=|E|^{exp:.2}"),
            Some(*budget),
            idx.space_used(),
            &requests,
            || idx.counter.total(),
            |&(u, v)| idx.query(u, v),
        ));
    }
    let full = FullReachMaterialization::build(&graph, k);
    rows.push(measure(
        format!("{k}-reach full materialization"),
        None,
        full.space_used(),
        &requests,
        || full.counter.total(),
        |&(u, v)| full.query(u, v),
    ));
    rows
}

/// §6.1 / Example 6.2: k-set disjointness swept over the budget.
pub fn sweep_kset(scale: Scale) -> Vec<SweepRow> {
    let family = SetFamily::zipf(scale.edges / 20, scale.edges * 5, scale.edges / 2, 1.0, 5);
    let n = family.len();
    let requests: Vec<(Val, Val)> = set_tuple_requests(&family, 2, scale.requests, 3)
        .into_iter()
        .map(|t| (t.get(0), t.get(1)))
        .collect();
    let mut rows = Vec::new();
    for (exp, budget) in budget_grid(n) {
        let idx = SetDisjointnessIndex::build(&family, budget);
        rows.push(measure(
            format!("set-disjointness S=N^{exp:.2}"),
            Some(budget),
            idx.space_used(),
            &requests,
            || idx.counter.total(),
            |&(a, b)| idx.intersects(a, b),
        ));
    }
    rows
}

/// Example 5.2 / E.5: the square CQAP swept over the budget.
pub fn sweep_square(scale: Scale) -> Vec<SweepRow> {
    let graph = Graph::skewed(scale.edges / 5, scale.edges, 20, 400, 23);
    let requests = graph_pair_requests(&graph, scale.requests, 29);
    let n = graph.len();
    let mut rows = Vec::new();
    for (exp, budget) in budget_grid(n) {
        let idx = SquareIndex::build(&graph, budget);
        rows.push(measure(
            format!("square S=|E|^{exp:.2}"),
            Some(budget),
            idx.space_used(),
            &requests,
            || idx.counter.total(),
            |&(a, c)| idx.query(a, c),
        ));
    }
    rows
}

/// Example E.4: the triangle index (linear space, constant time).
pub fn sweep_triangle(scale: Scale) -> Vec<SweepRow> {
    let graph = Graph::random(scale.edges / 10, scale.edges, 31);
    let idx = TriangleIndex::build(&graph);
    let requests: Vec<(Val, Val)> = graph
        .edges
        .iter()
        .take(scale.requests)
        .map(|&(u, v)| (u, v))
        .collect();
    vec![measure(
        "triangle edge-detection".into(),
        None,
        idx.space_used(),
        &requests,
        || idx.counter.total(),
        |&(u, v)| idx.edge_in_triangle(u, v),
    )]
}

/// Appendix F: the hierarchical CQAP swept over the root-degree threshold.
pub fn sweep_hierarchical(scale: Scale) -> Vec<SweepRow> {
    let roots = (scale.edges / 40).max(20);
    let inst = cqap_indexes::hierarchical::HierarchicalInstance::generate(
        roots,
        (roots / 20).max(2),
        120,
        6,
        64,
        37,
    );
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(41);
    let requests: Vec<(Val, Val, Val, Val)> = (0..scale.requests)
        .map(|_| {
            (
                rng.random_range(0..64) as Val,
                rng.random_range(0..64) as Val,
                rng.random_range(0..64) as Val,
                rng.random_range(0..64) as Val,
            )
        })
        .collect();
    let mut rows = Vec::new();
    for threshold in [1usize, 2, 4, 8, 16, 64, 1 << 20] {
        let idx = HierarchicalIndex::build_with_threshold(&inst, threshold);
        let start = Instant::now();
        let before = idx.counter.total();
        let mut positives = 0usize;
        for &(z1, z2, z3, z4) in &requests {
            if idx.query(z1, z2, z3, z4) {
                positives += 1;
            }
        }
        let elapsed = start.elapsed().as_nanos() as f64;
        rows.push(SweepRow {
            config: format!("hierarchical Δ={threshold}"),
            budget: None,
            space_used: idx.space_used(),
            avg_work: (idx.counter.total() - before) as f64 / requests.len() as f64,
            avg_time_ns: elapsed / requests.len() as f64,
            positive_rate: positives as f64 / requests.len() as f64,
        });
    }
    rows
}

/// §6.4 batching remark: answering `|D|` single-tuple requests one by one
/// versus batching them into one query answered from scratch.
pub fn batching_experiment(scale: Scale) -> Vec<SweepRow> {
    let graph = Graph::skewed(scale.edges / 5, scale.edges, 15, 300, 43);
    let n = graph.len();
    let requests = graph_pair_requests(&graph, n.min(scale.requests * 4), 47);

    // One-by-one with the budget-S Goldstein structure at S = |E|.
    let idx = KReachGoldstein::build(&graph, 3, n);
    let one_by_one = measure(
        "one-by-one (S=|E|)".into(),
        Some(n),
        idx.space_used(),
        &requests,
        || idx.counter.total(),
        |&(u, v)| idx.query(u, v),
    );

    // Batched: a single pass that joins the request set with the path
    // levels (semi-naive evaluation restricted to the requested sources).
    let adj = cqap_indexes::kreach::Adjacency::new(&graph);
    let start = Instant::now();
    let mut work = 0u64;
    let sources: cqap_common::FxHashSet<Val> = requests.iter().map(|&(u, _)| u).collect();
    let mut reach: cqap_common::FxHashMap<Val, cqap_common::FxHashSet<Val>> =
        sources.iter().map(|&s| (s, [s].into_iter().collect())).collect();
    for _ in 0..3 {
        for frontier in reach.values_mut() {
            let mut next = cqap_common::FxHashSet::default();
            for &x in frontier.iter() {
                if let Some(succ) = adj.succ.get(&x) {
                    work += succ.len() as u64;
                    next.extend(succ.iter().copied());
                }
            }
            *frontier = next;
        }
    }
    let mut positives = 0usize;
    for &(u, v) in &requests {
        if reach.get(&u).is_some_and(|r| r.contains(&v)) {
            positives += 1;
        }
    }
    let elapsed = start.elapsed().as_nanos() as f64;
    let batched = SweepRow {
        config: format!("batched ({} requests at once)", requests.len()),
        budget: Some(n),
        space_used: 0,
        avg_work: work as f64 / requests.len() as f64,
        avg_time_ns: elapsed / requests.len() as f64,
        positive_rate: positives as f64 / requests.len() as f64,
    };
    vec![one_by_one, batched]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweeps_produce_monotone_shapes() {
        let scale = Scale {
            edges: 2_000,
            requests: 150,
        };
        let rows = sweep_2reach(scale);
        assert!(rows.len() >= 3);
        // Within the budgeted two-reach rows, more budget never increases
        // the average online work.
        let budgeted: Vec<&SweepRow> = rows
            .iter()
            .filter(|r| r.config.starts_with("two-reach"))
            .collect();
        for pair in budgeted.windows(2) {
            assert!(
                pair[1].avg_work <= pair[0].avg_work + 1e-9,
                "{} vs {}",
                pair[0].config,
                pair[1].config
            );
        }
    }

    #[test]
    fn kset_sweep_follows_tradeoff_direction() {
        let scale = Scale {
            edges: 2_000,
            requests: 200,
        };
        let rows = sweep_kset(scale);
        assert!(rows.first().unwrap().avg_work >= rows.last().unwrap().avg_work);
        // Space grows along the grid.
        assert!(rows.first().unwrap().space_used <= rows.last().unwrap().space_used);
    }

    #[test]
    fn batching_beats_one_by_one_on_total_work() {
        let scale = Scale {
            edges: 3_000,
            requests: 300,
        };
        let rows = batching_experiment(scale);
        assert_eq!(rows.len(), 2);
        // Both strategies answer the same requests (identical hit rates);
        // the work comparison itself is scale-dependent and is reported by
        // the experiment binary rather than asserted at toy scale.
        assert!((rows[0].positive_rate - rows[1].positive_rate).abs() < 1e-9);
        assert!(rows.iter().all(|r| r.avg_work > 0.0));
    }

    #[test]
    fn json_serialization() {
        let rows = sweep_triangle(Scale {
            edges: 1_000,
            requests: 50,
        });
        let json = rows_to_json(&rows);
        assert!(json.contains("triangle"));
        assert!(json.contains("avg_work"));
    }
}
