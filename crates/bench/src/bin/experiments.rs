//! The experiment runner: one sub-command per table/figure of the paper.
//!
//! ```sh
//! cargo run --release -p cqap-bench --bin experiments -- <experiment> [--json] [--small]
//! ```
//!
//! Experiments:
//!
//! | id | paper artifact |
//! |----|----------------|
//! | `table1` | Table 1 — 2-phase disjunctive rules for 3-reachability |
//! | `fig1`, `fig2`, `fig3` | PMTD inventories of Figures 1–3 |
//! | `fig4a`, `fig4b` | analytic tradeoff curves of Figures 4a/4b |
//! | `e8` | Example E.8 rule tradeoffs for 4-reachability |
//! | `section6` | §6.2/6.3 edge-cover and tree-decomposition tradeoffs |
//! | `appendix-f` | Appendix F hierarchical tradeoffs (very slow: 7-variable LP, may run for a very long time) |
//! | `2reach` | §5 running example, empirical sweep |
//! | `3reach`, `4reach` | Figures 4a/4b empirical sweeps (Goldstein baseline) |
//! | `kset` | §6.1 k-set disjointness empirical sweep |
//! | `square` | Example 5.2 empirical sweep |
//! | `triangle` | Example E.4 empirical measurement |
//! | `hierarchical` | Appendix F empirical sweep |
//! | `batching` | §6.4 batching remark |
//! | `all` | every analytic experiment plus the default empirical sweeps |

use cqap_bench::{analytic, batching_experiment, print_rows, rows_to_json, Scale, SweepRow};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    let small = args.iter().any(|a| a == "--small");
    let scale = if small { Scale::small() } else { Scale::default() };
    let which = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "all".to_string());

    let emit = |title: &str, rows: Vec<SweepRow>| {
        if json {
            println!("{}", rows_to_json(&rows));
        } else {
            print_rows(title, &rows);
        }
    };

    match which.as_str() {
        "table1" => analytic::table1(),
        "fig1" => analytic::figure1(),
        "fig2" => analytic::figure2(),
        "fig3" => analytic::figure3(),
        "fig4a" => analytic::figure4(3),
        "fig4b" => analytic::figure4(4),
        "e8" => analytic::example_e8(),
        "section6" => analytic::section6_examples(),
        "appendix-f" => analytic::appendix_f(),
        "2reach" => emit(
            "§5 running example: 2-reachability sweep",
            cqap_bench::sweep_2reach(scale),
        ),
        "3reach" => emit(
            "Figure 4a (empirical): 3-reachability sweep",
            cqap_bench::sweep_kreach(3, scale),
        ),
        "4reach" => emit(
            "Figure 4b (empirical): 4-reachability sweep",
            cqap_bench::sweep_kreach(4, scale),
        ),
        "kset" => emit(
            "§6.1: k-set disjointness sweep",
            cqap_bench::sweep_kset(scale),
        ),
        "square" => emit(
            "Example 5.2: square query sweep",
            cqap_bench::sweep_square(scale),
        ),
        "triangle" => emit(
            "Example E.4: triangle edge detection",
            cqap_bench::sweep_triangle(scale),
        ),
        "hierarchical" => emit(
            "Appendix F: hierarchical CQAP sweep",
            cqap_bench::sweep_hierarchical(scale),
        ),
        "batching" => emit("§6.4 batching remark", batching_experiment(scale)),
        "all" => {
            analytic::figure1();
            analytic::figure2();
            analytic::figure3();
            analytic::table1();
            analytic::figure4(3);
            analytic::figure4(4);
            analytic::example_e8();
            analytic::section6_examples();
            emit(
                "§5 running example: 2-reachability sweep",
                cqap_bench::sweep_2reach(scale),
            );
            emit(
                "Figure 4a (empirical): 3-reachability sweep",
                cqap_bench::sweep_kreach(3, scale),
            );
            emit(
                "Figure 4b (empirical): 4-reachability sweep",
                cqap_bench::sweep_kreach(4, scale),
            );
            emit(
                "§6.1: k-set disjointness sweep",
                cqap_bench::sweep_kset(scale),
            );
            emit(
                "Example 5.2: square query sweep",
                cqap_bench::sweep_square(scale),
            );
            emit(
                "Example E.4: triangle edge detection",
                cqap_bench::sweep_triangle(scale),
            );
            emit(
                "Appendix F: hierarchical CQAP sweep",
                cqap_bench::sweep_hierarchical(scale),
            );
            emit("§6.4 batching remark", batching_experiment(scale));
        }
        other => {
            eprintln!("unknown experiment `{other}`; see the module docs for the list");
            std::process::exit(2);
        }
    }
}
