//! Analytic experiments: regenerate the paper's tables and figures exactly.

use cqap_common::Rat;
use cqap_decomp::families as pmtd_families;
use cqap_decomp::Pmtd;
use cqap_entropy::tradeoff::{verify_tradeoff, Stats, SymbolicTradeoff};
use cqap_panda::analysis::{
    default_sigma_grid, example_e8_4reach, figure4a_curve, figure4b_curve, goldstein_baseline,
    table1_3reach,
};
use cqap_panda::rules::minimal_rules;
use cqap_query::families as query_families;

/// Prints the PMTD inventory of one of the paper's figures.
pub fn print_pmtds(title: &str, cqap: &cqap_query::Cqap, pmtds: &[Pmtd]) {
    println!("\n== {title} ==");
    println!("CQAP: {cqap}");
    for (i, p) in pmtds.iter().enumerate() {
        println!("  PMTD {}: {}", i + 1, p.summary());
        for t in p.td().top_down_order() {
            println!(
                "      node {t}: bag {}, view {:?}",
                p.td().bag(t),
                p.view(t)
            );
        }
    }
}

/// Figure 1: the three PMTDs for the 3-reachability CQAP.
pub fn figure1() {
    let (cqap, pmtds) = pmtd_families::pmtds_3reach_fig1().expect("paper PMTDs");
    print_pmtds("Figure 1: PMTDs for the 3-reachability CQAP", &cqap, &pmtds);
}

/// Figure 2: the two PMTDs for the square CQAP.
pub fn figure2() {
    let (cqap, pmtds) = pmtd_families::pmtds_square().expect("paper PMTDs");
    print_pmtds("Figure 2: PMTDs for the square CQAP", &cqap, &pmtds);
}

/// Figure 3: all five non-redundant, non-dominant PMTDs for 3-reachability.
pub fn figure3() {
    let (cqap, pmtds) = pmtd_families::pmtds_3reach_all().expect("paper PMTDs");
    print_pmtds("Figure 3: all PMTDs for the 3-reachability CQAP", &cqap, &pmtds);
    let rules = minimal_rules(&pmtds);
    println!("  generated 2-phase disjunctive rules (after pruning):");
    for r in rules {
        println!("    {} ← body", r.label());
    }
}

/// Table 1: the four rules for 3-reachability and their verified tradeoffs.
pub fn table1() {
    let (cqap, reports) = table1_3reach().expect("Table 1 rules generate");
    println!("\n== Table 1: 2-phase disjunctive rules for 3-reachability ==");
    println!("CQAP: {cqap}");
    println!("{:<38} {:<28} {:>10} {:>8}", "rule head", "tradeoff", "verified", "tight");
    for report in &reports {
        for (i, claim) in report.claimed.iter().enumerate() {
            println!(
                "{:<38} {:<28} {:>10} {:>8}",
                if i == 0 { report.label.as_str() } else { "" },
                claim.to_string(),
                report.verified[i],
                report.tight[i]
            );
        }
    }
}

/// Figures 4a/4b: the combined tradeoff curves vs. the prior baseline.
pub fn figure4(k: usize) {
    assert!(k == 3 || k == 4);
    let sigmas = default_sigma_grid();
    let curve = if k == 3 {
        figure4a_curve(&sigmas).expect("LP sweep")
    } else {
        figure4b_curve(&sigmas).expect("LP sweep")
    };
    println!("\n== Figure 4{}: {k}-reachability tradeoff (|Q_A| = 1) ==", if k == 3 { 'a' } else { 'b' });
    println!(
        "{:>10} {:>16} {:>16} {:>10}",
        "log|D| S", "log|D| T (ours)", "log|D| T (SOTA)", "improved"
    );
    for p in &curve.points {
        let base = goldstein_baseline(k, p.space);
        println!(
            "{:>10} {:>16} {:>16} {:>10}",
            p.space.to_string(),
            p.time.to_string(),
            base.to_string(),
            if p.time < base { "yes" } else { "" }
        );
    }
}

/// Example E.8: representative 4-reachability rules and their tradeoffs.
pub fn example_e8() {
    let (_, reports) = example_e8_4reach().expect("E.8 rules");
    println!("\n== Example E.8: 4-reachability rules ==");
    for report in &reports {
        println!("  rule {}", report.label);
        for (i, claim) in report.claimed.iter().enumerate() {
            println!(
                "    {:<30} verified = {}",
                claim.to_string(),
                report.verified[i]
            );
        }
    }
}

/// Example 6.3 / Section 6.2–6.3: tree-decomposition and edge-cover
/// tradeoffs verified against the LP oracle.
pub fn section6_examples() {
    println!("\n== Section 6.2/6.3 tradeoffs ==");
    // Example 6.2: Boolean k-set disjointness, S·T^k ≾ |D|^k |Q|^k.
    for k in 2..=3i64 {
        let cqap = query_families::k_set_disjointness(k as usize);
        let stats = Stats::uniform_for_cqap(&cqap);
        let rule = cqap_entropy::RuleShape::new(
            k as usize + 1,
            vec![cqap_common::VarSet::prefix(k as usize)],
            vec![cqap_common::VarSet::prefix(k as usize + 1)],
        );
        let claim = SymbolicTradeoff::new(1, k, k, k);
        println!(
            "  {k}-set disjointness  {:<26} verified = {}",
            claim.to_string(),
            verify_tradeoff(&rule, &stats, &claim)
        );
    }
    // Example 6.3: 4-reachability via one decomposition, S^{3/2}·T ≾ |Q|·|D|³.
    let cqap = query_families::k_path_distinct(4);
    let stats = Stats::uniform_for_cqap(&cqap);
    let rule = cqap_entropy::RuleShape::new(
        5,
        vec![
            cqap_common::VarSet::from_iter([0, 4]),
            cqap_common::VarSet::from_iter([1, 3]),
        ],
        vec![cqap_common::VarSet::from_iter([1, 2, 3])],
    );
    let claim = SymbolicTradeoff {
        s_exp: Rat::new(3, 2),
        t_exp: Rat::ONE,
        d_exp: Rat::int(3),
        q_exp: Rat::ONE,
    };
    println!(
        "  4-reach via TD (Ex. 6.3)  {:<22} verified = {}",
        claim.to_string(),
        verify_tradeoff(&rule, &stats, &claim)
    );
}

/// Appendix F: hierarchical CQAP tradeoffs (baseline recovered and improved).
///
/// Warning: this is the only 7-variable LP in the suite; with the dense
/// exact-rational simplex it can run for a very long time (tens of minutes
/// or more). It is therefore not part of the `all` experiment set.
pub fn appendix_f() {
    println!("\n== Appendix F: Boolean hierarchical CQAP ==");
    let cqap = query_families::hierarchical_two_level();
    let stats = Stats::uniform_for_cqap(&cqap);
    // The rule T0(Z,x) ∨ S_Z(Z): T-target {x} ∪ Z, S-target Z.
    let z: cqap_common::VarSet = cqap.access();
    let rule = cqap_entropy::RuleShape::new(7, vec![z], vec![z.insert(0)]);
    for (name, claim) in [
        ("baseline  S·T³ ≾ |D|⁴·|Q|³", SymbolicTradeoff::new(1, 3, 4, 3)),
        ("improved  S·T⁴ ≾ |D|⁴·|Q|⁴", SymbolicTradeoff::new(1, 4, 4, 4)),
    ] {
        println!(
            "  {name:<34} verified = {}",
            verify_tradeoff(&rule, &stats, &claim)
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn printers_do_not_panic() {
        figure1();
        figure2();
        table1();
        section6_examples();
    }
}
