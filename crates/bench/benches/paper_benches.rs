//! Criterion benchmarks — one group per paper table/figure.
//!
//! The analytic groups measure the cost of regenerating the paper's
//! tables/figures (LP solves); the empirical groups measure online query
//! latency of the concrete index structures at several space budgets, which
//! is the wall-clock realization of the space-time tradeoffs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use cqap_common::Rat;
use cqap_indexes::{
    BfsBaseline, FullReachMaterialization, KReachGoldstein, SetDisjointnessIndex, SquareIndex,
    TriangleIndex, TwoReachIndex,
};
use cqap_panda::analysis::{figure4a_curve, table1_3reach};
use cqap_query::workload::{graph_pair_requests, set_tuple_requests, Graph, SetFamily};

/// Table 1: verifying all claimed tradeoffs with the exact-rational LP.
fn bench_table1(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(20));
    group.bench_function("verify_all_rules", |b| {
        b.iter(|| {
            let (_, reports) = table1_3reach().expect("table 1");
            assert!(reports.iter().all(|r| r.all_verified()));
            black_box(reports.len())
        })
    });
    group.finish();
}

/// Figure 4a: the analytic combined curve on a coarse grid.
fn bench_fig4a(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4a");
    group.sample_size(10);
    group.bench_function("combined_curve_5_points", |b| {
        let sigmas: Vec<Rat> = (0..5).map(|i| Rat::new(i, 2)).collect();
        b.iter(|| black_box(figure4a_curve(&sigmas).expect("curve")))
    });
    group.finish();
}

/// §5 running example and Figure 4a/4b empirical side: per-query latency of
/// the reachability structures at several budgets.
fn bench_reachability(c: &mut Criterion) {
    let graph = Graph::skewed(4_000, 20_000, 15, 400, 7);
    let requests = graph_pair_requests(&graph, 256, 11);
    let n = graph.len();

    let mut group = c.benchmark_group("2reach");
    let bfs = BfsBaseline::build(&graph, 2);
    group.bench_function("bfs_baseline", |b| {
        b.iter(|| {
            for &(u, v) in &requests {
                black_box(bfs.query(u, v));
            }
        })
    });
    for exp in [1.0f64, 1.5, 2.0] {
        let budget = (n as f64).powf(exp) as usize;
        let idx = TwoReachIndex::build(&graph, budget);
        group.bench_with_input(BenchmarkId::new("two_reach", format!("E^{exp}")), &idx, |b, idx| {
            b.iter(|| {
                for &(u, v) in &requests {
                    black_box(idx.query(u, v));
                }
            })
        });
    }
    let full = FullReachMaterialization::build(&graph, 2);
    group.bench_function("full_materialization", |b| {
        b.iter(|| {
            for &(u, v) in &requests {
                black_box(full.query(u, v));
            }
        })
    });
    group.finish();

    for k in [3usize, 4] {
        let mut group = c.benchmark_group(format!("fig4{}_empirical", if k == 3 { 'a' } else { 'b' }));
        group.sample_size(10);
        for exp in [1.0f64, 1.5, 2.0] {
            let budget = (n as f64).powf(exp) as usize;
            let idx = KReachGoldstein::build(&graph, k, budget);
            group.bench_with_input(
                BenchmarkId::new(format!("{k}reach_goldstein"), format!("E^{exp}")),
                &idx,
                |b, idx| {
                    b.iter(|| {
                        for &(u, v) in &requests {
                            black_box(idx.query(u, v));
                        }
                    })
                },
            );
        }
        group.finish();
    }
}

/// §6.1: k-set disjointness per-query latency across budgets.
fn bench_kset(c: &mut Criterion) {
    let family = SetFamily::zipf(1_000, 100_000, 8_000, 1.0, 13);
    let n = family.len();
    let queries: Vec<(u64, u64)> = set_tuple_requests(&family, 2, 256, 3)
        .into_iter()
        .map(|t| (t.get(0), t.get(1)))
        .collect();
    let mut group = c.benchmark_group("kset");
    for exp in [0.5f64, 1.0, 1.5] {
        let budget = (n as f64).powf(exp) as usize;
        let idx = SetDisjointnessIndex::build(&family, budget);
        group.bench_with_input(
            BenchmarkId::new("disjointness", format!("N^{exp}")),
            &idx,
            |b, idx| {
                b.iter(|| {
                    for &(x, y) in &queries {
                        black_box(idx.intersects(x, y));
                    }
                })
            },
        );
    }
    group.finish();
}

/// Example 5.2 (square) and Example E.4 (triangle).
fn bench_square_triangle(c: &mut Criterion) {
    let graph = Graph::skewed(3_000, 15_000, 12, 300, 19);
    let requests = graph_pair_requests(&graph, 256, 23);
    let n = graph.len();

    let mut group = c.benchmark_group("square");
    for exp in [1.0f64, 2.0] {
        let budget = (n as f64).powf(exp) as usize;
        let idx = SquareIndex::build(&graph, budget);
        group.bench_with_input(BenchmarkId::new("square", format!("E^{exp}")), &idx, |b, idx| {
            b.iter(|| {
                for &(a, c2) in &requests {
                    black_box(idx.query(a, c2));
                }
            })
        });
    }
    group.finish();

    let idx = TriangleIndex::build(&graph);
    let edge_queries: Vec<_> = graph.edges.iter().take(256).copied().collect();
    c.bench_function("triangle/edge_detection", |b| {
        b.iter(|| {
            for &(u, v) in &edge_queries {
                black_box(idx.edge_in_triangle(u, v));
            }
        })
    });
}

/// Appendix F: hierarchical CQAP per-query latency across thresholds.
fn bench_hierarchical(c: &mut Criterion) {
    use cqap_indexes::hierarchical::HierarchicalInstance;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let inst = HierarchicalInstance::generate(400, 8, 120, 6, 64, 37);
    let mut rng = StdRng::seed_from_u64(41);
    let requests: Vec<(u64, u64, u64, u64)> = (0..256)
        .map(|_| {
            (
                rng.random_range(0..64),
                rng.random_range(0..64),
                rng.random_range(0..64),
                rng.random_range(0..64),
            )
        })
        .collect();
    let mut group = c.benchmark_group("hierarchical");
    for threshold in [1usize, 16, 1 << 20] {
        let idx = cqap_indexes::HierarchicalIndex::build_with_threshold(&inst, threshold);
        group.bench_with_input(
            BenchmarkId::new("query", format!("delta_{threshold}")),
            &idx,
            |b, idx| {
                b.iter(|| {
                    for &(z1, z2, z3, z4) in &requests {
                        black_box(idx.query(z1, z2, z3, z4));
                    }
                })
            },
        );
    }
    group.finish();
}

/// §6.4 batching remark: one-by-one vs. batched answering.
fn bench_batching(c: &mut Criterion) {
    let mut group = c.benchmark_group("batching");
    group.sample_size(10);
    group.bench_function("one_by_one_vs_batched", |b| {
        b.iter(|| {
            let rows = cqap_bench::batching_experiment(cqap_bench::Scale::small());
            black_box(rows.len())
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_table1,
    bench_fig4a,
    bench_reachability,
    bench_kset,
    bench_square_triangle,
    bench_hierarchical,
    bench_batching
);
criterion_main!(benches);
