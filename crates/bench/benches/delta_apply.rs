//! Incremental-maintenance throughput and its effect on serving latency.
//!
//! ```sh
//! cargo bench -p cqap-bench --bench delta_apply
//! ```
//!
//! The `delta_apply` group measures the per-batch cost of the
//! [`ApplyDelta`] seam — a six-tuple insert/delete round trip (one fresh
//! 3-chain inserted and removed again, so every iteration does identical
//! work and leaves the index unchanged) on both maintained backends,
//! plus the empty-batch fast path that a quiet serving loop pays:
//!
//! * `mem_roundtrip` — in-memory [`CqapIndex`]: delta plans, support
//!   counts, in-place hash-view maintenance, plan recompile;
//! * `disk_roundtrip` — disk-resident [`StoredIndex`]: the same
//!   maintenance with ΔS-views absorbed as LSM-style overlay segments
//!   (the round trip cancels in the overlay, so no compaction runs);
//! * `mem_noop` / `disk_noop` — an empty [`DeltaBatch`], which must
//!   short-circuit before touching any plan.
//!
//! The `post_delta_probe` group reports the per-request cold latency of
//! the *maintained* indexes after a real (uncancelled) delta —
//! `mem_cold` against the recompiled in-memory index, `disk_overlay`
//! with delta segments still pending on every probed view, and
//! `disk_compacted` after folding them down — the same zipf stream and
//! measurement shape as `online_latency`'s `driver_cold`, so the two
//! benches' medians are directly comparable (CI keeps the PR-4 run of
//! that bench as `BENCH_online_latency_pr4.json`; deltas for this bench
//! print against `BENCH_delta_apply_<name>.json` via the same shim).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use cqap_bench::ensure_baseline_named;
use cqap_common::Tuple;
use cqap_decomp::families::pmtds_3reach_fig1;
use cqap_delta::{ApplyDelta, DeltaBatch};
use cqap_panda::CqapIndex;
use cqap_query::workload::{zipf_pair_requests, Graph};
use cqap_query::AccessRequest;
use cqap_store::StoredIndex;

/// One fresh 3-chain far outside the generated graph, as inserts and as
/// the inverse deletes: applying both batches is a net no-op overall but
/// each apply is a real (non-empty) maintenance round.
fn chain_batches(base: u64) -> (DeltaBatch, DeltaBatch) {
    let mut fwd = DeltaBatch::new();
    let mut rev = DeltaBatch::new();
    for (i, name) in ["R1", "R2", "R3"].iter().enumerate() {
        let i = i as u64;
        let link = vec![Tuple::pair(base + i, base + i + 1)];
        fwd = fwd.insert(*name, link.clone());
        rev = rev.delete(*name, link);
    }
    (fwd, rev)
}

fn bench_delta_apply(c: &mut Criterion) {
    ensure_baseline_named();
    let (cqap, pmtds) = pmtds_3reach_fig1().expect("paper PMTDs");
    let graph = Graph::skewed(400, 2_200, 6, 150, 7);
    let db = graph.as_path_database(3);
    let requests: Vec<AccessRequest> = zipf_pair_requests(&graph, 256, 1.05, 11)
        .into_iter()
        .map(|(u, v)| AccessRequest::single(cqap.access(), &[u, v]).expect("valid"))
        .collect();

    let mut memory = CqapIndex::build(&cqap, &db, &pmtds).expect("preprocessing");
    let mut stored = StoredIndex::build_in_temp(&cqap, &db, &pmtds).expect("disk build");
    let (fwd, rev) = chain_batches(50_000);
    let empty = DeltaBatch::new();

    let mut group = c.benchmark_group("delta_apply");
    group.sample_size(20);
    group.bench_function("mem_roundtrip", |b| {
        b.iter(|| {
            black_box(memory.apply_delta(&fwd).expect("insert chain"));
            black_box(memory.apply_delta(&rev).expect("delete chain"));
        })
    });
    group.bench_function("disk_roundtrip", |b| {
        b.iter(|| {
            black_box(stored.apply_delta(&fwd).expect("insert chain"));
            black_box(stored.apply_delta(&rev).expect("delete chain"));
        })
    });
    group.bench_function("mem_noop", |b| {
        b.iter(|| black_box(memory.apply_delta(&empty).expect("noop")))
    });
    group.bench_function("disk_noop", |b| {
        b.iter(|| black_box(stored.apply_delta(&empty).expect("noop")))
    });
    group.finish();

    // Leave one real chain applied, so the probed state is genuinely
    // post-delta: the in-memory index recompiled, the disk index with
    // uncompacted overlay segments on its views.
    memory.apply_delta(&fwd).expect("final chain (memory)");
    stored.apply_delta(&fwd).expect("final chain (disk)");
    assert!(stored.overlay_len() > 0, "the probe bench wants pending segments");
    for request in requests.iter().take(8) {
        assert_eq!(
            stored.answer(request).expect("disk answer"),
            memory.answer(request).expect("memory answer"),
            "maintained backends diverged"
        );
    }

    let mut group = c.benchmark_group("post_delta_probe");
    group.sample_size(30);
    let mut at = 0usize;
    group.bench_function("mem_cold", |b| {
        b.iter(|| {
            at = (at + 1) % requests.len();
            black_box(memory.answer(&requests[at]).expect("answer"))
        })
    });
    let mut at = 0usize;
    group.bench_function("disk_overlay", |b| {
        b.iter(|| {
            at = (at + 1) % requests.len();
            black_box(stored.answer(&requests[at]).expect("answer"))
        })
    });
    stored.compact().expect("fold overlay segments");
    assert_eq!(stored.overlay_len(), 0);
    let mut at = 0usize;
    group.bench_function("disk_compacted", |b| {
        b.iter(|| {
            at = (at + 1) % requests.len();
            black_box(stored.answer(&requests[at]).expect("answer"))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_delta_apply);
criterion_main!(benches);
