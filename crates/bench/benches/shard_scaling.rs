//! Shard-count scaling of the hash-sharded serving stack.
//!
//! ```sh
//! cargo bench -p cqap-bench --bench shard_scaling
//! ```
//!
//! For `k ∈ {1, 2, 4}` shards, three benchmarks:
//!
//! * `build/k` — partition the database and build the `k` `CqapIndex`
//!   shards concurrently (the build-parallelism claim: on a multi-core
//!   runner build time drops as `k` grows, on one core it is flat);
//! * `serve_singles/k` — scatter a zipf-skewed single-binding stream
//!   across the per-shard runtimes via `answer_batch_parallel` over the
//!   [`ShardRouter`] (no front cache, so this isolates routing + shard
//!   probing; per-shard caches warm after the first sample);
//! * `serve_multi/k` — multi-binding requests that split across shards,
//!   exercising the scatter-gather union path.
//!
//! This bench always emits an outlier-robust JSON baseline: it defaults
//! `BENCH_BASELINE` to `local`, so the criterion shim writes
//! `BENCH_shard_scaling_<name>.json` (median/MAD per benchmark) for
//! cross-PR diffing. Set `BENCH_BASELINE=pr42` to name the dump.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use cqap_bench::ensure_baseline_named;
use cqap_common::Tuple;
use cqap_decomp::families::pmtds_3reach_fig1;
use cqap_panda::CqapIndex;
use cqap_query::workload::{zipf_multi_requests, zipf_pair_requests, Graph};
use cqap_query::AccessRequest;
use cqap_serve::{answer_batch_parallel, default_threads};
use cqap_shard::{ShardRouter, ShardedIndex};

const SHARD_COUNTS: [usize; 3] = [1, 2, 4];

fn bench_shard_scaling(c: &mut Criterion) {
    ensure_baseline_named();
    let (cqap, pmtds) = pmtds_3reach_fig1().expect("paper PMTDs");
    let graph = Graph::skewed(700, 4_000, 8, 220, 7);
    let db = graph.as_path_database(3);
    let singles: Vec<AccessRequest> = zipf_pair_requests(&graph, 400, 1.05, 11)
        .into_iter()
        .map(|(u, v)| AccessRequest::single(cqap.access(), &[u, v]).expect("valid"))
        .collect();
    let multis: Vec<AccessRequest> = zipf_multi_requests(&graph, 80, 5, 1.05, 13)
        .into_iter()
        .map(|tuples| {
            let tuples: Vec<Tuple> = tuples.into_iter().map(|(u, v)| Tuple::pair(u, v)).collect();
            AccessRequest::new(cqap.access(), tuples).expect("valid")
        })
        .collect();
    let threads = default_threads();

    let mut group = c.benchmark_group("shard_scaling");
    group.sample_size(5);
    for k in SHARD_COUNTS {
        group.bench_with_input(BenchmarkId::new("build", k), &k, |b, &k| {
            b.iter(|| black_box(ShardedIndex::build(&cqap, &db, &pmtds, k).expect("build")))
        });

        let router =
            ShardRouter::new(ShardedIndex::build(&cqap, &db, &pmtds, k).expect("build"));
        group.bench_with_input(
            BenchmarkId::new("serve_singles", k),
            &router,
            |b, router| {
                b.iter(|| black_box(answer_batch_parallel(router, &singles, threads).expect("serve")))
            },
        );
        group.bench_with_input(BenchmarkId::new("serve_multi", k), &router, |b, router| {
            b.iter(|| black_box(answer_batch_parallel(router, &multis, threads).expect("serve")))
        });
    }
    group.finish();
}

/// Prints the correctness + balance headline: sharded answers are checked
/// identical to the unsharded reference, and the per-shard request load is
/// reported so hash skew is visible in the bench output.
fn bench_headline_balance(_c: &mut Criterion) {
    ensure_baseline_named();
    let (cqap, pmtds) = pmtds_3reach_fig1().expect("paper PMTDs");
    let graph = Graph::skewed(700, 4_000, 8, 220, 7);
    let db = graph.as_path_database(3);
    let reference = CqapIndex::build(&cqap, &db, &pmtds).expect("reference build");
    let requests: Vec<AccessRequest> = zipf_pair_requests(&graph, 400, 1.05, 17)
        .into_iter()
        .map(|(u, v)| AccessRequest::single(cqap.access(), &[u, v]).expect("valid"))
        .collect();

    let sharded = ShardedIndex::build(&cqap, &db, &pmtds, 4).expect("sharded build");
    let router = ShardRouter::new(sharded);
    for request in &requests {
        use cqap_serve::BatchAnswer;
        assert_eq!(
            *router.answer_one(request).expect("routed answer"),
            reference.answer(request).expect("reference answer"),
            "sharded serving must be exact"
        );
    }
    let loads: Vec<u64> = router.shard_stats().iter().map(|s| s.served).collect();
    // The workload-side partition helper and the router agree on placement
    // (both route by the hash of the first access value — the routing
    // variable's binding).
    let expected: Vec<u64> =
        cqap_query::workload::partition_by_shard(requests.clone(), 4, |r| r.tuples()[0].get(0))
            .iter()
            .map(|part| part.len() as u64)
            .collect();
    assert_eq!(loads, expected, "helper and router disagree on placement");
    println!(
        "headline: 400 zipf requests over 4 shards, all answers exact; per-shard load {loads:?}"
    );
}

criterion_group!(benches, bench_shard_scaling, bench_headline_balance);
criterion_main!(benches);
