//! Per-request online latency of the compiled serving path, across every
//! backend that shares it.
//!
//! ```sh
//! cargo bench -p cqap-bench --bench online_latency
//! ```
//!
//! The compiled-probe-plan refactor moved all per-request bookkeeping of
//! the Online-Yannakakis driver (schema resolution, atom-relation clones,
//! per-request join-index builds, intermediate dedup inserts) to index
//! construction time. This bench tracks what is left: the **per-request
//! median**, cold and warm, for the three serving backends —
//!
//! * `driver_cold` / `driver_warm` — the framework driver (`CqapIndex`):
//!   cold is a direct `answer` per request (no cache anywhere; since PR 5
//!   this is the **columnar** path), warm is a `ServeRuntime` whose LRU
//!   already holds every answer;
//! * `driver_warm_traced` — the same warm submits with a 1-in-64-sampled
//!   flight recorder riding the sink: the cost of leaving request tracing
//!   on in production (unsampled requests stay allocation-free, so this
//!   should sit on top of `driver_warm`);
//! * `driver_cold_interpreted` — the pre-refactor interpreted path, kept
//!   answering the same stream so the before/after of the compiled plans
//!   stays visible in every run;
//! * `sharded_cold` — a 2-shard `ShardedIndex` routing each binding to
//!   its shard;
//! * `tiered_cold` — a 2-shard `TieredShardedIndex` with one shard
//!   spilled to disk (half the probes pay fence + segment reads).
//!
//! The `columnar` group isolates the PR-5 change on both storage
//! backends: the same request stream answered by the columnar path
//! (struct-of-arrays scratch, batched key probing, column-direct cold
//! decode) and by the retained PR-4 row-compiled path —
//! `mem_columnar` / `mem_row_compiled` against the in-memory index,
//! `disk_columnar` / `disk_row_compiled` against a fully disk-resident
//! `StoredIndex` over the same preprocessing output. All four are
//! scratch-warm per-request medians with no LRU in front.
//!
//! Like the other serving benches this always emits a JSON baseline
//! (`BENCH_online_latency_<name>.json`, name from `BENCH_BASELINE`,
//! default `local`); when the named file already exists, the criterion
//! shim prints each benchmark's median delta against the saved run — CI
//! runs with `BENCH_BASELINE=pr4`, so the columnar-vs-PR-4 delta prints
//! in every workflow log. Since PR 7 every line (and JSON record) also
//! carries the **p99/p999 tail latency**, estimated through the
//! `cqap-obs` log-bucketed histogram — the same estimator the serving
//! stack's live metrics exposition uses, so bench tails and production
//! tails are directly comparable.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::sync::Arc;

use cqap_bench::ensure_baseline_named;
use cqap_decomp::families::pmtds_3reach_fig1;
use cqap_obs::{FlightRecorder, MetricsSink, SamplingPolicy};
use cqap_panda::CqapIndex;
use cqap_query::workload::{zipf_pair_requests, Graph};
use cqap_query::AccessRequest;
use cqap_serve::{BatchAnswer, ServeConfig, ServeRuntime};
use cqap_shard::ShardedIndex;
use cqap_store::{scratch_dir, PlacementPolicy, ShardTier, StoredIndex, TieredShardedIndex};

fn bench_online_latency(c: &mut Criterion) {
    ensure_baseline_named();
    let (cqap, pmtds) = pmtds_3reach_fig1().expect("paper PMTDs");
    let graph = Graph::skewed(900, 5_000, 8, 250, 7);
    let db = graph.as_path_database(3);
    let requests: Vec<AccessRequest> = zipf_pair_requests(&graph, 256, 1.05, 11)
        .into_iter()
        .map(|(u, v)| AccessRequest::single(cqap.access(), &[u, v]).expect("valid"))
        .collect();

    let index = Arc::new(CqapIndex::build(&cqap, &db, &pmtds).expect("preprocessing"));
    let sharded = ShardedIndex::build(&cqap, &db, &pmtds, 2).expect("sharded build");
    let weights = PlacementPolicy::observe(sharded.spec(), &requests);
    // Half the deployment cold: the lower-traffic shard pays disk probes.
    let placement: Vec<ShardTier> = {
        let cold = if weights[0] <= weights[1] { 0 } else { 1 };
        (0..2)
            .map(|i| if i == cold { ShardTier::Cold } else { ShardTier::Hot })
            .collect()
    };
    let tiered = TieredShardedIndex::from_sharded(
        ShardedIndex::build(&cqap, &db, &pmtds, 2).expect("sharded build"),
        &placement,
        scratch_dir("online-latency"),
    )
    .expect("tiered build");

    // Sanity: every backend answers the stream identically.
    for request in requests.iter().take(16) {
        let expected = index.answer(request).expect("driver answer");
        assert_eq!(
            sharded.answer_one(request).expect("sharded answer"),
            expected
        );
        assert_eq!(tiered.answer_one(request).expect("tiered answer"), expected);
    }

    let mut group = c.benchmark_group("online_latency");
    group.sample_size(30);

    // Per-request sampling: each iteration answers the next request of
    // the zipf stream, so the reported median is a per-request latency.
    let mut at = 0usize;
    group.bench_function("driver_cold", |b| {
        b.iter(|| {
            at = (at + 1) % requests.len();
            black_box(index.answer(&requests[at]).expect("answer"))
        })
    });
    let mut at = 0usize;
    group.bench_function("driver_cold_interpreted", |b| {
        b.iter(|| {
            at = (at + 1) % requests.len();
            black_box(index.answer_interpreted(&requests[at]).expect("answer"))
        })
    });

    let runtime = ServeRuntime::with_config(
        Arc::clone(&index),
        ServeConfig {
            threads: 2,
            cache_capacity: 4_096,
            ..ServeConfig::default()
        },
    );
    runtime.serve_batch(&requests).expect("cache warm-up");
    let mut at = 0usize;
    group.bench_with_input(
        BenchmarkId::new("driver_warm", "lru"),
        &runtime,
        |b, runtime| {
            b.iter(|| {
                at = (at + 1) % requests.len();
                black_box(
                    runtime
                        .submit(requests[at].clone())
                        .wait()
                        .expect("warm answer"),
                )
            })
        },
    );

    // The same warm LRU submits with a 1-in-64-sampled flight recorder
    // riding a live sink: 63 of 64 requests must stay on the
    // allocation-free warm path (the trace seam does not even read the
    // clock for them), so this median should sit on top of
    // `driver_warm` — the tracing tax shows up here if it ever grows.
    let tracer = Arc::new(FlightRecorder::new(4_096, SamplingPolicy::OneInN(64)));
    let traced = ServeRuntime::with_metrics(
        Arc::clone(&index),
        ServeConfig {
            threads: 2,
            cache_capacity: 4_096,
            ..ServeConfig::default()
        },
        MetricsSink::recording().with_tracer(tracer),
    );
    traced.serve_batch(&requests).expect("cache warm-up");
    let mut at = 0usize;
    group.bench_with_input(
        BenchmarkId::new("driver_warm_traced", "one_in_64"),
        &traced,
        |b, traced| {
            b.iter(|| {
                at = (at + 1) % requests.len();
                black_box(
                    traced
                        .submit(requests[at].clone())
                        .wait()
                        .expect("warm answer"),
                )
            })
        },
    );

    let mut at = 0usize;
    group.bench_with_input(BenchmarkId::new("sharded_cold", "k2"), &sharded, |b, sharded| {
        b.iter(|| {
            at = (at + 1) % requests.len();
            black_box(sharded.answer_one(&requests[at]).expect("answer"))
        })
    });
    let mut at = 0usize;
    group.bench_with_input(
        BenchmarkId::new("tiered_cold", "k2_half_cold"),
        &tiered,
        |b, tiered| {
            b.iter(|| {
                at = (at + 1) % requests.len();
                black_box(tiered.answer_one(&requests[at]).expect("answer"))
            })
        },
    );
    group.finish();

    // Columnar vs row-compiled, same stream, both storage backends. The
    // StoredIndex spills the *same* preprocessing output, so the two
    // backends execute identical plans — only the probes differ (hash
    // buckets scattered column-wise vs segments decoded column-directly).
    let stored =
        StoredIndex::spill(&index, scratch_dir("online-latency-columnar")).expect("spill");
    for request in requests.iter().take(8) {
        let expected = index.answer(request).expect("columnar answer");
        assert_eq!(index.answer_rows(request).expect("row answer"), expected);
        assert_eq!(stored.answer(request).expect("disk columnar"), expected);
        assert_eq!(stored.answer_rows(request).expect("disk rows"), expected);
    }
    // Unlike the per-request sampling above, each iteration here answers
    // the *whole* 256-request stream: every sample measures identical
    // work, so the reported median is a stable 256-request aggregate
    // (divide by 256 for the per-request figure) instead of depending on
    // which zipf requests a sample window happens to hit.
    let mut group = c.benchmark_group("columnar");
    group.sample_size(30);
    group.bench_function("mem_columnar", |b| {
        b.iter(|| {
            for request in &requests {
                black_box(index.answer(request).expect("answer"));
            }
        })
    });
    group.bench_function("mem_row_compiled", |b| {
        b.iter(|| {
            for request in &requests {
                black_box(index.answer_rows(request).expect("answer"));
            }
        })
    });
    group.bench_function("disk_columnar", |b| {
        b.iter(|| {
            for request in &requests {
                black_box(stored.answer(request).expect("answer"));
            }
        })
    });
    group.bench_function("disk_row_compiled", |b| {
        b.iter(|| {
            for request in &requests {
                black_box(stored.answer_rows(request).expect("answer"));
            }
        })
    });
    group.finish();

    let space = tiered.space_used();
    println!(
        "tiered split: {} hot / {} cold shards, {} hot values, {} cold values on disk",
        space.hot_shards, space.cold_shards, space.hot_values, space.cold_values
    );
}

criterion_group!(benches, bench_online_latency);
criterion_main!(benches);
