//! Overload-control overhead: what admission costs when it isn't needed.
//!
//! ```sh
//! cargo bench -p cqap-bench --bench overload
//! ```
//!
//! The gate earns its keep under a flash crowd (see the
//! `overload_control` example for that regime); this bench watches the
//! other side of the bargain — the **un-overloaded** paths that every
//! request pays on:
//!
//! * `warm_submit` — a warm-cache submit/wait round trip with no
//!   admission, a shed gate, and a FIFO semaphore gate. The gate adds one
//!   mutex acquisition per admit/release pair on the hit path; the three
//!   bars should be within noise of each other.
//! * `cold_batch` — a cold-cache 512-request `serve_batch` with and
//!   without a (never-engaged) shed gate, and with per-request deadlines
//!   (all comfortably in the future), which additionally pays the
//!   earliest-deadline-first sort at dispatch.
//! * `deadline_submit` — `submit_with_deadline` vs plain `submit` on the
//!   warm path: the cost of carrying and checking a deadline that never
//!   fires.
//!
//! With `BENCH_BASELINE` set, results land in `BENCH_overload_*.json`
//! for cross-PR comparison.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Arc;
use std::time::{Duration, Instant};

use cqap_indexes::TwoReachIndex;
use cqap_query::workload::{zipf_pair_requests, Graph};
use cqap_serve::{AdmissionConfig, ServeConfig, ServeRuntime};

const THREADS: usize = 4;
const BATCH: usize = 512;

fn runtime_with(
    index: &Arc<TwoReachIndex>,
    cache_capacity: usize,
    admission: Option<AdmissionConfig>,
) -> ServeRuntime<TwoReachIndex> {
    ServeRuntime::with_config(
        Arc::clone(index),
        ServeConfig {
            threads: THREADS,
            cache_capacity,
            admission,
            ..ServeConfig::default()
        },
    )
}

fn bench_overload_paths(c: &mut Criterion) {
    let graph = Graph::random(2_000, 12_000, 7);
    let index = Arc::new(TwoReachIndex::build(&graph, 200_000));
    let requests = zipf_pair_requests(&graph, BATCH, 1.1, 11);
    let hot = requests[0];

    // Warm-path round trip: the gate never refuses (the queue is empty),
    // so this isolates pure admission overhead on a cache hit.
    let mut group = c.benchmark_group("overload_warm_submit");
    group.sample_size(20);
    for (label, admission) in [
        ("unbounded", None),
        ("shed_gate", Some(AdmissionConfig::shed(64))),
        ("semaphore_gate", Some(AdmissionConfig::semaphore(64))),
    ] {
        let runtime = runtime_with(&index, 1_024, admission);
        runtime.submit(hot).wait().expect("warm the cache");
        group.bench_function(label, |b| {
            b.iter(|| black_box(runtime.submit(hot).wait().expect("hit")))
        });
    }
    group.finish();

    // Cold batches: gate admissions per probe, and the EDF sort when
    // deadlines ride along. Cache capacity 0 keeps every batch cold.
    let mut group = c.benchmark_group("overload_cold_batch");
    group.sample_size(10);
    let unbounded = runtime_with(&index, 0, None);
    group.bench_function("unbounded", |b| {
        b.iter(|| black_box(unbounded.serve_batch(&requests).expect("batch")))
    });
    let gated = runtime_with(&index, 0, Some(AdmissionConfig::shed(BATCH)));
    group.bench_function("shed_gate_headroom", |b| {
        b.iter(|| black_box(gated.serve_batch(&requests).expect("batch")))
    });
    group.bench_function("edf_deadlines", |b| {
        b.iter(|| {
            let deadlines: Vec<Instant> = requests
                .iter()
                .enumerate()
                .map(|(i, _)| Instant::now() + Duration::from_secs(10 + (i % 7) as u64))
                .collect();
            let answers = gated.serve_batch_with_deadlines(&requests, &deadlines);
            for answer in answers {
                black_box(answer.expect("deadline far in the future"));
            }
        })
    });
    group.finish();

    // Deadline bookkeeping on the warm path: carry + check, never fire.
    let mut group = c.benchmark_group("overload_deadline_submit");
    group.sample_size(20);
    let runtime = runtime_with(&index, 1_024, Some(AdmissionConfig::shed(64)));
    runtime.submit(hot).wait().expect("warm the cache");
    group.bench_function("plain", |b| {
        b.iter(|| black_box(runtime.submit(hot).wait().expect("hit")))
    });
    group.bench_function("with_deadline", |b| {
        b.iter(|| {
            black_box(
                runtime
                    .submit_with_deadline(hot, Instant::now() + Duration::from_secs(30))
                    .wait()
                    .expect("hit"),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_overload_paths);
criterion_main!(benches);
