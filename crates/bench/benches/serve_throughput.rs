//! Throughput of the serving runtime vs. the one-at-a-time loop.
//!
//! ```sh
//! cargo bench -p cqap-bench --bench serve_throughput
//! ```
//!
//! Three serving strategies over the same shared immutable index and the
//! same zipf-skewed request stream:
//!
//! * `one_at_a_time` — the sequential baseline: a plain loop over
//!   `answer_one`;
//! * `parallel_batch` — scoped work-claiming threads, no cache
//!   (`cqap_serve::answer_batch_parallel`);
//! * `serve_runtime` — the full runtime: work-stealing pool plus the LRU
//!   answer cache, batch after batch on the same runtime so the cache is
//!   warm for the zipf head.
//!
//! On a multi-core runner `parallel_batch` beats `one_at_a_time` on raw
//! concurrency and `serve_runtime` adds the cache win on top. Run with
//! `--release`; the measured speedups are printed by the criterion shim.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::sync::Arc;

use cqap_decomp::families::pmtds_3reach_fig1;
use cqap_indexes::TwoReachIndex;
use cqap_panda::CqapIndex;
use cqap_query::workload::{zipf_pair_requests, Graph};
use cqap_query::AccessRequest;
use cqap_serve::{answer_batch_parallel, BatchAnswer, ServeConfig, ServeRuntime};

/// The framework driver (Online Yannakakis per PMTD) under the three
/// strategies.
fn bench_driver_serving(c: &mut Criterion) {
    let (cqap, pmtds) = pmtds_3reach_fig1().expect("paper PMTDs");
    let graph = Graph::skewed(1_500, 9_000, 10, 300, 7);
    let db = graph.as_path_database(3);
    let index = Arc::new(CqapIndex::build(&cqap, &db, &pmtds).expect("preprocessing"));
    let requests: Vec<AccessRequest> = zipf_pair_requests(&graph, 1_000, 1.05, 11)
        .into_iter()
        .map(|(u, v)| AccessRequest::single(cqap.access(), &[u, v]).expect("valid"))
        .collect();
    let threads = cqap_serve::default_threads();

    let mut group = c.benchmark_group("driver_serving_1k");
    group.sample_size(10);
    group.bench_function("one_at_a_time", |b| {
        b.iter(|| {
            for request in &requests {
                black_box(index.answer(request).expect("answer"));
            }
        })
    });
    group.bench_with_input(
        BenchmarkId::new("parallel_batch", format!("{threads}t")),
        &threads,
        |b, &threads| {
            b.iter(|| {
                black_box(
                    answer_batch_parallel(index.as_ref(), &requests, threads).expect("batch"),
                )
            })
        },
    );
    let runtime = ServeRuntime::with_config(
        Arc::clone(&index),
        ServeConfig {
            threads,
            cache_capacity: 2_048,
            ..ServeConfig::default()
        },
    );
    group.bench_with_input(
        BenchmarkId::new("serve_runtime", format!("{threads}t+lru")),
        &runtime,
        |b, runtime| b.iter(|| black_box(runtime.serve_batch(&requests).expect("serve"))),
    );
    group.finish();
}

/// The specialized 2-reachability structure: requests are so cheap that
/// this is the adversarial case for parallelization overhead.
fn bench_two_reach_serving(c: &mut Criterion) {
    let graph = Graph::skewed(4_000, 20_000, 15, 400, 13);
    let index = TwoReachIndex::build(&graph, graph.len());
    let requests = zipf_pair_requests(&graph, 10_000, 1.0, 17);
    let threads = cqap_serve::default_threads();

    let mut group = c.benchmark_group("two_reach_serving_10k");
    group.bench_function("one_at_a_time", |b| {
        b.iter(|| {
            for pair in &requests {
                black_box(index.answer_one(pair).expect("answer"));
            }
        })
    });
    group.bench_with_input(
        BenchmarkId::new("parallel_batch", format!("{threads}t")),
        &threads,
        |b, &threads| {
            b.iter(|| black_box(answer_batch_parallel(&index, &requests, threads).expect("batch")))
        },
    );
    group.finish();
}

/// Prints the headline numbers (total wall-clock per strategy, speedup) in
/// addition to the per-iteration samples, so `cargo bench` output directly
/// answers "does batched parallel serving beat the loop?".
fn bench_headline_speedup(_c: &mut Criterion) {
    let (cqap, pmtds) = pmtds_3reach_fig1().expect("paper PMTDs");
    let graph = Graph::skewed(1_500, 9_000, 10, 300, 7);
    let db = graph.as_path_database(3);
    let index = Arc::new(CqapIndex::build(&cqap, &db, &pmtds).expect("preprocessing"));
    let requests: Vec<AccessRequest> = zipf_pair_requests(&graph, 1_000, 1.05, 19)
        .into_iter()
        .map(|(u, v)| AccessRequest::single(cqap.access(), &[u, v]).expect("valid"))
        .collect();
    let threads = cqap_serve::default_threads();

    let start = std::time::Instant::now();
    let sequential: Vec<_> = requests
        .iter()
        .map(|r| index.answer(r).expect("answer"))
        .collect();
    let sequential_time = start.elapsed();

    let start = std::time::Instant::now();
    let parallel = answer_batch_parallel(index.as_ref(), &requests, threads).expect("batch");
    let parallel_time = start.elapsed();
    assert_eq!(parallel, sequential, "parallel serving must be identical");

    println!(
        "headline: 1k driver requests sequential {:.1} ms, parallel({threads}t) {:.1} ms → {:.2}x",
        sequential_time.as_secs_f64() * 1e3,
        parallel_time.as_secs_f64() * 1e3,
        sequential_time.as_secs_f64() / parallel_time.as_secs_f64()
    );
}

criterion_group!(
    benches,
    bench_driver_serving,
    bench_two_reach_serving,
    bench_headline_speedup
);
criterion_main!(benches);
