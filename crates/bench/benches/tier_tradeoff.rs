//! The space/latency curve of hot/cold shard placement — the paper's
//! tradeoff made physical.
//!
//! ```sh
//! cargo bench -p cqap-bench --bench tier_tradeoff
//! ```
//!
//! Four hash shards are built once; then, for cold-shard fractions
//! `{0, ½, 1}` (0, 2 and 4 of the 4 shards spilled to disk), a zipf-skewed
//! request stream is served through the [`TieredShardedIndex`]:
//!
//! * `serve/cold_<c>_of_4` — latency of the whole stream at that split
//!   (the coldest-by-traffic shards are the ones spilled, as the
//!   budget-driven [`PlacementPolicy`] would choose);
//! * the headline prints the per-tier space breakdown for every split and
//!   checks a sample of answers against the unsharded reference, so the
//!   *space* half of the curve sits next to the latency half in the same
//!   output.
//!
//! Like `shard_scaling`, this bench always emits a JSON baseline
//! (`BENCH_tier_tradeoff_<name>.json`, name from `BENCH_BASELINE`,
//! default `local`) — and when that file already exists from a previous
//! run, the criterion shim prints the median delta against it, which is
//! how the curve is tracked across PRs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use cqap_bench::ensure_baseline_named;
use cqap_decomp::families::pmtds_3reach_fig1;
use cqap_panda::CqapIndex;
use cqap_query::workload::{zipf_pair_requests, Graph};
use cqap_query::AccessRequest;
use cqap_serve::BatchAnswer;
use cqap_shard::ShardedIndex;
use cqap_store::{scratch_dir, PlacementPolicy, ShardTier, TieredShardedIndex};

const SHARDS: usize = 4;
const COLD_COUNTS: [usize; 3] = [0, 2, 4];

/// The `cold` lowest-traffic shards go cold — exactly what a shrinking
/// hot-tier budget takes away first under the greedy placement policy.
fn placement_for(weights: &[u64], cold: usize) -> Vec<ShardTier> {
    let mut order: Vec<usize> = (0..weights.len()).collect();
    order.sort_by_key(|&i| (weights[i], i));
    let mut placement = vec![ShardTier::Hot; weights.len()];
    for &shard in order.iter().take(cold) {
        placement[shard] = ShardTier::Cold;
    }
    placement
}

fn bench_tier_tradeoff(c: &mut Criterion) {
    ensure_baseline_named();
    let (cqap, pmtds) = pmtds_3reach_fig1().expect("paper PMTDs");
    // Serve from the fully-materialized (S14) PMTD alone: its online phase
    // is a pure S-view probe, so the measured latency isolates exactly
    // what the storage tier changes — RAM hash probe vs. fence search +
    // one disk segment read. (With T-view-heavy plans in the mix, online
    // join work identical across tiers swamps the probe cost.)
    let pmtds = &pmtds[2..];
    let graph = Graph::skewed(700, 4_000, 8, 220, 7);
    let db = graph.as_path_database(3);
    let requests: Vec<AccessRequest> = zipf_pair_requests(&graph, 300, 1.05, 11)
        .into_iter()
        .map(|(u, v)| AccessRequest::single(cqap.access(), &[u, v]).expect("valid"))
        .collect();

    let spec = cqap_shard::ShardSpec::new(&cqap, SHARDS).expect("spec");
    let weights = PlacementPolicy::observe(&spec, &requests);

    let mut group = c.benchmark_group("tier_tradeoff");
    group.sample_size(5);
    for cold in COLD_COUNTS {
        let sharded = ShardedIndex::build(&cqap, &db, pmtds, SHARDS).expect("build");
        let placement = placement_for(&weights, cold);
        let tiered = TieredShardedIndex::from_sharded(
            sharded,
            &placement,
            scratch_dir(&format!("bench-cold{cold}")),
        )
        .expect("tiered build");
        let space = tiered.space_used();
        println!(
            "tier_tradeoff: cold {cold}/{SHARDS} -> {space} (resident {} of {} values)",
            space.resident_values(),
            space.total_values(),
        );
        if space.cold_values > 0 {
            // The compression half of the curve: v2 delta+varint runs vs
            // the plain 8-bytes-per-value encoding of the same S-views.
            let logical = (space.cold_values * 8) as u64;
            println!(
                "tier_tradeoff: cold {cold}/{SHARDS} disk {} B for {} logical B ({:.2}x compression, {:.2} B/value)",
                space.cold_disk_bytes,
                logical,
                logical as f64 / space.cold_disk_bytes as f64,
                space.cold_disk_bytes as f64 / space.cold_values as f64,
            );
        }
        group.bench_with_input(
            BenchmarkId::new("serve", format!("cold_{cold}_of_{SHARDS}")),
            &tiered,
            |b, tiered| {
                b.iter(|| {
                    for request in &requests {
                        black_box(tiered.answer_one(request).expect("answer"));
                    }
                })
            },
        );
    }
    group.finish();
}

/// Correctness headline: at every split, tiered answers are checked
/// identical to the unsharded reference on a request sample, and the
/// per-tier space breakdown is printed next to it.
fn bench_headline_exactness(_c: &mut Criterion) {
    ensure_baseline_named();
    let (cqap, pmtds) = pmtds_3reach_fig1().expect("paper PMTDs");
    let graph = Graph::skewed(700, 4_000, 8, 220, 7);
    let db = graph.as_path_database(3);
    // Exactness is checked over the full Figure 1 plan set (T-views and
    // all), not just the probe-only plan the latency sweep uses.
    let reference = CqapIndex::build(&cqap, &db, &pmtds).expect("reference build");
    let requests: Vec<AccessRequest> = zipf_pair_requests(&graph, 60, 1.05, 17)
        .into_iter()
        .map(|(u, v)| AccessRequest::single(cqap.access(), &[u, v]).expect("valid"))
        .collect();
    let spec = cqap_shard::ShardSpec::new(&cqap, SHARDS).expect("spec");
    let weights = PlacementPolicy::observe(&spec, &requests);

    for cold in COLD_COUNTS {
        let sharded = ShardedIndex::build(&cqap, &db, &pmtds, SHARDS).expect("build");
        let tiered = TieredShardedIndex::from_sharded(
            sharded,
            &placement_for(&weights, cold),
            scratch_dir(&format!("headline-cold{cold}")),
        )
        .expect("tiered build");
        for request in &requests {
            assert_eq!(
                tiered.answer(request).expect("tiered answer"),
                reference.answer(request).expect("reference answer"),
                "tiered serving must be exact at cold = {cold}"
            );
        }
        println!(
            "headline: cold {cold}/{SHARDS} exact on {} zipf requests | {}",
            requests.len(),
            tiered.space_used(),
        );
    }
}

criterion_group!(benches, bench_tier_tradeoff, bench_headline_exactness);
criterion_main!(benches);
